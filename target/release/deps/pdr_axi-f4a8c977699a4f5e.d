/root/repo/target/release/deps/pdr_axi-f4a8c977699a4f5e.d: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs

/root/repo/target/release/deps/libpdr_axi-f4a8c977699a4f5e.rlib: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs

/root/repo/target/release/deps/libpdr_axi-f4a8c977699a4f5e.rmeta: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs

crates/axi/src/lib.rs:
crates/axi/src/cdc.rs:
crates/axi/src/interconnect.rs:
crates/axi/src/lite.rs:
crates/axi/src/mm.rs:
crates/axi/src/stream.rs:
crates/axi/src/width.rs:
