/root/repo/target/release/deps/pdrlab-c5d469951334a584.d: src/bin/pdrlab.rs

/root/repo/target/release/deps/pdrlab-c5d469951334a584: src/bin/pdrlab.rs

src/bin/pdrlab.rs:
