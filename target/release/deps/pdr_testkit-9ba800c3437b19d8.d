/root/repo/target/release/deps/pdr_testkit-9ba800c3437b19d8.d: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

/root/repo/target/release/deps/libpdr_testkit-9ba800c3437b19d8.rlib: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

/root/repo/target/release/deps/libpdr_testkit-9ba800c3437b19d8.rmeta: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

crates/testkit/src/lib.rs:
crates/testkit/src/choices.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
