/root/repo/target/release/deps/pdr_lab-81696cf8f46856b5.d: src/lib.rs

/root/repo/target/release/deps/libpdr_lab-81696cf8f46856b5.rlib: src/lib.rs

/root/repo/target/release/deps/libpdr_lab-81696cf8f46856b5.rmeta: src/lib.rs

src/lib.rs:
