/root/repo/target/release/deps/pdr_power-9b35af73080b47ad.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/release/deps/libpdr_power-9b35af73080b47ad.rlib: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/release/deps/libpdr_power-9b35af73080b47ad.rmeta: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
