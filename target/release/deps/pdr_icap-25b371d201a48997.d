/root/repo/target/release/deps/pdr_icap-25b371d201a48997.d: crates/icap/src/lib.rs

/root/repo/target/release/deps/libpdr_icap-25b371d201a48997.rlib: crates/icap/src/lib.rs

/root/repo/target/release/deps/libpdr_icap-25b371d201a48997.rmeta: crates/icap/src/lib.rs

crates/icap/src/lib.rs:
