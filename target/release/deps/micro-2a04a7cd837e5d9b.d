/root/repo/target/release/deps/micro-2a04a7cd837e5d9b.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-2a04a7cd837e5d9b: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:

# env-dep:CARGO_CRATE_NAME=micro
