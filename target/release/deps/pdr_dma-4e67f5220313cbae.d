/root/repo/target/release/deps/pdr_dma-4e67f5220313cbae.d: crates/dma/src/lib.rs

/root/repo/target/release/deps/libpdr_dma-4e67f5220313cbae.rlib: crates/dma/src/lib.rs

/root/repo/target/release/deps/libpdr_dma-4e67f5220313cbae.rmeta: crates/dma/src/lib.rs

crates/dma/src/lib.rs:
