/root/repo/target/release/deps/pdr_mem-77e8aebf92d4d0e6.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/release/deps/libpdr_mem-77e8aebf92d4d0e6.rlib: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/release/deps/libpdr_mem-77e8aebf92d4d0e6.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
