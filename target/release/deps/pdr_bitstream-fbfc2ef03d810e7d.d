/root/repo/target/release/deps/pdr_bitstream-fbfc2ef03d810e7d.d: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs

/root/repo/target/release/deps/libpdr_bitstream-fbfc2ef03d810e7d.rlib: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs

/root/repo/target/release/deps/libpdr_bitstream-fbfc2ef03d810e7d.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/builder.rs:
crates/bitstream/src/bytes.rs:
crates/bitstream/src/compress.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/packet.rs:
crates/bitstream/src/parser.rs:
