/root/repo/target/release/deps/pdr_bench-e7227abb4117fe39.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libpdr_bench-e7227abb4117fe39.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libpdr_bench-e7227abb4117fe39.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
