/root/repo/target/release/deps/pdr_fabric-62a47f8a7af812d7.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/release/deps/libpdr_fabric-62a47f8a7af812d7.rlib: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/release/deps/libpdr_fabric-62a47f8a7af812d7.rmeta: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
