/root/repo/target/release/deps/pdr_timing-5b2fe442ba6fa904.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/release/deps/libpdr_timing-5b2fe442ba6fa904.rlib: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/release/deps/libpdr_timing-5b2fe442ba6fa904.rmeta: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
