/root/repo/target/debug/deps/ablation_contention-6c6bdcc5b7cc0174.d: crates/bench/benches/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-6c6bdcc5b7cc0174: crates/bench/benches/ablation_contention.rs

crates/bench/benches/ablation_contention.rs:
