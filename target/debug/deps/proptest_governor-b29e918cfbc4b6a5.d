/root/repo/target/debug/deps/proptest_governor-b29e918cfbc4b6a5.d: tests/proptest_governor.rs

/root/repo/target/debug/deps/proptest_governor-b29e918cfbc4b6a5: tests/proptest_governor.rs

tests/proptest_governor.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
