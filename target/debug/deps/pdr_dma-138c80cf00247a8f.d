/root/repo/target/debug/deps/pdr_dma-138c80cf00247a8f.d: crates/dma/src/lib.rs

/root/repo/target/debug/deps/libpdr_dma-138c80cf00247a8f.rlib: crates/dma/src/lib.rs

/root/repo/target/debug/deps/libpdr_dma-138c80cf00247a8f.rmeta: crates/dma/src/lib.rs

crates/dma/src/lib.rs:
