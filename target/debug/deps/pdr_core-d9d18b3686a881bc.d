/root/repo/target/debug/deps/pdr_core-d9d18b3686a881bc.d: crates/pdr/src/lib.rs crates/pdr/src/baselines.rs crates/pdr/src/campaign.rs crates/pdr/src/clockwizard.rs crates/pdr/src/crc_readback.rs crates/pdr/src/experiments.rs crates/pdr/src/frontpanel.rs crates/pdr/src/governor.rs crates/pdr/src/proposed.rs crates/pdr/src/report.rs crates/pdr/src/sdcard.rs crates/pdr/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_core-d9d18b3686a881bc.rmeta: crates/pdr/src/lib.rs crates/pdr/src/baselines.rs crates/pdr/src/campaign.rs crates/pdr/src/clockwizard.rs crates/pdr/src/crc_readback.rs crates/pdr/src/experiments.rs crates/pdr/src/frontpanel.rs crates/pdr/src/governor.rs crates/pdr/src/proposed.rs crates/pdr/src/report.rs crates/pdr/src/sdcard.rs crates/pdr/src/system.rs Cargo.toml

crates/pdr/src/lib.rs:
crates/pdr/src/baselines.rs:
crates/pdr/src/campaign.rs:
crates/pdr/src/clockwizard.rs:
crates/pdr/src/crc_readback.rs:
crates/pdr/src/experiments.rs:
crates/pdr/src/frontpanel.rs:
crates/pdr/src/governor.rs:
crates/pdr/src/proposed.rs:
crates/pdr/src/report.rs:
crates/pdr/src/sdcard.rs:
crates/pdr/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
