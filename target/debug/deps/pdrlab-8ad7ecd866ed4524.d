/root/repo/target/debug/deps/pdrlab-8ad7ecd866ed4524.d: src/bin/pdrlab.rs Cargo.toml

/root/repo/target/debug/deps/libpdrlab-8ad7ecd866ed4524.rmeta: src/bin/pdrlab.rs Cargo.toml

src/bin/pdrlab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
