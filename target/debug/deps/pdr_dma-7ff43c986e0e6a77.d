/root/repo/target/debug/deps/pdr_dma-7ff43c986e0e6a77.d: crates/dma/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_dma-7ff43c986e0e6a77.rmeta: crates/dma/src/lib.rs Cargo.toml

crates/dma/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
