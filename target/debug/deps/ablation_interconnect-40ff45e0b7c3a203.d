/root/repo/target/debug/deps/ablation_interconnect-40ff45e0b7c3a203.d: crates/bench/benches/ablation_interconnect.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interconnect-40ff45e0b7c3a203.rmeta: crates/bench/benches/ablation_interconnect.rs Cargo.toml

crates/bench/benches/ablation_interconnect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
