/root/repo/target/debug/deps/pdr_axi-06658785cbe9ccb6.d: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_axi-06658785cbe9ccb6.rmeta: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs Cargo.toml

crates/axi/src/lib.rs:
crates/axi/src/cdc.rs:
crates/axi/src/interconnect.rs:
crates/axi/src/lite.rs:
crates/axi/src/mm.rs:
crates/axi/src/stream.rs:
crates/axi/src/width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
