/root/repo/target/debug/deps/ablation_burst-70e94055a942306c.d: crates/bench/benches/ablation_burst.rs

/root/repo/target/debug/deps/ablation_burst-70e94055a942306c: crates/bench/benches/ablation_burst.rs

crates/bench/benches/ablation_burst.rs:
