/root/repo/target/debug/deps/pdr_power-6aa1e9cdd93c60e8.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_power-6aa1e9cdd93c60e8.rmeta: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
