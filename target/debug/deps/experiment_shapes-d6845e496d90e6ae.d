/root/repo/target/debug/deps/experiment_shapes-d6845e496d90e6ae.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-d6845e496d90e6ae: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
