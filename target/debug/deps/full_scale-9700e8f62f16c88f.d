/root/repo/target/debug/deps/full_scale-9700e8f62f16c88f.d: tests/full_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfull_scale-9700e8f62f16c88f.rmeta: tests/full_scale.rs Cargo.toml

tests/full_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
