/root/repo/target/debug/deps/pdr_fabric-d4b06329bda8e655.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/debug/deps/libpdr_fabric-d4b06329bda8e655.rmeta: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
