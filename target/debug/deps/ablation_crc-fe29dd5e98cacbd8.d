/root/repo/target/debug/deps/ablation_crc-fe29dd5e98cacbd8.d: crates/bench/benches/ablation_crc.rs

/root/repo/target/debug/deps/ablation_crc-fe29dd5e98cacbd8: crates/bench/benches/ablation_crc.rs

crates/bench/benches/ablation_crc.rs:
