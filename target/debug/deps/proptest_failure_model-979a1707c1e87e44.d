/root/repo/target/debug/deps/proptest_failure_model-979a1707c1e87e44.d: tests/proptest_failure_model.rs

/root/repo/target/debug/deps/proptest_failure_model-979a1707c1e87e44: tests/proptest_failure_model.rs

tests/proptest_failure_model.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
