/root/repo/target/debug/deps/ablation_fifo-8ca40ff732fe8143.d: crates/bench/benches/ablation_fifo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fifo-8ca40ff732fe8143.rmeta: crates/bench/benches/ablation_fifo.rs Cargo.toml

crates/bench/benches/ablation_fifo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
