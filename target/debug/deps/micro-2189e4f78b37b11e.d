/root/repo/target/debug/deps/micro-2189e4f78b37b11e.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-2189e4f78b37b11e: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:

# env-dep:CARGO_CRATE_NAME=micro
