/root/repo/target/debug/deps/pdr_dma-820633f500c82514.d: crates/dma/src/lib.rs

/root/repo/target/debug/deps/libpdr_dma-820633f500c82514.rmeta: crates/dma/src/lib.rs

crates/dma/src/lib.rs:
