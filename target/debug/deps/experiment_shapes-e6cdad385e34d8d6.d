/root/repo/target/debug/deps/experiment_shapes-e6cdad385e34d8d6.d: tests/experiment_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_shapes-e6cdad385e34d8d6.rmeta: tests/experiment_shapes.rs Cargo.toml

tests/experiment_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
