/root/repo/target/debug/deps/fig6-a53f7ec66aedbb8b.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-a53f7ec66aedbb8b.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
