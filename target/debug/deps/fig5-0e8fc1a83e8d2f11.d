/root/repo/target/debug/deps/fig5-0e8fc1a83e8d2f11.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-0e8fc1a83e8d2f11.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
