/root/repo/target/debug/deps/temp_stress-22d80dc88c402e32.d: crates/bench/benches/temp_stress.rs

/root/repo/target/debug/deps/temp_stress-22d80dc88c402e32: crates/bench/benches/temp_stress.rs

crates/bench/benches/temp_stress.rs:
