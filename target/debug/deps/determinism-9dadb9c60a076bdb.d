/root/repo/target/debug/deps/determinism-9dadb9c60a076bdb.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-9dadb9c60a076bdb.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
