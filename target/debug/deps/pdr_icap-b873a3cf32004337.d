/root/repo/target/debug/deps/pdr_icap-b873a3cf32004337.d: crates/icap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_icap-b873a3cf32004337.rmeta: crates/icap/src/lib.rs Cargo.toml

crates/icap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
