/root/repo/target/debug/deps/ablation_size-0ad9760b60db6656.d: crates/bench/benches/ablation_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_size-0ad9760b60db6656.rmeta: crates/bench/benches/ablation_size.rs Cargo.toml

crates/bench/benches/ablation_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
