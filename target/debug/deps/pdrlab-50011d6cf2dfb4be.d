/root/repo/target/debug/deps/pdrlab-50011d6cf2dfb4be.d: src/bin/pdrlab.rs

/root/repo/target/debug/deps/pdrlab-50011d6cf2dfb4be: src/bin/pdrlab.rs

src/bin/pdrlab.rs:
