/root/repo/target/debug/deps/pdrlab-02a42029e5a9b857.d: src/bin/pdrlab.rs

/root/repo/target/debug/deps/pdrlab-02a42029e5a9b857: src/bin/pdrlab.rs

src/bin/pdrlab.rs:
