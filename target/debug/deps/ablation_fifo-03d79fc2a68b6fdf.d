/root/repo/target/debug/deps/ablation_fifo-03d79fc2a68b6fdf.d: crates/bench/benches/ablation_fifo.rs

/root/repo/target/debug/deps/ablation_fifo-03d79fc2a68b6fdf: crates/bench/benches/ablation_fifo.rs

crates/bench/benches/ablation_fifo.rs:
