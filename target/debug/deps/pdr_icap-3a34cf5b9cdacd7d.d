/root/repo/target/debug/deps/pdr_icap-3a34cf5b9cdacd7d.d: crates/icap/src/lib.rs

/root/repo/target/debug/deps/libpdr_icap-3a34cf5b9cdacd7d.rmeta: crates/icap/src/lib.rs

crates/icap/src/lib.rs:
