/root/repo/target/debug/deps/pdr_mem-8d2fe5607f5c94a7.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_mem-8d2fe5607f5c94a7.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
