/root/repo/target/debug/deps/pdr_lab-d8b94275f0ef6497.d: src/lib.rs

/root/repo/target/debug/deps/libpdr_lab-d8b94275f0ef6497.rlib: src/lib.rs

/root/repo/target/debug/deps/libpdr_lab-d8b94275f0ef6497.rmeta: src/lib.rs

src/lib.rs:
