/root/repo/target/debug/deps/pdr_icap-e4907b96cac0bc6b.d: crates/icap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_icap-e4907b96cac0bc6b.rmeta: crates/icap/src/lib.rs Cargo.toml

crates/icap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
