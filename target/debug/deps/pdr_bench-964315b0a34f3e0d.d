/root/repo/target/debug/deps/pdr_bench-964315b0a34f3e0d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpdr_bench-964315b0a34f3e0d.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpdr_bench-964315b0a34f3e0d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
