/root/repo/target/debug/deps/temp_stress-94f3d1c5b74d4766.d: crates/bench/benches/temp_stress.rs Cargo.toml

/root/repo/target/debug/deps/libtemp_stress-94f3d1c5b74d4766.rmeta: crates/bench/benches/temp_stress.rs Cargo.toml

crates/bench/benches/temp_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
