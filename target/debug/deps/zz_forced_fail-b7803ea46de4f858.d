/root/repo/target/debug/deps/zz_forced_fail-b7803ea46de4f858.d: tests/zz_forced_fail.rs

/root/repo/target/debug/deps/zz_forced_fail-b7803ea46de4f858: tests/zz_forced_fail.rs

tests/zz_forced_fail.rs:
