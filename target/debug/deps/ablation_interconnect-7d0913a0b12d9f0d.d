/root/repo/target/debug/deps/ablation_interconnect-7d0913a0b12d9f0d.d: crates/bench/benches/ablation_interconnect.rs

/root/repo/target/debug/deps/ablation_interconnect-7d0913a0b12d9f0d: crates/bench/benches/ablation_interconnect.rs

crates/bench/benches/ablation_interconnect.rs:
