/root/repo/target/debug/deps/pdr_fabric-9f8fdb27c88f402a.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/debug/deps/libpdr_fabric-9f8fdb27c88f402a.rlib: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/debug/deps/libpdr_fabric-9f8fdb27c88f402a.rmeta: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
