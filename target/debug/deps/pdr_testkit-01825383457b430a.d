/root/repo/target/debug/deps/pdr_testkit-01825383457b430a.d: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

/root/repo/target/debug/deps/libpdr_testkit-01825383457b430a.rlib: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

/root/repo/target/debug/deps/libpdr_testkit-01825383457b430a.rmeta: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

crates/testkit/src/lib.rs:
crates/testkit/src/choices.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
