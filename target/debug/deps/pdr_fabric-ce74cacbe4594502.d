/root/repo/target/debug/deps/pdr_fabric-ce74cacbe4594502.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

/root/repo/target/debug/deps/pdr_fabric-ce74cacbe4594502: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
