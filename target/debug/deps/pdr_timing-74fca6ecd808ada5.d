/root/repo/target/debug/deps/pdr_timing-74fca6ecd808ada5.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/debug/deps/libpdr_timing-74fca6ecd808ada5.rlib: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/debug/deps/libpdr_timing-74fca6ecd808ada5.rmeta: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
