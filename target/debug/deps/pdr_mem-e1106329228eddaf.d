/root/repo/target/debug/deps/pdr_mem-e1106329228eddaf.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/debug/deps/pdr_mem-e1106329228eddaf: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
