/root/repo/target/debug/deps/paper_claims-3eddd826d9feec0e.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-3eddd826d9feec0e.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
