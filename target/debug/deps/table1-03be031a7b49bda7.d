/root/repo/target/debug/deps/table1-03be031a7b49bda7.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-03be031a7b49bda7.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
