/root/repo/target/debug/deps/proptest_system-ccddd4dce6ddec77.d: tests/proptest_system.rs

/root/repo/target/debug/deps/proptest_system-ccddd4dce6ddec77: tests/proptest_system.rs

tests/proptest_system.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
