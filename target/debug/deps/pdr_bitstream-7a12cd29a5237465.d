/root/repo/target/debug/deps/pdr_bitstream-7a12cd29a5237465.d: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs

/root/repo/target/debug/deps/pdr_bitstream-7a12cd29a5237465: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/builder.rs:
crates/bitstream/src/bytes.rs:
crates/bitstream/src/compress.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/packet.rs:
crates/bitstream/src/parser.rs:
