/root/repo/target/debug/deps/pdr_bench-e9d8a0879cadf3c9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/pdr_bench-e9d8a0879cadf3c9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
