/root/repo/target/debug/deps/pdr_bitstream-e13d8e9b90d511de.d: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_bitstream-e13d8e9b90d511de.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs Cargo.toml

crates/bitstream/src/lib.rs:
crates/bitstream/src/builder.rs:
crates/bitstream/src/bytes.rs:
crates/bitstream/src/compress.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/packet.rs:
crates/bitstream/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
