/root/repo/target/debug/deps/ablation_compress-bd797b8aad9ad795.d: crates/bench/benches/ablation_compress.rs

/root/repo/target/debug/deps/ablation_compress-bd797b8aad9ad795: crates/bench/benches/ablation_compress.rs

crates/bench/benches/ablation_compress.rs:
