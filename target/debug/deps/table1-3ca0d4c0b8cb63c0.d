/root/repo/target/debug/deps/table1-3ca0d4c0b8cb63c0.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-3ca0d4c0b8cb63c0: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
