/root/repo/target/debug/deps/pdr_mem-3e2aaf7615c3127b.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/debug/deps/libpdr_mem-3e2aaf7615c3127b.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
