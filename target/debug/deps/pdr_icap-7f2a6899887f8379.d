/root/repo/target/debug/deps/pdr_icap-7f2a6899887f8379.d: crates/icap/src/lib.rs

/root/repo/target/debug/deps/pdr_icap-7f2a6899887f8379: crates/icap/src/lib.rs

crates/icap/src/lib.rs:
