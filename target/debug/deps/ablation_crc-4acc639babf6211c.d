/root/repo/target/debug/deps/ablation_crc-4acc639babf6211c.d: crates/bench/benches/ablation_crc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_crc-4acc639babf6211c.rmeta: crates/bench/benches/ablation_crc.rs Cargo.toml

crates/bench/benches/ablation_crc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
