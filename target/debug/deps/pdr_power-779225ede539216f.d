/root/repo/target/debug/deps/pdr_power-779225ede539216f.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_power-779225ede539216f.rmeta: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
