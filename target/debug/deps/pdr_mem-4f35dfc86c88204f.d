/root/repo/target/debug/deps/pdr_mem-4f35dfc86c88204f.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/debug/deps/libpdr_mem-4f35dfc86c88204f.rlib: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

/root/repo/target/debug/deps/libpdr_mem-4f35dfc86c88204f.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
