/root/repo/target/debug/deps/pdr_bench-37f39710ce209b3b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_bench-37f39710ce209b3b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
