/root/repo/target/debug/deps/pdr_dma-99ec1edfb8b1fe68.d: crates/dma/src/lib.rs

/root/repo/target/debug/deps/pdr_dma-99ec1edfb8b1fe68: crates/dma/src/lib.rs

crates/dma/src/lib.rs:
