/root/repo/target/debug/deps/reconfiguration-92c562582561f44d.d: tests/reconfiguration.rs

/root/repo/target/debug/deps/reconfiguration-92c562582561f44d: tests/reconfiguration.rs

tests/reconfiguration.rs:
