/root/repo/target/debug/deps/table2-194874b706d9a5c0.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-194874b706d9a5c0: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
