/root/repo/target/debug/deps/ablation_guardband-7483db41cfe61e67.d: crates/bench/benches/ablation_guardband.rs Cargo.toml

/root/repo/target/debug/deps/libablation_guardband-7483db41cfe61e67.rmeta: crates/bench/benches/ablation_guardband.rs Cargo.toml

crates/bench/benches/ablation_guardband.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
