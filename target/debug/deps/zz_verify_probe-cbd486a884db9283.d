/root/repo/target/debug/deps/zz_verify_probe-cbd486a884db9283.d: tests/zz_verify_probe.rs

/root/repo/target/debug/deps/zz_verify_probe-cbd486a884db9283: tests/zz_verify_probe.rs

tests/zz_verify_probe.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
