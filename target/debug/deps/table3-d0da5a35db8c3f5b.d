/root/repo/target/debug/deps/table3-d0da5a35db8c3f5b.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-d0da5a35db8c3f5b: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
