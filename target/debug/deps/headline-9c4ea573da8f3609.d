/root/repo/target/debug/deps/headline-9c4ea573da8f3609.d: crates/bench/benches/headline.rs

/root/repo/target/debug/deps/headline-9c4ea573da8f3609: crates/bench/benches/headline.rs

crates/bench/benches/headline.rs:
