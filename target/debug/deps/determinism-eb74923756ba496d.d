/root/repo/target/debug/deps/determinism-eb74923756ba496d.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-eb74923756ba496d: tests/determinism.rs

tests/determinism.rs:
