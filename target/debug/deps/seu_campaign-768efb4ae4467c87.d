/root/repo/target/debug/deps/seu_campaign-768efb4ae4467c87.d: crates/bench/benches/seu_campaign.rs

/root/repo/target/debug/deps/seu_campaign-768efb4ae4467c87: crates/bench/benches/seu_campaign.rs

crates/bench/benches/seu_campaign.rs:
