/root/repo/target/debug/deps/proptest_kernel-2b1e218a284144f0.d: tests/proptest_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_kernel-2b1e218a284144f0.rmeta: tests/proptest_kernel.rs Cargo.toml

tests/proptest_kernel.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
