/root/repo/target/debug/deps/pdr_lab-9e957fa3e00bf231.d: src/lib.rs

/root/repo/target/debug/deps/pdr_lab-9e957fa3e00bf231: src/lib.rs

src/lib.rs:
