/root/repo/target/debug/deps/pdr_lab-e7340b150f7735b4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_lab-e7340b150f7735b4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
