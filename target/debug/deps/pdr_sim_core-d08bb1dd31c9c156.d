/root/repo/target/debug/deps/pdr_sim_core-d08bb1dd31c9c156.d: crates/sim-core/src/lib.rs crates/sim-core/src/blocks.rs crates/sim-core/src/clock.rs crates/sim-core/src/component.rs crates/sim-core/src/engine.rs crates/sim-core/src/fifo.rs crates/sim-core/src/irq.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs crates/sim-core/src/vcd.rs

/root/repo/target/debug/deps/libpdr_sim_core-d08bb1dd31c9c156.rlib: crates/sim-core/src/lib.rs crates/sim-core/src/blocks.rs crates/sim-core/src/clock.rs crates/sim-core/src/component.rs crates/sim-core/src/engine.rs crates/sim-core/src/fifo.rs crates/sim-core/src/irq.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs crates/sim-core/src/vcd.rs

/root/repo/target/debug/deps/libpdr_sim_core-d08bb1dd31c9c156.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/blocks.rs crates/sim-core/src/clock.rs crates/sim-core/src/component.rs crates/sim-core/src/engine.rs crates/sim-core/src/fifo.rs crates/sim-core/src/irq.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs crates/sim-core/src/vcd.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/blocks.rs:
crates/sim-core/src/clock.rs:
crates/sim-core/src/component.rs:
crates/sim-core/src/engine.rs:
crates/sim-core/src/fifo.rs:
crates/sim-core/src/irq.rs:
crates/sim-core/src/json.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/stats.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/trace.rs:
crates/sim-core/src/vcd.rs:
