/root/repo/target/debug/deps/pdrlab-59c07e483f2bf183.d: src/bin/pdrlab.rs Cargo.toml

/root/repo/target/debug/deps/libpdrlab-59c07e483f2bf183.rmeta: src/bin/pdrlab.rs Cargo.toml

src/bin/pdrlab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
