/root/repo/target/debug/deps/full_scale-0488ae71e0173b52.d: tests/full_scale.rs

/root/repo/target/debug/deps/full_scale-0488ae71e0173b52: tests/full_scale.rs

tests/full_scale.rs:
