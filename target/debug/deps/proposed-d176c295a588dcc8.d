/root/repo/target/debug/deps/proposed-d176c295a588dcc8.d: crates/bench/benches/proposed.rs

/root/repo/target/debug/deps/proposed-d176c295a588dcc8: crates/bench/benches/proposed.rs

crates/bench/benches/proposed.rs:
