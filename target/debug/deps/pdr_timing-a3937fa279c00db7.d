/root/repo/target/debug/deps/pdr_timing-a3937fa279c00db7.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/debug/deps/libpdr_timing-a3937fa279c00db7.rmeta: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
