/root/repo/target/debug/deps/pdr_power-b9d748f593539691.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/debug/deps/pdr_power-b9d748f593539691: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
