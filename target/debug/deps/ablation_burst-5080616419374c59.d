/root/repo/target/debug/deps/ablation_burst-5080616419374c59.d: crates/bench/benches/ablation_burst.rs Cargo.toml

/root/repo/target/debug/deps/libablation_burst-5080616419374c59.rmeta: crates/bench/benches/ablation_burst.rs Cargo.toml

crates/bench/benches/ablation_burst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
