/root/repo/target/debug/deps/pdr_timing-f9426b61493b6d2f.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_timing-f9426b61493b6d2f.rmeta: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
