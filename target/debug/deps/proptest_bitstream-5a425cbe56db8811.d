/root/repo/target/debug/deps/proptest_bitstream-5a425cbe56db8811.d: tests/proptest_bitstream.rs

/root/repo/target/debug/deps/proptest_bitstream-5a425cbe56db8811: tests/proptest_bitstream.rs

tests/proptest_bitstream.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
