/root/repo/target/debug/deps/pdr_power-129c6c2253a10344.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libpdr_power-129c6c2253a10344.rmeta: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
