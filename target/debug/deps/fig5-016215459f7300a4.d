/root/repo/target/debug/deps/fig5-016215459f7300a4.d: crates/bench/benches/fig5.rs

/root/repo/target/debug/deps/fig5-016215459f7300a4: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
