/root/repo/target/debug/deps/seu_campaign-7515fcbbd981758f.d: crates/bench/benches/seu_campaign.rs Cargo.toml

/root/repo/target/debug/deps/libseu_campaign-7515fcbbd981758f.rmeta: crates/bench/benches/seu_campaign.rs Cargo.toml

crates/bench/benches/seu_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
