/root/repo/target/debug/deps/pdr_icap-3d7e0b8c76773b21.d: crates/icap/src/lib.rs

/root/repo/target/debug/deps/libpdr_icap-3d7e0b8c76773b21.rlib: crates/icap/src/lib.rs

/root/repo/target/debug/deps/libpdr_icap-3d7e0b8c76773b21.rmeta: crates/icap/src/lib.rs

crates/icap/src/lib.rs:
