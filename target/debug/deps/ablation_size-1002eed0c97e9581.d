/root/repo/target/debug/deps/ablation_size-1002eed0c97e9581.d: crates/bench/benches/ablation_size.rs

/root/repo/target/debug/deps/ablation_size-1002eed0c97e9581: crates/bench/benches/ablation_size.rs

crates/bench/benches/ablation_size.rs:
