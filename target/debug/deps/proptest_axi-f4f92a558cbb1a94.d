/root/repo/target/debug/deps/proptest_axi-f4f92a558cbb1a94.d: tests/proptest_axi.rs

/root/repo/target/debug/deps/proptest_axi-f4f92a558cbb1a94: tests/proptest_axi.rs

tests/proptest_axi.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
