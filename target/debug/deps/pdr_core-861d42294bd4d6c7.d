/root/repo/target/debug/deps/pdr_core-861d42294bd4d6c7.d: crates/pdr/src/lib.rs crates/pdr/src/baselines.rs crates/pdr/src/campaign.rs crates/pdr/src/clockwizard.rs crates/pdr/src/crc_readback.rs crates/pdr/src/experiments.rs crates/pdr/src/frontpanel.rs crates/pdr/src/governor.rs crates/pdr/src/proposed.rs crates/pdr/src/report.rs crates/pdr/src/sdcard.rs crates/pdr/src/system.rs

/root/repo/target/debug/deps/libpdr_core-861d42294bd4d6c7.rlib: crates/pdr/src/lib.rs crates/pdr/src/baselines.rs crates/pdr/src/campaign.rs crates/pdr/src/clockwizard.rs crates/pdr/src/crc_readback.rs crates/pdr/src/experiments.rs crates/pdr/src/frontpanel.rs crates/pdr/src/governor.rs crates/pdr/src/proposed.rs crates/pdr/src/report.rs crates/pdr/src/sdcard.rs crates/pdr/src/system.rs

/root/repo/target/debug/deps/libpdr_core-861d42294bd4d6c7.rmeta: crates/pdr/src/lib.rs crates/pdr/src/baselines.rs crates/pdr/src/campaign.rs crates/pdr/src/clockwizard.rs crates/pdr/src/crc_readback.rs crates/pdr/src/experiments.rs crates/pdr/src/frontpanel.rs crates/pdr/src/governor.rs crates/pdr/src/proposed.rs crates/pdr/src/report.rs crates/pdr/src/sdcard.rs crates/pdr/src/system.rs

crates/pdr/src/lib.rs:
crates/pdr/src/baselines.rs:
crates/pdr/src/campaign.rs:
crates/pdr/src/clockwizard.rs:
crates/pdr/src/crc_readback.rs:
crates/pdr/src/experiments.rs:
crates/pdr/src/frontpanel.rs:
crates/pdr/src/governor.rs:
crates/pdr/src/proposed.rs:
crates/pdr/src/report.rs:
crates/pdr/src/sdcard.rs:
crates/pdr/src/system.rs:
