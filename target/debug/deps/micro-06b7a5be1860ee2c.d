/root/repo/target/debug/deps/micro-06b7a5be1860ee2c.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-06b7a5be1860ee2c.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=micro
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
