/root/repo/target/debug/deps/proptest_axi-70d66e7ca69918c7.d: tests/proptest_axi.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_axi-70d66e7ca69918c7.rmeta: tests/proptest_axi.rs Cargo.toml

tests/proptest_axi.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
