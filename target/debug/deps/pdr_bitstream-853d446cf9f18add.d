/root/repo/target/debug/deps/pdr_bitstream-853d446cf9f18add.d: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_bitstream-853d446cf9f18add.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/builder.rs crates/bitstream/src/bytes.rs crates/bitstream/src/compress.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/packet.rs crates/bitstream/src/parser.rs Cargo.toml

crates/bitstream/src/lib.rs:
crates/bitstream/src/builder.rs:
crates/bitstream/src/bytes.rs:
crates/bitstream/src/compress.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/packet.rs:
crates/bitstream/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
