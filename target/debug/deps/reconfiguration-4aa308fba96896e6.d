/root/repo/target/debug/deps/reconfiguration-4aa308fba96896e6.d: tests/reconfiguration.rs Cargo.toml

/root/repo/target/debug/deps/libreconfiguration-4aa308fba96896e6.rmeta: tests/reconfiguration.rs Cargo.toml

tests/reconfiguration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
