/root/repo/target/debug/deps/proptest_system-ca7dcdb432abfc5c.d: tests/proptest_system.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_system-ca7dcdb432abfc5c.rmeta: tests/proptest_system.rs Cargo.toml

tests/proptest_system.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
