/root/repo/target/debug/deps/proptest_failure_model-6368d191b55bdc96.d: tests/proptest_failure_model.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_failure_model-6368d191b55bdc96.rmeta: tests/proptest_failure_model.rs Cargo.toml

tests/proptest_failure_model.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
