/root/repo/target/debug/deps/proptest_kernel-86fe06d518b8ee8a.d: tests/proptest_kernel.rs

/root/repo/target/debug/deps/proptest_kernel-86fe06d518b8ee8a: tests/proptest_kernel.rs

tests/proptest_kernel.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
