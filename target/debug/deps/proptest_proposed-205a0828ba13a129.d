/root/repo/target/debug/deps/proptest_proposed-205a0828ba13a129.d: tests/proptest_proposed.rs

/root/repo/target/debug/deps/proptest_proposed-205a0828ba13a129: tests/proptest_proposed.rs

tests/proptest_proposed.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
