/root/repo/target/debug/deps/table3-625bb095cdb25fe1.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-625bb095cdb25fe1.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
