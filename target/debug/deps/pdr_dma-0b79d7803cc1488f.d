/root/repo/target/debug/deps/pdr_dma-0b79d7803cc1488f.d: crates/dma/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_dma-0b79d7803cc1488f.rmeta: crates/dma/src/lib.rs Cargo.toml

crates/dma/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
