/root/repo/target/debug/deps/pdr_fabric-90741488c3112f44.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_fabric-90741488c3112f44.rmeta: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
