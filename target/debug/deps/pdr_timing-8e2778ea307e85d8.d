/root/repo/target/debug/deps/pdr_timing-8e2778ea307e85d8.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_timing-8e2778ea307e85d8.rmeta: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
