/root/repo/target/debug/deps/fig6-c725b1adffb43732.d: crates/bench/benches/fig6.rs

/root/repo/target/debug/deps/fig6-c725b1adffb43732: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
