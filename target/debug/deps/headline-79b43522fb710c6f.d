/root/repo/target/debug/deps/headline-79b43522fb710c6f.d: crates/bench/benches/headline.rs Cargo.toml

/root/repo/target/debug/deps/libheadline-79b43522fb710c6f.rmeta: crates/bench/benches/headline.rs Cargo.toml

crates/bench/benches/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
