/root/repo/target/debug/deps/pdr_bench-6a04341d2f02662a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_bench-6a04341d2f02662a.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
