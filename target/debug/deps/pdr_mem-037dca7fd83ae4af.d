/root/repo/target/debug/deps/pdr_mem-037dca7fd83ae4af.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_mem-037dca7fd83ae4af.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/dram.rs crates/mem/src/sram.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/dram.rs:
crates/mem/src/sram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
