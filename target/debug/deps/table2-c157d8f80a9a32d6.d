/root/repo/target/debug/deps/table2-c157d8f80a9a32d6.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-c157d8f80a9a32d6.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
