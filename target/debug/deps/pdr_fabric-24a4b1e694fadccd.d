/root/repo/target/debug/deps/pdr_fabric-24a4b1e694fadccd.d: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_fabric-24a4b1e694fadccd.rmeta: crates/fabric/src/lib.rs crates/fabric/src/asp.rs crates/fabric/src/geometry.rs crates/fabric/src/memory.rs crates/fabric/src/partition.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/asp.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/memory.rs:
crates/fabric/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
