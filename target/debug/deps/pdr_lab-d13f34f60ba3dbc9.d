/root/repo/target/debug/deps/pdr_lab-d13f34f60ba3dbc9.d: src/lib.rs

/root/repo/target/debug/deps/libpdr_lab-d13f34f60ba3dbc9.rmeta: src/lib.rs

src/lib.rs:
