/root/repo/target/debug/deps/pdr_timing-5e42f26b90ff9f25.d: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

/root/repo/target/debug/deps/pdr_timing-5e42f26b90ff9f25: crates/timing/src/lib.rs crates/timing/src/path.rs crates/timing/src/thermal.rs

crates/timing/src/lib.rs:
crates/timing/src/path.rs:
crates/timing/src/thermal.rs:
