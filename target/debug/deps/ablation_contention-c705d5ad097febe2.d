/root/repo/target/debug/deps/ablation_contention-c705d5ad097febe2.d: crates/bench/benches/ablation_contention.rs Cargo.toml

/root/repo/target/debug/deps/libablation_contention-c705d5ad097febe2.rmeta: crates/bench/benches/ablation_contention.rs Cargo.toml

crates/bench/benches/ablation_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
