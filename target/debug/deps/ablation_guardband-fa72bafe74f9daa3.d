/root/repo/target/debug/deps/ablation_guardband-fa72bafe74f9daa3.d: crates/bench/benches/ablation_guardband.rs

/root/repo/target/debug/deps/ablation_guardband-fa72bafe74f9daa3: crates/bench/benches/ablation_guardband.rs

crates/bench/benches/ablation_guardband.rs:
