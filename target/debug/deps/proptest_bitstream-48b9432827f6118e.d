/root/repo/target/debug/deps/proptest_bitstream-48b9432827f6118e.d: tests/proptest_bitstream.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_bitstream-48b9432827f6118e.rmeta: tests/proptest_bitstream.rs Cargo.toml

tests/proptest_bitstream.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
