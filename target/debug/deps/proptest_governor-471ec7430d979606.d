/root/repo/target/debug/deps/proptest_governor-471ec7430d979606.d: tests/proptest_governor.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_governor-471ec7430d979606.rmeta: tests/proptest_governor.rs Cargo.toml

tests/proptest_governor.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
