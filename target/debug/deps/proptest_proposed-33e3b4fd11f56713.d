/root/repo/target/debug/deps/proptest_proposed-33e3b4fd11f56713.d: tests/proptest_proposed.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_proposed-33e3b4fd11f56713.rmeta: tests/proptest_proposed.rs Cargo.toml

tests/proptest_proposed.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
