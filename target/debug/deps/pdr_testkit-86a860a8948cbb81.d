/root/repo/target/debug/deps/pdr_testkit-86a860a8948cbb81.d: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_testkit-86a860a8948cbb81.rmeta: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/choices.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
