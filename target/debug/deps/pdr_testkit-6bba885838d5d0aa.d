/root/repo/target/debug/deps/pdr_testkit-6bba885838d5d0aa.d: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

/root/repo/target/debug/deps/pdr_testkit-6bba885838d5d0aa: crates/testkit/src/lib.rs crates/testkit/src/choices.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs

crates/testkit/src/lib.rs:
crates/testkit/src/choices.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
