/root/repo/target/debug/deps/pdr_lab-c0dfff0e197848a0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdr_lab-c0dfff0e197848a0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
