/root/repo/target/debug/deps/proposed-06833ace7e2aa50a.d: crates/bench/benches/proposed.rs Cargo.toml

/root/repo/target/debug/deps/libproposed-06833ace7e2aa50a.rmeta: crates/bench/benches/proposed.rs Cargo.toml

crates/bench/benches/proposed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
