/root/repo/target/debug/deps/pdr_axi-e960c3921d10ea81.d: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs

/root/repo/target/debug/deps/libpdr_axi-e960c3921d10ea81.rmeta: crates/axi/src/lib.rs crates/axi/src/cdc.rs crates/axi/src/interconnect.rs crates/axi/src/lite.rs crates/axi/src/mm.rs crates/axi/src/stream.rs crates/axi/src/width.rs

crates/axi/src/lib.rs:
crates/axi/src/cdc.rs:
crates/axi/src/interconnect.rs:
crates/axi/src/lite.rs:
crates/axi/src/mm.rs:
crates/axi/src/stream.rs:
crates/axi/src/width.rs:
