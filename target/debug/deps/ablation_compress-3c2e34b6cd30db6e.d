/root/repo/target/debug/deps/ablation_compress-3c2e34b6cd30db6e.d: crates/bench/benches/ablation_compress.rs Cargo.toml

/root/repo/target/debug/deps/libablation_compress-3c2e34b6cd30db6e.rmeta: crates/bench/benches/ablation_compress.rs Cargo.toml

crates/bench/benches/ablation_compress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
