/root/repo/target/debug/deps/pdr_power-ec9f46da21c39621.d: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libpdr_power-ec9f46da21c39621.rlib: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libpdr_power-ec9f46da21c39621.rmeta: crates/power/src/lib.rs crates/power/src/efficiency.rs crates/power/src/meter.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/efficiency.rs:
crates/power/src/meter.rs:
crates/power/src/model.rs:
