/root/repo/target/debug/deps/paper_claims-844e65ff4e09b6d4.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-844e65ff4e09b6d4: tests/paper_claims.rs

tests/paper_claims.rs:
