/root/repo/target/debug/examples/proposed_system-eb4b8a0505ca0fb1.d: examples/proposed_system.rs

/root/repo/target/debug/examples/proposed_system-eb4b8a0505ca0fb1: examples/proposed_system.rs

examples/proposed_system.rs:
