/root/repo/target/debug/examples/power_efficiency-cdc004c485666ec3.d: examples/power_efficiency.rs Cargo.toml

/root/repo/target/debug/examples/libpower_efficiency-cdc004c485666ec3.rmeta: examples/power_efficiency.rs Cargo.toml

examples/power_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
