/root/repo/target/debug/examples/quickstart-23706793a4ab0890.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-23706793a4ab0890.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
