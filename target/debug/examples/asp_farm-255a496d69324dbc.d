/root/repo/target/debug/examples/asp_farm-255a496d69324dbc.d: examples/asp_farm.rs

/root/repo/target/debug/examples/asp_farm-255a496d69324dbc: examples/asp_farm.rs

examples/asp_farm.rs:
