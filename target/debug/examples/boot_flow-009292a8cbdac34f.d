/root/repo/target/debug/examples/boot_flow-009292a8cbdac34f.d: examples/boot_flow.rs Cargo.toml

/root/repo/target/debug/examples/libboot_flow-009292a8cbdac34f.rmeta: examples/boot_flow.rs Cargo.toml

examples/boot_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
