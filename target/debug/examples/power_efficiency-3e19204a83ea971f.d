/root/repo/target/debug/examples/power_efficiency-3e19204a83ea971f.d: examples/power_efficiency.rs

/root/repo/target/debug/examples/power_efficiency-3e19204a83ea971f: examples/power_efficiency.rs

examples/power_efficiency.rs:
