/root/repo/target/debug/examples/frequency_sweep-8a82d08a175b9602.d: examples/frequency_sweep.rs

/root/repo/target/debug/examples/frequency_sweep-8a82d08a175b9602: examples/frequency_sweep.rs

examples/frequency_sweep.rs:
