/root/repo/target/debug/examples/seu_monitor-f14aeff9a4aacd07.d: examples/seu_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libseu_monitor-f14aeff9a4aacd07.rmeta: examples/seu_monitor.rs Cargo.toml

examples/seu_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
