/root/repo/target/debug/examples/seu_monitor-387863a5d6f75198.d: examples/seu_monitor.rs

/root/repo/target/debug/examples/seu_monitor-387863a5d6f75198: examples/seu_monitor.rs

examples/seu_monitor.rs:
