/root/repo/target/debug/examples/frequency_sweep-4400e9343e713db0.d: examples/frequency_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libfrequency_sweep-4400e9343e713db0.rmeta: examples/frequency_sweep.rs Cargo.toml

examples/frequency_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
