/root/repo/target/debug/examples/proposed_system-34d3243958eb8d85.d: examples/proposed_system.rs Cargo.toml

/root/repo/target/debug/examples/libproposed_system-34d3243958eb8d85.rmeta: examples/proposed_system.rs Cargo.toml

examples/proposed_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
