/root/repo/target/debug/examples/temperature_stress-93556f936741e530.d: examples/temperature_stress.rs Cargo.toml

/root/repo/target/debug/examples/libtemperature_stress-93556f936741e530.rmeta: examples/temperature_stress.rs Cargo.toml

examples/temperature_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
