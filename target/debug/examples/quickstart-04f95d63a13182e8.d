/root/repo/target/debug/examples/quickstart-04f95d63a13182e8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-04f95d63a13182e8: examples/quickstart.rs

examples/quickstart.rs:
