/root/repo/target/debug/examples/temperature_stress-ae17da83af4666a9.d: examples/temperature_stress.rs

/root/repo/target/debug/examples/temperature_stress-ae17da83af4666a9: examples/temperature_stress.rs

examples/temperature_stress.rs:
