/root/repo/target/debug/examples/auto_tune-bb98f7337dd48ca7.d: examples/auto_tune.rs

/root/repo/target/debug/examples/auto_tune-bb98f7337dd48ca7: examples/auto_tune.rs

examples/auto_tune.rs:
