/root/repo/target/debug/examples/auto_tune-4789dfd96ad3b46c.d: examples/auto_tune.rs Cargo.toml

/root/repo/target/debug/examples/libauto_tune-4789dfd96ad3b46c.rmeta: examples/auto_tune.rs Cargo.toml

examples/auto_tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
