/root/repo/target/debug/examples/boot_flow-35c31a66307f9452.d: examples/boot_flow.rs

/root/repo/target/debug/examples/boot_flow-35c31a66307f9452: examples/boot_flow.rs

examples/boot_flow.rs:
