/root/repo/target/debug/examples/asp_farm-eb235d2c29238d6d.d: examples/asp_farm.rs Cargo.toml

/root/repo/target/debug/examples/libasp_farm-eb235d2c29238d6d.rmeta: examples/asp_farm.rs Cargo.toml

examples/asp_farm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
