(function() {
    const implementors = Object.fromEntries([["pdr_sim_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"pdr_sim_core/time/struct.SimDuration.html\" title=\"struct pdr_sim_core::time::SimDuration\">SimDuration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"pdr_sim_core/time/struct.SimTime.html\" title=\"struct pdr_sim_core::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[582]}