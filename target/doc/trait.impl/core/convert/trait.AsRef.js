(function() {
    const implementors = Object.fromEntries([["pdr_bitstream",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;[<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u8.html\">u8</a>]&gt; for <a class=\"struct\" href=\"pdr_bitstream/bytes/struct.Bytes.html\" title=\"struct pdr_bitstream::bytes::Bytes\">Bytes</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[397]}