(function() {
    const implementors = Object.fromEntries([["pdr_bitstream",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"pdr_bitstream/compress/enum.DecompressError.html\" title=\"enum pdr_bitstream::compress::DecompressError\">DecompressError</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"pdr_bitstream/parser/enum.ParseError.html\" title=\"enum pdr_bitstream::parser::ParseError\">ParseError</a>",0]]],["pdr_sim_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"pdr_sim_core/json/struct.JsonError.html\" title=\"struct pdr_sim_core::json::JsonError\">JsonError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[602,298]}