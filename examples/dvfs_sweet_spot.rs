//! The closed-loop DVFS sweet spot, demonstrated end to end: three replicas
//! start from different corners of the (V, T) plane — undervolted and cool,
//! nominal, overvolted and hot — and every one converges onto the paper's
//! own operating point (nominal supply, 200 MHz, ≈600 MB/J) with the
//! thermal RC loop running underneath.
//!
//! The replicas are fanned across `PDR_THREADS` workers (each builds its
//! own system inside its thread — `ZynqPdrSystem` is `!Send`) and the
//! kernel strategy comes from `PDR_ENGINE`, but neither knob is observable
//! in the output: the report JSON and the concatenated thermal trajectory
//! tape are byte-identical for any thread count under either kernel. The
//! CI `dvfs` smoke runs the {tick, event} × {1, 4} matrix and `cmp`s
//! `target/experiments/dvfs_sweet_spot.json` and
//! `target/experiments/dvfs_sweet_spot_thermal.jsonl` against one
//! reference (see docs/DVFS.md).
//!
//! ```text
//! cargo run --release --example dvfs_sweet_spot
//! ```

use pdr_lab::pdr::{
    DvfsConfig, DvfsGovernor, ParallelExecutor, SystemConfig, ThermalLoopConfig, TraceLevel,
    ZynqPdrSystem,
};
use pdr_lab::sim::json::{Json, ToJson};
use pdr_lab::sim::EngineStrategy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Initial (supply, die temperature) corners; every replica must end on the
/// same sweet spot regardless of where it starts.
const STARTS: [(u32, f64); 3] = [(950, 25.0), (1000, 40.0), (1050, 60.0)];

struct Replica {
    vdd0_mv: u32,
    temp0_c: f64,
    pick: Json,
    vdd_mv: u32,
    freq_mhz: u64,
    ppw_mb_j: f64,
    trajectory: String,
}

/// One replica: build a looped system at the starting corner, let the DVFS
/// governor converge, and keep the pick plus the thermal trajectory tape.
fn converge_from(strategy: EngineStrategy, vdd0_mv: u32, temp0_c: f64) -> Replica {
    let mut config = SystemConfig::fast_test();
    config.strategy = strategy;
    config.thermal_loop = Some(ThermalLoopConfig::default());
    let mut sys = ZynqPdrSystem::new(config);
    sys.set_trace_level(TraceLevel::Counters);
    sys.set_vdd_mv(vdd0_mv);
    sys.set_die_temp_c(temp0_c);

    let mut dvfs = DvfsGovernor::new(DvfsConfig::default());
    let pick = dvfs.converge(&mut sys, 0);
    Replica {
        vdd0_mv,
        temp0_c,
        vdd_mv: pick.vdd_mv,
        freq_mhz: pick.point.freq_mhz,
        ppw_mb_j: pick.point.ppw_mb_j.expect("the sweet spot is usable"),
        pick: pick.to_json(),
        trajectory: sys.thermal_trajectory_jsonl(),
    }
}

fn main() {
    let strategy = EngineStrategy::from_env();
    let threads = ParallelExecutor::from_env().threads().min(STARTS.len());

    // Deterministic fan-out: workers pull indices from a shared cursor and
    // commit into an index-ordered table, so completion order is racy but
    // the merged output never is (the same contract as the campaign
    // executor's Monte Carlo pool).
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Replica>>> = Mutex::new((0..STARTS.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(vdd0, temp0)) = STARTS.get(i) else {
                    break;
                };
                let replica = converge_from(strategy, vdd0, temp0);
                slots.lock().expect("no poisoned workers")[i] = Some(replica);
            });
        }
    });
    let replicas: Vec<Replica> = slots
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|r| r.expect("every replica committed"))
        .collect();

    println!("== closed-loop DVFS: convergence from three (V, T) corners ==\n");
    println!(
        "{:>9} {:>8} | {:>8} {:>8} {:>11}",
        "start mV", "start C", "pick mV", "pick MHz", "PpW [MB/J]"
    );
    for r in &replicas {
        println!(
            "{:>9} {:>8.0} | {:>8} {:>8} {:>11.0}",
            r.vdd0_mv, r.temp0_c, r.vdd_mv, r.freq_mhz, r.ppw_mb_j
        );
        assert_eq!(
            (r.vdd_mv, r.freq_mhz),
            (1000, 200),
            "every corner must find the paper's knee"
        );
    }
    println!("\nall corners agree: nominal supply, 200 MHz — the paper's Table II knee.");

    let report = Json::Obj(vec![
        ("example".into(), Json::Str("dvfs_sweet_spot".into())),
        (
            "replicas".into(),
            Json::Arr(
                replicas
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("start_vdd_mv".into(), Json::U64(u64::from(r.vdd0_mv))),
                            (
                                "start_temp_mc".into(),
                                Json::I64((r.temp0_c * 1000.0) as i64),
                            ),
                            ("pick".into(), r.pick.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    std::fs::write(dir.join("dvfs_sweet_spot.json"), report.render() + "\n").expect("write report");
    let tape: String = replicas.iter().map(|r| r.trajectory.as_str()).collect();
    std::fs::write(dir.join("dvfs_sweet_spot_thermal.jsonl"), tape).expect("write trajectory");
    println!("wrote target/experiments/dvfs_sweet_spot.json and dvfs_sweet_spot_thermal.jsonl");
}
