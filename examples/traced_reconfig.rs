//! Deterministic event tracing end to end: runs a reconfiguration workload
//! on both drivers with a full tape, prints the aggregate [`TraceReport`]s,
//! and writes the JSONL tapes under `target/experiments/`. Two invocations
//! produce byte-identical files — the CI smoke `cmp`s them.
//!
//! * `traced_reconfig.jsonl` — the measured Zynq system: SD boot, healthy
//!   and failing transfers, an injected SEU caught by the background CRC
//!   monitor, and the scrub that repairs it;
//! * `traced_proposed.jsonl` — the proposed architecture: a compressed
//!   staged transfer with per-block codec progress.
//!
//! ```text
//! cargo run --release --example traced_reconfig
//! ```
//!
//! [`TraceReport`]: pdr_lab::pdr::TraceReport

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::proposed::{ProposedConfig, ProposedSystem};
use pdr_lab::pdr::{
    RecoveryConfig, RecoveryManager, SdCard, SystemConfig, TraceLevel, ZynqPdrSystem,
};
use pdr_lab::sim::json::ToJson;
use pdr_lab::sim::{EngineStrategy, Frequency};

fn main() {
    // -- measured system: boot, transfers, SEU, scrub ----------------------
    // `PDR_ENGINE=tick|event` selects the kernel; the CI kernel smoke runs
    // this example under both and `cmp`s the tapes (see docs/KERNEL.md).
    let strategy = EngineStrategy::from_env();
    let mut config = SystemConfig::fast_test();
    config.strategy = strategy;
    let mut sys = ZynqPdrSystem::new(config);
    sys.set_trace_level(TraceLevel::Full);

    let bs0 = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
    let bs1 = sys.make_asp_bitstream(1, AspKind::AesMix, 2);
    let mut card = SdCard::class10_compressed();
    card.store("rp0_fir.bit", bs0.clone());
    card.store("rp1_aes.bit", bs1.clone());
    sys.boot_from_sd(&card);

    assert!(sys.reconfigure(0, &bs0, Frequency::from_mhz(200)).crc_ok());
    assert!(sys.reconfigure(1, &bs1, Frequency::from_mhz(200)).crc_ok());
    // Past the timing envelope: the read-back catches the corruption.
    assert!(!sys.reconfigure(0, &bs0, Frequency::from_mhz(360)).crc_ok());
    assert!(sys.reconfigure(0, &bs0, Frequency::from_mhz(200)).crc_ok());

    let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
    mgr.register_golden(0, bs0);
    sys.start_background_monitor(&[0, 1]);
    let scan = sys.monitor_scan_period();
    sys.inject_seu(0, 1, 10, 3);
    let latency = sys
        .run_monitor_until_alarm(scan * 3)
        .expect("the monitor must catch the SEU");
    mgr.record_detection(latency);
    assert!(mgr.on_crc_alarm(&mut sys, 0).succeeded());

    // -- proposed system: compressed staged transfer -----------------------
    let mut prop = ProposedSystem::new(ProposedConfig {
        floorplan: SystemConfig::fast_test().floorplan,
        compress: true,
        strategy,
        ..ProposedConfig::default()
    });
    prop.set_trace_level(TraceLevel::Full);
    let bs = prop.make_asp_bitstream(0, AspKind::MatMul8, 4);
    let report = prop.reconfigure(&bs);
    assert!(report.crc_ok, "staged transfer must verify");

    // -- tapes + reports ---------------------------------------------------
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    for (name, tape) in [
        ("traced_reconfig.jsonl", sys.tracer().export_jsonl()),
        ("traced_proposed.jsonl", prop.export_trace_jsonl()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, &tape).expect("write tape");
        println!("{} events -> {}", tape.lines().count(), path.display());
    }

    let zynq = sys.tracer_mut().report();
    assert_eq!(
        zynq.counters.reconfig_started,
        zynq.counters.reconfig_ok + zynq.counters.reconfig_failed,
        "every started reconfiguration completes on the tape"
    );
    println!("\nzynq trace report:\n{}", zynq.to_json_string());
    println!(
        "\nproposed trace report:\n{}",
        prop.trace_report().to_json_string()
    );
}
