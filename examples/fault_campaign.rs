//! Mixed-fault injection campaign against the self-healing recovery stack.
//!
//! Generates a deterministic [`FaultPlan`] — SEU bit-flips, timing-violation
//! bursts, DMA stalls, dropped completion interrupts — runs it against a
//! monitored two-partition system, and prints the availability report:
//! detection and recovery rates, MTTR, retries per success, scrubs. The
//! full telemetry lands in `target/experiments/fault_campaign.json` for the
//! CI smoke check and for byte-for-byte replay comparison.
//!
//! ```text
//! cargo run --release --example fault_campaign -- [seed] [flags]
//!
//!   --duration-ms N        scale the campaign to N ms of scheduled faults
//!   --checkpoint-every N   write an atomic checkpoint after every N events
//!   --checkpoint-file P    checkpoint path (default target/experiments/
//!                          fault_campaign.ckpt)
//!   --resume               resume from the checkpoint file instead of
//!                          starting over; the final report is byte-identical
//!                          to an uninterrupted run (CI kills this example
//!                          mid-soak and checks exactly that)
//!   --replicas N           Monte Carlo mode: warm one run to a quarter of
//!                          its plan, checkpoint, fork N re-seeded replicas,
//!                          and print the merged availability table
//!                          (mean, p50/p99, 95% CI)
//!   --threads N            fan the replicas across N worker threads
//!                          (default: PDR_THREADS, else the machine's
//!                          parallelism); the merged report is byte-identical
//!                          for every N — CI compares the fleet JSON across
//!                          a thread matrix to prove it
//!   --trace-full           full event tape (written next to the report)
//!   --bisect-demo          plant a divergence and pin it by checkpoint
//!                          bisection in ≤ log2(n)+1 partial replays
//! ```
//!
//! [`FaultPlan`]: pdr_lab::pdr::FaultPlan

use std::path::{Path, PathBuf};

use pdr_lab::pdr::{
    bisect_plans, snapshot, CampaignRun, FaultCampaign, FaultCampaignResult, FaultKind, FaultPlan,
    ParallelExecutor, TraceLevel,
};
use pdr_lab::sim::json::ToJson;
use pdr_lab::sim::{EngineStrategy, SimDuration};

/// The campaign system, on whichever engine `PDR_ENGINE` selects (the
/// event-skipping kernel by default) — the CI crash-resume smoke runs the
/// whole checkpoint/restore cycle under both.
fn system_config() -> pdr_lab::pdr::SystemConfig {
    let mut cfg = FaultCampaign::fast_system();
    cfg.strategy = EngineStrategy::from_env();
    cfg
}

struct Args {
    campaign: FaultCampaign,
    checkpoint_every: Option<usize>,
    checkpoint_file: PathBuf,
    resume: bool,
    replicas: Option<usize>,
    threads: Option<usize>,
    trace_full: bool,
    bisect_demo: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        campaign: FaultCampaign::default(),
        checkpoint_every: None,
        checkpoint_file: PathBuf::from("target/experiments/fault_campaign.ckpt"),
        resume: false,
        replicas: None,
        threads: None,
        trace_full: false,
        bisect_demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms").parse().expect("--duration-ms");
                args.campaign.plan.duration = SimDuration::from_millis(ms);
            }
            "--checkpoint-every" => {
                let n: usize = value("--checkpoint-every")
                    .parse()
                    .expect("--checkpoint-every");
                args.checkpoint_every = Some(n.max(1));
            }
            "--checkpoint-file" => args.checkpoint_file = PathBuf::from(value("--checkpoint-file")),
            "--resume" => args.resume = true,
            "--replicas" => {
                args.replicas = Some(value("--replicas").parse().expect("--replicas"));
            }
            "--threads" => {
                args.threads = Some(value("--threads").parse().expect("--threads"));
            }
            "--trace-full" => args.trace_full = true,
            "--bisect-demo" => args.bisect_demo = true,
            seed => args.campaign.plan.seed = seed.parse().expect("seed must be an integer"),
        }
    }
    args
}

fn print_report(r: &FaultCampaignResult) {
    println!(
        "injected {:>4} faults over {:.1} ms: {} SEU, {} timing burst, {} DMA stall, {} dropped IRQ",
        r.events,
        r.campaign_us / 1000.0,
        r.injected_seu,
        r.injected_timing_bursts,
        r.injected_dma_stalls,
        r.injected_dropped_irqs,
    );
    println!(
        "detected {:>4} ({:.1} %)   undetected {}   benign {}   skipped {}",
        r.detected,
        100.0 * r.detected as f64 / r.events.max(1) as f64,
        r.undetected,
        r.benign,
        r.skipped,
    );
    println!(
        "recovered {:>3} ({:.1} %)   unrecovered {}   quarantined partitions {}",
        r.recovered,
        100.0 * r.recovered as f64 / r.detected.max(1) as f64,
        r.unrecovered,
        r.quarantined_partitions,
    );
    println!(
        "ladder: {} retries, {} scrubs ({} failed) — {:.2} retries per recovery",
        r.recovery.retries,
        r.recovery.scrubs,
        r.recovery.scrub_failures,
        r.recovery.retries as f64 / r.recovered.max(1) as f64,
    );
    println!(
        "detection latency: mean {:.1} us, worst {:.1} us (background CRC scan)",
        r.recovery.detection_latency_us.mean, r.recovery.detection_latency_us.max,
    );
    println!(
        "MTTR: mean {:.1} us, worst {:.1} us",
        r.recovery.mttr_us.mean, r.recovery.mttr_us.max,
    );
    println!(
        "silent corruptions: {}   availability: {:.4}",
        r.silent_corruptions, r.availability,
    );
}

/// Soaks a run to the end of its plan, checkpointing every `every` events.
/// Each checkpoint is written atomically, so a SIGKILL at any instant
/// leaves a complete checkpoint on disk.
fn soak(run: &mut CampaignRun, every: Option<usize>, file: &Path) -> FaultCampaignResult {
    let mut handled = 0usize;
    while run.step().is_some() {
        handled += 1;
        if let Some(every) = every {
            if handled.is_multiple_of(every) {
                snapshot::save(file, &run.checkpoint()).expect("write checkpoint");
            }
        }
    }
    run.finish()
}

fn write_outputs(dir: &Path, r: &FaultCampaignResult, run: &CampaignRun) {
    let path = dir.join("fault_campaign.json");
    std::fs::write(&path, r.to_json_string()).expect("write campaign telemetry");
    let tape = dir.join("fault_campaign.tape.jsonl");
    std::fs::write(&tape, run.system().tracer().export_jsonl()).expect("write campaign tape");
    println!("\ntelemetry written to {}", path.display());
    println!(
        "event tape written to {} (digest {:#018x})",
        tape.display(),
        run.digest()
    );
}

fn bisect_demo(campaign: &FaultCampaign, dir: &Path) {
    let cfg = system_config();
    let plan = FaultPlan::generate(&campaign.plan, &cfg.floorplan);
    let n = plan.events.len();
    let target = plan
        .events
        .iter()
        .rposition(|e| e.kind == FaultKind::Seu)
        .expect("plan must contain an SEU");
    let mut planted = plan.clone();
    let e = &mut planted.events[target];
    e.rp = (e.rp + 1) % cfg.floorplan.partitions().len();
    e.frame %= cfg
        .floorplan
        .partition(e.rp)
        .frame_count(cfg.floorplan.geometry());
    println!("== bisect demo: {n} events, divergence planted at event {target} ==\n");

    let out = bisect_plans(&cfg, campaign, campaign, plan, planted)
        .expect("bisect")
        .expect("planted divergence must be found");
    let bound = (n as f64).log2().ceil() as u64 + 1;
    println!(
        "first divergent event: {} (planted {target})   replays: {} (bound {bound})   prefix compared: {}",
        out.first_divergent_event, out.replays, out.compared_events,
    );
    assert_eq!(
        out.first_divergent_event, target as u64,
        "bisect missed the plant"
    );
    assert!(
        out.replays <= bound,
        "{} replays exceeds log2({n})+1 = {bound}",
        out.replays
    );
    std::fs::write(dir.join("fault_bisect.json"), out.to_json_string()).expect("write bisect json");
    println!(
        "bisect PASSED: divergence pinned in {} ≤ {bound} partial replays",
        out.replays
    );
}

fn monte_carlo(
    campaign: &FaultCampaign,
    replicas: usize,
    executor: &ParallelExecutor,
    trace_full: bool,
    dir: &Path,
) {
    let cfg = system_config();
    let mut base = CampaignRun::new(cfg.clone(), campaign.clone());
    if trace_full {
        base.system_mut().set_trace_level(TraceLevel::Full);
    }
    let warm = (base.events() / 4).max(1);
    println!(
        "== Monte Carlo: warming {warm}/{} events, forking {replicas} replicas across {} thread(s) ==\n",
        base.events(),
        executor.threads(),
    );
    for _ in 0..warm {
        base.step();
    }
    let checkpoint = base.checkpoint();
    let seeds: Vec<u64> = (0..replicas as u64)
        .map(|i| campaign.plan.seed.wrapping_add(1 + i))
        .collect();
    let fleet = executor
        .fork_replicas(&cfg, campaign, &checkpoint, &seeds)
        .expect("fork replicas");

    println!("seed        events  detected  recovered  unrecovered  availability");
    for row in &fleet.per_replica {
        println!(
            "{:<10}  {:>6}  {:>8}  {:>9}  {:>11}  {:>12.4}",
            row.seed, row.events, row.detected, row.recovered, row.unrecovered, row.availability,
        );
    }
    let a = &fleet.availability;
    println!(
        "\navailability over {} replicas: mean {:.4} (95% CI [{:.4}, {:.4}]), p50 {:.4}, p99 {:.4}, min {:.4}, max {:.4}",
        fleet.replicas, a.mean, a.ci95_lo, a.ci95_hi, a.p50, a.p99, a.min, a.max,
    );
    println!(
        "fleet totals: {} events, {} detected, {} recovered, {} unrecovered, {} silent corruptions",
        fleet.events, fleet.detected, fleet.recovered, fleet.unrecovered, fleet.silent_corruptions,
    );
    std::fs::write(
        dir.join("fault_campaign_fleet.json"),
        fleet.to_json_string(),
    )
    .expect("write fleet telemetry");
    println!(
        "fleet telemetry written to {}",
        dir.join("fault_campaign_fleet.json").display()
    );

    // Markdown section stitched into EXPERIMENTS.md by tools_gen_experiments.sh.
    let mut md = String::new();
    md.push_str("## Monte Carlo availability fleet (mixed-fault campaign)\n\n");
    md.push_str(&format!(
        "{replicas} replicas forked from one warmed-up checkpoint (seed {}, \
         {warm} warm-up events), each re-seeded over the remaining campaign \
         horizon. Deterministic: same checkpoint + seed set ⇒ byte-identical \
         report.\n\n",
        campaign.plan.seed,
    ));
    md.push_str("| seed | events | detected | recovered | unrecovered | availability |\n");
    md.push_str("|-----:|-------:|---------:|----------:|------------:|-------------:|\n");
    for row in &fleet.per_replica {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.4} |\n",
            row.seed, row.events, row.detected, row.recovered, row.unrecovered, row.availability,
        ));
    }
    md.push_str(&format!(
        "\nAvailability: mean **{:.4}** (95% CI [{:.4}, {:.4}]), p50 {:.4}, \
         p99 {:.4}, min {:.4}, max {:.4}.\n",
        a.mean, a.ci95_lo, a.ci95_hi, a.p50, a.p99, a.min, a.max,
    ));
    std::fs::write(dir.join("fault_fleet.md"), md).expect("write fleet markdown");

    assert_eq!(fleet.undetected, 0, "no SEU may go undetected");
    assert_eq!(
        fleet.silent_corruptions, 0,
        "no silent corruption may survive"
    );
    println!("fleet PASSED: zero undetected faults, zero silent corruptions");
}

fn main() {
    let args = parse_args();
    let dir = Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");

    if args.bisect_demo {
        bisect_demo(&args.campaign, dir);
        return;
    }
    if let Some(replicas) = args.replicas {
        let executor = match args.threads {
            Some(n) => ParallelExecutor::new(n),
            None => ParallelExecutor::from_env(),
        };
        monte_carlo(&args.campaign, replicas, &executor, args.trace_full, dir);
        return;
    }

    let cfg = system_config();
    let mut run = if args.resume {
        let checkpoint = snapshot::load(&args.checkpoint_file)
            .unwrap_or_else(|e| panic!("load {}: {}", args.checkpoint_file.display(), e.msg));
        let run = CampaignRun::resume(cfg, args.campaign.clone(), &checkpoint)
            .unwrap_or_else(|e| panic!("resume: {}", e.msg));
        println!(
            "== mixed-fault campaign, seed {}: resumed at event {}/{} ==\n",
            args.campaign.plan.seed,
            run.position(),
            run.events(),
        );
        run
    } else {
        let mut run = CampaignRun::new(cfg, args.campaign.clone());
        if args.trace_full {
            run.system_mut().set_trace_level(TraceLevel::Full);
        }
        println!(
            "== mixed-fault campaign, seed {} ==\n",
            args.campaign.plan.seed
        );
        run
    };

    let r = soak(&mut run, args.checkpoint_every, &args.checkpoint_file);
    print_report(&r);
    write_outputs(dir, &r, &run);

    assert_eq!(r.detected, r.events, "every fault must be detected");
    assert_eq!(r.silent_corruptions, 0, "no silent corruption may survive");
    println!("campaign PASSED: 100% detection, zero silent corruptions");
}
