//! Mixed-fault injection campaign against the self-healing recovery stack.
//!
//! Generates a deterministic [`FaultPlan`] — SEU bit-flips, timing-violation
//! bursts, DMA stalls, dropped completion interrupts — runs it against a
//! monitored two-partition system, and prints the availability report:
//! detection and recovery rates, MTTR, retries per success, scrubs. The
//! full telemetry lands in `target/experiments/fault_campaign.json` for the
//! CI smoke check and for byte-for-byte replay comparison.
//!
//! ```text
//! cargo run --release --example fault_campaign [seed]
//! ```
//!
//! [`FaultPlan`]: pdr_lab::pdr::FaultPlan

use pdr_lab::pdr::{run_fault_campaign, FaultCampaign, ZynqPdrSystem};
use pdr_lab::sim::json::ToJson;

fn main() {
    let mut campaign = FaultCampaign::default();
    if let Some(seed) = std::env::args().nth(1) {
        campaign.plan.seed = seed.parse().expect("seed must be an integer");
    }

    println!("== mixed-fault campaign, seed {} ==\n", campaign.plan.seed);
    let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
    let r = run_fault_campaign(&mut sys, &campaign);

    println!(
        "injected {:>4} faults over {:.1} ms: {} SEU, {} timing burst, {} DMA stall, {} dropped IRQ",
        r.events,
        r.campaign_us / 1000.0,
        r.injected_seu,
        r.injected_timing_bursts,
        r.injected_dma_stalls,
        r.injected_dropped_irqs,
    );
    println!(
        "detected {:>4} ({:.1} %)   undetected {}   benign {}   skipped {}",
        r.detected,
        100.0 * r.detected as f64 / r.events.max(1) as f64,
        r.undetected,
        r.benign,
        r.skipped,
    );
    println!(
        "recovered {:>3} ({:.1} %)   unrecovered {}   quarantined partitions {}",
        r.recovered,
        100.0 * r.recovered as f64 / r.detected.max(1) as f64,
        r.unrecovered,
        r.quarantined_partitions,
    );
    println!(
        "ladder: {} retries, {} scrubs ({} failed) — {:.2} retries per recovery",
        r.recovery.retries,
        r.recovery.scrubs,
        r.recovery.scrub_failures,
        r.recovery.retries as f64 / r.recovered.max(1) as f64,
    );
    println!(
        "detection latency: mean {:.1} us, worst {:.1} us (background CRC scan)",
        r.recovery.detection_latency_us.mean, r.recovery.detection_latency_us.max,
    );
    println!(
        "MTTR: mean {:.1} us, worst {:.1} us",
        r.recovery.mttr_us.mean, r.recovery.mttr_us.max,
    );
    println!(
        "silent corruptions: {}   availability: {:.4}",
        r.silent_corruptions, r.availability,
    );

    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let path = dir.join("fault_campaign.json");
    std::fs::write(&path, r.to_json_string()).expect("write campaign telemetry");
    println!("\ntelemetry written to {}", path.display());

    assert_eq!(r.detected, r.events, "every fault must be detected");
    assert_eq!(r.silent_corruptions, 0, "no silent corruption may survive");
    println!("campaign PASSED: 100% detection, zero silent corruptions");
}
