//! Regenerates the Sec. IV-A temperature-stress experiment: the heat-gun
//! protocol, re-running every Table I point up to 310 MHz while the die is
//! held at 40–100 °C in 10 °C steps.
//!
//! The paper's result — and this model's — is a matrix that is green
//! everywhere except a single cell: 310 MHz at 100 °C.
//!
//! ```text
//! cargo run --release --example temperature_stress [--small]
//! ```

use pdr_lab::pdr::experiments::{stress, stress_failures, ExperimentConfig, STRESS_TEMPS_C};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        ExperimentConfig::small()
    } else {
        ExperimentConfig::default()
    };

    println!("== Sec. IV-A: over-clocking robustness under temperature stress ==\n");
    let cells = stress(&cfg);

    let freqs: Vec<u64> = {
        let mut f: Vec<u64> = cells.iter().map(|c| c.freq_mhz).collect();
        f.dedup();
        f.truncate(cells.len() / STRESS_TEMPS_C.len());
        f
    };

    print!("{:>8} |", "T \\ f");
    for f in &freqs {
        print!(" {f:>4}");
    }
    println!(" MHz");
    println!("{}", "-".repeat(10 + 5 * freqs.len()));
    for &t in &STRESS_TEMPS_C {
        print!("{t:>6} C |");
        for &f in &freqs {
            let cell = cells
                .iter()
                .find(|c| c.freq_mhz == f && c.temp_c == t)
                .expect("cell present");
            // "ok" = CRC valid; "%%" = configuration corrupted. At 310 MHz
            // the completion interrupt is lost at every temperature ("-")
            // but the content is still valid except at 100 °C.
            let mark = match (cell.crc_valid, cell.interrupt_seen) {
                (true, true) => "  ok",
                (true, false) => "  -v",
                (false, _) => "  %%",
            };
            print!(" {mark}");
        }
        println!();
    }
    println!("\nlegend: ok = interrupt + CRC valid; -v = no interrupt, CRC valid;");
    println!("        %% = CRC NOT valid (configuration corrupted)\n");

    let failures = stress_failures(&cells);
    println!("failing cells: {failures:?}");
    assert_eq!(
        failures,
        vec![(310, 100.0)],
        "the paper reports exactly one failing stress cell"
    );
    println!("=> matches the paper: only (310 MHz, 100 °C) fails.");
}
