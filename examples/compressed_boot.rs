//! Compressed boot and reconfiguration: the frame-aware `PDRC` codec from
//! SD-card staging all the way to the streaming ICAP-side decompressor.
//!
//! Three acts:
//!
//! 1. the same four ASP images boot from a plain and a compressed SD card
//!    (the card stores `PDRC` containers; the PS decompresses while
//!    staging, so boot time scales with *stored* bytes);
//! 2. a single image streams through the bounded-FIFO [`StreamDecoder`]
//!    exactly as the SRAM read port feeds it — bit-exact against the
//!    original;
//! 3. the Sec. VI proposed pipeline reconfigures with the decompressor
//!    on/off, beating `examples/proposed_system.rs`'s raw-staging numbers.
//!
//! ```text
//! cargo run --release --example compressed_boot
//! ```

use pdr_lab::codec::{compress_bitstream, StreamDecoder};
use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::proposed::{ProposedConfig, ProposedSystem};
use pdr_lab::pdr::{SdCard, SystemConfig, ZynqPdrSystem};

fn main() {
    // -- act 1: boot staging ----------------------------------------------
    let make = |card: SdCard| {
        let sys = ZynqPdrSystem::new(SystemConfig::fast_quad());
        let mut card = card;
        for rp in 0..4usize {
            let kind = AspKind::ALL[rp % AspKind::ALL.len()];
            card.store(
                &format!("rp{rp}.bit"),
                sys.make_asp_bitstream(rp, kind, rp as u32 + 1),
            );
        }
        (sys, card)
    };

    let (mut sys, plain_card) = make(SdCard::class10());
    let plain = sys.boot_from_sd(&plain_card);
    let (mut sys, packed_card) = make(SdCard::class10_compressed());
    let packed = sys.boot_from_sd(&packed_card);

    println!("== boot staging: 4 ASP images off a class-10 SD card ==");
    for (name, bs) in packed_card.iter() {
        let stored = packed_card.stored_bytes(name).expect("stored file");
        let ratio = packed_card
            .codec_report(name)
            .and_then(|r| r.ratio)
            .expect("non-empty image");
        println!(
            "  {name}: {} raw -> {} stored bytes (ratio {:.2})",
            bs.len(),
            stored,
            ratio
        );
    }
    println!(
        "  plain card:      {} bytes in {:.2} ms",
        plain.total_bytes(),
        plain.total.as_micros_f64() / 1000.0
    );
    println!(
        "  compressed card: {} bytes in {:.2} ms ({:.2}x faster boot)",
        packed.total_bytes(),
        packed.total.as_micros_f64() / 1000.0,
        plain.total.as_micros_f64() / packed.total.as_micros_f64()
    );

    // -- act 2: the streaming decoder, fed in SRAM-port bursts -------------
    let bs = ZynqPdrSystem::new(SystemConfig::fast_quad()).make_asp_bitstream(0, AspKind::Fir16, 7);
    let c = compress_bitstream(&bs);
    let mut d = StreamDecoder::new();
    let mut fed = 0usize;
    let mut words = 0u64;
    loop {
        if fed < c.bytes.len() {
            let end = (fed + 16).min(c.bytes.len());
            fed += d.push(&c.bytes[fed..end]);
        }
        match d.pop_word().expect("clean stream") {
            Some(_) => words += 1,
            None if d.finished() && fed == c.bytes.len() => break,
            None => {}
        }
    }
    println!("\n== streaming decode through the bounded FIFO ==");
    println!(
        "  {} container bytes -> {} words ({} raw bytes), {} blocks CRC-checked",
        c.bytes.len(),
        words,
        c.report.raw_bytes,
        c.report.blocks
    );
    println!(
        "  op mix: {} literal / {} zero-run / {} nop-run / {} back-ref words",
        c.report.literal_words, c.report.zero_words, c.report.nop_words, c.report.backref_words
    );
    assert_eq!(words, c.report.raw_words, "bit-exact by construction");

    // -- act 3: end-to-end reconfiguration, Sec. VI pipeline ---------------
    println!("\n== proposed pipeline (Sec. VI), decompressor off vs on ==");
    let mut raw_tput = f64::NAN;
    for compress in [false, true] {
        let mut sys = ProposedSystem::new(ProposedConfig {
            compress,
            ..ProposedConfig::default()
        });
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 7);
        let r = sys.reconfigure(&bs);
        println!(
            "  {}: {} raw bytes ({} over the SRAM port) in {:.1} us = {:.1} MB/s, CRC {}",
            if compress { "compressed" } else { "raw       " },
            r.raw_bytes,
            r.sram_bytes,
            r.latency.as_micros_f64(),
            r.throughput_mb_s,
            if r.crc_ok { "ok" } else { "CORRUPT" }
        );
        if compress {
            println!(
                "  -> {:.2}x the raw pipeline: the decompressor expands runs and",
                r.throughput_mb_s / raw_tput
            );
            println!("     frame back-references at the ICAP clock, so the SRAM read");
            println!("     port only carries the container bytes");
        } else {
            raw_tput = r.throughput_mb_s;
        }
    }
}
