//! Multi-tenant reconfiguration scheduling on a four-partition fabric.
//!
//! Four tenants share one ICAP. Each submits waves of reconfiguration
//! requests with its own priority and deadline; the [`Scheduler`] admits
//! them against the recovery manager's quarantine state, orders the ready
//! queue EDF-within-priority, and hides bitstream staging behind a warm
//! cache plus QDR-write-port prefetch. The run prints per-tenant outcomes
//! and the aggregate telemetry, then contrasts it with the
//! single-request-at-a-time baseline on the identical workload.
//!
//! ```text
//! cargo run --release --example multi_tenant [waves]
//! ```
//!
//! [`Scheduler`]: pdr_lab::pdr::Scheduler

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::{
    ReconfigRequest, RecoveryConfig, RecoveryManager, Scheduler, SchedulerConfig, SchedulerReport,
    SystemConfig, ZynqPdrSystem,
};
use pdr_lab::sim::json::ToJson;
use pdr_lab::sim::SimDuration;

const TENANTS: usize = 4;

fn run(config: SchedulerConfig, waves: u32, warm: bool) -> (SchedulerReport, Scheduler) {
    let mut sys = ZynqPdrSystem::new(SystemConfig::fast_quad());
    let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
    let mut sched = Scheduler::new(config);
    for rp in 0..TENANTS {
        let kind = AspKind::ALL[rp % AspKind::ALL.len()];
        sched.register_bitstream(rp as u32, sys.make_asp_bitstream(rp, kind, rp as u32 + 1));
        if warm {
            sched.warm(rp as u32);
        }
    }
    for wave in 0..waves {
        for rp in 0..TENANTS {
            let req = ReconfigRequest {
                rp,
                bitstream_id: rp as u32,
                // Tenants 0/2 are latency-critical, 1/3 best-effort.
                priority: if rp % 2 == 0 { 5 } else { 1 },
                deadline: SimDuration::from_millis(10 + wave as u64),
                tenant: rp as u32,
            };
            sched.submit(&sys, &mgr, req).expect("workload admits");
        }
        sched.run_until_idle(&mut sys, &mut mgr);
    }
    let report = sched.report();
    (report, sched)
}

fn main() {
    let waves: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("== multi-tenant scheduling: {TENANTS} tenants × {waves} waves ==\n");

    let (sched, s) = run(SchedulerConfig::default(), waves, true);
    let (base, _) = run(SchedulerConfig::default().baseline(), waves, false);

    for rp in 0..TENANTS {
        let recs: Vec<_> = s.records().iter().filter(|r| r.req.rp == rp).collect();
        let met = recs.iter().filter(|r| r.deadline_met).count();
        let hits = recs.iter().filter(|r| r.cache_hit).count();
        let mean_q =
            recs.iter().map(|r| r.queueing.as_micros_f64()).sum::<f64>() / recs.len().max(1) as f64;
        println!(
            "tenant RP{} (prio {}): {:>2} done, {:>2} deadlines met, {:>2} cache hits, mean queueing {:>6.0} us",
            rp + 1,
            if rp % 2 == 0 { 5 } else { 1 },
            recs.len(),
            met,
            hits,
            mean_q,
        );
    }

    println!(
        "\nscheduler: {} completed, {:.1} MB/s aggregate, queueing p50/p99 {:.0}/{:.0} us",
        sched.completed,
        sched.throughput_mb_s.unwrap_or(0.0),
        sched.queueing_p50_us.unwrap_or(0.0),
        sched.queueing_p99_us.unwrap_or(0.0),
    );
    println!(
        "baseline:  {} completed, {:.1} MB/s aggregate (every request pays the SD fetch)",
        base.completed,
        base.throughput_mb_s.unwrap_or(0.0),
    );
    let speedup = sched.throughput_mb_s.unwrap_or(0.0) / base.throughput_mb_s.unwrap_or(1.0);
    println!("speedup:   {speedup:.1}×");

    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let path = dir.join("multi_tenant.json");
    std::fs::write(&path, sched.to_json_string()).expect("write scheduler telemetry");
    println!("\ntelemetry written to {}", path.display());

    assert!(speedup >= 2.0, "scheduler must beat the baseline ≥2×");
    println!("multi-tenant run PASSED: ≥2× over single-request baseline");
}
