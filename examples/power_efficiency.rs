//! Regenerates Table II and the Fig. 6 power fan: P_PDR vs frequency at
//! several die temperatures, and performance-per-watt at 40 °C.
//!
//! The paper's punchline: throughput plateaus at ~200 MHz but power keeps
//! climbing with frequency, so the *most power-efficient* operating point is
//! the knee — ~600 MB/J at 200 MHz — not the fastest one.
//!
//! ```text
//! cargo run --release --example power_efficiency [--small]
//! ```

use pdr_lab::pdr::experiments::{
    best_ppw, fig6, table2, ExperimentConfig, FIG6_TEMPS_C, TABLE2_PAPER,
};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        ExperimentConfig::small()
    } else {
        ExperimentConfig::default()
    };

    println!("== Fig. 6: P_PDR vs frequency at different die temperatures ==\n");
    let points = fig6(&cfg);
    print!("{:>8} |", "f \\ T");
    for t in FIG6_TEMPS_C {
        print!(" {t:>6.0} C");
    }
    println!();
    println!("{}", "-".repeat(10 + 9 * FIG6_TEMPS_C.len()));
    let mut freqs: Vec<u64> = points.iter().map(|p| p.freq_mhz).collect();
    freqs.sort_unstable();
    freqs.dedup();
    for f in freqs {
        print!("{f:>4} MHz |");
        for t in FIG6_TEMPS_C {
            let p = points
                .iter()
                .find(|p| p.freq_mhz == f && p.temp_c == t)
                .expect("point present");
            print!(" {:>7.3}W", p.p_pdr_w);
        }
        println!();
    }
    println!("\n(dynamic slope identical across temperatures; static offset");
    println!(" grows super-linearly with T — the paper's two Fig. 6 findings)\n");

    println!("== Table II: power efficiency of over-clocking at 40 °C ==\n");
    println!(
        "{:>9} | {:>9} | {:>12} | {:>11}   (paper: {:>6} {:>8} {:>6})",
        "MHz", "P_PDR [W]", "thpt [MB/s]", "PpW [MB/J]", "W", "MB/s", "MB/J"
    );
    let rows = table2(&cfg);
    for (row, (_, pw, pt, pp)) in rows.iter().zip(TABLE2_PAPER.iter()) {
        println!(
            "{:>9} | {:>9.2} | {:>12.2} | {:>11.0}   (paper: {:>6.2} {:>8.2} {:>6.0})",
            row.freq_mhz, row.p_pdr_w, row.throughput_mb_s, row.ppw_mb_j, pw, pt, pp
        );
    }
    let best = best_ppw(&rows);
    println!(
        "\nmost power-efficient point: {} MHz at {:.0} MB/J (paper: 200 MHz, 599 MB/J)",
        best.freq_mhz, best.ppw_mb_j
    );
    assert_eq!(best.freq_mhz, 200, "the knee must be the PpW optimum");
}
