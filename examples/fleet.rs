//! Fleet-scale PDR-as-a-service campaign.
//!
//! Stands up the control plane from `pdr_core::fleet` — consistent-hash
//! placement over N simulated boards, per-shard admission with work
//! stealing, quarantine propagation, a replicated catalog cache — and
//! drives it with a deterministic open-loop traffic model (Poisson
//! arrivals under a triangular diurnal envelope, Zipf tenant/entry skew).
//! Service costs are calibrated on the real cycle-level `ZynqPdrSystem`
//! through whichever kernel `PDR_ENGINE` selects.
//!
//! The default invocation is the acceptance-scale campaign: 1000 boards,
//! just over one million requests. The merged report lands in
//! `target/experiments/fleet_campaign.json`; CI compares it byte-for-byte
//! across `PDR_THREADS` × `PDR_ENGINE`, and SIGKILLs a checkpointing run
//! mid-campaign to prove crash-resume reproduces the same bytes.
//!
//! ```text
//! cargo run --release --example fleet -- [flags]
//!
//!   --boards N             fleet size (default 1000)
//!   --shards N             control-plane shards (default 16; fixed, so the
//!                          report is independent of the thread count)
//!   --tenants N            tenant population (default 10000)
//!   --requests N           campaign size (default 1010000)
//!   --duration-ms N        traffic horizon in simulated ms (default 2500)
//!   --seed N               campaign seed (default 2017)
//!   --threads N            worker threads (default: PDR_THREADS, else the
//!                          machine's parallelism); unobservable in output
//!   --checkpoint-every N   atomic checkpoint after every N epochs
//!   --checkpoint-file P    checkpoint path (default target/experiments/
//!                          fleet_campaign.ckpt)
//!   --resume               resume from the checkpoint file; the final
//!                          report is byte-identical to an uninterrupted run
//! ```

use std::path::{Path, PathBuf};

use pdr_lab::pdr::fleet::{FleetConfig, FleetReport, FleetRun};
use pdr_lab::pdr::{snapshot, ParallelExecutor};
use pdr_lab::sim::json::ToJson;
use pdr_lab::sim::{EngineStrategy, SimDuration};

struct Args {
    config: FleetConfig,
    threads: Option<usize>,
    checkpoint_every: Option<u64>,
    checkpoint_file: PathBuf,
    resume: bool,
}

fn parse_args() -> Args {
    let mut config = FleetConfig::full_scale();
    config.system.strategy = EngineStrategy::from_env();
    let mut args = Args {
        config,
        threads: None,
        checkpoint_every: None,
        checkpoint_file: PathBuf::from("target/experiments/fleet_campaign.ckpt"),
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--boards" => args.config.boards = value("--boards").parse().expect("--boards"),
            "--shards" => args.config.shards = value("--shards").parse().expect("--shards"),
            "--tenants" => args.config.tenants = value("--tenants").parse().expect("--tenants"),
            "--requests" => {
                args.config.traffic.target_requests =
                    value("--requests").parse().expect("--requests");
            }
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms").parse().expect("--duration-ms");
                args.config.traffic.duration = SimDuration::from_millis(ms);
            }
            "--seed" => args.config.seed = value("--seed").parse().expect("--seed"),
            "--threads" => args.threads = Some(value("--threads").parse().expect("--threads")),
            "--checkpoint-every" => {
                let n: u64 = value("--checkpoint-every")
                    .parse()
                    .expect("--checkpoint-every");
                args.checkpoint_every = Some(n.max(1));
            }
            "--checkpoint-file" => args.checkpoint_file = PathBuf::from(value("--checkpoint-file")),
            "--resume" => args.resume = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// Peak RSS in KiB from /proc, `None` off Linux — diagnostic only, never
/// part of the comparable artifacts.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn print_report(r: &FleetReport) {
    let pct = |v: Option<f64>| v.map_or("n/a".into(), |x| format!("{:.2}%", 100.0 * x));
    println!(
        "fleet: {} boards in {} shards, {} epochs, {} requests submitted",
        r.boards, r.shards, r.epochs, r.submitted,
    );
    println!(
        "served {} ({} available)   failed {}   rejected {}   rerouted {}   stolen {}",
        r.completed,
        pct(r.availability),
        r.failed,
        r.rejected,
        r.rerouted,
        r.stolen,
    );
    println!(
        "cache: {} hits / {} misses ({} hit rate), {} evictions, {} invalidation rounds dropping {} copies",
        r.cache_hits,
        r.cache_misses,
        pct(r.cache_hit_rate),
        r.cache_evictions,
        r.invalidations,
        r.invalidated_copies,
    );
    println!(
        "health: {} CRC failures, {} scrubs ({} failed), {} boards quarantined, {} entries re-replicated",
        r.crc_failures, r.scrubs, r.scrub_failures, r.boards_quarantined, r.replicated_entries,
    );
    let q = |v: Option<f64>| v.map_or("n/a".into(), |x| format!("{:.0} us", x));
    println!(
        "latency: mean {:.0} us, p50 {}, p99 {}, max {:.0} us   queue wait mean {:.0} us",
        r.latency_us.mean,
        q(r.latency_p50_us),
        q(r.latency_p99_us),
        r.latency_us.max,
        r.queue_wait_us.mean,
    );
    println!(
        "makespan {:.1} ms   throughput {}",
        r.makespan_us / 1000.0,
        r.throughput_rps
            .map_or("n/a".into(), |t| format!("{t:.0} req/s")),
    );
}

fn write_outputs(dir: &Path, config: &FleetConfig, r: &FleetReport) {
    let path = dir.join("fleet_campaign.json");
    std::fs::write(&path, r.to_json_string()).expect("write fleet telemetry");
    println!("\ntelemetry written to {}", path.display());

    // Markdown section stitched into EXPERIMENTS.md by tools_gen_experiments.sh.
    let pct = |v: Option<f64>| v.map_or("n/a".into(), |x| format!("{:.2}%", 100.0 * x));
    let us = |v: Option<f64>| v.map_or("n/a".into(), |x| format!("{x:.0}"));
    let mut md = String::new();
    md.push_str("## Fleet-scale PDR-as-a-service campaign\n\n");
    md.push_str(&format!(
        "{} boards behind a consistent-hash control plane ({} shards, 128 \
         vnodes/board), serving {} catalog entries to {} Zipf-skewed tenants \
         under a bursty open-loop load. Service costs calibrated on the \
         cycle-level system; report byte-identical across `PDR_THREADS` and \
         both `PDR_ENGINE` kernels, and across a mid-campaign kill + resume.\n\n",
        r.boards, r.shards, config.catalog_entries, config.tenants,
    ));
    md.push_str("| metric | value |\n|---|---:|\n");
    let rows: Vec<(&str, String)> = vec![
        ("requests submitted", r.submitted.to_string()),
        ("completed", r.completed.to_string()),
        ("availability", pct(r.availability)),
        (
            "rejected / failed",
            format!("{} / {}", r.rejected, r.failed),
        ),
        ("work stolen", r.stolen.to_string()),
        ("re-routed around quarantine", r.rerouted.to_string()),
        ("boards quarantined", r.boards_quarantined.to_string()),
        ("entries re-replicated", r.replicated_entries.to_string()),
        ("cache hit rate", pct(r.cache_hit_rate)),
        ("invalidation rounds", r.invalidations.to_string()),
        ("latency mean (us)", format!("{:.0}", r.latency_us.mean)),
        ("latency p50 (us)", us(r.latency_p50_us)),
        ("latency p99 (us)", us(r.latency_p99_us)),
        ("makespan (ms)", format!("{:.1}", r.makespan_us / 1000.0)),
        (
            "throughput (req/s)",
            r.throughput_rps.map_or("n/a".into(), |t| format!("{t:.0}")),
        ),
    ];
    for (k, v) in rows {
        md.push_str(&format!("| {k} | {v} |\n"));
    }
    std::fs::write(dir.join("fleet_campaign.md"), md).expect("write fleet markdown");
}

fn main() {
    let args = parse_args();
    let dir = Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let executor = match args.threads {
        Some(n) => ParallelExecutor::new(n),
        None => ParallelExecutor::from_env(),
    };

    let mut run = if args.resume {
        let ckpt = snapshot::load(&args.checkpoint_file)
            .unwrap_or_else(|e| panic!("load {}: {}", args.checkpoint_file.display(), e.msg));
        let run = FleetRun::resume(args.config.clone(), &ckpt)
            .unwrap_or_else(|e| panic!("resume: {}", e.msg));
        println!(
            "== fleet campaign, seed {}: resumed at epoch {} across {} thread(s) ==\n",
            args.config.seed,
            run.epoch(),
            executor.threads(),
        );
        run
    } else {
        println!(
            "== fleet campaign, seed {}: {} boards / {} shards / {} requests across {} thread(s) ==\n",
            args.config.seed,
            args.config.boards,
            args.config.effective_shards(),
            args.config.traffic.target_requests,
            executor.threads(),
        );
        FleetRun::new(args.config.clone())
    };

    while run.step_epoch(&executor) {
        if let Some(every) = args.checkpoint_every {
            if run.epoch() % every == 0 {
                snapshot::save(&args.checkpoint_file, &run.checkpoint()).expect("write checkpoint");
            }
        }
    }

    let r = run.report();
    print_report(&r);
    write_outputs(dir, &args.config, &r);
    if let Some(kib) = peak_rss_kib() {
        println!("peak RSS {kib} KiB (diagnostic; not part of the artifact)");
    }

    assert_eq!(
        r.submitted,
        r.completed + r.failed + r.rejected,
        "every request must be accounted for"
    );
    assert!(
        r.availability.unwrap_or(0.0) > 0.9,
        "fleet availability must survive the campaign: {r:?}"
    );
    assert!(r.stolen > 0, "burst envelope must trigger work stealing");
    assert!(
        r.cache_hit_rate.unwrap_or(0.0) > 0.3,
        "Zipf skew must make the replicated catalog cache useful"
    );
    println!("fleet campaign PASSED");
}
