//! Regenerates Table I and the Fig. 5 curve: throughput vs over-clocking
//! frequency, with the CRC verdict for every point.
//!
//! ```text
//! cargo run --release --example frequency_sweep [--small]
//! ```
//!
//! `--small` runs the miniature floorplan (fast; for CI-style smoke runs);
//! the default is the full ZedBoard-scale device.

use pdr_lab::pdr::experiments::{fig5, table1, ExperimentConfig, TABLE1_PAPER};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        ExperimentConfig::small()
    } else {
        ExperimentConfig::default()
    };

    println!("== Table I: throughput vs frequency when over-clocking ==\n");
    println!(
        "{:>9} | {:>14} | {:>12} | {:>9}    (paper: {:>10} {:>8})",
        "ICAP MHz", "latency [us]", "thpt [MB/s]", "CRC", "lat [us]", "MB/s"
    );
    let rows = table1(&cfg);
    for (row, (_, paper, paper_crc)) in rows.iter().zip(TABLE1_PAPER.iter()) {
        let lat = row
            .latency_us
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "N/A no irq".into());
        let thpt = row
            .throughput_mb_s
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "N/A".into());
        let (pl, pt) = paper
            .map(|(l, t)| (format!("{l:.2}"), format!("{t:.2}")))
            .unwrap_or_else(|| ("N/A".into(), "N/A".into()));
        println!(
            "{:>9} | {:>14} | {:>12} | {:>9}    (paper: {:>10} {:>8})",
            row.freq_mhz,
            lat,
            thpt,
            if row.crc_valid { "valid" } else { "not valid" },
            pl,
            pt
        );
        assert_eq!(row.crc_valid, *paper_crc, "CRC regime must match the paper");
    }

    println!("\n== Fig. 5: throughput vs frequency curve ==\n");
    let curve = fig5(&cfg);
    let max = curve
        .iter()
        .filter_map(|p| p.throughput_mb_s)
        .fold(0.0f64, f64::max);
    for p in &curve {
        match p.throughput_mb_s {
            Some(t) => {
                let bar = "#".repeat((t / max * 60.0) as usize);
                println!("{:>4} MHz | {t:>8.2} MB/s | {bar}", p.freq_mhz);
            }
            None => println!("{:>4} MHz |      N/A (no interrupt)", p.freq_mhz),
        }
    }
    println!("\nThe curve rises linearly (4 B x f, the ICAP stream side) and");
    println!("flattens at ~198 MHz where the 64-bit/100 MHz memory path saturates.");
}
