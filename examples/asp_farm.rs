//! The paper's motivating scenario: a pool of reconfigurable partitions
//! hosting application-specific processors (ASPs) that are swapped on
//! demand, "similarly to what happens with dynamically loaded software
//! routines" — *if* reconfiguration is fast enough.
//!
//! A job stream requests more ASP variants than the four partitions can
//! hold, so the scheduler keeps evicting (LRU) and reconfiguring. The
//! example measures the makespan and the share of time burnt on
//! reconfiguration under four transports:
//!
//! * PCAP (the stock PS-driven path, ~145 MB/s, simulated),
//! * ICAP at the 100 MHz nominal (simulated),
//! * ICAP over-clocked to 200 MHz, the paper's sweet spot (simulated),
//! * the Sec. VI proposed SRAM+decompressor system (simulated).
//!
//! ```text
//! cargo run --release --example asp_farm
//! ```

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::proposed::{ProposedConfig, ProposedSystem};
use pdr_lab::pdr::{SystemConfig, ZynqPdrSystem};
use pdr_lab::sim::{Frequency, SimDuration, Xoshiro256StarStar};

/// One unit of work: which accelerator it needs and how much data it chews.
#[derive(Debug, Clone, Copy)]
struct Job {
    kind: AspKind,
    seed: u32,
    elements: u64,
}

/// Deterministic job stream: 20 jobs over 8 ASP variants, skewed so that a
/// few variants are hot (realistic accelerator reuse).
fn job_stream() -> Vec<Job> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2017);
    let variants: Vec<(AspKind, u32)> = (0..8u32)
        .map(|i| (AspKind::ALL[i as usize % AspKind::ALL.len()], 100 + i))
        .collect();
    (0..20)
        .map(|_| {
            // Zipf-ish: variant 0/1 hot, the tail cold.
            let v = match rng.next_bounded(10) {
                0..=3 => 0,
                4..=6 => 1,
                x => (x - 5) as usize,
            };
            let (kind, seed) = variants[v];
            Job {
                kind,
                seed,
                elements: 20_000 + rng.next_bounded(30_000),
            }
        })
        .collect()
}

/// Compute time model: a streaming accelerator chewing one element per
/// cycle at the 100 MHz RP clock, plus a fixed 20 µs software dispatch.
fn compute_time(job: &Job) -> SimDuration {
    SimDuration::from_micros(20) + SimDuration::from_nanos(job.elements * 10)
}

/// LRU partition scheduler state.
struct Farm {
    /// (kind, seed) currently configured per RP, with a last-use stamp.
    slots: Vec<Option<(AspKind, u32, u64)>>,
    tick: u64,
}

impl Farm {
    fn new(rps: usize) -> Self {
        Farm {
            slots: vec![None; rps],
            tick: 0,
        }
    }

    /// Returns the RP to run on and whether it must be reconfigured first.
    fn place(&mut self, job: &Job) -> (usize, bool) {
        self.tick += 1;
        // Hit?
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some((k, s, stamp)) = slot {
                if *k == job.kind && *s == job.seed {
                    *stamp = self.tick;
                    return (i, false);
                }
            }
        }
        // Miss: first empty slot, else LRU.
        let victim = self
            .slots
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.map(|(_, _, t)| t).unwrap_or(0))
                    .map(|(i, _)| i)
                    .expect("non-empty farm")
            });
        self.slots[victim] = Some((job.kind, job.seed, self.tick));
        (victim, true)
    }
}

struct Tally {
    label: String,
    reconfigs: u64,
    reconfig_time: SimDuration,
    compute_time: SimDuration,
}

impl Tally {
    fn print(&self) {
        let total = self.reconfig_time + self.compute_time;
        println!(
            "{:<28} | {:>2} reconfigs | reconfig {:>9.1} us | compute {:>9.1} us | makespan {:>9.1} us | overhead {:>5.1}%",
            self.label,
            self.reconfigs,
            self.reconfig_time.as_micros_f64(),
            self.compute_time.as_micros_f64(),
            total.as_micros_f64(),
            100.0 * self.reconfig_time.as_micros_f64() / total.as_micros_f64()
        );
    }
}

/// Runs the farm on the measured (Fig. 2) system at `freq`.
fn run_measured(jobs: &[Job], freq: Frequency) -> Tally {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let rps = sys.floorplan().partitions().len();
    let mut farm = Farm::new(rps);
    let mut tally = Tally {
        label: format!("ICAP+DMA @ {freq}"),
        reconfigs: 0,
        reconfig_time: SimDuration::ZERO,
        compute_time: SimDuration::ZERO,
    };
    for job in jobs {
        let (rp, miss) = farm.place(job);
        if miss {
            let bs = sys.make_asp_bitstream(rp, job.kind, job.seed);
            let r = sys.reconfigure(rp, &bs, freq);
            assert!(r.crc_ok(), "farm reconfiguration failed: {r:?}");
            tally.reconfigs += 1;
            tally.reconfig_time += r.latency.expect("safe frequency interrupts");
        }
        // Execute behaviourally and account for the modelled compute time.
        let input: Vec<i64> = (0..16).collect();
        let _ = sys.execute_asp(rp, &input).expect("ASP configured");
        tally.compute_time += compute_time(job);
    }
    tally
}

/// Runs the farm through the **PCAP** — the Zynq's stock PS-driven
/// configuration path (simulated; ~145 MB/s regardless of PL clocks).
fn run_pcap(jobs: &[Job]) -> Tally {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let rps = sys.floorplan().partitions().len();
    let mut farm = Farm::new(rps);
    let mut tally = Tally {
        label: "PCAP (stock PS path)".into(),
        reconfigs: 0,
        reconfig_time: SimDuration::ZERO,
        compute_time: SimDuration::ZERO,
    };
    for job in jobs {
        let (rp, miss) = farm.place(job);
        if miss {
            let bs = sys.make_asp_bitstream(rp, job.kind, job.seed);
            let r = sys.reconfigure_pcap(rp, &bs);
            assert!(r.crc_ok());
            tally.reconfigs += 1;
            tally.reconfig_time += r.latency.expect("PCAP completes");
        }
        let input: Vec<i64> = (0..16).collect();
        let _ = sys.execute_asp(rp, &input).expect("ASP configured");
        tally.compute_time += compute_time(job);
    }
    tally
}

/// Runs the farm on the proposed Sec. VI system (pre-load overlapped, so
/// only the SRAM→ICAP stream is on the critical path).
fn run_proposed(jobs: &[Job]) -> Tally {
    let mut sys = ProposedSystem::new(ProposedConfig::default());
    let mut farm = Farm::new(4);
    let mut tally = Tally {
        label: "proposed (SRAM + decomp)".into(),
        reconfigs: 0,
        reconfig_time: SimDuration::ZERO,
        compute_time: SimDuration::ZERO,
    };
    for job in jobs {
        let (rp, miss) = farm.place(job);
        if miss {
            let bs = sys.make_asp_bitstream(rp, job.kind, job.seed);
            sys.preload(&bs); // hidden behind the previous job's compute
            let r = sys.reconfigure_staged();
            assert!(r.crc_ok);
            tally.reconfigs += 1;
            tally.reconfig_time += r.latency;
        }
        tally.compute_time += compute_time(job);
    }
    tally
}

fn main() {
    let jobs = job_stream();
    println!(
        "ASP farm: {} jobs over 8 accelerator variants on 4 reconfigurable partitions\n",
        jobs.len()
    );

    let tallies = vec![
        run_pcap(&jobs),
        run_measured(&jobs, Frequency::from_mhz(100)),
        run_measured(&jobs, Frequency::from_mhz(200)),
        run_proposed(&jobs),
    ];
    for t in &tallies {
        t.print();
    }

    let pcap = tallies[0].reconfig_time.as_micros_f64();
    let oc = tallies[2].reconfig_time.as_micros_f64();
    println!(
        "\nover-clocking to 200 MHz cuts reconfiguration time {:.1}x vs PCAP and {:.1}x vs nominal ICAP,",
        pcap / oc,
        tallies[1].reconfig_time.as_micros_f64() / oc
    );
    println!("which is what makes on-demand ASP swapping feel like loading a shared library.");
}
