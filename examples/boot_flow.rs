//! The paper's full test flow (Fig. 4): boot from SD card, stage bitstreams
//! into DRAM, select the frequency with the slide switches, press a button
//! to reconfigure, and read the OLED.
//!
//! ```text
//! cargo run --release --example boot_flow
//! ```

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::{switch_frequency, FrontPanel, SdCard, SystemConfig, ZynqPdrSystem};

fn main() {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });

    // Prepare the SD card: the application image plus two partial
    // bitstreams, as in the paper's setup.
    let mut card = SdCard::class10();
    card.store("rp1_fir.bit", sys.make_asp_bitstream(0, AspKind::Fir16, 10));
    card.store(
        "rp1_sha3.bit",
        sys.make_asp_bitstream(0, AspKind::Sha3Mix, 11),
    );
    println!("SD card: {:?}", card.file_names());

    // Boot: stage everything into DRAM (this is the only time the slow SD
    // path is on any critical path).
    let boot = sys.boot_from_sd(&card);
    println!(
        "boot staged {} bytes in {:.1} ms:",
        boot.total_bytes(),
        boot.total.as_secs_f64() * 1e3
    );
    for (name, bytes, dt) in &boot.files {
        println!(
            "  {name}: {bytes} bytes in {:.1} ms",
            dt.as_secs_f64() * 1e3
        );
    }

    // The tester flips switch 4 (= 280 MHz per the paper's table) and
    // presses push-button 1 to load the first bitstream.
    let mut panel = FrontPanel::new();
    for (switches, file) in [
        (0b0001_0000u8, "rp1_fir.bit"),
        (0b0000_0100, "rp1_sha3.bit"),
    ] {
        let freq = switch_frequency(switches);
        let bs = card.file(file).expect("stored at boot").clone();
        println!("\n[switches {switches:#010b} -> {freq}] button press: load {file}");
        let report = sys.reconfigure(0, &bs, freq);
        panel.show(&report);
        println!("{}", panel.render());
        assert!(report.crc_ok());
    }

    // The second load swapped the ASP; prove it runs.
    let (kind, seed) = sys.identify_asp(0).expect("configured");
    println!("\nRP1 now hosts {kind:?} (seed {seed})");
    let digest = sys.execute_asp(0, &[1, 2, 3, 4]).expect("runs");
    println!(
        "sha3-mix digest stream: {:x?}",
        &digest[..4.min(digest.len())]
    );
}
