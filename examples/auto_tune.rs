//! The paper's closing methodology, automated: characterise the over-clock
//! envelope on the live system, pick an operating point for an objective,
//! and adapt when the field disagrees.
//!
//! "The power dissipation and temperature analysis … can be extended to any
//! IP block implemented in the FPGA to determine its best trade-off
//! throughput vs. energy, and design the most power efficient accelerator
//! for the specific application and platform."
//!
//! ```text
//! cargo run --release --example auto_tune
//! ```

use pdr_lab::pdr::{Governor, GovernorConfig, Objective, SystemConfig, ZynqPdrSystem};
use pdr_lab::sim::{Frequency, SimDuration};

fn main() {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let mut gov = Governor::new(GovernorConfig::default());

    println!("== characterising the over-clock envelope at 40 °C ==\n");
    gov.characterise(&mut sys, 0);
    println!(
        "{:>5} | {:>12} | {:>9} | {:>11} | status",
        "MHz", "thpt [MB/s]", "P_PDR [W]", "PpW [MB/J]"
    );
    for p in gov.points() {
        println!(
            "{:>5} | {:>12} | {:>9.2} | {:>11} | {}",
            p.freq_mhz,
            p.throughput_mb_s
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "-".into()),
            p.p_pdr_w,
            p.ppw_mb_j
                .map(|e| format!("{e:.0}"))
                .unwrap_or_else(|| "-".into()),
            if p.usable { "ok" } else { "UNUSABLE" }
        );
    }
    println!(
        "\nhighest usable probe: {} MHz (guard band 20 MHz)\n",
        gov.max_usable_mhz().expect("envelope found")
    );

    for (label, objective) in [
        ("maximum throughput", Objective::MaxThroughput),
        ("maximum efficiency", Objective::MaxEfficiency),
        (
            "latency budget 1 ms",
            Objective::LatencyBudget(SimDuration::from_millis(1)),
        ),
    ] {
        let p = gov.select(objective).clone();
        println!(
            "objective {label:<22} -> {} MHz ({} MB/s, {:.2} W, {} MB/J)",
            p.freq_mhz,
            p.throughput_mb_s
                .map(|t| format!("{t:.0}"))
                .unwrap_or_default(),
            p.p_pdr_w,
            p.ppw_mb_j.map(|e| format!("{e:.0}")).unwrap_or_default(),
        );
    }

    // Field adaptation, part 1: the default guard band survives a heat-gun
    // excursion to 100 °C.
    println!("\n== field adaptation ==");
    let chosen = gov.select(Objective::MaxThroughput).clone();
    println!(
        "selected {} MHz; heat gun raises the die to 100 °C…",
        chosen.freq_mhz
    );
    sys.set_die_temp_c(100.0);
    let bs = sys.make_partial_bitstream(0, 1);
    let r = sys.reconfigure(0, &bs, Frequency::from_mhz(chosen.freq_mhz));
    println!(
        "transfer at {} MHz / 100 °C: CRC {}, interrupt {} — guard band did its job",
        chosen.freq_mhz,
        if r.crc_ok() { "valid" } else { "NOT valid" },
        if r.interrupt_seen { "seen" } else { "lost" }
    );
    assert!(r.crc_ok() && r.interrupt_seen);

    // Part 2: an aggressive governor with *no* guard band rides the edge —
    // and has to back off when the hot die kills the completion interrupt.
    sys.set_die_temp_c(40.0);
    let mut aggressive = Governor::new(GovernorConfig {
        guard_band_mhz: 0,
        ..GovernorConfig::default()
    });
    aggressive.characterise(&mut sys, 0);
    let edge = aggressive.select_highest().clone();
    println!(
        "\nedge-riding governor (no guard band) pins the clock at {} MHz; die heats to 100 °C…",
        edge.freq_mhz
    );
    sys.set_die_temp_c(100.0);
    let r = sys.reconfigure(0, &bs, Frequency::from_mhz(edge.freq_mhz));
    println!(
        "transfer at {} MHz / 100 °C: CRC {}, interrupt {}",
        edge.freq_mhz,
        if r.crc_ok() { "valid" } else { "NOT valid" },
        if r.interrupt_seen { "seen" } else { "lost" }
    );
    if !r.crc_ok() || !r.interrupt_seen {
        let fallback = aggressive
            .on_failure()
            .expect("slower point available")
            .clone();
        let r2 = sys.reconfigure(0, &bs, Frequency::from_mhz(fallback.freq_mhz));
        println!(
            "governor backed off to {} MHz -> CRC {}, {:.1} us",
            fallback.freq_mhz,
            if r2.crc_ok() { "valid" } else { "NOT valid" },
            r2.latency.expect("fallback interrupts").as_micros_f64()
        );
        assert!(r2.crc_ok() && r2.interrupt_seen);
    }
}
