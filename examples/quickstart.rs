//! Quickstart: bring up the Fig. 2 system, reconfigure a partition at the
//! nominal 100 MHz, then over-clock to the paper's sweet spot (200 MHz) and
//! watch the latency drop — with the CRC read-back confirming both
//! transfers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::{FrontPanel, SystemConfig, ZynqPdrSystem};
use pdr_lab::sim::Frequency;

fn main() {
    // The ZedBoard-like system: Zynq-7020 fabric, four reconfigurable
    // partitions, 528,568-byte partial bitstreams.
    let mut sys = ZynqPdrSystem::new(SystemConfig::default());
    let mut panel = FrontPanel::new();

    println!(
        "device: {} frames ({} bytes of configuration memory)",
        sys.floorplan().geometry().total_frames(),
        sys.floorplan().geometry().total_config_bytes()
    );
    println!(
        "partitions: {:?}\n",
        sys.floorplan()
            .partitions()
            .iter()
            .map(|p| p.name().to_string())
            .collect::<Vec<_>>()
    );

    // A partial bitstream implementing a FIR-filter ASP in partition RP1.
    let bitstream = sys.make_asp_bitstream(0, AspKind::Fir16, 7);
    println!("partial bitstream: {} bytes\n", bitstream.len());

    for mhz in [100, 200] {
        let report = sys.reconfigure(0, &bitstream, Frequency::from_mhz(mhz));
        panel.show(&report);
        println!("--- OLED ({} MHz) ---\n{}\n", mhz, panel.render());
        assert!(report.crc_ok(), "reconfiguration must verify");
    }

    // The partition now hosts a runnable accelerator.
    let (kind, seed) = sys.identify_asp(0).expect("RP1 is configured");
    println!("RP1 hosts {kind:?} (seed {seed})");
    let y = sys
        .execute_asp(0, &[100, 0, 0, 0, 0, 0, 0, 0])
        .expect("ASP runs");
    println!("FIR impulse response head: {:?}", &y[..8.min(y.len())]);
}
