//! The Sec. VI proposed partial-reconfiguration environment: partial
//! bitstreams staged in a QDR-II+ SRAM feeding a 550 MHz ICAP macro through
//! a PR controller and bitstream decompressor, with the PS scheduler
//! pre-loading the *next* image through the independent write port.
//!
//! ```text
//! cargo run --release --example proposed_system
//! ```

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::proposed::{ProposedConfig, ProposedSystem};
use pdr_lab::pdr::{SystemConfig, ZynqPdrSystem};
use pdr_lab::sim::Frequency;

fn main() {
    // Reference point: the measured system's best power-efficient setting.
    let mut measured = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let bs = measured.make_asp_bitstream(0, AspKind::AesMix, 21);
    let base = measured.reconfigure(0, &bs, Frequency::from_mhz(200));
    println!("== measured system (Sec. IV), 200 MHz over-clock ==");
    println!(
        "  {} bytes in {:.1} us = {:.1} MB/s, CRC {}",
        base.bitstream_bytes,
        base.latency.expect("interrupts at 200 MHz").as_micros_f64(),
        base.throughput_mb_s().expect("interrupts at 200 MHz"),
        if base.crc_ok() { "valid" } else { "NOT VALID" }
    );

    for compress in [false, true] {
        let mut sys = ProposedSystem::new(ProposedConfig {
            compress,
            ..ProposedConfig::default()
        });
        println!(
            "\n== proposed system (Sec. VI), {} ==",
            if compress {
                "with bitstream decompressor"
            } else {
                "raw staging"
            }
        );
        println!(
            "  theoretical SRAM read-port bound: {:.1} MB/s (550 MHz x 36 bit / 2)",
            sys.theoretical_bound_mb_s()
        );
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 21);
        let preload = sys.preload(&bs);
        let r = sys.reconfigure_staged();
        println!(
            "  staged {} bytes (ratio {:.2}) in {:.1} us on the write port",
            r.sram_bytes,
            r.compression_ratio,
            preload.as_micros_f64()
        );
        println!(
            "  reconfigured {} raw bytes in {:.1} us = {:.1} MB/s, CRC {}",
            r.raw_bytes,
            r.latency.as_micros_f64(),
            r.throughput_mb_s,
            if r.crc_ok { "ok" } else { "CORRUPT" }
        );
        let speedup = r.throughput_mb_s / base.throughput_mb_s().expect("interrupts at 200 MHz");
        println!("  speed-up over the measured system: {speedup:.2}x");
        println!("  (pre-load runs on the independent QDR write port, hidden behind",);
        println!("   the previous accelerator's runtime by the PS scheduler)");
    }
}
