//! The CRC read-back block as a single-event-upset (SEU) monitor.
//!
//! The paper's CRC Bitstream Read-Back block "reads back continuously in the
//! background" — which not only validates over-clocked transfers but also
//! catches radiation- or voltage-induced bit flips in configuration memory,
//! the robustness concern for "industrial IoT computers working in harsh
//! environments". This example configures two partitions, lets the monitor
//! scan in the background, injects SEUs, and measures detection latency.
//!
//! ```text
//! cargo run --release --example seu_monitor
//! ```

use pdr_lab::fabric::AspKind;
use pdr_lab::pdr::{SystemConfig, ZynqPdrSystem};
use pdr_lab::sim::{Frequency, SimDuration};

fn main() {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });

    // Configure RP1 and RP2 with ASPs at the power-efficient 200 MHz point.
    for (rp, kind, seed) in [(0usize, AspKind::Fir16, 1u32), (1, AspKind::AesMix, 2)] {
        let bs = sys.make_asp_bitstream(rp, kind, seed);
        let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(200));
        assert!(r.crc_ok());
        println!(
            "configured {} with {kind:?} in {:.1} us",
            sys.floorplan().partition(rp).name(),
            r.latency.expect("interrupts at 200 MHz").as_micros_f64()
        );
    }

    // Start background monitoring over both partitions.
    sys.start_background_monitor(&[0, 1]);
    let scan_us = sys.monitor_scan_period().as_micros_f64();
    println!("\nbackground CRC read-back running; full scan of both partitions ≈ {scan_us:.0} us");

    // Clean background running: no false alarms over several scans.
    sys.run_monitor_for(SimDuration::from_millis(6));
    assert!(
        !sys.crc_error_irq().is_raised(),
        "clean fabric must not alarm"
    );
    println!("6 ms of clean operation: no CRC-error interrupt (no false positives)");

    // Inject an SEU into RP2 and measure time-to-detection.
    let t_flip = sys.now();
    sys.inject_seu(1, 600, 42, 13);
    println!("\ninjected SEU: partition RP2, frame 600, word 42, bit 13");
    let detected = sys.run_monitor_until_alarm(SimDuration::from_millis(10));
    match detected {
        Some(latency) => {
            println!(
                "CRC-error interrupt after {:.1} us (flip at t={})",
                latency.as_micros_f64(),
                t_flip
            );
            assert!(latency <= SimDuration::from_millis(4), "within ~1.5 scans");
        }
        None => panic!("the monitor must detect the SEU"),
    }

    // Recovery: scrub the partition by reconfiguring it.
    let bs = sys.make_asp_bitstream(1, AspKind::AesMix, 2);
    let r = sys.reconfigure(1, &bs, Frequency::from_mhz(200));
    assert!(r.crc_ok());
    println!(
        "\nscrubbed RP2 by partial reconfiguration in {:.1} us — fabric verified clean again",
        r.latency.expect("interrupts at 200 MHz").as_micros_f64()
    );
    sys.start_background_monitor(&[0, 1]);
    sys.run_monitor_for(SimDuration::from_millis(4));
    assert!(!sys.crc_error_irq().is_raised());
    println!("monitor confirms: no further CRC errors");
}
