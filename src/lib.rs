//! # pdr-lab
//!
//! Umbrella crate for the reproduction of *"Robust Throughput Boosting for Low
//! Latency Dynamic Partial Reconfiguration"* (Nannarelli et al., SOCC 2017).
//!
//! This crate re-exports the whole workspace under one namespace so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`axi`] — AXI4-Stream / AXI4-Lite / AXI-MM bus models.
//! * [`mem`] — DRAM and QDR-II+ SRAM models.
//! * [`bitstream`] — configuration bitstream toolchain.
//! * [`codec`] — frame-aware bitstream compression (`PDRC` container) and
//!   the streaming ICAP-side decompressor.
//! * [`fabric`] — FPGA configuration memory and reconfigurable partitions.
//! * [`timing`] — over-clocking and temperature failure models.
//! * [`power`] — power/energy models.
//! * [`dma`] — AXI DMA engine.
//! * [`icap`] — ICAP primitive and controller.
//! * [`pdr`] — the paper's contribution: the over-clocked PDR framework,
//!   experiment harness, baselines, and the proposed SRAM-based design.
//!
//! # Quickstart
//!
//! ```
//! use pdr_lab::pdr::{SystemConfig, ZynqPdrSystem};
//! use pdr_lab::sim::Frequency;
//!
//! // Build the paper's Fig. 2 system and reconfigure partition 0 at the
//! // nominal 100 MHz.
//! let mut sys = ZynqPdrSystem::new(SystemConfig::default());
//! let bitstream = sys.make_partial_bitstream(0, 0xA5);
//! let report = sys.reconfigure(0, &bitstream, Frequency::from_mhz(100));
//! assert!(report.crc_ok());
//! ```

pub use pdr_axi as axi;
pub use pdr_bitstream as bitstream;
pub use pdr_bitstream_codec as codec;
pub use pdr_core as pdr;
pub use pdr_dma as dma;
pub use pdr_fabric as fabric;
pub use pdr_icap as icap;
pub use pdr_mem as mem;
pub use pdr_power as power;
pub use pdr_sim_core as sim;
pub use pdr_timing as timing;
