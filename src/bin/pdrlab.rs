//! `pdrlab` — command-line front end for the reproduction.
//!
//! ```text
//! pdrlab table1 [--small] [--csv]  regenerate Table I (--csv on most sweeps)
//! pdrlab fig5 [--small]           regenerate the Fig. 5 curve
//! pdrlab stress [--small]         regenerate the Sec. IV-A stress matrix
//! pdrlab fig6 [--small]           regenerate the Fig. 6 power fan
//! pdrlab table2 [--small]         regenerate Table II
//! pdrlab table3 [--small]         regenerate Table III
//! pdrlab proposed [--small]       run the Sec. VI proposed system
//! pdrlab headline                 abstract/conclusion headline numbers
//! pdrlab reconfigure [--rp N] [--mhz F] [--temp T] [--switches 0bXXXXXXXX]
//!                                 one reconfiguration with an OLED-style report
//! pdrlab info                     device/floorplan summary
//! ```

use std::process::ExitCode;

use pdr_core::experiments::{self as exp, ExperimentConfig, TABLE1_PAPER, TABLE2_PAPER};
use pdr_core::{switch_frequency, FrontPanel, SystemConfig, ZynqPdrSystem};
use pdr_sim_core::Frequency;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pdrlab <table1|fig5|stress|fig6|table2|table3|proposed|headline|reconfigure|info> [options]\n\
         options:\n  --small              miniature device (fast)\n  --csv                machine-readable output (table1/fig5/stress/fig6/table2)\n  --rp N               partition index (reconfigure)\n  --mhz F              over-clock frequency in MHz (reconfigure)\n  --temp T             die temperature in °C (reconfigure)\n  --switches BITS      frequency from the 8 slide switches, e.g. 0b00010000"
    );
    ExitCode::from(2)
}

struct Args {
    small: bool,
    csv: bool,
    rp: usize,
    mhz: u64,
    temp: f64,
    switches: Option<u8>,
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        small: false,
        csv: false,
        rp: 0,
        mhz: 200,
        temp: 40.0,
        switches: None,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--small" => args.small = true,
            "--csv" => args.csv = true,
            "--rp" => args.rp = next("--rp")?.parse().map_err(|e| format!("--rp: {e}"))?,
            "--mhz" => args.mhz = next("--mhz")?.parse().map_err(|e| format!("--mhz: {e}"))?,
            "--temp" => {
                args.temp = next("--temp")?
                    .parse()
                    .map_err(|e| format!("--temp: {e}"))?
            }
            "--switches" => {
                let raw = next("--switches")?;
                let raw = raw.trim_start_matches("0b");
                let v = u8::from_str_radix(raw, 2).map_err(|e| format!("--switches: {e}"))?;
                args.switches = Some(v);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(args)
}

fn cfg(small: bool) -> ExperimentConfig {
    if small {
        ExperimentConfig::small()
    } else {
        ExperimentConfig::default()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "N/A".into())
}

fn cmd_table1(a: &Args) {
    let rows = exp::table1(&cfg(a.small));
    if a.csv {
        print!("{}", exp::table1_csv(&rows));
        return;
    }
    println!("Table I — throughput vs frequency (paper values in parentheses)");
    for (row, (_, paper, _)) in rows.iter().zip(TABLE1_PAPER.iter()) {
        let (pl, pt) = paper
            .map(|(l, t)| (format!("{l:.2}"), format!("{t:.2}")))
            .unwrap_or_else(|| ("N/A".into(), "N/A".into()));
        println!(
            "{:>4} MHz | {:>10} us ({:>8}) | {:>8} MB/s ({:>7}) | CRC {}",
            row.freq_mhz,
            opt(row.latency_us),
            pl,
            opt(row.throughput_mb_s),
            pt,
            if row.crc_valid { "valid" } else { "NOT VALID" },
        );
    }
}

fn cmd_fig5(a: &Args) {
    let pts = exp::fig5(&cfg(a.small));
    if a.csv {
        print!("{}", exp::fig5_csv(&pts));
        return;
    }
    println!("Fig. 5 — throughput vs frequency");
    let max = pts
        .iter()
        .filter_map(|p| p.throughput_mb_s)
        .fold(0.0f64, f64::max);
    for p in pts {
        match p.throughput_mb_s {
            Some(t) => println!(
                "{:>4} MHz | {t:>8.2} MB/s | {}",
                p.freq_mhz,
                "#".repeat((t / max * 60.0) as usize)
            ),
            None => println!("{:>4} MHz |      N/A (no interrupt)", p.freq_mhz),
        }
    }
}

fn cmd_stress(a: &Args) {
    let cells = exp::stress(&cfg(a.small));
    if a.csv {
        print!("{}", exp::stress_csv(&cells));
        return;
    }
    println!("Sec. IV-A — temperature stress (ok / -v = no interrupt / %% = corrupt)");
    let mut freqs: Vec<u64> = cells.iter().map(|c| c.freq_mhz).collect();
    freqs.sort_unstable();
    freqs.dedup();
    print!("{:>7} |", "T\\f");
    for f in &freqs {
        print!(" {f:>4}");
    }
    println!();
    for &t in &exp::STRESS_TEMPS_C {
        print!("{t:>5} C |");
        for &f in &freqs {
            let c = cells
                .iter()
                .find(|c| c.freq_mhz == f && c.temp_c == t)
                .expect("cell");
            print!(
                " {:>4}",
                match (c.crc_valid, c.interrupt_seen) {
                    (true, true) => "ok",
                    (true, false) => "-v",
                    (false, _) => "%%",
                }
            );
        }
        println!();
    }
    println!("failures: {:?}", exp::stress_failures(&cells));
}

fn cmd_fig6(a: &Args) {
    let pts = exp::fig6(&cfg(a.small));
    if a.csv {
        print!("{}", exp::fig6_csv(&pts));
        return;
    }
    println!("Fig. 6 — P_PDR [W] vs frequency and temperature");
    let mut freqs: Vec<u64> = pts.iter().map(|p| p.freq_mhz).collect();
    freqs.sort_unstable();
    freqs.dedup();
    print!("{:>8} |", "f\\T");
    for t in exp::FIG6_TEMPS_C {
        print!(" {t:>6.0}C");
    }
    println!();
    for f in freqs {
        print!("{f:>4} MHz |");
        for t in exp::FIG6_TEMPS_C {
            let p = pts
                .iter()
                .find(|p| p.freq_mhz == f && p.temp_c == t)
                .expect("point");
            print!(" {:>7.3}", p.p_pdr_w);
        }
        println!();
    }
}

fn cmd_table2(a: &Args) {
    let rows = exp::table2(&cfg(a.small));
    if a.csv {
        print!("{}", exp::table2_csv(&rows));
        return;
    }
    println!("Table II — power efficiency at 40 °C (paper values in parentheses)");
    for (row, (_, pw, pt, pp)) in rows.iter().zip(TABLE2_PAPER.iter()) {
        println!(
            "{:>4} MHz | {:>5.2} W ({pw:>5.2}) | {:>8.2} MB/s ({pt:>7.2}) | {:>4.0} MB/J ({pp:>4.0})",
            row.freq_mhz, row.p_pdr_w, row.throughput_mb_s, row.ppw_mb_j
        );
    }
    let best = exp::best_ppw(&rows);
    println!("best: {} MHz at {:.0} MB/J", best.freq_mhz, best.ppw_mb_j);
}

fn cmd_table3(a: &Args) {
    println!("Table III — comparison with related work");
    for r in exp::table3(&cfg(a.small)) {
        println!(
            "{:<10} | {:<16} | {:>4.0} MHz | {:>7.1} MB/s",
            r.design, r.platform, r.freq_mhz, r.throughput_mb_s
        );
    }
}

fn cmd_proposed(a: &Args) {
    println!("Sec. VI — proposed SRAM-based PR environment");
    for r in exp::proposed(&cfg(a.small)) {
        println!(
            "{:<24} | {:>8} raw B | {:>8.1} us | {:>7.1} MB/s | ratio {:>4.2} | CRC {}",
            r.scenario,
            r.raw_bytes,
            r.latency_us,
            r.throughput_mb_s,
            r.compression_ratio,
            if r.crc_ok { "ok" } else { "FAIL" }
        );
    }
}

fn cmd_headline() {
    let h = exp::headline(&ExperimentConfig::default());
    println!("knee:            {:.0} MHz (paper ~200)", h.knee_mhz);
    println!(
        "thpt at knee:    {:.1} MB/s (paper 781.84)",
        h.knee_throughput_mb_s
    );
    println!(
        "max thpt:        {:.1} MB/s (paper 790.14)",
        h.max_throughput_mb_s
    );
    println!("best PpW:        {:.0} MB/J (paper 599)", h.best_ppw_mb_j);
    println!(
        "1.2 MB latency:  {:.1} us for {} bytes at the knee",
        h.latency_1p2mb_us, h.big_bitstream_bytes
    );
}

fn cmd_reconfigure(a: &Args) -> Result<(), String> {
    let mut sys = if a.small {
        ZynqPdrSystem::new(SystemConfig::fast_test())
    } else {
        ZynqPdrSystem::new(SystemConfig::default())
    };
    if a.rp >= sys.floorplan().partitions().len() {
        return Err(format!("--rp {} out of range", a.rp));
    }
    sys.set_die_temp_c(a.temp);
    let freq = match a.switches {
        Some(s) => switch_frequency(s),
        None => Frequency::from_mhz(a.mhz),
    };
    let bs = sys.make_partial_bitstream(a.rp, 1);
    let report = sys.reconfigure(a.rp, &bs, freq);
    let mut panel = FrontPanel::new();
    panel.show(&report);
    println!("{}", panel.render());
    Ok(())
}

fn cmd_info(a: &Args) {
    let sys = if a.small {
        ZynqPdrSystem::new(SystemConfig::fast_test())
    } else {
        ZynqPdrSystem::new(SystemConfig::default())
    };
    let g = sys.floorplan().geometry();
    println!(
        "device: {} rows x {} columns, {} frames, {} configuration bytes",
        g.rows(),
        g.columns().len(),
        g.total_frames(),
        g.total_config_bytes()
    );
    for p in sys.floorplan().partitions() {
        println!(
            "  {}: row {}, columns {:?}, {} frames ({} payload bytes)",
            p.name(),
            p.row(),
            p.columns(),
            p.frame_count(g),
            p.payload_bytes(g)
        );
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "table1" => cmd_table1(&args),
        "fig5" => cmd_fig5(&args),
        "stress" => cmd_stress(&args),
        "fig6" => cmd_fig6(&args),
        "table2" => cmd_table2(&args),
        "table3" => cmd_table3(&args),
        "proposed" => cmd_proposed(&args),
        "headline" => cmd_headline(),
        "reconfigure" => {
            if let Err(e) = cmd_reconfigure(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "info" => cmd_info(&args),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
