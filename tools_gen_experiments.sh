#!/bin/sh
# Regenerates EXPERIMENTS.md from the per-experiment reports produced by
# `cargo bench` (each bench target writes target/experiments/<name>.md).
set -e
cd "$(dirname "$0")"
out=EXPERIMENTS.md
cat > "$out" <<'HDR'
# EXPERIMENTS — paper vs. measured (simulation)

Every table and figure of *"Robust Throughput Boosting for Low Latency
Dynamic Partial Reconfiguration"* (Nannarelli et al., SOCC 2017), regenerated
on the cycle-level simulation in this repository. Each section below is
written by its bench target (`cargo bench -p pdr-bench --bench <name>`); run
`./tools_gen_experiments.sh` after `cargo bench` to refresh this file.

Absolute numbers are produced by a calibrated simulator, not the authors'
ZedBoard; the calibration constants and their provenance are listed in
DESIGN.md. The *shape* claims (who wins, knee position, failure regimes,
single stress-failure cell) are asserted programmatically inside the bench
targets and integration tests — a regression that changes any qualitative
result fails the build.

HDR
# The Monte Carlo fleet section comes from the fault-campaign example, not a
# bench target; regenerate it here so the stitched file is always current.
cargo run --release --offline --example fault_campaign -- 2017 --duration-ms 5 --replicas 8 \
  > /dev/null 2>&1 || echo "fault_campaign --replicas failed; fleet section may be stale" >&2
# Likewise the fleet-scale control-plane campaign section comes from the
# fleet example (the `fleet` bench writes its own determinism/speedup table).
cargo run --release --offline --example fleet \
  > /dev/null 2>&1 || echo "fleet example failed; fleet_campaign section may be stale" >&2

for f in table1 fig5 temp_stress fig6 table2 table3 proposed headline \
         ablation_fifo ablation_burst ablation_crc ablation_compress ablation_interconnect ablation_size ablation_guardband ablation_contention seu_campaign \
         recovery scheduler codec fault_fleet campaign fleet fleet_campaign dvfs; do
  if [ -f "target/experiments/$f.md" ]; then
    cat "target/experiments/$f.md" >> "$out"
    echo >> "$out"
  else
    echo "missing report: target/experiments/$f.md (run cargo bench first)" >&2
  fi
done
echo "wrote $out"
