//! Codec telemetry.

use pdr_sim_core::impl_json_struct;

/// What the compressor did to one bitstream: sizes, op mix, and derived
/// ratios. Serialisable like every other report in the workspace, with the
/// PR 3 non-finite-float contract: ratio fields are `None` on zero-byte
/// inputs and never reach JSON as `inf`/`NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecReport {
    /// Uncompressed size in bytes (4 × `raw_words`).
    pub raw_bytes: u64,
    /// Container size in bytes (headers included).
    pub compressed_bytes: u64,
    /// Uncompressed size in 32-bit words.
    pub raw_words: u64,
    /// CRC-protected blocks in the container.
    pub blocks: u64,
    /// Words passed through verbatim as the sync/header preamble.
    pub header_words: u64,
    /// `LIT` ops emitted.
    pub literal_ops: u64,
    /// Words carried by `LIT` ops.
    pub literal_words: u64,
    /// `NOP` run ops emitted.
    pub nop_ops: u64,
    /// Words carried by `NOP` runs.
    pub nop_words: u64,
    /// `ZERO` run ops emitted.
    pub zero_ops: u64,
    /// Words carried by `ZERO` runs.
    pub zero_words: u64,
    /// `COPY` back-reference ops emitted.
    pub backref_ops: u64,
    /// Words carried by back-references.
    pub backref_words: u64,
    /// `compressed_bytes / raw_bytes`; `None` for a zero-byte input.
    pub ratio: Option<f64>,
    /// `100 · (1 − ratio)`; `None` for a zero-byte input.
    pub savings_pct: Option<f64>,
}

impl_json_struct!(CodecReport {
    raw_bytes,
    compressed_bytes,
    raw_words,
    blocks,
    header_words,
    literal_ops,
    literal_words,
    nop_ops,
    nop_words,
    zero_ops,
    zero_words,
    backref_ops,
    backref_words,
    ratio,
    savings_pct,
});

impl CodecReport {
    /// A report with every counter zeroed and the ratio fields `None`.
    pub fn empty() -> Self {
        CodecReport {
            raw_bytes: 0,
            compressed_bytes: 0,
            raw_words: 0,
            blocks: 0,
            header_words: 0,
            literal_ops: 0,
            literal_words: 0,
            nop_ops: 0,
            nop_words: 0,
            zero_ops: 0,
            zero_words: 0,
            backref_ops: 0,
            backref_words: 0,
            ratio: None,
            savings_pct: None,
        }
    }

    /// Fills `ratio`/`savings_pct` from `raw_bytes`/`compressed_bytes`,
    /// honouring the non-finite contract: a zero-byte input yields `None`
    /// rather than `NaN`/`inf`.
    pub fn finalise_ratios(&mut self) {
        self.ratio = if self.raw_bytes == 0 {
            None
        } else {
            Some(self.compressed_bytes as f64 / self.raw_bytes as f64).filter(|r| r.is_finite())
        };
        self.savings_pct = self.ratio.map(|r| 100.0 * (1.0 - r));
    }

    /// Effective delivery throughput when the *compressed* image moves over
    /// a link sustaining `link_mb_s`: the consumer sees raw words appear at
    /// `link / ratio`. `None` when the ratio or the link is degenerate (a
    /// link moving no bytes delivers no throughput).
    pub fn effective_throughput_mb_s(&self, link_mb_s: f64) -> Option<f64> {
        self.ratio
            .filter(|r| *r > 0.0)
            .map(|r| link_mb_s / r)
            .filter(|t| t.is_finite() && *t > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::json::{FromJson, ToJson};

    #[test]
    fn zero_byte_input_has_no_ratio() {
        let mut r = CodecReport::empty();
        r.finalise_ratios();
        assert_eq!(r.ratio, None);
        assert_eq!(r.savings_pct, None);
        assert_eq!(r.effective_throughput_mb_s(1237.5), None);
        let text = r.to_json_string();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn ratios_are_finite_and_consistent() {
        let mut r = CodecReport::empty();
        r.raw_bytes = 1000;
        r.compressed_bytes = 250;
        r.finalise_ratios();
        assert_eq!(r.ratio, Some(0.25));
        assert_eq!(r.savings_pct, Some(75.0));
        let eff = r.effective_throughput_mb_s(1237.5).unwrap();
        assert!((eff - 4950.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = CodecReport::empty();
        r.raw_bytes = 4040;
        r.raw_words = 1010;
        r.compressed_bytes = 356;
        r.blocks = 1;
        r.header_words = 34;
        r.literal_ops = 2;
        r.literal_words = 40;
        r.zero_ops = 3;
        r.zero_words = 800;
        r.backref_ops = 1;
        r.backref_words = 170;
        r.finalise_ratios();
        let text = r.to_json_string();
        let back = CodecReport::from_json_str(&text).expect("decodes");
        assert_eq!(back, r);
        assert_eq!(back.to_json_string(), text);
    }
}
