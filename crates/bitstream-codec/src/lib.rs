//! # pdr-bitstream-codec
//!
//! Frame-aware compression for Xilinx-style partial bitstreams, and the
//! streaming decompressor the paper's Sec. VI architecture places between
//! the QDR-II+ staging SRAM and the ICAP.
//!
//! Partial bitstreams are extremely compressible in practice: the frame
//! payload is dominated by zero words (unrouted fabric), NOP padding
//! between packets, and — for ASPs instantiated several times — repeated
//! configuration frames at the 101-word frame stride. This crate exploits
//! exactly those structures:
//!
//! * [`compress`] turns a word stream into a `PDRC` container (see
//!   [`container`]): sync/header passthrough, 3-byte RLE ops for NOP/zero
//!   runs, `COPY` back-references for repeated frames, all packed into
//!   blocks that each carry a CRC-32;
//! * [`StreamDecoder`] decodes it with a **bounded input FIFO** and
//!   word-at-a-time output, so a cycle-level component can sit it directly
//!   on the SRAM→ICAP path and decompression overlaps the DMA transfer
//!   instead of serialising after it;
//! * [`CodecReport`] records sizes and op mix, JSON-serialisable under the
//!   workspace-wide non-finite-float contract.
//!
//! # Example
//!
//! ```
//! use pdr_bitstream::{Builder, Frame, FrameAddress};
//! use pdr_bitstream_codec::{compress_bitstream, decompress_to_bitstream};
//!
//! let far = FrameAddress::new(0, 0, 3, 0);
//! let bs = Builder::new(0x0372_7093)
//!     .add_frames(far, vec![Frame::default(); 16]) // all-zero frames
//!     .build();
//! let c = compress_bitstream(&bs);
//! assert!(c.report.ratio.unwrap() < 0.5, "zero frames must compress");
//! let back = decompress_to_bitstream(&c.bytes).unwrap();
//! assert_eq!(back, bs, "round-trip is bit-exact");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod decode;
pub mod encode;
pub mod report;

pub use container::{BLOCK_WORDS, MAX_RUN, MIN_MATCH, MIN_RUN, WINDOW_WORDS};
pub use decode::{decompress, CodecError, StreamDecoder};
pub use encode::{compress, Compressed};
pub use report::CodecReport;

use pdr_bitstream::Bitstream;

/// Compresses a [`Bitstream`] (its big-endian word view) into a `PDRC`
/// container.
pub fn compress_bitstream(bs: &Bitstream) -> Compressed {
    let words: Vec<u32> = bs.words().collect();
    compress(&words)
}

/// Decompresses a `PDRC` container back into a [`Bitstream`].
pub fn decompress_to_bitstream(bytes: &[u8]) -> Result<Bitstream, CodecError> {
    Ok(Bitstream::from_words(&decompress(bytes)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_bitstream::{Builder, Frame, FrameAddress};

    #[test]
    fn bitstream_roundtrip_is_bit_exact() {
        let far = FrameAddress::new(0, 0, 1, 0);
        let mut frames = vec![Frame::filled(0x5555_AAAA); 3];
        frames.push(Frame::default());
        frames.push(Frame::filled(0x5555_AAAA));
        let bs = Builder::new(0x0372_7093).add_frames(far, frames).build();
        let c = compress_bitstream(&bs);
        assert_eq!(c.report.raw_bytes, bs.len() as u64);
        let back = decompress_to_bitstream(&c.bytes).expect("clean container");
        assert_eq!(back, bs);
    }
}
