//! The `PDRC` container format.
//!
//! A compressed bitstream is a 16-byte container header followed by
//! `block_count` blocks. Each block carries its own CRC-32 so the streaming
//! decompressor can verify integrity incrementally — it never needs to
//! buffer more than one op worth of payload, which is what keeps the input
//! FIFO bounded (see `docs/CODEC.md` for the backpressure math).
//!
//! ```text
//! Container      := ContainerHeader Block*
//! ContainerHeader (16 bytes):
//!     magic       [4]     = "PDRC"
//!     version     u8      = 1
//!     flags       u8      = 0        (reserved, must be zero)
//!     reserved    u16 LE  = 0        (must be zero)
//!     raw_words   u32 LE             total decoded 32-bit words
//!     block_count u32 LE
//! Block          := BlockHeader payload
//! BlockHeader (12 bytes):
//!     payload_len u32 LE             bytes of op payload that follow
//!     raw_words   u32 LE             words this block decodes to (≤ 4096)
//!     payload_crc u32 LE             CRC-32 (IEEE) of the payload bytes
//! payload        := op*
//!     0x00 LIT   n:u16 LE  w[n]:u32 LE   n literal words
//!     0x01 NOP   n:u16 LE                n × NOP_WORD (0x2000_0000)
//!     0x02 ZERO  n:u16 LE                n × 0x0000_0000
//!     0x03 COPY  n:u16 LE  d:u16 LE      copy n words from d words back
//! ```
//!
//! `COPY` references the *decoded output* stream (overlap allowed, so
//! `d = 101` with `n = 101·k` replays a configuration frame `k` times);
//! `d` never exceeds [`WINDOW_WORDS`]. Run lengths `n` are never zero.
//! Every header field is load-bearing: the decoder rejects any magic,
//! version, flags or reserved mismatch, checks each block's payload CRC,
//! and finally checks the total word count, so a corrupted container
//! cannot silently decode to the original image.

/// Container magic, `b"PDRC"`.
pub const MAGIC: [u8; 4] = *b"PDRC";
/// Container format version this crate reads and writes.
pub const VERSION: u8 = 1;
/// Container header size in bytes.
pub const CONTAINER_HEADER_BYTES: usize = 16;
/// Block header size in bytes.
pub const BLOCK_HEADER_BYTES: usize = 12;

/// Back-reference window, in 32-bit words. `COPY` distances fit in a u16;
/// 4096 words (two QDR burst pages, ~40 frames) is enough to catch the
/// dominant repetition — identical or near-identical configuration frames
/// 101 words apart — while keeping the decompressor's history RAM at
/// 16 KiB, a pair of BRAM36s on a 7-series device.
pub const WINDOW_WORDS: usize = 4096;

/// Maximum decoded words per block. A block is the CRC-verification unit:
/// bounding it bounds how much output can be in flight before an integrity
/// failure is detected.
pub const BLOCK_WORDS: usize = 4096;

/// Longest single op run (`n` is a u16).
pub const MAX_RUN: usize = u16::MAX as usize;

/// Op byte: literal words follow.
pub const OP_LIT: u8 = 0x00;
/// Op byte: a run of NOP words.
pub const OP_NOP: u8 = 0x01;
/// Op byte: a run of zero words.
pub const OP_ZERO: u8 = 0x02;
/// Op byte: a back-reference copy.
pub const OP_COPY: u8 = 0x03;

/// Minimum zero/NOP run length worth an RLE op (3 bytes of op vs 4·n raw).
pub const MIN_RUN: usize = 3;
/// Minimum back-reference length worth a COPY op (5 bytes of op vs 4·n).
pub const MIN_MATCH: usize = 6;

/// Serialises the 16-byte container header.
pub fn container_header(raw_words: u32, block_count: u32) -> [u8; CONTAINER_HEADER_BYTES] {
    let mut h = [0u8; CONTAINER_HEADER_BYTES];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    // h[5] flags, h[6..8] reserved: zero.
    h[8..12].copy_from_slice(&raw_words.to_le_bytes());
    h[12..16].copy_from_slice(&block_count.to_le_bytes());
    h
}

/// Serialises a 12-byte block header.
pub fn block_header(
    payload_len: u32,
    raw_words: u32,
    payload_crc: u32,
) -> [u8; BLOCK_HEADER_BYTES] {
    let mut h = [0u8; BLOCK_HEADER_BYTES];
    h[0..4].copy_from_slice(&payload_len.to_le_bytes());
    h[4..8].copy_from_slice(&raw_words.to_le_bytes());
    h[8..12].copy_from_slice(&payload_crc.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layouts_are_stable() {
        let h = container_header(0x0102_0304, 7);
        assert_eq!(&h[0..4], b"PDRC");
        assert_eq!(h[4], 1);
        assert_eq!(&h[5..8], &[0, 0, 0]);
        assert_eq!(&h[8..12], &0x0102_0304u32.to_le_bytes());
        assert_eq!(&h[12..16], &7u32.to_le_bytes());

        let b = block_header(100, 4096, 0xDEAD_BEEF);
        assert_eq!(&b[0..4], &100u32.to_le_bytes());
        assert_eq!(&b[4..8], &4096u32.to_le_bytes());
        assert_eq!(&b[8..12], &0xDEAD_BEEFu32.to_le_bytes());
    }

    #[test]
    fn window_distances_fit_in_u16() {
        assert!(WINDOW_WORDS <= u16::MAX as usize);
        assert!(BLOCK_WORDS <= u32::MAX as usize);
        const { assert!(MIN_MATCH >= 2 && MIN_RUN >= 1) };
    }
}
