//! The streaming decompressor.
//!
//! [`StreamDecoder`] is the software model of the hardware block that sits
//! between the staging memory and the ICAP in the paper's Sec. VI
//! architecture. It is written as a push/pull state machine so a
//! cycle-level component can drive it with real backpressure:
//!
//! * [`StreamDecoder::push`] accepts at most [`StreamDecoder::free_capacity`]
//!   bytes — the bounded input FIFO. The decoder never buffers payload: each
//!   byte is consumed into the CRC and the op state machine as it arrives,
//!   so a tiny FIFO (default 64 bytes) suffices at line rate.
//! * [`StreamDecoder::pop_word`] produces at most one decoded 32-bit word
//!   per call — the ICAP-side handshake. It returns `Ok(None)` when starved
//!   for input and latches any [`CodecError`] permanently (a hardware
//!   decoder would raise an error IRQ and wedge until reset).
//!
//! Integrity is verified **incrementally**: each block's CRC-32 accumulates
//! as payload bytes stream through and is checked the moment the block
//! completes, bounding undetected-corruption exposure to one
//! [`BLOCK_WORDS`] block (the read-back CRC pass after reconfiguration
//! backstops even that, see `System::verify_region`).

use std::collections::VecDeque;
use std::fmt;

use pdr_bitstream::packet::NOP_WORD;
use pdr_bitstream::Crc32;

use crate::container::{
    BLOCK_HEADER_BYTES, BLOCK_WORDS, CONTAINER_HEADER_BYTES, MAGIC, OP_COPY, OP_LIT, OP_NOP,
    OP_ZERO, VERSION, WINDOW_WORDS,
};

/// Everything that can go wrong while decoding a `PDRC` container. Every
/// header field is validated, so any single corrupted byte either trips one
/// of these or changes the decoded words (never a silent identical decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The container does not start with `PDRC`.
    BadMagic,
    /// Unknown container version.
    BadVersion(u8),
    /// Non-zero flags/reserved header fields.
    BadHeader,
    /// Unknown op byte in a block payload.
    BadOpcode(u8),
    /// An op with a zero run length (the encoder never emits one).
    ZeroRun,
    /// A `COPY` reaching beyond the decoded history or the window.
    BackrefOutOfRange {
        /// The offending distance.
        dist: u16,
        /// Words actually available to reference.
        available: u64,
    },
    /// A block's payload CRC-32 did not match its header.
    BlockCrcMismatch {
        /// Zero-based index of the failing block.
        block: u32,
    },
    /// A block's ops decoded more words than its header claimed.
    BlockOverrun {
        /// Zero-based index of the failing block.
        block: u32,
    },
    /// A block's ops finished with payload bytes left over.
    TrailingPayload {
        /// Zero-based index of the failing block.
        block: u32,
    },
    /// The stream ended mid-structure.
    Truncated,
    /// The decoded word count disagrees with the container header.
    WordCountMismatch {
        /// Words the container header promised.
        expected: u64,
        /// Words actually decoded.
        got: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "container magic is not PDRC"),
            CodecError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            CodecError::BadHeader => write!(f, "non-zero reserved header fields"),
            CodecError::BadOpcode(b) => write!(f, "unknown op byte {b:#04x}"),
            CodecError::ZeroRun => write!(f, "zero-length run"),
            CodecError::BackrefOutOfRange { dist, available } => {
                write!(
                    f,
                    "back-reference {dist} exceeds history ({available} words)"
                )
            }
            CodecError::BlockCrcMismatch { block } => {
                write!(f, "payload CRC mismatch in block {block}")
            }
            CodecError::BlockOverrun { block } => {
                write!(f, "block {block} decodes more words than declared")
            }
            CodecError::TrailingPayload { block } => {
                write!(f, "block {block} has undecoded trailing payload")
            }
            CodecError::Truncated => write!(f, "container truncated"),
            CodecError::WordCountMismatch { expected, got } => {
                write!(f, "decoded {got} words, container promised {expected}")
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    ContainerHeader,
    BlockHeader,
    Block,
    Done,
}

#[derive(Debug, Clone, Copy)]
enum OpState {
    NeedOpcode,
    Params { code: u8, got: u8 },
    Lit { left: u16 },
    Run { word: u32, left: u16 },
    Copy { left: u16, dist: u16 },
}

enum PayloadByte {
    Byte(u8),
    Starved,
    Exhausted,
}

/// The bounded-FIFO streaming decoder. See the module docs for the
/// push/pull contract.
#[derive(Debug)]
pub struct StreamDecoder {
    input: VecDeque<u8>,
    capacity: usize,
    phase: Phase,
    hdr_buf: [u8; CONTAINER_HEADER_BYTES],
    hdr_got: usize,
    raw_words: u64,
    block_count: u32,
    blocks_done: u32,
    payload_left: u32,
    raw_left: u32,
    expected_crc: u32,
    crc: Crc32,
    op: OpState,
    pbuf: [u8; 4],
    wbuf: [u8; 4],
    wgot: u8,
    history: Vec<u32>,
    hist_pos: usize,
    words_out: u64,
    error: Option<CodecError>,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// A decoder with the default 64-byte input FIFO.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// A decoder whose input FIFO holds `capacity` bytes (clamped up to the
    /// container header size so headers can always make progress).
    pub fn with_capacity(capacity: usize) -> Self {
        StreamDecoder {
            input: VecDeque::new(),
            capacity: capacity.max(CONTAINER_HEADER_BYTES),
            phase: Phase::ContainerHeader,
            hdr_buf: [0; CONTAINER_HEADER_BYTES],
            hdr_got: 0,
            raw_words: 0,
            block_count: 0,
            blocks_done: 0,
            payload_left: 0,
            raw_left: 0,
            expected_crc: 0,
            crc: Crc32::ieee(),
            op: OpState::NeedOpcode,
            pbuf: [0; 4],
            wbuf: [0; 4],
            wgot: 0,
            history: vec![0; WINDOW_WORDS],
            hist_pos: 0,
            words_out: 0,
            error: None,
        }
    }

    /// Free input-FIFO space, in bytes.
    pub fn free_capacity(&self) -> usize {
        self.capacity - self.input.len()
    }

    /// Offers `bytes`; the decoder accepts up to its free capacity and
    /// returns how many it took. Once the container is fully decoded any
    /// trailing bytes (e.g. word-alignment padding from the staging memory)
    /// are swallowed without buffering.
    pub fn push(&mut self, bytes: &[u8]) -> usize {
        if self.phase == Phase::Done && self.error.is_none() {
            return bytes.len();
        }
        let n = bytes.len().min(self.free_capacity());
        self.input.extend(bytes[..n].iter().copied());
        n
    }

    /// Total words decoded so far.
    pub fn words_out(&self) -> u64 {
        self.words_out
    }

    /// Total words the container header promised (0 until the header is
    /// parsed).
    pub fn total_words(&self) -> u64 {
        self.raw_words
    }

    /// Blocks whose payload CRC has validated so far. Monotone within a
    /// stream; observers (e.g. the proposed system's trace layer) poll it
    /// between clock edges to attribute progress to individual blocks.
    pub fn blocks_done(&self) -> u32 {
        self.blocks_done
    }

    /// Total blocks the container header promised (0 until the header is
    /// parsed).
    pub fn block_count(&self) -> u32 {
        self.block_count
    }

    /// Whether the whole container decoded cleanly.
    pub fn finished(&self) -> bool {
        self.phase == Phase::Done && self.error.is_none()
    }

    /// The latched error, if the stream wedged.
    pub fn error(&self) -> Option<CodecError> {
        self.error
    }

    fn fail(&mut self, e: CodecError) -> Result<Option<u32>, CodecError> {
        self.error = Some(e);
        Err(e)
    }

    fn payload_byte(&mut self) -> PayloadByte {
        if self.payload_left == 0 {
            return PayloadByte::Exhausted;
        }
        match self.input.pop_front() {
            Some(b) => {
                self.crc.update(&[b]);
                self.payload_left -= 1;
                PayloadByte::Byte(b)
            }
            None => PayloadByte::Starved,
        }
    }

    /// Emits one decoded word into the history window and the output.
    fn emit(&mut self, word: u32) -> Result<Option<u32>, CodecError> {
        if self.raw_left == 0 {
            return self.fail(CodecError::BlockOverrun {
                block: self.blocks_done,
            });
        }
        self.history[self.hist_pos] = word;
        self.hist_pos = (self.hist_pos + 1) % WINDOW_WORDS;
        self.words_out += 1;
        self.raw_left -= 1;
        Ok(Some(word))
    }

    /// Transitions to the next block header, or finishes the container.
    fn next_block(&mut self) -> Result<(), CodecError> {
        self.hdr_got = 0;
        if self.blocks_done == self.block_count {
            if self.words_out != self.raw_words {
                let e = CodecError::WordCountMismatch {
                    expected: self.raw_words,
                    got: self.words_out,
                };
                self.error = Some(e);
                return Err(e);
            }
            self.phase = Phase::Done;
            self.input.clear(); // swallow any trailing alignment padding
        } else {
            self.phase = Phase::BlockHeader;
        }
        Ok(())
    }

    /// Decodes and returns the next word, `Ok(None)` when starved for
    /// input (or finished), or the latched error.
    pub fn pop_word(&mut self) -> Result<Option<u32>, CodecError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        loop {
            match self.phase {
                Phase::Done => return Ok(None),
                Phase::ContainerHeader => {
                    while self.hdr_got < CONTAINER_HEADER_BYTES {
                        let Some(b) = self.input.pop_front() else {
                            return Ok(None);
                        };
                        self.hdr_buf[self.hdr_got] = b;
                        self.hdr_got += 1;
                    }
                    let h = self.hdr_buf;
                    if h[0..4] != MAGIC {
                        return self.fail(CodecError::BadMagic);
                    }
                    if h[4] != VERSION {
                        return self.fail(CodecError::BadVersion(h[4]));
                    }
                    if h[5] != 0 || h[6] != 0 || h[7] != 0 {
                        return self.fail(CodecError::BadHeader);
                    }
                    self.raw_words = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as u64;
                    self.block_count = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
                    self.next_block()?;
                }
                Phase::BlockHeader => {
                    while self.hdr_got < BLOCK_HEADER_BYTES {
                        let Some(b) = self.input.pop_front() else {
                            return Ok(None);
                        };
                        self.hdr_buf[self.hdr_got] = b;
                        self.hdr_got += 1;
                    }
                    let h = self.hdr_buf;
                    self.payload_left = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
                    self.raw_left = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
                    self.expected_crc = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
                    if self.raw_left as usize > BLOCK_WORDS {
                        return self.fail(CodecError::BlockOverrun {
                            block: self.blocks_done,
                        });
                    }
                    self.crc.reset();
                    self.op = OpState::NeedOpcode;
                    self.phase = Phase::Block;
                }
                Phase::Block => {
                    // Block complete? Verify the CRC the moment the last op
                    // finishes — incremental integrity.
                    if self.raw_left == 0 && matches!(self.op, OpState::NeedOpcode) {
                        let block = self.blocks_done;
                        if self.payload_left != 0 {
                            return self.fail(CodecError::TrailingPayload { block });
                        }
                        if self.crc.value() != self.expected_crc {
                            return self.fail(CodecError::BlockCrcMismatch { block });
                        }
                        self.blocks_done += 1;
                        self.next_block()?;
                        continue;
                    }
                    match self.op {
                        OpState::NeedOpcode => {
                            let code = match self.payload_byte() {
                                PayloadByte::Byte(b) => b,
                                PayloadByte::Starved => return Ok(None),
                                PayloadByte::Exhausted => return self.fail(CodecError::Truncated),
                            };
                            if !matches!(code, OP_LIT | OP_NOP | OP_ZERO | OP_COPY) {
                                return self.fail(CodecError::BadOpcode(code));
                            }
                            self.op = OpState::Params { code, got: 0 };
                        }
                        OpState::Params { code, got } => {
                            let need: u8 = if code == OP_COPY { 4 } else { 2 };
                            if got < need {
                                let b = match self.payload_byte() {
                                    PayloadByte::Byte(b) => b,
                                    PayloadByte::Starved => return Ok(None),
                                    PayloadByte::Exhausted => {
                                        return self.fail(CodecError::Truncated)
                                    }
                                };
                                self.pbuf[got as usize] = b;
                                self.op = OpState::Params { code, got: got + 1 };
                                continue;
                            }
                            let n = u16::from_le_bytes([self.pbuf[0], self.pbuf[1]]);
                            if n == 0 {
                                return self.fail(CodecError::ZeroRun);
                            }
                            self.op = match code {
                                OP_LIT => {
                                    self.wgot = 0;
                                    OpState::Lit { left: n }
                                }
                                OP_NOP => OpState::Run {
                                    word: NOP_WORD,
                                    left: n,
                                },
                                OP_ZERO => OpState::Run { word: 0, left: n },
                                _ => {
                                    let dist = u16::from_le_bytes([self.pbuf[2], self.pbuf[3]]);
                                    let available = self.words_out.min(WINDOW_WORDS as u64);
                                    if dist == 0 || dist as u64 > available {
                                        return self.fail(CodecError::BackrefOutOfRange {
                                            dist,
                                            available,
                                        });
                                    }
                                    OpState::Copy { left: n, dist }
                                }
                            };
                        }
                        OpState::Lit { left } => {
                            while self.wgot < 4 {
                                let b = match self.payload_byte() {
                                    PayloadByte::Byte(b) => b,
                                    PayloadByte::Starved => return Ok(None),
                                    PayloadByte::Exhausted => {
                                        return self.fail(CodecError::Truncated)
                                    }
                                };
                                self.wbuf[self.wgot as usize] = b;
                                self.wgot += 1;
                            }
                            self.wgot = 0;
                            let word = u32::from_le_bytes(self.wbuf);
                            self.op = if left == 1 {
                                OpState::NeedOpcode
                            } else {
                                OpState::Lit { left: left - 1 }
                            };
                            return self.emit(word);
                        }
                        OpState::Run { word, left } => {
                            self.op = if left == 1 {
                                OpState::NeedOpcode
                            } else {
                                OpState::Run {
                                    word,
                                    left: left - 1,
                                }
                            };
                            return self.emit(word);
                        }
                        OpState::Copy { left, dist } => {
                            let idx = (self.hist_pos + WINDOW_WORDS - dist as usize) % WINDOW_WORDS;
                            let word = self.history[idx];
                            self.op = if left == 1 {
                                OpState::NeedOpcode
                            } else {
                                OpState::Copy {
                                    left: left - 1,
                                    dist,
                                }
                            };
                            return self.emit(word);
                        }
                    }
                }
            }
        }
    }
}

/// One-shot decompression of a whole container (plus any trailing
/// alignment padding). Drives a [`StreamDecoder`] through its bounded FIFO
/// exactly like the cycle model does.
pub fn decompress(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut d = StreamDecoder::new();
    let mut out = Vec::new();
    let mut off = 0;
    loop {
        if off < bytes.len() {
            off += d.push(&bytes[off..]);
        }
        match d.pop_word()? {
            Some(w) => out.push(w),
            None if off >= bytes.len() => break,
            None => {}
        }
    }
    if !d.finished() {
        return Err(CodecError::Truncated);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::compress;
    use pdr_bitstream::SYNC_WORD;

    fn sample_words() -> Vec<u32> {
        let mut words = vec![0xFFFF_FFFF, 0xFFFF_FFFF, SYNC_WORD, 0x3000_8001];
        words.extend(std::iter::repeat_n(NOP_WORD, 40));
        let frame: Vec<u32> = (0..101u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for _ in 0..5 {
            words.extend_from_slice(&frame);
        }
        words.extend(std::iter::repeat_n(0u32, 500));
        words.extend((0..97u32).map(|i| i ^ 0xA5A5_5A5A));
        words
    }

    #[test]
    fn roundtrip_through_tiny_fifo_is_bit_exact() {
        let words = sample_words();
        let c = compress(&words);
        // Feed one byte at a time through a minimal FIFO: worst-case
        // backpressure still decodes exactly.
        let mut d = StreamDecoder::with_capacity(16);
        let mut out = Vec::new();
        let mut off = 0;
        while out.len() < words.len() {
            if off < c.bytes.len() {
                off += d.push(&c.bytes[off..off + 1.min(c.bytes.len() - off)]);
            }
            if let Some(w) = d.pop_word().expect("clean stream") {
                out.push(w);
            }
        }
        assert_eq!(out, words);
        // One more pull lets the decoder run the final CRC check and
        // retire the container.
        assert_eq!(d.pop_word().expect("clean stream"), None);
        assert!(d.finished());
        assert_eq!(d.words_out(), words.len() as u64);
    }

    #[test]
    fn pop_is_none_when_starved_then_resumes() {
        let words = sample_words();
        let c = compress(&words);
        let mut d = StreamDecoder::new();
        assert_eq!(d.pop_word(), Ok(None), "no input yet");
        d.push(&c.bytes[..20]);
        // Header consumed; block payload not yet available → None again.
        let mut got = Vec::new();
        while let Some(w) = d.pop_word().unwrap() {
            got.push(w);
        }
        assert!(!d.finished());
        let mut off = 20;
        loop {
            if off < c.bytes.len() {
                off += d.push(&c.bytes[off..]);
            }
            match d.pop_word().unwrap() {
                Some(w) => got.push(w),
                None if off >= c.bytes.len() => break,
                None => {}
            }
        }
        assert_eq!(got, words);
    }

    #[test]
    fn bad_magic_is_rejected_and_latched() {
        let mut bytes = compress(&[1, 2, 3]).bytes;
        bytes[0] = b'X';
        let mut d = StreamDecoder::new();
        d.push(&bytes);
        assert_eq!(d.pop_word(), Err(CodecError::BadMagic));
        assert_eq!(d.pop_word(), Err(CodecError::BadMagic), "latched");
    }

    #[test]
    fn payload_corruption_trips_block_crc() {
        let words = sample_words();
        let c = compress(&words);
        // Flip one payload byte (past both headers).
        let mut bytes = c.bytes.clone();
        let idx = CONTAINER_HEADER_BYTES + BLOCK_HEADER_BYTES + 5;
        bytes[idx] ^= 0x40;
        match decompress(&bytes) {
            Err(_) => {}
            Ok(w) => assert_ne!(w, words, "corruption must never decode silently"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let words = sample_words();
        let c = compress(&words);
        for cut in [3, 17, 40, c.bytes.len() - 1] {
            assert!(
                decompress(&c.bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_padding_is_swallowed() {
        let words = sample_words();
        let mut bytes = compress(&words).bytes;
        while !bytes.len().is_multiple_of(4) {
            bytes.push(0);
        }
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(decompress(&bytes).unwrap(), words);
    }

    #[test]
    fn word_count_mismatch_is_detected() {
        let words = sample_words();
        let mut bytes = compress(&words).bytes;
        // Claim one more word than the blocks produce.
        let claimed = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) + 1;
        bytes[8..12].copy_from_slice(&claimed.to_le_bytes());
        assert!(decompress(&bytes).is_err());
    }
}
