//! The frame-aware compressor.
//!
//! A greedy, word-oriented matcher shaped around what partial bitstreams
//! actually contain (UG470 structure, see `crates/bitstream`):
//!
//! * the preamble up to and including the sync word is passed through as
//!   literals — the ICAP needs it verbatim and it never repeats anyway;
//! * runs of `NOP_WORD` (inter-packet padding) and zero words (unrouted
//!   frame payload) become 3-byte RLE ops;
//! * repeated configuration frames become `COPY` back-references: the
//!   matcher always probes distance [`FRAME_WORDS`] (101 — the
//!   frame-to-frame stride), distance 1 (arbitrary repeated words), and a
//!   position hashed on the next four words, within a
//!   [`WINDOW_WORDS`]-word window.
//!
//! The op stream is then packed into [`BLOCK_WORDS`]-word blocks, each
//! closed with a CRC-32 over its payload, so the streaming decoder can
//! verify integrity incrementally. Ops never straddle a block boundary —
//! the packer splits runs, copies and literal batches as needed (a `COPY`
//! split is safe because the decoder's history covers both halves).

use pdr_bitstream::packet::NOP_WORD;
use pdr_bitstream::{Crc32, FRAME_WORDS, SYNC_WORD};

use crate::container::{
    block_header, container_header, BLOCK_WORDS, MAX_RUN, MIN_MATCH, MIN_RUN, OP_COPY, OP_LIT,
    OP_NOP, OP_ZERO, WINDOW_WORDS,
};
use crate::report::CodecReport;

/// A compressed bitstream: the container bytes plus what the compressor
/// did to produce them.
#[derive(Debug, Clone, PartialEq)]
pub struct Compressed {
    /// The serialised `PDRC` container.
    pub bytes: Vec<u8>,
    /// Telemetry (sizes, op mix, ratio).
    pub report: CodecReport,
}

/// How deep into the stream the sync word is searched for. Real builder
/// output syncs within ~13 words; anything beyond this is not a header.
const SYNC_SEARCH_WORDS: usize = 64;

/// Hash-chain table size (power of two).
const HASH_BITS: u32 = 13;

fn hash4(words: &[u32], i: usize) -> usize {
    let key = (words[i] as u64)
        .wrapping_mul(31)
        .wrapping_add(words[i + 1] as u64)
        .wrapping_mul(31)
        .wrapping_add(words[i + 2] as u64)
        .wrapping_mul(31)
        .wrapping_add(words[i + 3] as u64);
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - HASH_BITS)) as usize
}

/// The intermediate op stream, lengths not yet clamped to u16 or block
/// boundaries.
#[derive(Debug)]
enum Op {
    Lit { start: usize, len: usize },
    Nop(usize),
    Zero(usize),
    Copy { len: usize, dist: usize },
}

/// Compresses `words` into a `PDRC` container.
pub fn compress(words: &[u32]) -> Compressed {
    let ops = build_ops(words);
    pack(words, &ops)
}

fn run_len(words: &[u32], i: usize, value: u32) -> usize {
    words[i..].iter().take_while(|&&w| w == value).count()
}

/// Longest match of `words[i..]` against `words[i - dist..]` (overlap OK).
fn match_len(words: &[u32], i: usize, dist: usize) -> usize {
    let n = words.len() - i;
    (0..n)
        .take_while(|&k| words[i + k] == words[i - dist + k])
        .count()
}

fn build_ops(words: &[u32]) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut table = vec![usize::MAX; 1 << HASH_BITS];

    // Sync/header passthrough: everything up to and including the sync
    // word is forced literal.
    let header_end = words
        .iter()
        .take(SYNC_SEARCH_WORDS)
        .position(|&w| w == SYNC_WORD)
        .map_or(0, |i| i + 1);

    let mut lit_start = 0usize;
    let mut i = header_end;
    // Seed the hash table with the header positions so frame data can
    // still reference preamble words if it happens to repeat them.
    let mut hashed = 0usize;
    let flush_lit = |ops: &mut Vec<Op>, lit_start: usize, i: usize| {
        if i > lit_start {
            ops.push(Op::Lit {
                start: lit_start,
                len: i - lit_start,
            });
        }
    };

    while i < words.len() {
        // Keep the hash table current up to (excluding) position i.
        while hashed < i && hashed + 4 <= words.len() {
            table[hash4(words, hashed)] = hashed;
            hashed += 1;
        }

        let zeros = run_len(words, i, 0);
        if zeros >= MIN_RUN {
            flush_lit(&mut ops, lit_start, i);
            ops.push(Op::Zero(zeros));
            i += zeros;
            lit_start = i;
            continue;
        }
        let nops = run_len(words, i, NOP_WORD);
        if nops >= MIN_RUN {
            flush_lit(&mut ops, lit_start, i);
            ops.push(Op::Nop(nops));
            i += nops;
            lit_start = i;
            continue;
        }

        // Back-reference candidates: frame stride, repeated word, hashed.
        let mut best: Option<(usize, usize)> = None; // (len, dist)
        let consider = |dist: usize, best: &mut Option<(usize, usize)>| {
            if dist == 0 || dist > i || dist > WINDOW_WORDS {
                return;
            }
            let len = match_len(words, i, dist);
            if len >= MIN_MATCH && best.is_none_or(|(bl, _)| len > bl) {
                *best = Some((len, dist));
            }
        };
        consider(FRAME_WORDS, &mut best);
        consider(1, &mut best);
        if i + 4 <= words.len() {
            let cand = table[hash4(words, i)];
            if cand != usize::MAX && cand < i {
                consider(i - cand, &mut best);
            }
        }

        if let Some((len, dist)) = best {
            flush_lit(&mut ops, lit_start, i);
            ops.push(Op::Copy { len, dist });
            i += len;
            lit_start = i;
        } else {
            i += 1; // extends the pending literal run
        }
    }
    flush_lit(&mut ops, lit_start, words.len());
    ops
}

/// Packs ops into CRC-protected blocks and serialises the container,
/// splitting any op at the u16 run limit and at block boundaries.
fn pack(words: &[u32], ops: &[Op]) -> Compressed {
    let mut report = CodecReport::empty();
    report.raw_words = words.len() as u64;
    report.raw_bytes = 4 * words.len() as u64;
    report.header_words = words
        .iter()
        .take(SYNC_SEARCH_WORDS)
        .position(|&w| w == SYNC_WORD)
        .map_or(0, |i| i as u64 + 1);

    let mut blocks: Vec<(Vec<u8>, u32)> = Vec::new(); // (payload, raw words)
    let mut payload = Vec::new();
    let mut block_words = 0usize;

    for op in ops {
        let (code, total) = match *op {
            Op::Lit { len, .. } => (OP_LIT, len),
            Op::Nop(n) => (OP_NOP, n),
            Op::Zero(n) => (OP_ZERO, n),
            Op::Copy { len, .. } => (OP_COPY, len),
        };
        // Split at the u16 run limit and at block boundaries. A split COPY
        // stays valid: the decoder's history already covers the first half
        // when the second half runs.
        let mut done = 0usize;
        while done < total {
            let space = BLOCK_WORDS - block_words;
            let take = (total - done).min(MAX_RUN).min(space);
            payload.push(code);
            payload.extend_from_slice(&(take as u16).to_le_bytes());
            match *op {
                Op::Lit { start, .. } => {
                    for w in &words[start + done..start + done + take] {
                        payload.extend_from_slice(&w.to_le_bytes());
                    }
                    report.literal_ops += 1;
                    report.literal_words += take as u64;
                }
                Op::Nop(_) => {
                    report.nop_ops += 1;
                    report.nop_words += take as u64;
                }
                Op::Zero(_) => {
                    report.zero_ops += 1;
                    report.zero_words += take as u64;
                }
                Op::Copy { dist, .. } => {
                    payload.extend_from_slice(&(dist as u16).to_le_bytes());
                    report.backref_ops += 1;
                    report.backref_words += take as u64;
                }
            }
            block_words += take;
            done += take;
            if block_words == BLOCK_WORDS {
                blocks.push((std::mem::take(&mut payload), block_words as u32));
                block_words = 0;
            }
        }
    }
    if block_words > 0 {
        blocks.push((payload, block_words as u32));
    }

    let mut bytes = Vec::new();
    bytes.extend_from_slice(&container_header(words.len() as u32, blocks.len() as u32));
    for (payload, raw) in &blocks {
        let mut crc = Crc32::ieee();
        crc.update(payload);
        bytes.extend_from_slice(&block_header(payload.len() as u32, *raw, crc.value()));
        bytes.extend_from_slice(payload);
    }

    report.blocks = blocks.len() as u64;
    report.compressed_bytes = bytes.len() as u64;
    report.finalise_ratios();
    Compressed { bytes, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decompress;

    #[test]
    fn empty_input_is_a_bare_header() {
        let c = compress(&[]);
        assert_eq!(c.bytes.len(), 16);
        assert_eq!(c.report.blocks, 0);
        assert_eq!(c.report.ratio, None);
        assert_eq!(decompress(&c.bytes).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn zero_padding_collapses() {
        let mut words = vec![SYNC_WORD];
        words.extend(std::iter::repeat_n(0u32, 10_000));
        let c = compress(&words);
        assert!(c.report.zero_words == 10_000);
        assert!((c.bytes.len() as f64) < 0.05 * (4.0 * words.len() as f64));
        assert_eq!(decompress(&c.bytes).unwrap(), words);
    }

    #[test]
    fn nop_padding_collapses() {
        let words = vec![NOP_WORD; 5000];
        let c = compress(&words);
        assert_eq!(c.report.nop_words, 5000);
        assert_eq!(decompress(&c.bytes).unwrap(), words);
    }

    #[test]
    fn repeated_frames_become_backrefs() {
        // A pseudo-frame repeated 8 times at the frame stride.
        let frame: Vec<u32> = (0..FRAME_WORDS as u32)
            .map(|i| i.wrapping_mul(2654435761) % 97 + 1)
            .collect();
        let mut words = vec![SYNC_WORD];
        for _ in 0..8 {
            words.extend_from_slice(&frame);
        }
        let c = compress(&words);
        assert!(
            c.report.backref_words >= 7 * FRAME_WORDS as u64,
            "{:?}",
            c.report
        );
        assert_eq!(decompress(&c.bytes).unwrap(), words);
        assert!(c.report.ratio.unwrap() < 0.25, "{:?}", c.report.ratio);
    }

    #[test]
    fn incompressible_overhead_is_bounded() {
        // Pseudo-random words: no runs, no matches. Overhead is op framing
        // (3 bytes per ≤65535-word literal) + block/container headers.
        let mut x = 0x1234_5678u32;
        let words: Vec<u32> = (0..9000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x
            })
            .collect();
        let c = compress(&words);
        let raw = 4 * words.len();
        assert!(c.bytes.len() < raw + 16 + 3 * (raw / (4 * BLOCK_WORDS) + 2) + 12 * 4);
        assert_eq!(decompress(&c.bytes).unwrap(), words);
    }

    #[test]
    fn header_is_passed_through_as_literals() {
        let mut words = vec![0xFFFF_FFFFu32; 8];
        words.push(SYNC_WORD);
        words.extend(std::iter::repeat_n(0u32, 500));
        let c = compress(&words);
        assert_eq!(c.report.header_words, 9);
        assert!(c.report.literal_words >= 9);
        assert_eq!(decompress(&c.bytes).unwrap(), words);
    }

    #[test]
    fn block_boundaries_split_ops_correctly() {
        // A zero run far longer than one block.
        let words = vec![0u32; 3 * BLOCK_WORDS + 17];
        let c = compress(&words);
        assert_eq!(c.report.blocks, 4);
        assert_eq!(decompress(&c.bytes).unwrap(), words);
    }
}
