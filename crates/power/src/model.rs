//! The analytic power model.

/// The nominal core supply voltage, millivolts. At this voltage every
/// `*_at` accessor is bitwise identical to its voltage-free counterpart.
pub const VDD_NOMINAL_MV: u32 = 1000;

/// The CV²f supply-voltage scale factor relative to [`VDD_NOMINAL_MV`]:
/// `(V/V_nom)²`. Applied to both dynamic (CV²f) and static (leakage tracks
/// V² to first order over the narrow DVFS window) power.
pub fn voltage_scale(vdd_mv: u32) -> f64 {
    let r = vdd_mv as f64 / VDD_NOMINAL_MV as f64;
    r * r
}

/// Power model of the PDR subsystem (and the board hosting it).
///
/// * dynamic power: `α · f`, linear in clock frequency, temperature
///   independent (the paper's Fig. 6 finding: constant slope across
///   temperatures);
/// * static power: `P_st(40) · (1 + a·ΔT + b·ΔT²)`, super-linear in die
///   temperature (leakage), with `ΔT = T − 40 °C`;
/// * the board adds a fixed baseline `P0` (PS idle + peripherals), which the
///   paper measures as 2.2 W at 40 °C and subtracts from every reading.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Dynamic slope in W/Hz.
    alpha_w_per_hz: f64,
    /// Static power at 40 °C in W.
    p_static_40c_w: f64,
    /// Linear leakage coefficient per °C.
    leak_lin_per_c: f64,
    /// Quadratic leakage coefficient per °C².
    leak_quad_per_c2: f64,
    /// Board idle baseline in W (the paper's P0).
    p0_board_w: f64,
}

impl PowerModel {
    /// Builds a model from explicit constants.
    pub fn new(
        alpha_w_per_hz: f64,
        p_static_40c_w: f64,
        leak_lin_per_c: f64,
        leak_quad_per_c2: f64,
        p0_board_w: f64,
    ) -> Self {
        PowerModel {
            alpha_w_per_hz,
            p_static_40c_w,
            leak_lin_per_c,
            leak_quad_per_c2,
            p0_board_w,
        }
    }

    /// The calibration used throughout the reproduction: least-squares fit
    /// of `P_PDR = P_st + α·f` to Table II (α = 1.5748 mW/MHz,
    /// P_st(40 °C) = 0.9925 W), leakage coefficients chosen to place the
    /// Fig. 6 temperature fan inside its published 1–2 W window, and the
    /// measured board baseline P0 = 2.2 W.
    pub fn paper_calibration() -> Self {
        PowerModel::new(1.5748e-9, 0.9925, 0.004, 4.0e-5, 2.2)
    }

    /// The board idle baseline P0 in W.
    pub fn p0_board_w(&self) -> f64 {
        self.p0_board_w
    }

    /// Dynamic power at clock `freq_hz`, in W.
    pub fn p_dynamic_w(&self, freq_hz: f64) -> f64 {
        self.alpha_w_per_hz * freq_hz
    }

    /// Static power at die temperature `temp_c`, in W.
    pub fn p_static_w(&self, temp_c: f64) -> f64 {
        let dt = temp_c - 40.0;
        self.p_static_40c_w * (1.0 + self.leak_lin_per_c * dt + self.leak_quad_per_c2 * dt * dt)
    }

    /// The PDR subsystem's dissipation `P_PDR(f, T)` in W — what the paper
    /// plots in Fig. 6 and tabulates in Table II.
    pub fn p_pdr_w(&self, freq_hz: f64, temp_c: f64) -> f64 {
        self.p_static_w(temp_c) + self.p_dynamic_w(freq_hz)
    }

    /// The whole-board power the current-sense headers would read, in W.
    pub fn p_board_w(&self, freq_hz: f64, temp_c: f64) -> f64 {
        self.p0_board_w + self.p_pdr_w(freq_hz, temp_c)
    }

    /// Dynamic power at clock `freq_hz` and supply `vdd_mv`, in W.
    pub fn p_dynamic_w_at(&self, freq_hz: f64, vdd_mv: u32) -> f64 {
        if vdd_mv == VDD_NOMINAL_MV {
            return self.p_dynamic_w(freq_hz);
        }
        self.p_dynamic_w(freq_hz) * voltage_scale(vdd_mv)
    }

    /// Static power at die temperature `temp_c` and supply `vdd_mv`, in W.
    pub fn p_static_w_at(&self, temp_c: f64, vdd_mv: u32) -> f64 {
        if vdd_mv == VDD_NOMINAL_MV {
            return self.p_static_w(temp_c);
        }
        self.p_static_w(temp_c) * voltage_scale(vdd_mv)
    }

    /// `P_PDR(f, T, V)` — the Fig. 6 quantity with the DVFS voltage axis.
    pub fn p_pdr_w_at(&self, freq_hz: f64, temp_c: f64, vdd_mv: u32) -> f64 {
        self.p_static_w_at(temp_c, vdd_mv) + self.p_dynamic_w_at(freq_hz, vdd_mv)
    }

    /// Whole-board power with the DVFS voltage axis. The P0 baseline is the
    /// PS + peripherals on their own rails and does not scale with the
    /// PL core supply.
    pub fn p_board_w_at(&self, freq_hz: f64, temp_c: f64, vdd_mv: u32) -> f64 {
        self.p0_board_w + self.p_pdr_w_at(freq_hz, temp_c, vdd_mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II of the paper (40 °C).
    const TABLE2: [(f64, f64); 6] = [
        (100e6, 1.14),
        (140e6, 1.23),
        (180e6, 1.28),
        (200e6, 1.30),
        (240e6, 1.36),
        (280e6, 1.44),
    ];

    #[test]
    fn matches_table2_within_two_percent() {
        let m = PowerModel::paper_calibration();
        for (f, p) in TABLE2 {
            let got = m.p_pdr_w(f, 40.0);
            let rel = (got - p).abs() / p;
            assert!(rel < 0.02, "at {} MHz: got {got:.3}, paper {p}", f / 1e6);
        }
    }

    #[test]
    fn dynamic_power_is_temperature_independent() {
        let m = PowerModel::paper_calibration();
        let slope_40 = m.p_pdr_w(200e6, 40.0) - m.p_pdr_w(100e6, 40.0);
        let slope_100 = m.p_pdr_w(200e6, 100.0) - m.p_pdr_w(100e6, 100.0);
        assert!((slope_40 - slope_100).abs() < 1e-12);
    }

    #[test]
    fn static_power_is_superlinear_in_temperature() {
        let m = PowerModel::paper_calibration();
        let d1 = m.p_static_w(70.0) - m.p_static_w(40.0);
        let d2 = m.p_static_w(100.0) - m.p_static_w(70.0);
        assert!(d2 > d1, "leakage growth must accelerate: {d1} vs {d2}");
    }

    #[test]
    fn fig6_fan_stays_in_published_window() {
        // Fig. 6 plots P_PDR between ~1 W and ~2 W for 100–310 MHz and
        // 40–100 °C.
        let m = PowerModel::paper_calibration();
        for t in [40.0, 60.0, 80.0, 100.0] {
            for f in [100e6, 200e6, 310e6] {
                let p = m.p_pdr_w(f, t);
                assert!((1.0..2.0).contains(&p), "P({}MHz,{t}C)={p}", f / 1e6);
            }
        }
    }

    #[test]
    fn board_power_adds_baseline() {
        let m = PowerModel::paper_calibration();
        assert!((m.p_board_w(100e6, 40.0) - m.p_pdr_w(100e6, 40.0) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn nominal_voltage_is_bitwise_identity() {
        let m = PowerModel::paper_calibration();
        for f in [100e6, 200e6, 280e6] {
            for t in [40.0, 62.5, 100.0] {
                assert_eq!(
                    m.p_pdr_w(f, t).to_bits(),
                    m.p_pdr_w_at(f, t, VDD_NOMINAL_MV).to_bits()
                );
                assert_eq!(
                    m.p_board_w(f, t).to_bits(),
                    m.p_board_w_at(f, t, VDD_NOMINAL_MV).to_bits()
                );
            }
        }
    }

    #[test]
    fn voltage_scale_is_quadratic() {
        assert!((voltage_scale(950) - 0.9025).abs() < 1e-12);
        assert!((voltage_scale(1050) - 1.1025).abs() < 1e-12);
        assert_eq!(voltage_scale(0), 0.0);
        let m = PowerModel::paper_calibration();
        // Undervolting cuts both components; the P0 baseline is untouched.
        assert!(m.p_pdr_w_at(200e6, 40.0, 950) < m.p_pdr_w(200e6, 40.0));
        assert!(m.p_dynamic_w_at(200e6, 0) == 0.0);
        let delta = m.p_board_w(200e6, 40.0) - m.p_board_w_at(200e6, 40.0, 950);
        let pdr_delta = m.p_pdr_w(200e6, 40.0) - m.p_pdr_w_at(200e6, 40.0, 950);
        assert!((delta - pdr_delta).abs() < 1e-12);
    }
}
