//! Measurement instruments: the current-sense meter and an energy
//! integrator.

use pdr_sim_core::stats::TimeWeighted;
use pdr_sim_core::{SimTime, Xoshiro256StarStar};

/// The ZedBoard's current-sense pin-header measurement chain: samples of the
/// true board power with Gaussian instrument noise, averaged over a window
/// (the paper reports averaged readings).
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSenseMeter {
    noise_sigma_w: f64,
    samples_per_reading: u32,
}

impl Default for CurrentSenseMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl CurrentSenseMeter {
    /// Bench-multimeter-like defaults: 20 mW rms sample noise, 64-sample
    /// averaging.
    pub fn new() -> Self {
        CurrentSenseMeter {
            noise_sigma_w: 0.02,
            samples_per_reading: 64,
        }
    }

    /// A noiseless meter for deterministic tests.
    pub fn ideal() -> Self {
        CurrentSenseMeter {
            noise_sigma_w: 0.0,
            samples_per_reading: 1,
        }
    }

    /// One averaged reading of the true power `p_true_w`.
    pub fn read_w(&self, p_true_w: f64, rng: &mut Xoshiro256StarStar) -> f64 {
        if self.noise_sigma_w == 0.0 {
            return p_true_w;
        }
        let mut acc = 0.0;
        for _ in 0..self.samples_per_reading {
            acc += p_true_w + self.noise_sigma_w * rng.next_gaussian();
        }
        acc / self.samples_per_reading as f64
    }
}

/// Integrates instantaneous power over simulated time into energy (joules).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    tw: TimeWeighted,
    started: SimTime,
}

impl EnergyMeter {
    /// Starts integrating at `now` with initial power `p_w`.
    pub fn start(now: SimTime, p_w: f64) -> Self {
        EnergyMeter {
            tw: TimeWeighted::new(now, p_w),
            started: now,
        }
    }

    /// Records a power change at `now`.
    pub fn set_power(&mut self, now: SimTime, p_w: f64) {
        self.tw.update(now, p_w);
    }

    /// Energy in joules accumulated over `[start, now]`.
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.tw.integral_at(now)
    }

    /// Mean power in watts over `[start, now]`.
    pub fn mean_power_w(&self, now: SimTime) -> f64 {
        self.tw.mean_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::SimDuration;

    #[test]
    fn ideal_meter_reads_truth() {
        let m = CurrentSenseMeter::ideal();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert_eq!(m.read_w(3.3, &mut rng), 3.3);
    }

    #[test]
    fn averaging_suppresses_noise() {
        let m = CurrentSenseMeter::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let readings: Vec<f64> = (0..200).map(|_| m.read_w(2.2, &mut rng)).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        assert!((mean - 2.2).abs() < 0.005, "mean={mean}");
        // Per-reading error stays within a few sigma/sqrt(64).
        for r in readings {
            assert!((r - 2.2).abs() < 0.02, "reading={r}");
        }
    }

    #[test]
    fn energy_integrates_piecewise_constant_power() {
        let t0 = SimTime::ZERO;
        let mut e = EnergyMeter::start(t0, 2.0);
        let t1 = t0 + SimDuration::from_millis(500);
        e.set_power(t1, 4.0);
        let t2 = t1 + SimDuration::from_millis(500);
        // 2 W × 0.5 s + 4 W × 0.5 s = 3 J; mean 3 W.
        assert!((e.energy_j(t2) - 3.0).abs() < 1e-9);
        assert!((e.mean_power_w(t2) - 3.0).abs() < 1e-9);
    }
}
