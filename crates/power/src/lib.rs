//! # pdr-power
//!
//! Power and energy models for the over-clocked PDR system, reproducing the
//! paper's Sec. IV-B measurements (Fig. 6 and Table II).
//!
//! The paper measures whole-board power through the ZedBoard's current-sense
//! pin headers, subtracts the idle baseline `P0 = 2.2 W` (taken at 40 °C)
//! and reports the remainder as the PDR subsystem's dissipation:
//!
//! ```text
//! P_PDR(f, T) = P_static(T) + α · f
//! ```
//!
//! Its two empirical findings — dynamic power linear in frequency and
//! *independent* of temperature, static power super-linear in temperature —
//! are the structure of [`PowerModel`]; the constants are calibrated by
//! least-squares against Table II (α ≈ 1.575 mW/MHz, P_static(40 °C) ≈
//! 0.992 W).
//!
//! ```
//! use pdr_power::PowerModel;
//!
//! let m = PowerModel::paper_calibration();
//! let p200 = m.p_pdr_w(200e6, 40.0);
//! assert!((p200 - 1.30).abs() < 0.02); // Table II row: 1.30 W at 200 MHz
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efficiency;
pub mod meter;
pub mod model;

pub use efficiency::{knee_frequency_mhz, performance_per_watt};
pub use meter::{CurrentSenseMeter, EnergyMeter};
pub use model::{voltage_scale, PowerModel, VDD_NOMINAL_MV};
