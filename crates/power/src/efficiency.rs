//! Power-efficiency metrics: performance-per-watt and knee finding.

/// Performance-per-watt as the paper defines it:
///
/// ```text
/// PpW = throughput / P_PDR     [MB/s / W = MB/J]
/// ```
///
/// Returns `None` when the ratio is not a finite measurement: a power
/// reading that is zero, negative, or NaN (an instrument that never
/// sampled, or a P0 baseline subtraction that went below zero) would
/// otherwise push `inf`/`NaN` into report JSON, which the hermetic codec
/// refuses to round-trip.
pub fn performance_per_watt(throughput_mb_s: f64, p_pdr_w: f64) -> Option<f64> {
    // NaN power must fail this test too, so require the positive condition.
    let power_ok = p_pdr_w.is_finite() && p_pdr_w > 0.0;
    if !power_ok || !throughput_mb_s.is_finite() {
        return None;
    }
    let ppw = throughput_mb_s / p_pdr_w;
    ppw.is_finite().then_some(ppw)
}

/// Finds the knee of a throughput-vs-frequency curve: the lowest frequency
/// after which the *marginal* throughput gain per MHz drops below
/// `min_gain_mb_per_mhz`. The paper identifies this knee at ~200 MHz, where
/// the DMA saturates and further over-clocking only burns power.
///
/// `points` must be sorted by frequency. Returns the knee frequency in MHz,
/// or the last point's frequency if the curve never flattens.
///
/// # Panics
///
/// Panics on fewer than two points.
pub fn knee_frequency_mhz(points: &[(f64, f64)], min_gain_mb_per_mhz: f64) -> f64 {
    assert!(points.len() >= 2, "need at least two curve points");
    for w in points.windows(2) {
        let (f0, t0) = w[0];
        let (f1, t1) = w[1];
        assert!(f1 > f0, "points must be sorted by frequency");
        let gain = (t1 - t0) / (f1 - f0);
        if gain < min_gain_mb_per_mhz {
            return f0;
        }
    }
    points.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppw_matches_table2_best_point() {
        // Paper: 781.84 MB/s at 1.30 W → 599 MB/J (the table's best row).
        let ppw = performance_per_watt(781.84, 1.30).expect("finite");
        assert!((ppw - 601.4).abs() < 1.0, "ppw={ppw}");
    }

    #[test]
    fn degenerate_power_yields_none_not_inf() {
        // Regression: dividing by zero power used to produce `inf` (and,
        // after an interim hardening, a panic). A degenerate instrument
        // reading must degrade to "no measurement", never a non-finite
        // float or an abort.
        assert_eq!(performance_per_watt(100.0, 0.0), None);
        assert_eq!(performance_per_watt(100.0, -0.5), None);
        assert_eq!(performance_per_watt(100.0, f64::NAN), None);
        assert_eq!(performance_per_watt(f64::INFINITY, 1.3), None);
        assert_eq!(performance_per_watt(f64::NAN, 1.3), None);
        // Overflow to inf is also caught, not forwarded.
        assert_eq!(performance_per_watt(f64::MAX, f64::MIN_POSITIVE), None);
    }

    #[test]
    fn zero_voltage_operating_point_yields_none_not_nan() {
        // Regression for the DVFS voltage axis: a V=0 supply collapses
        // P_PDR = (P_st + P_dyn)·(V/V_nom)² to exactly 0 W, and the
        // report layer must degrade that to "no measurement" through the
        // same None-not-NaN contract as a dead instrument.
        use crate::model::{voltage_scale, PowerModel};
        let m = PowerModel::paper_calibration();
        let p = m.p_pdr_w_at(200e6, 40.0, 0);
        assert_eq!(p, 0.0);
        assert_eq!(performance_per_watt(781.84, p), None);
        // And a zero-throughput point at a live supply is Some(0.0), not an
        // accidental None: only the power side gates the measurement.
        let p950 = m.p_pdr_w_at(200e6, 40.0, 950);
        assert_eq!(performance_per_watt(0.0, p950), Some(0.0));
        assert_eq!(voltage_scale(0), 0.0);
    }

    #[test]
    fn knee_found_on_paper_shaped_curve() {
        // Table I shape: linear to 200 MHz, then flat.
        let pts = [
            (100.0, 399.06),
            (140.0, 558.12),
            (180.0, 716.96),
            (200.0, 781.84),
            (240.0, 786.96),
            (280.0, 790.14),
        ];
        let knee = knee_frequency_mhz(&pts, 1.0);
        assert_eq!(knee, 200.0);
    }

    #[test]
    fn monotone_curve_returns_last_point() {
        let pts = [(100.0, 400.0), (200.0, 800.0), (300.0, 1200.0)];
        assert_eq!(knee_frequency_mhz(&pts, 1.0), 300.0);
    }

    #[test]
    #[should_panic(expected = "sorted by frequency")]
    fn unsorted_points_panic() {
        let _ = knee_frequency_mhz(&[(200.0, 1.0), (100.0, 2.0)], 1.0);
    }
}
