//! Deterministic structured event tracing and metrics.
//!
//! The paper's argument is built on *measurement* — throughput at each ICAP
//! clock (Fig. 5), power per configuration (Fig. 6), failure onset under
//! stress — yet aggregate end-of-run reports cannot show what happened
//! *inside* a run: a stalled DMA burst, a mis-charged cache fetch, an extra
//! scrub. This module turns the simulator into an auditable instrument:
//!
//! * [`TraceEvent`] — a closed vocabulary of typed events covering every
//!   runtime subsystem: reconfiguration lifecycle, DMA bursts, CRC
//!   verdicts and alarms, fault injection, the recovery ladder (retry /
//!   backoff / scrub / quarantine), the scheduler's cache and prefetch,
//!   codec block decoding, SD boot staging, and QDR staged transfers.
//! * [`TraceRecord`] — an event stamped with the simulated time (`t_ps`)
//!   and a monotone sequence number (`seq`). Records serialise through the
//!   in-repo JSON module as flat single-line objects, so a tape exports as
//!   JSONL and diffs line-by-line.
//! * [`TraceSink`] — the per-system event bus. [`TraceLevel::Off`] keeps
//!   the disabled path to a single branch; [`TraceLevel::Counters`]
//!   aggregates [`TraceCounters`] and latency samples without retaining
//!   records; [`TraceLevel::Full`] additionally retains the whole tape.
//! * [`TraceReport`] — aggregate metrics under the repo's non-finite-float
//!   contract: exact p50/p99 via [`SampleSeries`], degenerate values as
//!   `None`, never `inf`/`NaN`.
//!
//! # Determinism
//!
//! Emission is *pure recording*: the sink never consults a clock of its
//! own, never touches any RNG, and never advances the engine. Every stamp
//! is the simulated time the emitting subsystem already held. Consequently
//! a same-seed, same-config run replays to a byte-identical JSONL tape —
//! the property the golden-trace harness in `tests/trace.rs` locks down —
//! and enabling tracing cannot change any report (observer effect = 0,
//! enforced by `tests/proptest_trace.rs`).
//!
//! ```
//! use pdr_core::trace::{TraceEvent, TraceLevel};
//! use pdr_core::{SystemConfig, ZynqPdrSystem};
//! use pdr_sim_core::Frequency;
//!
//! let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
//! sys.set_trace_level(TraceLevel::Full);
//! let bs = sys.make_partial_bitstream(0, 1);
//! let report = sys.reconfigure(0, &bs, Frequency::from_mhz(200));
//! assert!(report.crc_ok());
//! let tape = sys.tracer().export_jsonl();
//! assert!(tape.lines().any(|l| l.contains("\"event\":\"ReconfigDone\"")));
//! ```

use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::stats::SampleSeries;
use pdr_sim_core::{impl_json_enum, impl_json_struct, SimTime};

use crate::campaign::StatsSummary;
use crate::faults::FaultKind;

/// How much the sink records. Doubles as the cost dial: `Off` is a single
/// predicted branch on the hot path, `Counters` a handful of integer adds,
/// `Full` additionally a `Vec` push per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing. The default: zero observable overhead.
    #[default]
    Off,
    /// Aggregate counters and latency samples only; no per-event records.
    Counters,
    /// Counters plus the full event tape (exportable as JSONL).
    Full,
}

impl_json_enum!(TraceLevel {
    Off,
    Counters,
    Full
});

/// One structured event. Payloads are plain integers (or the already-typed
/// [`FaultKind`]) computed by the emitting subsystem — the tracer derives
/// nothing of its own, which is what keeps the observer effect at zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A reconfiguration attempt entered the driver.
    ReconfigStart {
        /// Target reconfigurable partition.
        rp: u64,
        /// Bitstream size in bytes.
        bytes: u64,
        /// Requested ICAP clock in MHz (0 for the PCAP path).
        freq_mhz: u64,
    },
    /// A reconfiguration attempt left the driver.
    ReconfigDone {
        /// Target reconfigurable partition.
        rp: u64,
        /// Whether the attempt succeeded (CRC-clean, interrupt seen).
        ok: bool,
        /// Transfer latency in picoseconds; 0 when unmeasured (refused or
        /// no completion interrupt).
        latency_ps: u64,
    },
    /// The DMA engine was programmed with a transfer.
    DmaBurst {
        /// Programmed transfer length in bytes.
        bytes: u64,
    },
    /// Post-transfer CRC read-back matched the golden reference.
    CrcPass {
        /// Frames verified.
        frames: u64,
    },
    /// Post-transfer CRC read-back found a mismatch.
    CrcFail {
        /// Frames verified.
        frames: u64,
    },
    /// The background frame monitor raised a CRC alarm.
    CrcAlarm {
        /// Detection latency (injection-to-alarm) in picoseconds.
        latency_ps: u64,
    },
    /// A fault was injected into the fabric or datapath.
    FaultInjected {
        /// Which fault class.
        kind: FaultKind,
    },
    /// The recovery ladder re-attempted a failed reconfiguration.
    Retry {
        /// Target reconfigurable partition.
        rp: u64,
        /// Attempt number (1 = first retry).
        attempt: u64,
        /// ICAP clock used for the retry, MHz.
        freq_mhz: u64,
    },
    /// The recovery ladder lowered the ICAP clock before retrying.
    Backoff {
        /// Target reconfigurable partition.
        rp: u64,
        /// Clock before the step, MHz.
        from_mhz: u64,
        /// Clock after the step, MHz.
        to_mhz: u64,
    },
    /// A golden-bitstream scrub was issued.
    Scrub {
        /// Target reconfigurable partition.
        rp: u64,
        /// ICAP clock used for the scrub, MHz.
        freq_mhz: u64,
    },
    /// A partition was quarantined after the ladder was exhausted.
    Quarantine {
        /// The partition taken out of service.
        rp: u64,
    },
    /// Scheduler dispatch found the bitstream already cached.
    CacheHit {
        /// Bitstream id.
        id: u64,
        /// Cached (stored) size in bytes.
        bytes: u64,
    },
    /// Scheduler dispatch had to fetch the bitstream.
    CacheMiss {
        /// Bitstream id.
        id: u64,
        /// Bytes actually fetched — *stored* bytes for compressed catalogs.
        stored_bytes: u64,
    },
    /// The LRU cache evicted an image to make room.
    CacheEvict {
        /// Evicted bitstream id.
        id: u64,
        /// Bytes released — the image's stored size.
        bytes: u64,
    },
    /// The prefetcher armed a background fetch on the QDR write port.
    PrefetchArmed {
        /// Bitstream id being prefetched.
        id: u64,
        /// Stored bytes the fetch will move.
        bytes: u64,
    },
    /// The streaming decompressor validated one more compressed block.
    CodecBlock {
        /// 1-based index of the block just validated.
        block: u64,
        /// Cumulative words emitted by the decoder so far.
        words_out: u64,
    },
    /// Boot staging copied one file from SD card to DRAM.
    SdFileStaged {
        /// Raw (decoded) image size in bytes.
        raw_bytes: u64,
        /// Bytes the file occupies on the card (compressed container size
        /// on a compressed card, `raw_bytes` otherwise).
        stored_bytes: u64,
    },
    /// The proposed system started a staged SRAM-to-ICAP transfer.
    StagedTransferStart {
        /// Words staged in QDR SRAM for this job.
        sram_words: u64,
    },
    /// The proposed system finished a staged transfer.
    StagedTransferDone {
        /// Whether the fabric CRC matched after the transfer.
        ok: bool,
        /// Words the decompressor (or bypass) delivered to the ICAP.
        words_out: u64,
    },
    /// The DVFS governor committed a new operating point.
    DvfsSet {
        /// Core supply voltage, millivolts.
        vdd_mv: u64,
        /// ICAP clock, MHz.
        freq_mhz: u64,
    },
    /// The thermal RC node crossed its alarm threshold.
    ThermalAlarm {
        /// Die temperature at the crossing, milli-°C.
        temp_mc: u64,
    },
    /// The governor backed off to its throttle point under thermal alarm.
    ThermalThrottle {
        /// Core supply voltage after the throttle, millivolts.
        vdd_mv: u64,
        /// ICAP clock after the throttle, MHz.
        freq_mhz: u64,
    },
}

impl TraceEvent {
    /// The event's wire tag — the `"event"` value in the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::ReconfigStart { .. } => "ReconfigStart",
            TraceEvent::ReconfigDone { .. } => "ReconfigDone",
            TraceEvent::DmaBurst { .. } => "DmaBurst",
            TraceEvent::CrcPass { .. } => "CrcPass",
            TraceEvent::CrcFail { .. } => "CrcFail",
            TraceEvent::CrcAlarm { .. } => "CrcAlarm",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::Retry { .. } => "Retry",
            TraceEvent::Backoff { .. } => "Backoff",
            TraceEvent::Scrub { .. } => "Scrub",
            TraceEvent::Quarantine { .. } => "Quarantine",
            TraceEvent::CacheHit { .. } => "CacheHit",
            TraceEvent::CacheMiss { .. } => "CacheMiss",
            TraceEvent::CacheEvict { .. } => "CacheEvict",
            TraceEvent::PrefetchArmed { .. } => "PrefetchArmed",
            TraceEvent::CodecBlock { .. } => "CodecBlock",
            TraceEvent::SdFileStaged { .. } => "SdFileStaged",
            TraceEvent::StagedTransferStart { .. } => "StagedTransferStart",
            TraceEvent::StagedTransferDone { .. } => "StagedTransferDone",
            TraceEvent::DvfsSet { .. } => "DvfsSet",
            TraceEvent::ThermalAlarm { .. } => "ThermalAlarm",
            TraceEvent::ThermalThrottle { .. } => "ThermalThrottle",
        }
    }

    /// Payload fields in declaration order, ready to splice into the flat
    /// record object.
    fn fields(&self) -> Vec<(String, Json)> {
        fn u(k: &str, v: u64) -> (String, Json) {
            (k.to_string(), Json::U64(v))
        }
        fn b(k: &str, v: bool) -> (String, Json) {
            (k.to_string(), Json::Bool(v))
        }
        match *self {
            TraceEvent::ReconfigStart {
                rp,
                bytes,
                freq_mhz,
            } => {
                vec![u("rp", rp), u("bytes", bytes), u("freq_mhz", freq_mhz)]
            }
            TraceEvent::ReconfigDone { rp, ok, latency_ps } => {
                vec![u("rp", rp), b("ok", ok), u("latency_ps", latency_ps)]
            }
            TraceEvent::DmaBurst { bytes } => vec![u("bytes", bytes)],
            TraceEvent::CrcPass { frames } => vec![u("frames", frames)],
            TraceEvent::CrcFail { frames } => vec![u("frames", frames)],
            TraceEvent::CrcAlarm { latency_ps } => vec![u("latency_ps", latency_ps)],
            TraceEvent::FaultInjected { kind } => {
                vec![("kind".to_string(), kind.to_json())]
            }
            TraceEvent::Retry {
                rp,
                attempt,
                freq_mhz,
            } => vec![u("rp", rp), u("attempt", attempt), u("freq_mhz", freq_mhz)],
            TraceEvent::Backoff {
                rp,
                from_mhz,
                to_mhz,
            } => vec![u("rp", rp), u("from_mhz", from_mhz), u("to_mhz", to_mhz)],
            TraceEvent::Scrub { rp, freq_mhz } => vec![u("rp", rp), u("freq_mhz", freq_mhz)],
            TraceEvent::Quarantine { rp } => vec![u("rp", rp)],
            TraceEvent::CacheHit { id, bytes } => vec![u("id", id), u("bytes", bytes)],
            TraceEvent::CacheMiss { id, stored_bytes } => {
                vec![u("id", id), u("stored_bytes", stored_bytes)]
            }
            TraceEvent::CacheEvict { id, bytes } => vec![u("id", id), u("bytes", bytes)],
            TraceEvent::PrefetchArmed { id, bytes } => vec![u("id", id), u("bytes", bytes)],
            TraceEvent::CodecBlock { block, words_out } => {
                vec![u("block", block), u("words_out", words_out)]
            }
            TraceEvent::SdFileStaged {
                raw_bytes,
                stored_bytes,
            } => vec![u("raw_bytes", raw_bytes), u("stored_bytes", stored_bytes)],
            TraceEvent::StagedTransferStart { sram_words } => vec![u("sram_words", sram_words)],
            TraceEvent::StagedTransferDone { ok, words_out } => {
                vec![b("ok", ok), u("words_out", words_out)]
            }
            TraceEvent::DvfsSet { vdd_mv, freq_mhz } => {
                vec![u("vdd_mv", vdd_mv), u("freq_mhz", freq_mhz)]
            }
            TraceEvent::ThermalAlarm { temp_mc } => vec![u("temp_mc", temp_mc)],
            TraceEvent::ThermalThrottle { vdd_mv, freq_mhz } => {
                vec![u("vdd_mv", vdd_mv), u("freq_mhz", freq_mhz)]
            }
        }
    }
}

/// One stamped event on the tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone per-sink sequence number, starting at 0.
    pub seq: u64,
    /// Simulated time of emission, picoseconds.
    pub t_ps: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl ToJson for TraceRecord {
    /// Flat single-line object — `{"seq":…,"t_ps":…,"event":"…",…payload}` —
    /// so a tape renders as JSONL and diffs line-by-line.
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("seq".to_string(), Json::U64(self.seq)),
            ("t_ps".to_string(), Json::U64(self.t_ps)),
            ("event".to_string(), Json::Str(self.event.tag().to_string())),
        ];
        obj.extend(self.event.fields());
        Json::Obj(obj)
    }
}

impl FromJson for TraceRecord {
    /// Inverse of the flat encoding above — the checkpoint layer uses it to
    /// rebuild the retained tape, so every variant must round-trip exactly.
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        fn u(json: &Json, key: &str) -> Result<u64, JsonError> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError {
                    msg: format!("trace record missing u64 field `{key}`"),
                })
        }
        fn b(json: &Json, key: &str) -> Result<bool, JsonError> {
            json.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| JsonError {
                    msg: format!("trace record missing bool field `{key}`"),
                })
        }
        let seq = u(json, "seq")?;
        let t_ps = u(json, "t_ps")?;
        let tag = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                msg: "trace record missing `event` tag".to_string(),
            })?;
        let event = match tag {
            "ReconfigStart" => TraceEvent::ReconfigStart {
                rp: u(json, "rp")?,
                bytes: u(json, "bytes")?,
                freq_mhz: u(json, "freq_mhz")?,
            },
            "ReconfigDone" => TraceEvent::ReconfigDone {
                rp: u(json, "rp")?,
                ok: b(json, "ok")?,
                latency_ps: u(json, "latency_ps")?,
            },
            "DmaBurst" => TraceEvent::DmaBurst {
                bytes: u(json, "bytes")?,
            },
            "CrcPass" => TraceEvent::CrcPass {
                frames: u(json, "frames")?,
            },
            "CrcFail" => TraceEvent::CrcFail {
                frames: u(json, "frames")?,
            },
            "CrcAlarm" => TraceEvent::CrcAlarm {
                latency_ps: u(json, "latency_ps")?,
            },
            "FaultInjected" => TraceEvent::FaultInjected {
                kind: FaultKind::from_json(json.get("kind").ok_or_else(|| JsonError {
                    msg: "FaultInjected record missing `kind`".to_string(),
                })?)?,
            },
            "Retry" => TraceEvent::Retry {
                rp: u(json, "rp")?,
                attempt: u(json, "attempt")?,
                freq_mhz: u(json, "freq_mhz")?,
            },
            "Backoff" => TraceEvent::Backoff {
                rp: u(json, "rp")?,
                from_mhz: u(json, "from_mhz")?,
                to_mhz: u(json, "to_mhz")?,
            },
            "Scrub" => TraceEvent::Scrub {
                rp: u(json, "rp")?,
                freq_mhz: u(json, "freq_mhz")?,
            },
            "Quarantine" => TraceEvent::Quarantine { rp: u(json, "rp")? },
            "CacheHit" => TraceEvent::CacheHit {
                id: u(json, "id")?,
                bytes: u(json, "bytes")?,
            },
            "CacheMiss" => TraceEvent::CacheMiss {
                id: u(json, "id")?,
                stored_bytes: u(json, "stored_bytes")?,
            },
            "CacheEvict" => TraceEvent::CacheEvict {
                id: u(json, "id")?,
                bytes: u(json, "bytes")?,
            },
            "PrefetchArmed" => TraceEvent::PrefetchArmed {
                id: u(json, "id")?,
                bytes: u(json, "bytes")?,
            },
            "CodecBlock" => TraceEvent::CodecBlock {
                block: u(json, "block")?,
                words_out: u(json, "words_out")?,
            },
            "SdFileStaged" => TraceEvent::SdFileStaged {
                raw_bytes: u(json, "raw_bytes")?,
                stored_bytes: u(json, "stored_bytes")?,
            },
            "StagedTransferStart" => TraceEvent::StagedTransferStart {
                sram_words: u(json, "sram_words")?,
            },
            "StagedTransferDone" => TraceEvent::StagedTransferDone {
                ok: b(json, "ok")?,
                words_out: u(json, "words_out")?,
            },
            "DvfsSet" => TraceEvent::DvfsSet {
                vdd_mv: u(json, "vdd_mv")?,
                freq_mhz: u(json, "freq_mhz")?,
            },
            "ThermalAlarm" => TraceEvent::ThermalAlarm {
                temp_mc: u(json, "temp_mc")?,
            },
            "ThermalThrottle" => TraceEvent::ThermalThrottle {
                vdd_mv: u(json, "vdd_mv")?,
                freq_mhz: u(json, "freq_mhz")?,
            },
            other => {
                return Err(JsonError {
                    msg: format!("unknown trace event tag `{other}`"),
                })
            }
        };
        Ok(TraceRecord { seq, t_ps, event })
    }
}

/// Aggregate event counters, maintained at `Counters` level and above.
///
/// Every field is derived from the event stream alone — a second accounting
/// path, deliberately independent of the subsystems' own telemetry, so the
/// cross-check tests can catch drift between the two.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// [`TraceEvent::ReconfigStart`] events.
    pub reconfig_started: u64,
    /// [`TraceEvent::ReconfigDone`] with `ok = true`.
    pub reconfig_ok: u64,
    /// [`TraceEvent::ReconfigDone`] with `ok = false`.
    pub reconfig_failed: u64,
    /// [`TraceEvent::DmaBurst`] events.
    pub dma_bursts: u64,
    /// Total bytes across DMA bursts.
    pub dma_bytes: u64,
    /// [`TraceEvent::CrcPass`] events.
    pub crc_pass: u64,
    /// [`TraceEvent::CrcFail`] events.
    pub crc_fail: u64,
    /// [`TraceEvent::CrcAlarm`] events.
    pub crc_alarms: u64,
    /// [`TraceEvent::FaultInjected`] events.
    pub faults_injected: u64,
    /// [`TraceEvent::Retry`] events.
    pub retries: u64,
    /// [`TraceEvent::Backoff`] events.
    pub backoffs: u64,
    /// [`TraceEvent::Scrub`] events.
    pub scrubs: u64,
    /// [`TraceEvent::Quarantine`] events.
    pub quarantines: u64,
    /// [`TraceEvent::CacheHit`] events.
    pub cache_hits: u64,
    /// [`TraceEvent::CacheMiss`] events.
    pub cache_misses: u64,
    /// [`TraceEvent::CacheEvict`] events.
    pub cache_evictions: u64,
    /// Total stored bytes across cache misses (what dispatch fetched).
    pub bytes_fetched: u64,
    /// Total bytes released by cache evictions.
    pub bytes_evicted: u64,
    /// [`TraceEvent::PrefetchArmed`] events.
    pub prefetches_armed: u64,
    /// [`TraceEvent::CodecBlock`] events.
    pub codec_blocks: u64,
    /// [`TraceEvent::SdFileStaged`] events.
    pub sd_files: u64,
    /// Total stored bytes staged from SD.
    pub sd_stored_bytes: u64,
    /// [`TraceEvent::StagedTransferStart`] events.
    pub staged_transfers: u64,
    /// [`TraceEvent::DvfsSet`] events.
    pub dvfs_sets: u64,
    /// [`TraceEvent::ThermalAlarm`] events.
    pub thermal_alarms: u64,
    /// [`TraceEvent::ThermalThrottle`] events.
    pub thermal_throttles: u64,
}

impl_json_struct!(TraceCounters {
    reconfig_started,
    reconfig_ok,
    reconfig_failed,
    dma_bursts,
    dma_bytes,
    crc_pass,
    crc_fail,
    crc_alarms,
    faults_injected,
    retries,
    backoffs,
    scrubs,
    quarantines,
    cache_hits,
    cache_misses,
    cache_evictions,
    bytes_fetched,
    bytes_evicted,
    prefetches_armed,
    codec_blocks,
    sd_files,
    sd_stored_bytes,
    staged_transfers,
    dvfs_sets,
    thermal_alarms,
    thermal_throttles,
});

impl TraceCounters {
    /// Folds one event into the counters.
    pub fn absorb(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::ReconfigStart { .. } => self.reconfig_started += 1,
            TraceEvent::ReconfigDone { ok, .. } => {
                if ok {
                    self.reconfig_ok += 1;
                } else {
                    self.reconfig_failed += 1;
                }
            }
            TraceEvent::DmaBurst { bytes } => {
                self.dma_bursts += 1;
                self.dma_bytes += bytes;
            }
            TraceEvent::CrcPass { .. } => self.crc_pass += 1,
            TraceEvent::CrcFail { .. } => self.crc_fail += 1,
            TraceEvent::CrcAlarm { .. } => self.crc_alarms += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::Retry { .. } => self.retries += 1,
            TraceEvent::Backoff { .. } => self.backoffs += 1,
            TraceEvent::Scrub { .. } => self.scrubs += 1,
            TraceEvent::Quarantine { .. } => self.quarantines += 1,
            TraceEvent::CacheHit { .. } => self.cache_hits += 1,
            TraceEvent::CacheMiss { stored_bytes, .. } => {
                self.cache_misses += 1;
                self.bytes_fetched += stored_bytes;
            }
            TraceEvent::CacheEvict { bytes, .. } => {
                self.cache_evictions += 1;
                self.bytes_evicted += bytes;
            }
            TraceEvent::PrefetchArmed { .. } => self.prefetches_armed += 1,
            TraceEvent::CodecBlock { .. } => self.codec_blocks += 1,
            TraceEvent::SdFileStaged { stored_bytes, .. } => {
                self.sd_files += 1;
                self.sd_stored_bytes += stored_bytes;
            }
            TraceEvent::StagedTransferStart { .. } => self.staged_transfers += 1,
            TraceEvent::StagedTransferDone { .. } => {}
            TraceEvent::DvfsSet { .. } => self.dvfs_sets += 1,
            TraceEvent::ThermalAlarm { .. } => self.thermal_alarms += 1,
            TraceEvent::ThermalThrottle { .. } => self.thermal_throttles += 1,
        }
    }
}

/// Aggregate trace metrics under the non-finite-float contract: degenerate
/// percentiles are `None`, a zero-sample latency summary is
/// [`StatsSummary::EMPTY`] — never `inf`/`NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Level the sink ran at.
    pub level: TraceLevel,
    /// Events emitted (counted at `Counters` level and above).
    pub events_emitted: u64,
    /// Records retained on the tape (non-zero only at `Full`).
    pub events_retained: u64,
    /// The event-derived counters.
    pub counters: TraceCounters,
    /// Successful-reconfiguration latency, microseconds.
    pub reconfig_latency_us: StatsSummary,
    /// Exact p50 of successful-reconfiguration latency, µs (`None` when no
    /// latency was measured).
    pub reconfig_latency_p50_us: Option<f64>,
    /// Exact p99 of successful-reconfiguration latency, µs.
    pub reconfig_latency_p99_us: Option<f64>,
}

impl_json_struct!(TraceReport {
    level,
    events_emitted,
    events_retained,
    counters,
    reconfig_latency_us,
    reconfig_latency_p50_us,
    reconfig_latency_p99_us,
});

/// The per-system event bus: stamps, counts and (at `Full`) retains events.
///
/// Deliberately *passive*: it owns no clock and no RNG — callers pass the
/// simulated `now` they already hold, so attaching a sink cannot perturb
/// the simulation (see the module docs on determinism).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    level: TraceLevel,
    seq: u64,
    counters: TraceCounters,
    reconfig_latency_us: SampleSeries,
    events: Vec<TraceRecord>,
}

impl TraceSink {
    /// A sink at [`TraceLevel::Off`].
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// A sink at the given level.
    pub fn with_level(level: TraceLevel) -> Self {
        TraceSink {
            level,
            ..TraceSink::default()
        }
    }

    /// Current level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Changes the level. Takes effect for subsequent emissions; already
    /// recorded state is kept.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Records `event` at simulated time `now`.
    ///
    /// The `Off` fast path is a single branch — the cost the trace bench
    /// (`crates/bench/benches/trace.rs`) bounds at ≤ 5% on the headline
    /// reconfiguration loop.
    pub fn emit(&mut self, now: SimTime, event: TraceEvent) {
        if self.level == TraceLevel::Off {
            return;
        }
        self.counters.absorb(&event);
        if let TraceEvent::ReconfigDone {
            ok: true,
            latency_ps,
            ..
        } = event
        {
            if latency_ps > 0 {
                self.reconfig_latency_us.push(latency_ps as f64 / 1e6);
            }
        }
        let seq = self.seq;
        self.seq += 1;
        if self.level == TraceLevel::Full {
            self.events.push(TraceRecord {
                seq,
                t_ps: now.as_ps(),
                event,
            });
        }
    }

    /// Events emitted so far (0 while `Off`).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }

    /// The retained tape (empty below `Full`).
    pub fn records(&self) -> &[TraceRecord] {
        &self.events
    }

    /// The event-derived counters.
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }

    /// Renders the retained tape as JSONL: one compact JSON object per
    /// line, trailing newline after every record. Same seed, same config,
    /// same level ⇒ byte-identical output.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.events {
            out.push_str(&rec.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Aggregate metrics snapshot (`&mut` because exact quantiles sort
    /// lazily).
    pub fn report(&mut self) -> TraceReport {
        TraceReport {
            level: self.level,
            events_emitted: self.seq,
            events_retained: self.events.len() as u64,
            counters: self.counters.clone(),
            reconfig_latency_us: StatsSummary::from(&self.reconfig_latency_us.online_stats()),
            reconfig_latency_p50_us: self.reconfig_latency_us.quantile(0.50),
            reconfig_latency_p99_us: self.reconfig_latency_us.quantile(0.99),
        }
    }

    /// Checkpoints the complete sink state: level, sequence counter,
    /// counters, the raw latency samples (bit-exact floats), and the
    /// retained tape. Restoring with [`TraceSink::restore_json`] and
    /// continuing a run produces the same bytes as never pausing.
    pub fn snapshot_json(&self) -> Json {
        Json::Obj(vec![
            ("level".to_string(), self.level.to_json()),
            ("seq".to_string(), Json::U64(self.seq)),
            ("counters".to_string(), self.counters.to_json()),
            (
                "latency_samples".to_string(),
                Json::Arr(
                    self.reconfig_latency_us
                        .samples()
                        .iter()
                        .map(|s| s.to_json())
                        .collect(),
                ),
            ),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Restores a checkpoint taken with [`TraceSink::snapshot_json`],
    /// replacing everything this sink holds.
    pub fn restore_json(&mut self, json: &Json) -> Result<(), JsonError> {
        let level = TraceLevel::from_json(json.get("level").ok_or_else(|| JsonError {
            msg: "trace snapshot missing `level`".to_string(),
        })?)?;
        let seq = json
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError {
                msg: "trace snapshot missing `seq`".to_string(),
            })?;
        let counters =
            TraceCounters::from_json(json.get("counters").ok_or_else(|| JsonError {
                msg: "trace snapshot missing `counters`".to_string(),
            })?)?;
        let samples = json
            .get("latency_samples")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "trace snapshot missing `latency_samples`".to_string(),
            })?
            .iter()
            .map(f64::from_json)
            .collect::<Result<Vec<f64>, JsonError>>()?;
        let events = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "trace snapshot missing `events`".to_string(),
            })?
            .iter()
            .map(TraceRecord::from_json)
            .collect::<Result<Vec<TraceRecord>, JsonError>>()?;
        self.level = level;
        self.seq = seq;
        self.counters = counters;
        self.reconfig_latency_us = SampleSeries::from_samples(samples);
        self.events = events;
        Ok(())
    }

    /// Drops everything recorded and restarts `seq` at 0; the level is
    /// kept. Useful to scope a tape to a region of interest.
    pub fn clear(&mut self) {
        self.seq = 0;
        self.counters = TraceCounters::default();
        self.reconfig_latency_us = SampleSeries::new();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::json::FromJson;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn off_records_nothing() {
        let mut sink = TraceSink::new();
        sink.emit(t(10), TraceEvent::DmaBurst { bytes: 64 });
        assert_eq!(sink.events_emitted(), 0);
        assert_eq!(sink.counters(), &TraceCounters::default());
        assert!(sink.export_jsonl().is_empty());
    }

    #[test]
    fn counters_level_counts_without_retaining() {
        let mut sink = TraceSink::with_level(TraceLevel::Counters);
        sink.emit(t(10), TraceEvent::DmaBurst { bytes: 64 });
        sink.emit(t(20), TraceEvent::DmaBurst { bytes: 36 });
        assert_eq!(sink.events_emitted(), 2);
        assert_eq!(sink.counters().dma_bursts, 2);
        assert_eq!(sink.counters().dma_bytes, 100);
        assert!(sink.records().is_empty());
        assert!(sink.export_jsonl().is_empty());
    }

    #[test]
    fn full_level_retains_flat_jsonl_records() {
        let mut sink = TraceSink::with_level(TraceLevel::Full);
        sink.emit(
            t(1_000),
            TraceEvent::ReconfigStart {
                rp: 1,
                bytes: 4096,
                freq_mhz: 200,
            },
        );
        sink.emit(
            t(2_000),
            TraceEvent::ReconfigDone {
                rp: 1,
                ok: true,
                latency_ps: 1_000,
            },
        );
        let jsonl = sink.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_ps\":1000,\"event\":\"ReconfigStart\",\"rp\":1,\"bytes\":4096,\"freq_mhz\":200}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"t_ps\":2000,\"event\":\"ReconfigDone\",\"rp\":1,\"ok\":true,\"latency_ps\":1000}"
        );
    }

    #[test]
    fn latency_series_feeds_percentiles() {
        let mut sink = TraceSink::with_level(TraceLevel::Counters);
        for i in 1..=10u64 {
            sink.emit(
                t(i),
                TraceEvent::ReconfigDone {
                    rp: 0,
                    ok: true,
                    latency_ps: i * 1_000_000, // i µs
                },
            );
        }
        // Unmeasured and failed completions contribute no sample.
        sink.emit(
            t(11),
            TraceEvent::ReconfigDone {
                rp: 0,
                ok: true,
                latency_ps: 0,
            },
        );
        sink.emit(
            t(12),
            TraceEvent::ReconfigDone {
                rp: 0,
                ok: false,
                latency_ps: 5,
            },
        );
        let report = sink.report();
        assert_eq!(report.reconfig_latency_us.count, 10);
        assert_eq!(report.reconfig_latency_p50_us, Some(5.0));
        assert_eq!(report.reconfig_latency_p99_us, Some(10.0));
        assert_eq!(report.counters.reconfig_ok, 11);
        assert_eq!(report.counters.reconfig_failed, 1);
    }

    #[test]
    fn empty_report_is_json_safe() {
        let mut sink = TraceSink::with_level(TraceLevel::Full);
        let report = sink.report();
        assert_eq!(report.reconfig_latency_us, StatsSummary::EMPTY);
        assert_eq!(report.reconfig_latency_p50_us, None);
        let text = report.to_json_string();
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
        assert_eq!(TraceReport::from_json_str(&text).unwrap(), report);
    }

    #[test]
    fn clear_resets_sequence_and_counters() {
        let mut sink = TraceSink::with_level(TraceLevel::Full);
        sink.emit(t(5), TraceEvent::Quarantine { rp: 2 });
        sink.clear();
        assert_eq!(sink.events_emitted(), 0);
        assert!(sink.records().is_empty());
        assert_eq!(sink.counters(), &TraceCounters::default());
        sink.emit(t(9), TraceEvent::Quarantine { rp: 2 });
        assert_eq!(sink.records()[0].seq, 0);
        assert_eq!(sink.level(), TraceLevel::Full);
    }

    #[test]
    fn dvfs_events_round_trip_and_count() {
        let mut sink = TraceSink::with_level(TraceLevel::Full);
        sink.emit(
            t(1),
            TraceEvent::DvfsSet {
                vdd_mv: 1000,
                freq_mhz: 200,
            },
        );
        sink.emit(t(2), TraceEvent::ThermalAlarm { temp_mc: 85_250 });
        sink.emit(
            t(3),
            TraceEvent::ThermalThrottle {
                vdd_mv: 950,
                freq_mhz: 100,
            },
        );
        assert_eq!(sink.counters().dvfs_sets, 1);
        assert_eq!(sink.counters().thermal_alarms, 1);
        assert_eq!(sink.counters().thermal_throttles, 1);
        for rec in sink.records() {
            let back = TraceRecord::from_json(&rec.to_json()).expect("round-trips");
            assert_eq!(&back, rec);
        }
        assert!(sink
            .export_jsonl()
            .contains("{\"seq\":1,\"t_ps\":2,\"event\":\"ThermalAlarm\",\"temp_mc\":85250}"));
    }

    #[test]
    fn every_event_counts_exactly_once_or_never() {
        // StagedTransferDone is the only variant absorbed without a
        // dedicated counter bump (its Start carries the count).
        let mut c = TraceCounters::default();
        c.absorb(&TraceEvent::StagedTransferDone {
            ok: true,
            words_out: 7,
        });
        assert_eq!(c, TraceCounters::default());
    }
}
