//! The proposed Sec. VI partial-reconfiguration environment.
//!
//! The paper's measured system is bottlenecked by the link *Memory Port →
//! AXI Interconnect → AXI DMA* (~790 MB/s). Sec. VI sketches a redesign
//! that removes that link from the critical path (Fig. 7):
//!
//! * partial bitstreams are **pre-loaded into an external QDR-II+ SRAM**
//!   (Cypress CY7C2263KV18: independent DDR read/write ports at 550 MHz,
//!   36-bit words, 1237.5 MB/s per port);
//! * a **PR Controller** arbitrates between the SRAM and the ICAP;
//! * a **Bitstream Decompressor** expands compressed images on the fly;
//! * the **PS Scheduler** refills the SRAM with the *next* bitstream through
//!   the independent write port while the current accelerator computes, so
//!   the pre-load never appears on the reconfiguration's critical path.
//!
//! The ICAP here is an HKT-2011-style enhanced hard macro clocked at
//! 550 MHz (the design the paper says it builds on), so the SRAM read port
//! is the bottleneck at 1237.5 MB/s raw — and compressed images beat even
//! that, because template frames (zero/repeat) cost no SRAM bandwidth.

use std::cell::RefCell;
use std::rc::Rc;

use pdr_axi::width::Word32;
use pdr_bitstream::Bitstream;
use pdr_bitstream_codec::{compress_bitstream, CodecReport, StreamDecoder};
use pdr_fabric::{AspImage, AspKind, ConfigMemory, Floorplan};
use pdr_icap::{shared_config_memory, IcapController, SharedConfigMemory};
use pdr_mem::{QdrSram, SramConfig, SramReadCmd};
use pdr_sim_core::{
    Component, ComponentId, Consumer, EdgeCtx, Engine, EngineStrategy, Frequency, IrqBus, IrqLine,
    NextWake, Producer, SimDuration, SimTime,
};

use crate::system::{bitstream_payload, frames_crc, IDCODE};
use crate::trace::{TraceEvent, TraceLevel, TraceReport, TraceSink};

/// The trace sink shared between the [`ProposedSystem`] driver and its
/// in-engine [`Decompressor`] component — same `Rc<RefCell<..>>` idiom as
/// [`SharedConfigMemory`], so both sides stamp one tape with one sequence.
type SharedTraceSink = Rc<RefCell<TraceSink>>;

/// Configuration of the proposed system.
#[derive(Debug, Clone)]
pub struct ProposedConfig {
    /// Device floorplan (shared with the measured system).
    pub floorplan: Floorplan,
    /// Staging SRAM.
    pub sram: SramConfig,
    /// Clock of the enhanced ICAP macro and the decompressor.
    pub icap_clock: Frequency,
    /// Store images compressed and decompress on the fly.
    pub compress: bool,
    /// Abort threshold per reconfiguration.
    pub timeout: SimDuration,
    /// Simulation kernel strategy (see `docs/KERNEL.md`).
    pub strategy: EngineStrategy,
}

impl Default for ProposedConfig {
    fn default() -> Self {
        ProposedConfig {
            floorplan: Floorplan::zedboard_quad(),
            sram: SramConfig::cy7c2263kv18(),
            icap_clock: Frequency::from_mhz(550),
            compress: true,
            timeout: SimDuration::from_millis(20),
            strategy: EngineStrategy::EventSkip,
        }
    }
}

/// One pre-staged bitstream job: where it sits in the SRAM and how to feed
/// it to the ICAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StagedJob {
    /// Raw (uncompressed) bitstream size in bytes.
    raw_bytes: u64,
    /// Total SRAM words to stream (the `PDRC` container, word-padded,
    /// when compression is on; the raw image otherwise).
    total_words: u32,
    /// Words the decompressor must hand the ICAP (the full packet stream).
    words_out: u64,
    /// Whether the staged image is a `PDRC` container.
    compressed: bool,
    /// Verification region.
    start_idx: u32,
    frame_count: u32,
    golden: u32,
}

/// Outcome of one proposed-system reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposedReport {
    /// Raw bitstream size in bytes.
    pub raw_bytes: u64,
    /// Bytes actually read from the SRAM (compressed size when enabled).
    pub sram_bytes: u64,
    /// Reconfiguration latency (PR-controller start to ICAP done).
    pub latency: SimDuration,
    /// Effective throughput in raw-configuration MB/s.
    pub throughput_mb_s: f64,
    /// Whether the configured region verified against the intended image.
    pub crc_ok: bool,
    /// Time the pre-load occupied on the SRAM write port (hidden behind
    /// the previous accelerator's runtime by the PS Scheduler).
    pub preload_time: SimDuration,
    /// Compression ratio (sram/raw payload), 1.0 when disabled.
    pub compression_ratio: f64,
    /// Codec telemetry for the staged image (`None` when uncompressed).
    pub codec: Option<CodecReport>,
}

pdr_sim_core::impl_json_struct!(ProposedReport {
    raw_bytes,
    sram_bytes,
    latency,
    throughput_mb_s,
    crc_ok,
    preload_time,
    compression_ratio,
    codec,
});

/// Feeds the ICAP from the SRAM stream, expanding `PDRC` containers on
/// the fly — the PR Controller's datapath half plus the Bitstream
/// Decompressor of Fig. 7.
///
/// Cycle model: per ICAP clock edge the block pulls at most one SRAM word
/// into the codec's bounded input FIFO (backpressure: it only pulls when
/// the FIFO has a word of space) and hands at most one decoded word to the
/// ICAP. RLE/back-reference spans therefore stream at the full 550 MHz
/// ICAP rate while costing no SRAM read bandwidth — that is the whole
/// throughput win.
#[derive(Debug)]
struct Decompressor {
    input: Consumer<Word32>,
    output: Producer<Word32>,
    /// SRAM words left to pull.
    words_in: u32,
    /// Words left to hand the ICAP.
    words_out: u64,
    decoder: StreamDecoder,
    compressed: bool,
    idle: bool,
    /// Shared event bus; per-block progress is attributed to the cycle the
    /// block's payload CRC validated.
    trace: SharedTraceSink,
    /// Blocks already put on the tape for the current job.
    blocks_seen: u32,
}

impl Decompressor {
    fn new(input: Consumer<Word32>, output: Producer<Word32>, trace: SharedTraceSink) -> Self {
        Decompressor {
            input,
            output,
            words_in: 0,
            words_out: 0,
            decoder: StreamDecoder::new(),
            compressed: false,
            idle: true,
            trace,
            blocks_seen: 0,
        }
    }

    fn load(&mut self, job: &StagedJob) {
        self.words_in = job.total_words;
        self.words_out = job.words_out;
        self.decoder = StreamDecoder::new();
        self.compressed = job.compressed;
        self.idle = false;
        self.blocks_seen = 0;
    }
}

impl Component for Decompressor {
    fn name(&self) -> &str {
        "bitstream-decompressor"
    }

    fn on_clock_edge(&mut self, ctx: &mut EdgeCtx<'_>) {
        if self.idle || !self.output.can_push() {
            return;
        }
        if !self.compressed {
            // Bypass: one word in, one word out.
            if self.words_out > 0 && self.words_in > 0 {
                if let Some(w) = self.input.pop() {
                    self.words_in -= 1;
                    self.words_out -= 1;
                    self.output
                        .try_push(Word32 {
                            data: w.data,
                            last: self.words_out == 0,
                        })
                        .expect("checked can_push");
                    if self.words_out == 0 {
                        self.idle = true;
                    }
                }
            }
            return;
        }
        // Pull one container word into the bounded FIFO when it fits.
        if self.words_in > 0 && self.decoder.free_capacity() >= 4 {
            if let Some(w) = self.input.pop() {
                self.words_in -= 1;
                self.decoder.push(&w.data.to_le_bytes());
            }
        }
        match self.decoder.pop_word() {
            Ok(Some(word)) => {
                self.words_out -= 1;
                self.output
                    .try_push(Word32 {
                        data: word,
                        last: self.words_out == 0,
                    })
                    .expect("checked can_push");
                if self.words_out == 0 {
                    self.idle = true;
                }
            }
            Ok(None) => {}
            Err(_) => self.idle = true, // malformed staging: wedge until reset
        }
        // Per-block progress. The u32 compare is free on every edge; the
        // sink is only borrowed on the (rare) edge where a block validates.
        let validated = self.decoder.blocks_done();
        if validated > self.blocks_seen {
            let now = ctx.now();
            let words_out = self.decoder.words_out();
            let mut sink = self.trace.borrow_mut();
            for block in self.blocks_seen + 1..=validated {
                sink.emit(
                    now,
                    TraceEvent::CodecBlock {
                        block: block as u64,
                        words_out,
                    },
                );
            }
            self.blocks_seen = validated;
        }
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        // Idle (no job, completed, or wedged) and back-pressured edges are
        // pure no-ops; a load() between runs or an ICAP pop re-polls.
        if self.idle || !self.output.can_push() {
            NextWake::Idle
        } else {
            NextWake::EveryCycle
        }
    }
}

/// The assembled Sec. VI system.
pub struct ProposedSystem {
    engine: Engine,
    config: ProposedConfig,
    sram_id: ComponentId,
    decomp_id: ComponentId,
    icap_id: ComponentId,
    cmd: Producer<SramReadCmd>,
    mem: SharedConfigMemory,
    done_irq: IrqLine,
    /// Monitor handles for draining stream tails between jobs.
    sram_data: pdr_sim_core::Fifo<Word32>,
    to_icap: pdr_sim_core::Fifo<Word32>,
    /// Next free staging offset in the SRAM.
    stage_cursor: u64,
    staged: Option<StagedJob>,
    last_preload: SimDuration,
    last_codec: Option<CodecReport>,
    trace: SharedTraceSink,
}

impl ProposedSystem {
    /// Builds and wires Fig. 7.
    pub fn new(config: ProposedConfig) -> Self {
        let mut engine = Engine::with_strategy(config.strategy);
        let sram_clk = engine.add_clock_domain("sram-rd", config.sram.read_word_rate);
        let icap_clk = engine.add_clock_domain("icap-550", config.icap_clock);

        let (sram, ports) = QdrSram::new("qdr-sram", config.sram);
        let sram_id = engine.add_component(sram, Some(sram_clk));

        let (to_icap_tx, to_icap_rx) = pdr_sim_core::fifo_channel::<Word32>("pr-icap", 64);
        let sram_data = ports.data.fifo().clone();
        let to_icap = to_icap_tx.fifo().clone();
        let trace: SharedTraceSink = Rc::new(RefCell::new(TraceSink::new()));
        let decomp_id = engine.add_component(
            Decompressor::new(ports.data, to_icap_tx, trace.clone()),
            Some(icap_clk),
        );

        let mem = shared_config_memory(ConfigMemory::new(config.floorplan.geometry().clone()));
        let irq_bus = IrqBus::new();
        let done_irq = irq_bus.allocate("icap-done");
        let icap_id = engine.add_component(
            IcapController::new("icap-macro", to_icap_rx, mem.clone(), done_irq.clone(), 7),
            Some(icap_clk),
        );

        ProposedSystem {
            engine,
            config,
            sram_id,
            decomp_id,
            icap_id,
            cmd: ports.cmd,
            mem,
            done_irq,
            sram_data,
            to_icap,
            stage_cursor: 0,
            staged: None,
            last_preload: SimDuration::ZERO,
            last_codec: None,
            trace,
        }
    }

    /// Sets the structured-trace level (default [`TraceLevel::Off`]).
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace.borrow_mut().set_level(level);
    }

    /// Aggregate trace metrics snapshot.
    pub fn trace_report(&self) -> TraceReport {
        self.trace.borrow_mut().report()
    }

    /// The retained event tape as JSONL (empty below [`TraceLevel::Full`]).
    pub fn export_trace_jsonl(&self) -> String {
        self.trace.borrow().export_jsonl()
    }

    /// Stamps `event` with the engine clock onto the shared tape.
    fn trace_emit(&self, event: TraceEvent) {
        let now = self.engine.now();
        self.trace.borrow_mut().emit(now, event);
    }

    /// The configuration.
    pub fn config(&self) -> &ProposedConfig {
        &self.config
    }

    /// Generates a partition-filling ASP bitstream (same generator as the
    /// measured system, so comparisons are apples-to-apples).
    pub fn make_asp_bitstream(&self, rp: usize, kind: AspKind, seed: u32) -> Bitstream {
        let p = self.config.floorplan.partition(rp);
        let frames = p.frame_count(self.config.floorplan.geometry());
        let image = AspImage::generate(kind, seed, frames);
        let mut b = pdr_bitstream::Builder::new(IDCODE);
        b.add_frames(p.start_far(), image.into_frames());
        b.build()
    }

    /// Pre-loads `bitstream` into the SRAM through the write port — the PS
    /// Scheduler's background job. Returns the time the write port was
    /// occupied; the caller overlaps it with accelerator runtime.
    pub fn preload(&mut self, bitstream: &Bitstream) -> SimDuration {
        let (start_far, frames) = bitstream_payload(bitstream);
        let geometry = self.config.floorplan.geometry();
        let start_idx = geometry
            .frame_index(start_far)
            .expect("bitstream targets an address outside the device");
        let golden = frames_crc(&frames);

        // Stage either the raw packet stream or the whole image as a
        // `PDRC` container (the codec passes the sync/header preamble
        // through internally, so the ICAP sees an identical word stream).
        let compressed = self.config.compress;
        let (staged_bytes, codec) = if compressed {
            let c = compress_bitstream(bitstream);
            let mut bytes = c.bytes;
            // The SRAM stores whole 32-bit words.
            bytes.resize(bytes.len().next_multiple_of(4), 0);
            (bytes, Some(c.report))
        } else {
            (bitstream.to_le_bytes(), None)
        };

        let addr = self.stage_cursor;
        assert!(
            addr as usize + staged_bytes.len() <= self.config.sram.capacity,
            "staged image exceeds SRAM capacity"
        );
        let dur = self
            .engine
            .component_mut::<QdrSram>(self.sram_id)
            .preload(addr, &staged_bytes);
        self.last_preload = dur;
        self.last_codec = codec;
        self.staged = Some(StagedJob {
            raw_bytes: bitstream.len() as u64,
            total_words: (staged_bytes.len() / 4) as u32,
            words_out: bitstream.word_count() as u64,
            compressed,
            start_idx,
            frame_count: frames.len() as u32,
            golden,
        });
        dur
    }

    /// Triggers the PR Controller: stream the staged image into the ICAP
    /// and wait for completion.
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged.
    pub fn reconfigure_staged(&mut self) -> ProposedReport {
        let job = self
            .staged
            .expect("no bitstream staged; call preload first");
        self.done_irq.clear();
        // Quiesce the datapath: the previous job's trailing words (the NOPs
        // after DESYNC) may still be in flight when its done-interrupt fired.
        for _ in 0..64 {
            let idle = self.engine.component::<QdrSram>(self.sram_id).is_idle();
            self.sram_data.clear();
            self.to_icap.clear();
            if idle {
                break;
            }
            self.engine.run_for(SimDuration::from_micros(1));
        }
        self.engine
            .component_mut::<IcapController>(self.icap_id)
            .reset();
        {
            let d = self.engine.component_mut::<Decompressor>(self.decomp_id);
            d.load(&job);
        }
        let t_start = self.engine.now();
        self.trace_emit(TraceEvent::StagedTransferStart {
            sram_words: job.total_words as u64,
        });
        self.cmd
            .try_push(SramReadCmd {
                addr: 0,
                words: job.total_words,
            })
            .expect("command queue full");
        let deadline = self.engine.now() + self.config.timeout;
        let done = self.done_irq.clone();
        let (_, hit) = self
            .engine
            .run_until_condition(deadline, |_| done.is_raised());
        assert!(hit, "proposed-system transfer timed out");
        let latency = self.engine.now().duration_since(t_start);

        let crc_ok = {
            let mem = self.mem.borrow();
            mem.range_crc(job.start_idx, job.frame_count) == job.golden
        };
        self.trace_emit(TraceEvent::StagedTransferDone {
            ok: crc_ok,
            words_out: job.words_out,
        });
        let sram_bytes = job.total_words as u64 * 4;
        ProposedReport {
            raw_bytes: job.raw_bytes,
            sram_bytes,
            latency,
            throughput_mb_s: job.raw_bytes as f64 / latency.as_secs_f64() / 1e6,
            crc_ok,
            preload_time: self.last_preload,
            compression_ratio: sram_bytes as f64 / job.raw_bytes as f64,
            codec: self.last_codec.clone(),
        }
    }

    /// Convenience: preload + reconfigure in one call (no overlap credit).
    pub fn reconfigure(&mut self, bitstream: &Bitstream) -> ProposedReport {
        self.preload(bitstream);
        self.reconfigure_staged()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The theoretical SRAM-port bound the paper derives: 1237.5 MB/s.
    pub fn theoretical_bound_mb_s(&self) -> f64 {
        self.config.sram.read_word_rate.as_hz() as f64 * 4.0 / 1e6
    }

    /// The fetch model of this system's SRAM write port — what the
    /// multi-tenant [`Scheduler`](crate::scheduler::Scheduler) uses to
    /// price prefetches it hides behind running transfers.
    pub fn prefetch_model(&self) -> crate::scheduler::FetchModel {
        crate::scheduler::FetchModel::from_qdr_write_port(&self.config.sram)
    }
}

impl std::fmt::Debug for ProposedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProposedSystem")
            .field("now", &self.engine.now())
            .field("compress", &self.config.compress)
            .field("staged", &self.staged.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::{ColumnKind, Geometry, Partition};

    fn small_config(compress: bool) -> ProposedConfig {
        let geometry = Geometry::new(1, vec![ColumnKind::Clb; 6]);
        let partitions = vec![Partition::new("RP1", 0, 0..4)];
        ProposedConfig {
            floorplan: Floorplan::new(geometry, partitions),
            compress,
            ..ProposedConfig::default()
        }
    }

    #[test]
    fn uncompressed_path_hits_the_sram_bound() {
        let mut sys = ProposedSystem::new(small_config(false));
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
        let r = sys.reconfigure(&bs);
        assert!(r.crc_ok, "{r:?}");
        assert_eq!(r.compression_ratio, 1.0);
        let bound = sys.theoretical_bound_mb_s();
        assert!((bound - 1237.5).abs() < 0.1);
        assert!(
            r.throughput_mb_s > 0.9 * bound && r.throughput_mb_s <= bound + 1.0,
            "throughput {:.1} vs bound {bound:.1}",
            r.throughput_mb_s
        );
    }

    #[test]
    fn compression_beats_the_sram_bound() {
        let mut sys = ProposedSystem::new(small_config(true));
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
        let r = sys.reconfigure(&bs);
        assert!(r.crc_ok, "{r:?}");
        assert!(r.compression_ratio < 0.9, "ratio {}", r.compression_ratio);
        assert!(
            r.throughput_mb_s > sys.theoretical_bound_mb_s(),
            "compressed rate {:.1} should exceed the raw SRAM bound",
            r.throughput_mb_s
        );
        // But never beyond the 550 MHz ICAP macro's 2200 MB/s.
        assert!(r.throughput_mb_s <= 2200.0 + 1.0);
    }

    #[test]
    fn configured_content_matches_either_way() {
        let mut raw = ProposedSystem::new(small_config(false));
        let mut comp = ProposedSystem::new(small_config(true));
        let bs_r = raw.make_asp_bitstream(0, AspKind::MatMul8, 5);
        let bs_c = comp.make_asp_bitstream(0, AspKind::MatMul8, 5);
        assert_eq!(bs_r, bs_c);
        let rr = raw.reconfigure(&bs_r);
        let rc = comp.reconfigure(&bs_c);
        assert!(rr.crc_ok && rc.crc_ok);
        assert_eq!(rr.raw_bytes, rc.raw_bytes);
        assert!(rc.sram_bytes < rr.sram_bytes);
    }

    #[test]
    fn preload_time_scales_with_stored_bytes() {
        let mut sys = ProposedSystem::new(small_config(true));
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 2);
        let d = sys.preload(&bs);
        let expected = d.as_secs_f64() * sys.config().sram.write_bw_bytes_per_s as f64;
        // preload duration × write bandwidth ≈ staged bytes (≤ raw size).
        assert!(expected <= bs.len() as f64 + 4.0);
        let r = sys.reconfigure_staged();
        assert_eq!(r.preload_time, d);
    }

    #[test]
    fn consecutive_reconfigurations_work() {
        let mut sys = ProposedSystem::new(small_config(true));
        for seed in 0..3 {
            let kind = AspKind::ALL[seed as usize % AspKind::ALL.len()];
            let bs = sys.make_asp_bitstream(0, kind, seed);
            let r = sys.reconfigure(&bs);
            assert!(r.crc_ok, "seed {seed}: {r:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no bitstream staged")]
    fn reconfigure_without_staging_panics() {
        let mut sys = ProposedSystem::new(small_config(true));
        let _ = sys.reconfigure_staged();
    }
}
