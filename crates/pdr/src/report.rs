//! Reconfiguration reports: what one `reconfigure` call observed.

use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{impl_json_enum, impl_json_struct, Frequency, SimDuration};

/// Outcome of the CRC read-back verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcStatus {
    /// The configured region matches the intended bitstream.
    Valid,
    /// The configured region is corrupt (the paper's "not valid").
    Invalid,
    /// Verification was not performed (read-back disabled).
    NotChecked,
}

impl_json_enum!(CrcStatus {
    Valid,
    Invalid,
    NotChecked
});

/// Why a reconfiguration attempt hit the watchdog deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutCause {
    /// The transfer finished (all bytes streamed, frames committed) but the
    /// completion interrupt never arrived — the paper's 310 MHz failure
    /// mode, where only the interrupt path violates timing.
    InterruptLost,
    /// The transfer itself never finished before the deadline (stalled DMA,
    /// starved interconnect): data may be partially written.
    StillInFlight,
}

impl_json_enum!(TimeoutCause {
    InterruptLost,
    StillInFlight
});

/// Classified failure of one reconfiguration attempt. `None` on a report
/// means the attempt succeeded end-to-end (interrupt seen, CRC valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The watchdog deadline expired without a completion interrupt.
    Timeout(TimeoutCause),
    /// The transfer completed but read-back found the partition corrupt.
    CrcMismatch,
    /// The configuration logic refused the bitstream (bad sync word, wrong
    /// IDCODE, malformed packet): nothing was written.
    Refused,
    /// The recovery ladder exhausted its options and the partition was
    /// taken out of service.
    Quarantined,
}

// `impl_json_enum!` handles unit variants only; `Timeout` carries a cause,
// so the encoding is written out: flat "Timeout:<cause>" strings keep the
// report JSON greppable.
impl ToJson for ReconfigError {
    fn to_json(&self) -> Json {
        let text = match self {
            ReconfigError::Timeout(cause) => {
                return Json::Str(format!(
                    "Timeout:{}",
                    cause.to_json_string().trim_matches('"')
                ))
            }
            ReconfigError::CrcMismatch => "CrcMismatch",
            ReconfigError::Refused => "Refused",
            ReconfigError::Quarantined => "Quarantined",
        };
        Json::Str(text.to_string())
    }
}

impl FromJson for ReconfigError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError {
            msg: "expected ReconfigError variant string".to_string(),
        })?;
        match s {
            "CrcMismatch" => Ok(ReconfigError::CrcMismatch),
            "Refused" => Ok(ReconfigError::Refused),
            "Quarantined" => Ok(ReconfigError::Quarantined),
            _ => match s.strip_prefix("Timeout:") {
                Some(cause) => Ok(ReconfigError::Timeout(TimeoutCause::from_json(
                    &Json::Str(cause.to_string()),
                )?)),
                None => Err(JsonError {
                    msg: format!("unknown ReconfigError variant '{s}'"),
                }),
            },
        }
    }
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::Timeout(TimeoutCause::InterruptLost) => {
                write!(f, "timeout: completion interrupt lost")
            }
            ReconfigError::Timeout(TimeoutCause::StillInFlight) => {
                write!(f, "timeout: transfer still in flight")
            }
            ReconfigError::CrcMismatch => write!(f, "CRC read-back mismatch"),
            ReconfigError::Refused => write!(f, "bitstream refused"),
            ReconfigError::Quarantined => write!(f, "partition quarantined"),
        }
    }
}

/// Everything observed during one partial reconfiguration — the raw material
/// for every row of Table I/II and every cell of the stress matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigReport {
    /// The over-clock frequency used, in Hz.
    pub frequency_hz: u64,
    /// Die temperature during the transfer, in °C (sensor reading).
    pub die_temp_c: f64,
    /// Bitstream size in bytes.
    pub bitstream_bytes: u64,
    /// Configuration latency measured by the software timer, from driver
    /// start to the completion interrupt. `None` when the interrupt never
    /// arrived (the paper's "N/A no interrupt" rows).
    pub latency: Option<SimDuration>,
    /// Whether the end-of-configuration interrupt was observed.
    pub interrupt_seen: bool,
    /// CRC read-back verdict.
    pub crc: CrcStatus,
    /// Whether the in-stream CRC check word matched (`None` if the parser
    /// never reached it).
    pub stream_crc_ok: Option<bool>,
    /// Frames committed to configuration memory.
    pub frames_written: u64,
    /// Words corrupted by timing violations (0 on a healthy data path).
    pub corrupted_words: u64,
    /// P_PDR measured during the transfer (board reading minus P0), in W.
    pub p_pdr_w: f64,
    /// Energy attributed to the transfer (P_PDR × latency), in J; `None`
    /// without a latency measurement.
    pub energy_j: Option<f64>,
    /// Classified failure, `None` when the attempt succeeded end-to-end.
    pub error: Option<ReconfigError>,
}

impl_json_struct!(ReconfigReport {
    frequency_hz,
    die_temp_c,
    bitstream_bytes,
    latency,
    interrupt_seen,
    crc,
    stream_crc_ok,
    frames_written,
    corrupted_words,
    p_pdr_w,
    energy_j,
    error,
});

impl ReconfigReport {
    /// True when the read-back verified the configuration.
    pub fn crc_ok(&self) -> bool {
        self.crc == CrcStatus::Valid
    }

    /// True when the attempt succeeded end-to-end (no classified error).
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }

    /// Transfer throughput in MB/s (10⁶ bytes per second, the paper's
    /// unit). `None` without a latency measurement, and `None` for
    /// degenerate reports (zero-duration latency) whose ratio would not be
    /// finite — report JSON must never carry `inf`/`NaN`.
    pub fn throughput_mb_s(&self) -> Option<f64> {
        self.latency
            .map(|l| self.bitstream_bytes as f64 / l.as_secs_f64() / 1e6)
            .filter(|t| t.is_finite())
    }

    /// Performance-per-watt in MB/J. `None` without a latency measurement
    /// or without a usable (strictly positive, finite) power reading.
    pub fn ppw_mb_j(&self) -> Option<f64> {
        self.throughput_mb_s()
            .and_then(|t| pdr_power::performance_per_watt(t, self.p_pdr_w))
    }

    /// The over-clock frequency, or `None` for transports without a PL
    /// clock (the PCAP path reports `frequency_hz == 0`).
    pub fn frequency(&self) -> Option<Frequency> {
        (self.frequency_hz > 0).then(|| Frequency::from_hz(self.frequency_hz))
    }

    /// A compact one-line summary (the OLED display's content).
    pub fn summary(&self) -> String {
        let lat = match self.latency {
            Some(l) => format!("{:.2} us", l.as_micros_f64()),
            None => "N/A no interrupt".to_string(),
        };
        let thpt = match self.throughput_mb_s() {
            Some(t) => format!("{t:.2} MB/s"),
            None => "N/A".to_string(),
        };
        let crc = match self.crc {
            CrcStatus::Valid => "valid",
            CrcStatus::Invalid => "not valid",
            CrcStatus::NotChecked => "unchecked",
        };
        format!(
            "{} MHz {:.0} C | {} | {} | CRC {}",
            self.frequency_hz / 1_000_000,
            self.die_temp_c,
            lat,
            thpt,
            crc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latency_us: Option<u64>) -> ReconfigReport {
        ReconfigReport {
            frequency_hz: 200_000_000,
            die_temp_c: 40.0,
            bitstream_bytes: 528_568,
            latency: latency_us.map(SimDuration::from_micros),
            interrupt_seen: latency_us.is_some(),
            crc: CrcStatus::Valid,
            stream_crc_ok: Some(true),
            frames_written: 1308,
            corrupted_words: 0,
            p_pdr_w: 1.30,
            energy_j: latency_us.map(|u| 1.30 * u as f64 * 1e-6),
            error: latency_us
                .is_none()
                .then_some(ReconfigError::Timeout(TimeoutCause::InterruptLost)),
        }
    }

    #[test]
    fn throughput_uses_paper_units() {
        let r = report(Some(676));
        let t = r.throughput_mb_s().unwrap();
        assert!((t - 781.9).abs() < 1.0, "t={t}");
    }

    #[test]
    fn ppw_matches_definition() {
        let r = report(Some(676));
        let ppw = r.ppw_mb_j().unwrap();
        assert!((ppw - 781.9 / 1.30).abs() < 1.0, "ppw={ppw}");
    }

    #[test]
    fn degenerate_report_yields_none_not_inf_and_round_trips() {
        use pdr_sim_core::json::{FromJson, ToJson};
        // Regression: a zero-latency report used to return `inf` MB/s
        // (and 0/0 → NaN for a zero-byte transfer), which `ppw_mb_j`
        // forwarded into report consumers. Both must degrade to `None`.
        let mut r = report(Some(0));
        assert_eq!(r.latency, Some(SimDuration::ZERO));
        assert_eq!(r.throughput_mb_s(), None, "inf must not escape");
        assert_eq!(r.ppw_mb_j(), None);
        assert!(r.summary().contains("N/A"), "{}", r.summary());

        r.bitstream_bytes = 0; // 0 bytes / 0 s → NaN
        assert_eq!(r.throughput_mb_s(), None, "NaN must not escape");
        assert_eq!(r.ppw_mb_j(), None);

        // Zero power on an otherwise healthy report: throughput is fine,
        // PpW is unmeasurable.
        let mut r = report(Some(676));
        r.p_pdr_w = 0.0;
        assert!(r.throughput_mb_s().is_some());
        assert_eq!(r.ppw_mb_j(), None);

        // The degenerate report still JSON round-trips bit-exactly: the
        // codec's promise that report JSON never holds non-finite floats
        // relies on accessors filtering them out before serialization.
        let degenerate = ReconfigReport {
            bitstream_bytes: 0,
            latency: Some(SimDuration::ZERO),
            p_pdr_w: 0.0,
            energy_j: Some(0.0),
            ..report(Some(0))
        };
        let text = degenerate.to_json_string();
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
        let back = ReconfigReport::from_json_str(&text).expect("decodes");
        assert_eq!(back, degenerate);
    }

    #[test]
    fn missing_interrupt_yields_no_throughput() {
        let r = report(None);
        assert_eq!(r.throughput_mb_s(), None);
        assert_eq!(r.ppw_mb_j(), None);
        assert!(r.summary().contains("N/A no interrupt"));
    }

    #[test]
    fn pcap_report_has_no_frequency() {
        let mut r = report(Some(100));
        assert!(r.frequency().is_some());
        r.frequency_hz = 0; // PCAP
        assert_eq!(r.frequency(), None);
        // The summary still renders without panicking.
        assert!(r.summary().contains("0 MHz"));
    }

    #[test]
    fn summary_mentions_crc_state() {
        let mut r = report(Some(676));
        assert!(r.summary().contains("CRC valid"));
        r.crc = CrcStatus::Invalid;
        assert!(r.summary().contains("not valid"));
    }

    #[test]
    fn report_json_round_trips_with_latency() {
        use pdr_sim_core::json::{FromJson, ToJson};
        let r = report(Some(676));
        let text = r.to_json_string();
        assert!(text.contains("\"crc\":\"Valid\""), "{text}");
        let back = ReconfigReport::from_json_str(&text).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn report_json_round_trips_without_latency() {
        use pdr_sim_core::json::{FromJson, ToJson};
        let r = report(None);
        let text = r.to_json_string();
        // Absent optionals render as null and come back as None.
        assert!(text.contains("\"latency\":null"), "{text}");
        let back = ReconfigReport::from_json_str(&text).expect("decodes");
        assert_eq!(back, r);
        assert_eq!(back.latency, None);
        assert_eq!(back.energy_j, None);
    }

    #[test]
    fn reconfig_error_json_round_trips_every_variant() {
        use pdr_sim_core::json::{FromJson, ToJson};
        for e in [
            ReconfigError::Timeout(TimeoutCause::InterruptLost),
            ReconfigError::Timeout(TimeoutCause::StillInFlight),
            ReconfigError::CrcMismatch,
            ReconfigError::Refused,
            ReconfigError::Quarantined,
        ] {
            let j = e.to_json_string();
            assert_eq!(ReconfigError::from_json_str(&j).expect("decodes"), e, "{j}");
        }
        assert_eq!(
            ReconfigError::Timeout(TimeoutCause::InterruptLost).to_json_string(),
            "\"Timeout:InterruptLost\""
        );
        assert!(ReconfigError::from_json_str("\"Timeout:Nonsense\"").is_err());
        assert!(ReconfigError::from_json_str("\"Bogus\"").is_err());
        assert!(ReconfigError::from_json_str("17").is_err());
    }

    #[test]
    fn error_field_round_trips_and_marks_failure() {
        use pdr_sim_core::json::{FromJson, ToJson};
        let ok = report(Some(676));
        assert!(ok.succeeded());
        let failed = report(None);
        assert!(!failed.succeeded());
        let text = failed.to_json_string();
        assert!(
            text.contains("\"error\":\"Timeout:InterruptLost\""),
            "{text}"
        );
        let back = ReconfigReport::from_json_str(&text).expect("decodes");
        assert_eq!(back, failed);
    }

    #[test]
    fn crc_status_json_round_trips_every_variant() {
        use pdr_sim_core::json::{FromJson, ToJson};
        for status in [CrcStatus::Valid, CrcStatus::Invalid, CrcStatus::NotChecked] {
            let j = status.to_json();
            assert_eq!(CrcStatus::from_json(&j).expect("decodes"), status);
        }
        assert!(CrcStatus::from_json_str("\"Bogus\"").is_err());
    }
}
