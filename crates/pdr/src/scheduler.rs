//! Multi-tenant reconfiguration scheduling: admission, EDF-within-priority
//! queueing, and a bitstream cache with QDR-style prefetch.
//!
//! The measured system reconfigures **one partition at a time**, and every
//! request pays the full bitstream *fetch* (SD card at boot, ~19 MB/s) in
//! front of the *transfer* (over-clocked ICAP, ~790 MB/s). Sec. VI's
//! redesign exists precisely to break that serialisation: the QDR-II+ SRAM
//! has independent read and write ports, so the PS Scheduler refills the
//! staging memory with the *next* bitstream while the current one streams
//! into the ICAP. [`Scheduler`] is that control layer:
//!
//! * **Admission** — a request is rejected up front when it names an
//!   unknown bitstream or partition, when its partition is quarantined by
//!   the recovery ladder ([`RecoveryManager`]), or when the ready queue is
//!   full. Rejection is cheap and synchronous; nothing touches hardware.
//! * **Ready queue** — earliest-deadline-first within strictly higher
//!   priority, with submission order as the final tie-break so identical
//!   workloads replay identically.
//! * **Bitstream cache + prefetch** — staged images are cached (LRU under
//!   a byte budget). A miss charges the [`FetchModel`]'s fetch time on the
//!   critical path; when prefetch is enabled the scheduler starts fetching
//!   the *next* queued request's image on the independent write port as
//!   soon as the current transfer begins, so back-to-back transfers on
//!   different partitions pipeline instead of serialising behind fetches.
//! * **Compressed catalog** — with
//!   [`compress_catalog`](SchedulerConfig::compress_catalog) the catalog
//!   holds `PDRC` containers (see `pdr-bitstream-codec`): fetches move the
//!   *compressed* bytes and the LRU budget is charged by *stored* size, so
//!   the same staging SRAM holds more images and cold misses stall for
//!   `fetch_time(stored_bytes)` instead of the raw size. Dispatch expands
//!   the container and the transfer still verifies by CRC read-back.
//! * **Telemetry** — per-request queueing and service latency (exact
//!   p50/p99 via [`SampleSeries`]), aggregate throughput, cache and
//!   deadline counters, all serialisable as [`SchedulerReport`] with the
//!   workspace-wide guarantee that no non-finite float reaches JSON.
//!
//! Transfers themselves are delegated to [`RecoveryManager::reconfigure`],
//! so every request gets the full self-healing ladder (retry → backoff →
//! scrub → quarantine) and quarantine feedback flows straight back into
//! admission.

use std::collections::BTreeMap;

use pdr_bitstream::Bitstream;
use pdr_bitstream_codec::{compress_bitstream, decompress_to_bitstream, CodecReport};
use pdr_mem::SramConfig;
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::stats::SampleSeries;
use pdr_sim_core::{impl_json_enum, impl_json_struct, Frequency, SimDuration, SimTime};

use crate::campaign::StatsSummary;
use crate::recovery::{PartitionHealth, RecoveryManager};
use crate::report::ReconfigError;
use crate::sdcard::SdCard;
use crate::system::ZynqPdrSystem;
use crate::trace::TraceEvent;

/// One tenant's reconfiguration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigRequest {
    /// Target reconfigurable partition.
    pub rp: usize,
    /// Catalog id of the bitstream to apply (see
    /// [`Scheduler::register_bitstream`]).
    pub bitstream_id: u32,
    /// Scheduling priority; higher runs first.
    pub priority: u8,
    /// Relative deadline from submission. Requests finishing later still
    /// complete, but are counted as deadline misses.
    pub deadline: SimDuration,
    /// Owning tenant. Tenants with an energy budget (see
    /// [`Scheduler::set_energy_budget_j`]) are metered per verified
    /// transfer and refused admission once the budget is spent; tenant 0
    /// with no registered budget is the legacy unmetered behaviour.
    pub tenant: u32,
}

impl_json_struct!(ReconfigRequest {
    rp,
    bitstream_id,
    priority,
    deadline,
    tenant,
});

/// Why admission refused a request. Rejection happens synchronously at
/// submission; nothing is queued and no hardware is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// `bitstream_id` was never registered with the scheduler.
    UnknownBitstream,
    /// `rp` is outside the system's floorplan.
    InvalidPartition,
    /// The recovery ladder quarantined the target partition.
    Quarantined,
    /// The ready queue is at capacity.
    QueueFull,
    /// The tenant's energy budget is exhausted.
    EnergyExhausted,
}

impl_json_enum!(RejectReason {
    UnknownBitstream,
    InvalidPartition,
    Quarantined,
    QueueFull,
    EnergyExhausted
});

/// Analytic model of the path that brings a bitstream *into* the staging
/// store: bandwidth plus a fixed per-fetch overhead (file-system lookup,
/// command setup). The scheduler charges this on the critical path for
/// cold misses, and hides it behind the running transfer when prefetch is
/// enabled (the QDR write port is independent of the read port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchModel {
    /// Sustained fetch bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: u64,
    /// Fixed overhead per fetch.
    pub per_fetch_overhead: SimDuration,
}

impl FetchModel {
    /// Fetch model of `card` (a class-10 SD card sustains ~19 MB/s with
    /// ~2 ms of file overhead — the paper's boot-time staging path).
    pub fn from_sd_card(card: &SdCard) -> Self {
        FetchModel {
            bandwidth_bytes_per_s: card.bandwidth_bytes_per_s(),
            per_fetch_overhead: card.per_file_overhead(),
        }
    }

    /// Fetch model of a QDR SRAM's independent write port: the Sec. VI
    /// prefetch path (1237.5 MB/s on the CY7C2263KV18, no per-file
    /// overhead — the image is already in DRAM).
    pub fn from_qdr_write_port(sram: &SramConfig) -> Self {
        FetchModel {
            bandwidth_bytes_per_s: sram.write_bw_bytes_per_s,
            per_fetch_overhead: SimDuration::ZERO,
        }
    }

    /// Time to fetch `bytes` through this path.
    pub fn fetch_time(&self, bytes: u64) -> SimDuration {
        assert!(
            self.bandwidth_bytes_per_s > 0,
            "fetch bandwidth must be > 0"
        );
        self.per_fetch_overhead
            + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_s as f64)
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Transfer frequency handed to the recovery ladder, MHz.
    pub freq_mhz: u64,
    /// Bitstream-cache budget in bytes; 0 disables caching entirely.
    pub cache_capacity_bytes: u64,
    /// Ready-queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// The cold-fetch path (cache misses pay this).
    pub fetch: FetchModel,
    /// Overlap the next request's fetch with the running transfer.
    pub prefetch: bool,
    /// Store the catalog as `PDRC` containers: fetches move compressed
    /// bytes and the cache budget is charged by stored size.
    pub compress_catalog: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            freq_mhz: 200,
            cache_capacity_bytes: 8 << 20,
            queue_capacity: 64,
            fetch: FetchModel::from_sd_card(&SdCard::class10()),
            prefetch: true,
            compress_catalog: false,
        }
    }
}

impl SchedulerConfig {
    /// The single-request-at-a-time strawman the saturation bench compares
    /// against: no cache, no prefetch — every dispatch serialises the full
    /// fetch in front of its transfer, exactly like re-reading the SD card
    /// per request on the measured system.
    pub fn baseline(self) -> Self {
        SchedulerConfig {
            cache_capacity_bytes: 0,
            prefetch: false,
            ..self
        }
    }

    /// Enables the compressed catalog (Sec. VI decompressor in front of
    /// the ICAP): fetch stalls and cache residency are charged on stored
    /// container bytes instead of raw image bytes.
    pub fn compressed(self) -> Self {
        SchedulerConfig {
            compress_catalog: true,
            ..self
        }
    }
}

/// How a registered image is held in the catalog.
#[derive(Debug, Clone)]
enum CatalogImage {
    /// The raw image, as registered.
    Raw(Bitstream),
    /// A `PDRC` container; expanded at dispatch.
    Compressed(Vec<u8>),
}

/// One catalog slot: the image plus both of its sizes. Fetch time and the
/// LRU byte budget are always charged on `stored_bytes`; `raw_bytes` is
/// what actually crosses the ICAP once expanded.
#[derive(Debug, Clone)]
struct CatalogEntry {
    image: CatalogImage,
    raw_bytes: u64,
    stored_bytes: u64,
    codec: Option<CodecReport>,
}

impl CatalogEntry {
    fn materialise(&self) -> Bitstream {
        match &self.image {
            CatalogImage::Raw(bs) => bs.clone(),
            CatalogImage::Compressed(bytes) => decompress_to_bitstream(bytes)
                .expect("scheduler-encoded container round-trips bit-exactly"),
        }
    }
}

/// A queued (admitted, not yet dispatched) request.
#[derive(Debug, Clone, Copy)]
struct Queued {
    req: ReconfigRequest,
    submitted: SimTime,
    abs_deadline: SimTime,
    seq: u64,
}

/// What one completed (dispatched) request observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The request as submitted.
    pub req: ReconfigRequest,
    /// Submission → dispatch.
    pub queueing: SimDuration,
    /// Dispatch → completion (fetch stall + transfer + any recovery).
    pub service: SimDuration,
    /// Whether the image was resident when dispatched.
    pub cache_hit: bool,
    /// Completion at or before the absolute deadline.
    pub deadline_met: bool,
    /// Final classified error (`None` = verified success).
    pub error: Option<ReconfigError>,
}

impl_json_struct!(RequestRecord {
    req,
    queueing,
    service,
    cache_hit,
    deadline_met,
    error,
});

/// Aggregate scheduler telemetry, serialisable like every other report.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerReport {
    /// Requests submitted (admitted + rejected).
    pub submitted: u64,
    /// Requests admitted to the ready queue.
    pub admitted: u64,
    /// Rejections naming an unregistered bitstream.
    pub rejected_unknown_bitstream: u64,
    /// Rejections naming a partition outside the floorplan.
    pub rejected_invalid_partition: u64,
    /// Rejections against a quarantined partition.
    pub rejected_quarantined: u64,
    /// Rejections against a full ready queue.
    pub rejected_queue_full: u64,
    /// Rejections against an exhausted tenant energy budget.
    pub rejected_energy_exhausted: u64,
    /// Joules charged to metered tenants by verified transfers.
    pub energy_charged_j: f64,
    /// Dispatched requests that verified end-to-end.
    pub completed: u64,
    /// Dispatched requests whose recovery ladder still failed.
    pub failed: u64,
    /// Completions at or before their absolute deadline.
    pub deadlines_met: u64,
    /// Completions after their absolute deadline.
    pub deadlines_missed: u64,
    /// Dispatches served from the resident cache.
    pub cache_hits: u64,
    /// Dispatches that paid a fetch on the critical path.
    pub cache_misses: u64,
    /// Misses fully or partially hidden by prefetch overlap.
    pub prefetch_hits: u64,
    /// Images evicted from the resident cache (capacity pressure, or
    /// replacement when an id is re-registered). Until this PR evictions
    /// went entirely unaccounted, so cache thrash was invisible in the
    /// report even though every evicted image pays a re-fetch later.
    pub cache_evictions: u64,
    /// Stored bytes released by those evictions.
    pub bytes_evicted: u64,
    /// Payload bytes of verified transfers (raw, post-decompression).
    pub bytes_transferred: u64,
    /// Stored (possibly compressed) bytes fetched on cold misses.
    pub bytes_fetched: u64,
    /// Sum of raw image sizes across the catalog.
    pub catalog_raw_bytes: u64,
    /// Sum of stored image sizes across the catalog (equals
    /// `catalog_raw_bytes` when the catalog is uncompressed).
    pub catalog_stored_bytes: u64,
    /// First submission to last completion, µs.
    pub makespan_us: f64,
    /// Aggregate goodput over the makespan in MB/s (10⁶ bytes/s), `None`
    /// when the window is degenerate (no finite ratio).
    pub throughput_mb_s: Option<f64>,
    /// Submission → dispatch latency, µs.
    pub queueing_latency_us: StatsSummary,
    /// Dispatch → completion latency, µs.
    pub service_latency_us: StatsSummary,
    /// Exact median queueing latency, µs (`None` with no completions).
    pub queueing_p50_us: Option<f64>,
    /// Exact 99th-percentile queueing latency, µs.
    pub queueing_p99_us: Option<f64>,
    /// Exact median service latency, µs.
    pub service_p50_us: Option<f64>,
    /// Exact 99th-percentile service latency, µs.
    pub service_p99_us: Option<f64>,
}

impl_json_struct!(SchedulerReport {
    submitted,
    admitted,
    rejected_unknown_bitstream,
    rejected_invalid_partition,
    rejected_quarantined,
    rejected_queue_full,
    rejected_energy_exhausted,
    energy_charged_j,
    completed,
    failed,
    deadlines_met,
    deadlines_missed,
    cache_hits,
    cache_misses,
    prefetch_hits,
    cache_evictions,
    bytes_evicted,
    bytes_transferred,
    bytes_fetched,
    catalog_raw_bytes,
    catalog_stored_bytes,
    makespan_us,
    throughput_mb_s,
    queueing_latency_us,
    service_latency_us,
    queueing_p50_us,
    queueing_p99_us,
    service_p50_us,
    service_p99_us,
});

/// An in-flight prefetch on the staging store's write port.
#[derive(Debug, Clone, Copy)]
struct Prefetch {
    bitstream_id: u32,
    ready_at: SimTime,
}

/// The multi-tenant reconfiguration scheduler.
///
/// Owns the request queue, the bitstream catalog/cache and the telemetry;
/// borrows the [`ZynqPdrSystem`] and [`RecoveryManager`] per call so they
/// remain usable (and inspectable) between scheduling rounds.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    /// Registered images by id (`BTreeMap` for deterministic iteration).
    catalog: BTreeMap<u32, CatalogEntry>,
    /// Resident ids, least-recently-used first.
    cache: Vec<u32>,
    cache_bytes: u64,
    queue: Vec<Queued>,
    prefetch: Option<Prefetch>,
    seq: u64,
    first_submit: Option<SimTime>,
    last_complete: Option<SimTime>,
    records: Vec<RequestRecord>,
    queueing_us: SampleSeries,
    service_us: SampleSeries,
    submitted: u64,
    rejections: [u64; 5],
    /// Per-tenant energy caps, joules (absent = unmetered).
    energy_budget_j: BTreeMap<u32, f64>,
    /// Joules charged so far per metered tenant.
    energy_spent_j: BTreeMap<u32, f64>,
    completed: u64,
    failed: u64,
    deadlines_met: u64,
    deadlines_missed: u64,
    cache_hits: u64,
    cache_misses: u64,
    prefetch_hits: u64,
    cache_evictions: u64,
    bytes_evicted: u64,
    bytes_transferred: u64,
    bytes_fetched: u64,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            catalog: BTreeMap::new(),
            cache: Vec::new(),
            cache_bytes: 0,
            queue: Vec::new(),
            prefetch: None,
            seq: 0,
            first_submit: None,
            last_complete: None,
            records: Vec::new(),
            queueing_us: SampleSeries::new(),
            service_us: SampleSeries::new(),
            submitted: 0,
            rejections: [0; 5],
            energy_budget_j: BTreeMap::new(),
            energy_spent_j: BTreeMap::new(),
            completed: 0,
            failed: 0,
            deadlines_met: 0,
            deadlines_missed: 0,
            cache_hits: 0,
            cache_misses: 0,
            prefetch_hits: 0,
            cache_evictions: 0,
            bytes_evicted: 0,
            bytes_transferred: 0,
            bytes_fetched: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Registers `bitstream` in the catalog under `id` (replacing any
    /// previous image with that id, which is also evicted from the cache).
    /// With a [compressed catalog](SchedulerConfig::compress_catalog) the
    /// image is encoded to a `PDRC` container here, once.
    pub fn register_bitstream(&mut self, id: u32, bitstream: Bitstream) {
        self.evict(id);
        let raw_bytes = bitstream.len() as u64;
        let entry = if self.config.compress_catalog {
            let c = compress_bitstream(&bitstream);
            CatalogEntry {
                raw_bytes,
                stored_bytes: c.bytes.len() as u64,
                codec: Some(c.report),
                image: CatalogImage::Compressed(c.bytes),
            }
        } else {
            CatalogEntry {
                raw_bytes,
                stored_bytes: raw_bytes,
                codec: None,
                image: CatalogImage::Raw(bitstream),
            }
        };
        self.catalog.insert(id, entry);
    }

    /// Marks `id` resident in the cache without charging fetch time — the
    /// "warm cache" starting state (images staged at boot).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the catalog.
    pub fn warm(&mut self, id: u32) {
        let bytes = self.catalog[&id].stored_bytes;
        self.insert_cached(id, bytes);
    }

    /// Raw image size of `id`, bytes.
    pub fn raw_bytes(&self, id: u32) -> Option<u64> {
        self.catalog.get(&id).map(|e| e.raw_bytes)
    }

    /// Bytes `id` occupies in the catalog/cache (container size when the
    /// catalog is compressed, the raw size otherwise).
    pub fn stored_bytes(&self, id: u32) -> Option<u64> {
        self.catalog.get(&id).map(|e| e.stored_bytes)
    }

    /// Codec telemetry for `id` (`None` on an uncompressed catalog).
    pub fn codec_report(&self, id: u32) -> Option<&CodecReport> {
        self.catalog.get(&id).and_then(|e| e.codec.as_ref())
    }

    /// Bytes currently resident in the cache (stored sizes).
    pub fn cached_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Number of requests waiting in the ready queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether `id` is currently resident in the cache.
    pub fn is_cached(&self, id: u32) -> bool {
        self.cache.contains(&id)
    }

    /// Per-request records of every dispatched request, completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Caps `tenant`'s verified-transfer energy at `budget_j` joules.
    /// Requests from a tenant whose spend has reached its cap are rejected
    /// at admission with [`RejectReason::EnergyExhausted`]. Re-registering
    /// raises (or lowers) the cap without forgetting past spend.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative budget.
    pub fn set_energy_budget_j(&mut self, tenant: u32, budget_j: f64) {
        assert!(
            budget_j.is_finite() && budget_j >= 0.0,
            "energy budget must be finite and non-negative: {budget_j}"
        );
        self.energy_budget_j.insert(tenant, budget_j);
    }

    /// `tenant`'s energy cap, if one is registered.
    pub fn energy_budget_j(&self, tenant: u32) -> Option<f64> {
        self.energy_budget_j.get(&tenant).copied()
    }

    /// Joules charged to `tenant` so far (0.0 for a tenant never seen).
    pub fn energy_spent_j(&self, tenant: u32) -> f64 {
        self.energy_spent_j.get(&tenant).copied().unwrap_or(0.0)
    }

    /// Remaining joules under `tenant`'s cap (`None` when unmetered).
    pub fn energy_remaining_j(&self, tenant: u32) -> Option<f64> {
        self.energy_budget_j
            .get(&tenant)
            .map(|b| (b - self.energy_spent_j(tenant)).max(0.0))
    }

    /// Submits one request at the system's current simulated time. On
    /// success the request joins the ready queue; on rejection nothing is
    /// queued and the reason is returned.
    pub fn submit(
        &mut self,
        sys: &ZynqPdrSystem,
        recovery: &RecoveryManager,
        req: ReconfigRequest,
    ) -> Result<(), RejectReason> {
        self.submitted += 1;
        let reason = if !self.catalog.contains_key(&req.bitstream_id) {
            Some(RejectReason::UnknownBitstream)
        } else if req.rp >= sys.floorplan().partitions().len() {
            Some(RejectReason::InvalidPartition)
        } else if recovery.health(req.rp) == PartitionHealth::Quarantined {
            Some(RejectReason::Quarantined)
        } else if self.queue.len() >= self.config.queue_capacity {
            Some(RejectReason::QueueFull)
        } else if self
            .energy_budget_j
            .get(&req.tenant)
            .is_some_and(|b| self.energy_spent_j(req.tenant) >= *b)
        {
            Some(RejectReason::EnergyExhausted)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.rejections[reason as usize] += 1;
            return Err(reason);
        }
        let now = sys.now();
        self.first_submit.get_or_insert(now);
        self.queue.push(Queued {
            req,
            submitted: now,
            abs_deadline: now + req.deadline,
            seq: self.seq,
        });
        self.seq += 1;
        Ok(())
    }

    /// Dispatches the best ready request (EDF within priority): charges
    /// any fetch stall, runs the transfer through the recovery ladder,
    /// arms the next prefetch, and records telemetry. Returns the record,
    /// or `None` when the queue is empty.
    pub fn dispatch_one(
        &mut self,
        sys: &mut ZynqPdrSystem,
        recovery: &mut RecoveryManager,
    ) -> Option<RequestRecord> {
        let idx = self.best_ready()?;
        let q = self.queue.remove(idx);
        let entry = &self.catalog[&q.req.bitstream_id];
        // Fetch and residency are charged on stored (possibly compressed)
        // bytes; the ICAP transfer moves the raw expansion.
        let stored = entry.stored_bytes;
        let raw = entry.raw_bytes;

        // ---- Stage the image: cache hit, prefetch overlap, or cold miss.
        let dispatch = sys.now();
        let was_hit = self.is_cached(q.req.bitstream_id);
        if was_hit {
            self.cache_hits += 1;
            self.touch(q.req.bitstream_id);
            sys.trace_emit(TraceEvent::CacheHit {
                id: q.req.bitstream_id as u64,
                bytes: stored,
            });
        } else {
            self.cache_misses += 1;
            let stall = match self.prefetch {
                // An earlier dispatch already started this fetch on the
                // independent write port: only the uncovered tail stalls.
                Some(p) if p.bitstream_id == q.req.bitstream_id => {
                    self.prefetch_hits += 1;
                    if p.ready_at > dispatch {
                        p.ready_at.duration_since(dispatch)
                    } else {
                        SimDuration::ZERO
                    }
                }
                _ => self.config.fetch.fetch_time(stored),
            };
            self.bytes_fetched += stored;
            sys.trace_emit(TraceEvent::CacheMiss {
                id: q.req.bitstream_id as u64,
                stored_bytes: stored,
            });
            for (victim, released) in self.insert_cached(q.req.bitstream_id, stored) {
                sys.trace_emit(TraceEvent::CacheEvict {
                    id: victim as u64,
                    bytes: released,
                });
            }
            if stall > SimDuration::ZERO {
                sys.run_monitor_for(stall);
            }
        }
        if self
            .prefetch
            .is_some_and(|p| p.bitstream_id == q.req.bitstream_id)
        {
            self.prefetch = None;
        }

        // ---- Arm the next prefetch before the transfer occupies the read
        // port: the write port is independent, so the fetch runs behind it.
        if self.config.prefetch && self.prefetch.is_none() {
            if let Some(next) = self.next_uncached_id() {
                let bytes = self.catalog[&next].stored_bytes;
                self.prefetch = Some(Prefetch {
                    bitstream_id: next,
                    ready_at: sys.now() + self.config.fetch.fetch_time(bytes),
                });
                sys.trace_emit(TraceEvent::PrefetchArmed {
                    id: next as u64,
                    bytes,
                });
            }
        }

        // ---- Transfer through the full self-healing ladder. A compressed
        // entry is expanded here; the read-back CRC check inside the ladder
        // therefore verifies the *post-decompression* image on the fabric.
        let bs = self.catalog[&q.req.bitstream_id].materialise();
        let freq = Frequency::from_mhz(self.config.freq_mhz);
        let out = recovery.reconfigure(sys, None, q.req.rp, &bs, freq);
        let done = sys.now();

        let record = RequestRecord {
            req: q.req,
            queueing: dispatch.duration_since(q.submitted),
            service: done.duration_since(dispatch),
            cache_hit: was_hit,
            deadline_met: done <= q.abs_deadline,
            error: out.error,
        };
        if out.error.is_none() {
            self.completed += 1;
            self.bytes_transferred += raw;
        } else {
            self.failed += 1;
        }
        // Metered tenants are charged the measured transfer energy (the
        // instrument can read slightly negative under noise at idle;
        // clamp so a budget can never be *refilled* by a charge).
        if self.energy_budget_j.contains_key(&q.req.tenant) {
            if let Some(e) = out.report.as_ref().and_then(|r| r.energy_j) {
                *self.energy_spent_j.entry(q.req.tenant).or_insert(0.0) += e.max(0.0);
            }
        }
        if record.deadline_met {
            self.deadlines_met += 1;
        } else {
            self.deadlines_missed += 1;
        }
        self.queueing_us.push(record.queueing.as_micros_f64());
        self.service_us.push(record.service.as_micros_f64());
        self.last_complete = Some(done);
        self.records.push(record);
        Some(record)
    }

    /// Dispatches until the ready queue is empty, returning how many
    /// requests ran.
    pub fn run_until_idle(
        &mut self,
        sys: &mut ZynqPdrSystem,
        recovery: &mut RecoveryManager,
    ) -> usize {
        let mut n = 0;
        while self.dispatch_one(sys, recovery).is_some() {
            n += 1;
        }
        n
    }

    /// Aggregate telemetry over everything scheduled so far.
    pub fn report(&mut self) -> SchedulerReport {
        let makespan = match (self.first_submit, self.last_complete) {
            (Some(a), Some(b)) => b.duration_since(a),
            _ => SimDuration::ZERO,
        };
        let throughput = Some(self.bytes_transferred as f64 / makespan.as_secs_f64() / 1e6)
            .filter(|t| t.is_finite());
        SchedulerReport {
            submitted: self.submitted,
            admitted: self.seq,
            rejected_unknown_bitstream: self.rejections[RejectReason::UnknownBitstream as usize],
            rejected_invalid_partition: self.rejections[RejectReason::InvalidPartition as usize],
            rejected_quarantined: self.rejections[RejectReason::Quarantined as usize],
            rejected_queue_full: self.rejections[RejectReason::QueueFull as usize],
            rejected_energy_exhausted: self.rejections[RejectReason::EnergyExhausted as usize],
            // `+ 0.0` canonicalises the empty-sum identity (`f64: Sum`
            // folds from -0.0) so unmetered runs report 0, not -0.
            energy_charged_j: self.energy_spent_j.values().sum::<f64>() + 0.0,
            completed: self.completed,
            failed: self.failed,
            deadlines_met: self.deadlines_met,
            deadlines_missed: self.deadlines_missed,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            prefetch_hits: self.prefetch_hits,
            cache_evictions: self.cache_evictions,
            bytes_evicted: self.bytes_evicted,
            bytes_transferred: self.bytes_transferred,
            bytes_fetched: self.bytes_fetched,
            catalog_raw_bytes: self.catalog.values().map(|e| e.raw_bytes).sum(),
            catalog_stored_bytes: self.catalog.values().map(|e| e.stored_bytes).sum(),
            makespan_us: makespan.as_micros_f64(),
            throughput_mb_s: throughput,
            queueing_latency_us: StatsSummary::from(&self.queueing_us.online_stats()),
            service_latency_us: StatsSummary::from(&self.service_us.online_stats()),
            queueing_p50_us: self.queueing_us.quantile(0.5),
            queueing_p99_us: self.queueing_us.quantile(0.99),
            service_p50_us: self.service_us.quantile(0.5),
            service_p99_us: self.service_us.quantile(0.99),
        }
    }

    /// Checkpoints the scheduler's dynamic state: ready queue, cache
    /// residency, in-flight prefetch, telemetry, and per-request records.
    ///
    /// The *catalog* is structural — the resume path rebuilds the scheduler
    /// with the same deterministic [`Scheduler::register_bitstream`] calls
    /// before restoring — so the snapshot carries only a per-id size digest
    /// used by [`Scheduler::restore_json`] to verify the rebuilt catalog is
    /// the one the checkpoint was taken against.
    pub fn snapshot_json(&self) -> Json {
        let catalog = self
            .catalog
            .iter()
            .map(|(id, e)| {
                Json::Obj(vec![
                    ("id".to_string(), id.to_json()),
                    ("raw_bytes".to_string(), e.raw_bytes.to_json()),
                    ("stored_bytes".to_string(), e.stored_bytes.to_json()),
                ])
            })
            .collect();
        let queue = self
            .queue
            .iter()
            .map(|q| {
                Json::Obj(vec![
                    ("req".to_string(), q.req.to_json()),
                    ("submitted".to_string(), q.submitted.to_json()),
                    ("abs_deadline".to_string(), q.abs_deadline.to_json()),
                    ("seq".to_string(), q.seq.to_json()),
                ])
            })
            .collect();
        let prefetch = match self.prefetch {
            None => Json::Null,
            Some(p) => Json::Obj(vec![
                ("bitstream_id".to_string(), p.bitstream_id.to_json()),
                ("ready_at".to_string(), p.ready_at.to_json()),
            ]),
        };
        Json::Obj(vec![
            ("catalog".to_string(), Json::Arr(catalog)),
            (
                "cache".to_string(),
                Json::Arr(self.cache.iter().map(|id| id.to_json()).collect()),
            ),
            ("cache_bytes".to_string(), self.cache_bytes.to_json()),
            ("queue".to_string(), Json::Arr(queue)),
            ("prefetch".to_string(), prefetch),
            ("seq".to_string(), self.seq.to_json()),
            ("first_submit".to_string(), self.first_submit.to_json()),
            ("last_complete".to_string(), self.last_complete.to_json()),
            (
                "records".to_string(),
                Json::Arr(self.records.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "queueing_us".to_string(),
                Json::Arr(
                    self.queueing_us
                        .samples()
                        .iter()
                        .map(|s| s.to_json())
                        .collect(),
                ),
            ),
            (
                "service_us".to_string(),
                Json::Arr(
                    self.service_us
                        .samples()
                        .iter()
                        .map(|s| s.to_json())
                        .collect(),
                ),
            ),
            ("submitted".to_string(), self.submitted.to_json()),
            (
                "rejections".to_string(),
                Json::Arr(self.rejections.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "energy_budget_j".to_string(),
                Json::Arr(
                    self.energy_budget_j
                        .iter()
                        .map(|(t, j)| {
                            Json::Obj(vec![
                                ("tenant".to_string(), t.to_json()),
                                ("j".to_string(), j.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "energy_spent_j".to_string(),
                Json::Arr(
                    self.energy_spent_j
                        .iter()
                        .map(|(t, j)| {
                            Json::Obj(vec![
                                ("tenant".to_string(), t.to_json()),
                                ("j".to_string(), j.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("completed".to_string(), self.completed.to_json()),
            ("failed".to_string(), self.failed.to_json()),
            ("deadlines_met".to_string(), self.deadlines_met.to_json()),
            (
                "deadlines_missed".to_string(),
                self.deadlines_missed.to_json(),
            ),
            ("cache_hits".to_string(), self.cache_hits.to_json()),
            ("cache_misses".to_string(), self.cache_misses.to_json()),
            ("prefetch_hits".to_string(), self.prefetch_hits.to_json()),
            (
                "cache_evictions".to_string(),
                self.cache_evictions.to_json(),
            ),
            ("bytes_evicted".to_string(), self.bytes_evicted.to_json()),
            (
                "bytes_transferred".to_string(),
                self.bytes_transferred.to_json(),
            ),
            ("bytes_fetched".to_string(), self.bytes_fetched.to_json()),
        ])
    }

    /// Restores a checkpoint taken with [`Scheduler::snapshot_json`] into a
    /// scheduler whose catalog has already been re-registered. Fails (and
    /// leaves this scheduler untouched) if the rebuilt catalog does not
    /// match the checkpoint's per-id size digest.
    pub fn restore_json(&mut self, json: &Json) -> Result<(), JsonError> {
        fn req<'a>(json: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
            json.get(key).ok_or_else(|| JsonError {
                msg: format!("scheduler snapshot missing `{key}`"),
            })
        }
        // ---- Validate the catalog digest before touching anything.
        let digest = req(json, "catalog")?.as_array().ok_or_else(|| JsonError {
            msg: "scheduler snapshot `catalog` is not an array".to_string(),
        })?;
        if digest.len() != self.catalog.len() {
            return Err(JsonError {
                msg: format!(
                    "scheduler snapshot catalog has {} images, rebuilt catalog has {}",
                    digest.len(),
                    self.catalog.len()
                ),
            });
        }
        for entry in digest {
            let id = u32::from_json(req(entry, "id")?)?;
            let raw = u64::from_json(req(entry, "raw_bytes")?)?;
            let stored = u64::from_json(req(entry, "stored_bytes")?)?;
            match self.catalog.get(&id) {
                Some(e) if e.raw_bytes == raw && e.stored_bytes == stored => {}
                Some(_) => {
                    return Err(JsonError {
                        msg: format!("catalog image {id} differs from the checkpointed image"),
                    })
                }
                None => {
                    return Err(JsonError {
                        msg: format!("catalog image {id} missing from the rebuilt scheduler"),
                    })
                }
            }
        }
        // ---- Decode everything else, then overlay.
        let cache = req(json, "cache")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `cache` is not an array".to_string(),
            })?
            .iter()
            .map(u32::from_json)
            .collect::<Result<Vec<u32>, JsonError>>()?;
        let queue = req(json, "queue")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `queue` is not an array".to_string(),
            })?
            .iter()
            .map(|q| {
                Ok(Queued {
                    req: ReconfigRequest::from_json(req(q, "req")?)?,
                    submitted: SimTime::from_json(req(q, "submitted")?)?,
                    abs_deadline: SimTime::from_json(req(q, "abs_deadline")?)?,
                    seq: u64::from_json(req(q, "seq")?)?,
                })
            })
            .collect::<Result<Vec<Queued>, JsonError>>()?;
        let prefetch = match req(json, "prefetch")? {
            Json::Null => None,
            p => Some(Prefetch {
                bitstream_id: u32::from_json(req(p, "bitstream_id")?)?,
                ready_at: SimTime::from_json(req(p, "ready_at")?)?,
            }),
        };
        let records = req(json, "records")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `records` is not an array".to_string(),
            })?
            .iter()
            .map(RequestRecord::from_json)
            .collect::<Result<Vec<RequestRecord>, JsonError>>()?;
        let queueing = req(json, "queueing_us")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `queueing_us` is not an array".to_string(),
            })?
            .iter()
            .map(f64::from_json)
            .collect::<Result<Vec<f64>, JsonError>>()?;
        let service = req(json, "service_us")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `service_us` is not an array".to_string(),
            })?
            .iter()
            .map(f64::from_json)
            .collect::<Result<Vec<f64>, JsonError>>()?;
        let rejections = req(json, "rejections")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "scheduler snapshot `rejections` is not an array".to_string(),
            })?
            .iter()
            .map(u64::from_json)
            .collect::<Result<Vec<u64>, JsonError>>()?;
        // 4 entries = pre-energy-budget checkpoint (no energy rejections
        // could have happened); 5 = current layout.
        if rejections.len() != 4 && rejections.len() != 5 {
            return Err(JsonError {
                msg: "scheduler snapshot `rejections` must have 4 or 5 entries".to_string(),
            });
        }
        fn tenant_map(json: Option<&Json>, key: &str) -> Result<BTreeMap<u32, f64>, JsonError> {
            let Some(json) = json else {
                return Ok(BTreeMap::new()); // pre-energy-budget checkpoint
            };
            json.as_array()
                .ok_or_else(|| JsonError {
                    msg: format!("scheduler snapshot `{key}` is not an array"),
                })?
                .iter()
                .map(|e| {
                    Ok((
                        u32::from_json(req(e, "tenant")?)?,
                        f64::from_json(req(e, "j")?)?,
                    ))
                })
                .collect()
        }
        let energy_budget = tenant_map(json.get("energy_budget_j"), "energy_budget_j")?;
        let energy_spent = tenant_map(json.get("energy_spent_j"), "energy_spent_j")?;
        self.cache = cache;
        self.cache_bytes = u64::from_json(req(json, "cache_bytes")?)?;
        self.queue = queue;
        self.prefetch = prefetch;
        self.seq = u64::from_json(req(json, "seq")?)?;
        self.first_submit = Option::<SimTime>::from_json(req(json, "first_submit")?)?;
        self.last_complete = Option::<SimTime>::from_json(req(json, "last_complete")?)?;
        self.records = records;
        self.queueing_us = SampleSeries::from_samples(queueing);
        self.service_us = SampleSeries::from_samples(service);
        self.submitted = u64::from_json(req(json, "submitted")?)?;
        self.rejections = [
            rejections[0],
            rejections[1],
            rejections[2],
            rejections[3],
            rejections.get(4).copied().unwrap_or(0),
        ];
        self.energy_budget_j = energy_budget;
        self.energy_spent_j = energy_spent;
        self.completed = u64::from_json(req(json, "completed")?)?;
        self.failed = u64::from_json(req(json, "failed")?)?;
        self.deadlines_met = u64::from_json(req(json, "deadlines_met")?)?;
        self.deadlines_missed = u64::from_json(req(json, "deadlines_missed")?)?;
        self.cache_hits = u64::from_json(req(json, "cache_hits")?)?;
        self.cache_misses = u64::from_json(req(json, "cache_misses")?)?;
        self.prefetch_hits = u64::from_json(req(json, "prefetch_hits")?)?;
        self.cache_evictions = u64::from_json(req(json, "cache_evictions")?)?;
        self.bytes_evicted = u64::from_json(req(json, "bytes_evicted")?)?;
        self.bytes_transferred = u64::from_json(req(json, "bytes_transferred")?)?;
        self.bytes_fetched = u64::from_json(req(json, "bytes_fetched")?)?;
        Ok(())
    }

    /// Index of the best ready request: highest priority, then earliest
    /// absolute deadline, then submission order.
    fn best_ready(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (std::cmp::Reverse(q.req.priority), q.abs_deadline, q.seq))
            .map(|(i, _)| i)
    }

    /// The next dispatch's bitstream id when it is not yet resident — the
    /// prefetch target.
    fn next_uncached_id(&self) -> Option<u32> {
        let idx = self.best_ready()?;
        let id = self.queue[idx].req.bitstream_id;
        (!self.is_cached(id)).then_some(id)
    }

    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.cache.iter().position(|&c| c == id) {
            let id = self.cache.remove(pos);
            self.cache.push(id);
        }
    }

    /// Removes `id` from the cache, booking the eviction in the telemetry.
    /// Returns the bytes released (`None` when `id` was not resident).
    fn evict(&mut self, id: u32) -> Option<u64> {
        let pos = self.cache.iter().position(|&c| c == id)?;
        self.cache.remove(pos);
        // Residency was charged at the stored size, so release exactly
        // that — charging raw here was the old accounting bug.
        let bytes = self.catalog[&id].stored_bytes;
        self.cache_bytes -= bytes;
        self.cache_evictions += 1;
        self.bytes_evicted += bytes;
        Some(bytes)
    }

    /// Makes `id` resident, evicting least-recently-used images as needed.
    /// Returns the `(id, bytes)` of every image evicted, in eviction order,
    /// so the caller can put them on the event tape.
    fn insert_cached(&mut self, id: u32, bytes: u64) -> Vec<(u32, u64)> {
        let mut evicted = Vec::new();
        if self.config.cache_capacity_bytes == 0 || bytes > self.config.cache_capacity_bytes {
            return evicted; // caching disabled or image larger than the budget
        }
        if self.is_cached(id) {
            self.touch(id);
            return evicted;
        }
        while self.cache_bytes + bytes > self.config.cache_capacity_bytes {
            let lru = self.cache[0];
            let released = self.evict(lru).expect("LRU head is resident");
            evicted.push((lru, released));
        }
        self.cache.push(id);
        self.cache_bytes += bytes;
        evicted
    }
}
