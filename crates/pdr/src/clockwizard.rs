//! The Clock Wizard: the runtime-programmable over-clock source.
//!
//! The paper uses the Xilinx Clocking Wizard IP to generate the over-clock
//! that drives both the DMA and the ICAP, selected at run time (by the
//! ZedBoard's switches during testing, by software in a deployed system).
//! Here the wizard wraps an engine clock domain and enforces the MMCM-like
//! output range.

use pdr_sim_core::{ClockDomainId, Engine, Frequency};

/// Programmable clock generator for the over-clock domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockWizard {
    domain: ClockDomainId,
    min: Frequency,
    max: Frequency,
    current: Frequency,
}

impl ClockWizard {
    /// Wraps `domain`, constraining programmable output to `[min, max]`
    /// (a 7-series MMCM spans roughly 4.69–800 MHz).
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or the initial frequency is outside the range.
    pub fn new(domain: ClockDomainId, initial: Frequency, min: Frequency, max: Frequency) -> Self {
        assert!(min <= max, "invalid range");
        assert!(
            (min..=max).contains(&initial),
            "initial frequency outside range"
        );
        ClockWizard {
            domain,
            min,
            max,
            current: initial,
        }
    }

    /// A 7-series-like wizard: 5–800 MHz, starting at the 100 MHz nominal.
    pub fn zynq(domain: ClockDomainId) -> Self {
        ClockWizard::new(
            domain,
            Frequency::from_mhz(100),
            Frequency::from_mhz(5),
            Frequency::from_mhz(800),
        )
    }

    /// The domain this wizard drives.
    pub fn domain(&self) -> ClockDomainId {
        self.domain
    }

    /// The currently programmed frequency.
    pub fn frequency(&self) -> Frequency {
        self.current
    }

    /// Re-programs the output frequency, taking effect on the engine
    /// immediately (the MMCM re-locks; the next edge is one new-period out).
    ///
    /// # Panics
    ///
    /// Panics if `freq` is outside the wizard's range.
    pub fn set_frequency(&mut self, engine: &mut Engine, freq: Frequency) {
        assert!(
            (self.min..=self.max).contains(&freq),
            "frequency {freq} outside wizard range {}..={}",
            self.min,
            self.max
        );
        self.current = freq;
        engine.set_clock_frequency(self.domain, freq);
    }

    /// Overwrites the remembered frequency *without* touching the engine —
    /// for checkpoint restore, where the engine's domain state (including
    /// the exact phase origin) is restored separately and must not be
    /// disturbed by a re-lock.
    pub(crate) fn restore_frequency(&mut self, freq: Frequency) {
        assert!(
            (self.min..=self.max).contains(&freq),
            "restored frequency {freq} outside wizard range {}..={}",
            self.min,
            self.max
        );
        self.current = freq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::SimDuration;

    #[test]
    fn programs_engine_domain() {
        let mut e = Engine::new();
        let d = e.add_clock_domain("oc", Frequency::from_mhz(100));
        let mut w = ClockWizard::zynq(d);
        w.set_frequency(&mut e, Frequency::from_mhz(280));
        assert_eq!(w.frequency(), Frequency::from_mhz(280));
        e.run_for(SimDuration::from_micros(1));
        assert_eq!(e.clock_info(d).frequency, Frequency::from_mhz(280));
        assert_eq!(e.clock_info(d).total_edges, 280);
    }

    #[test]
    #[should_panic(expected = "outside wizard range")]
    fn rejects_out_of_range() {
        let mut e = Engine::new();
        let d = e.add_clock_domain("oc", Frequency::from_mhz(100));
        let mut w = ClockWizard::zynq(d);
        w.set_frequency(&mut e, Frequency::from_mhz(900));
    }

    #[test]
    #[should_panic(expected = "initial frequency outside range")]
    fn rejects_bad_initial() {
        let mut e = Engine::new();
        let d = e.add_clock_domain("oc", Frequency::from_mhz(100));
        let _ = ClockWizard::new(
            d,
            Frequency::from_mhz(100),
            Frequency::from_mhz(200),
            Frequency::from_mhz(400),
        );
    }
}
