//! The SD-card boot flow of the paper's test setup (Fig. 4).
//!
//! "The application software used to test the system is loaded on an SD
//! memory card. The ZedBoard is booted from the SD card. The memory card
//! also contains two bitstreams, about 1.2 MB in size, to partially
//! reconfigure a selected area of the FPGA."
//!
//! [`SdCard`] holds named bitstream files with a realistic sustained read
//! bandwidth; [`ZynqPdrSystem::boot_from_sd`](crate::ZynqPdrSystem::boot_from_sd)
//! stages them into DRAM, charging simulated time per file — which is why
//! bitstreams are staged *once at boot* and reconfiguration then runs at
//! DRAM speed, not SD speed.
//!
//! ```
//! use pdr_core::{SdCard, SystemConfig, ZynqPdrSystem};
//! use pdr_fabric::AspKind;
//!
//! let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
//! let mut card = SdCard::class10();
//! card.store("rp1.bit", sys.make_asp_bitstream(0, AspKind::Fir16, 1));
//! let boot = sys.boot_from_sd(&card);
//! assert_eq!(boot.files.len(), 1);
//! assert!(boot.total.as_secs_f64() > 0.002); // ≥ the per-file overhead
//! ```

use std::collections::BTreeMap;

use pdr_bitstream::Bitstream;
use pdr_bitstream_codec::{compress_bitstream, CodecReport};
use pdr_sim_core::SimDuration;

/// One stored file: the raw image plus what actually occupies card blocks.
#[derive(Debug, Clone)]
struct StoredFile {
    bitstream: Bitstream,
    /// Bytes the file occupies on the card (`PDRC` container size when the
    /// card stores compressed images, the raw size otherwise).
    stored_bytes: u64,
    codec: Option<CodecReport>,
}

/// A bootable SD card image: named partial bitstreams.
///
/// When built [`with_compression`](SdCard::with_compression), files are
/// stored as `PDRC` containers: boot staging reads the *compressed* bytes
/// off the card (effective fetch bandwidth × 1/ratio), and the boot flow
/// expands them on the way into DRAM.
#[derive(Debug, Clone)]
pub struct SdCard {
    /// Sustained sequential read bandwidth in bytes/second.
    read_bw_bytes_per_s: u64,
    /// Fixed per-file access overhead (FAT lookup, first-cluster seek).
    per_file_overhead: SimDuration,
    /// Store files as compressed containers.
    compress: bool,
    files: BTreeMap<String, StoredFile>,
}

impl SdCard {
    /// A class-10-like card: 19 MB/s sustained, 2 ms per-file overhead.
    pub fn class10() -> Self {
        SdCard {
            read_bw_bytes_per_s: 19_000_000,
            per_file_overhead: SimDuration::from_millis(2),
            compress: false,
            files: BTreeMap::new(),
        }
    }

    /// A class-10 card holding compressed bitstream containers.
    pub fn class10_compressed() -> Self {
        SdCard::class10().with_compression(true)
    }

    /// Creates a card with explicit performance characteristics.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn with_performance(read_bw_bytes_per_s: u64, per_file_overhead: SimDuration) -> Self {
        assert!(read_bw_bytes_per_s > 0, "SD bandwidth must be non-zero");
        SdCard {
            read_bw_bytes_per_s,
            per_file_overhead,
            compress: false,
            files: BTreeMap::new(),
        }
    }

    /// Switches compressed storage on or off. Files already stored are
    /// re-encoded to match.
    pub fn with_compression(mut self, on: bool) -> Self {
        if self.compress != on {
            self.compress = on;
            let files = std::mem::take(&mut self.files);
            for (name, f) in files {
                self.store(&name, f.bitstream);
            }
        }
        self
    }

    /// Whether this card stores compressed containers.
    pub fn is_compressed(&self) -> bool {
        self.compress
    }

    /// Stores a bitstream under `name` (replacing any previous file).
    pub fn store(&mut self, name: &str, bitstream: Bitstream) -> &mut Self {
        let (stored_bytes, codec) = if self.compress {
            let c = compress_bitstream(&bitstream);
            (c.bytes.len() as u64, Some(c.report))
        } else {
            (bitstream.len() as u64, None)
        };
        self.files.insert(
            name.to_string(),
            StoredFile {
                bitstream,
                stored_bytes,
                codec,
            },
        );
        self
    }

    /// Reads a file by name (always the raw image, whatever the storage
    /// format — the boot flow decompresses transparently).
    pub fn file(&self, name: &str) -> Option<&Bitstream> {
        self.files.get(name).map(|f| &f.bitstream)
    }

    /// Bytes `name` occupies on the card.
    pub fn stored_bytes(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.stored_bytes)
    }

    /// Codec telemetry for `name` (`None` on an uncompressed card).
    pub fn codec_report(&self, name: &str) -> Option<&CodecReport> {
        self.files.get(name).and_then(|f| f.codec.as_ref())
    }

    /// Time to read `name` off the card — charged on the *stored* bytes,
    /// so a compressed card boots faster.
    pub fn read_time_for(&self, name: &str) -> Option<SimDuration> {
        self.files.get(name).map(|f| self.read_time(f.stored_bytes))
    }

    /// File names in stable (sorted) order.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes the card's files occupy (stored sizes — what boot
    /// staging reads off the card, and what the boot flow's
    /// `SdFileStaged` trace events account for byte-for-byte).
    pub fn total_stored_bytes(&self) -> u64 {
        self.files.values().map(|f| f.stored_bytes).sum()
    }

    /// Sustained sequential read bandwidth, bytes per second.
    pub fn bandwidth_bytes_per_s(&self) -> u64 {
        self.read_bw_bytes_per_s
    }

    /// Fixed per-file access overhead.
    pub fn per_file_overhead(&self) -> SimDuration {
        self.per_file_overhead
    }

    /// Time to read a file of `bytes` from this card.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.per_file_overhead
            + SimDuration::from_secs_f64(bytes as f64 / self.read_bw_bytes_per_s as f64)
    }

    /// Iterates over `(name, bitstream)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bitstream)> {
        self.files.iter().map(|(n, f)| (n.as_str(), &f.bitstream))
    }
}

/// What one boot staged, and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct BootReport {
    /// Per-file `(name, bytes, load time)`.
    pub files: Vec<(String, u64, SimDuration)>,
    /// Total boot-staging time.
    pub total: SimDuration,
}

impl BootReport {
    /// Total bytes staged.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|(_, b, _)| *b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_bitstream::{Builder, Frame, FrameAddress};

    fn small_bitstream(tag: u32) -> Bitstream {
        let mut b = Builder::new(0x1);
        b.add_frames(FrameAddress::new(0, 0, 0, 0), vec![Frame::filled(tag); 2]);
        b.build()
    }

    #[test]
    fn store_and_lookup() {
        let mut card = SdCard::class10();
        card.store("rp1_fir.bit", small_bitstream(1));
        card.store("rp1_aes.bit", small_bitstream(2));
        assert_eq!(card.file_count(), 2);
        assert!(card.file("rp1_fir.bit").is_some());
        assert!(card.file("missing.bit").is_none());
        assert_eq!(card.file_names(), vec!["rp1_aes.bit", "rp1_fir.bit"]);
    }

    #[test]
    fn read_time_scales_with_size() {
        let card = SdCard::class10();
        let small = card.read_time(19_000); // 1 ms of payload
        let large = card.read_time(19_000_000); // 1 s of payload
        assert!((small.as_secs_f64() - 0.003).abs() < 1e-6); // 2 ms + 1 ms
        assert!((large.as_secs_f64() - 1.002).abs() < 1e-6);
    }

    #[test]
    fn replacing_a_file_keeps_count() {
        let mut card = SdCard::class10();
        card.store("a.bit", small_bitstream(1));
        card.store("a.bit", small_bitstream(2));
        assert_eq!(card.file_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = SdCard::with_performance(0, SimDuration::ZERO);
    }

    fn padded_bitstream(tag: u32) -> Bitstream {
        // Mostly-empty frames: highly compressible, like real RP images.
        let mut frames = vec![Frame::default(); 24];
        frames[0] = Frame::filled(tag);
        let mut b = Builder::new(0x2);
        b.add_frames(FrameAddress::new(0, 0, 0, 0), frames);
        b.build()
    }

    #[test]
    fn compressed_card_stores_fewer_bytes_and_reads_faster() {
        let bs = padded_bitstream(7);
        let raw_len = bs.len() as u64;

        let mut plain = SdCard::class10();
        plain.store("a.bit", bs.clone());
        let mut packed = SdCard::class10_compressed();
        packed.store("a.bit", bs.clone());

        assert!(!plain.is_compressed());
        assert!(packed.is_compressed());
        assert_eq!(plain.stored_bytes("a.bit"), Some(raw_len));
        assert!(plain.codec_report("a.bit").is_none());

        let stored = packed.stored_bytes("a.bit").unwrap();
        assert!(stored < raw_len / 2, "{stored} vs {raw_len}");
        let report = packed.codec_report("a.bit").unwrap();
        assert_eq!(report.raw_bytes, raw_len);
        assert_eq!(report.compressed_bytes, stored);
        assert!(packed.read_time_for("a.bit").unwrap() < plain.read_time_for("a.bit").unwrap());

        // The raw image is served back unchanged either way.
        assert_eq!(packed.file("a.bit"), Some(&bs));
    }

    #[test]
    fn with_compression_reencodes_existing_files() {
        let bs = padded_bitstream(3);
        let raw_len = bs.len() as u64;
        let mut card = SdCard::class10();
        card.store("a.bit", bs.clone());
        let card = card.with_compression(true);
        assert!(card.stored_bytes("a.bit").unwrap() < raw_len);
        let card = card.with_compression(false);
        assert_eq!(card.stored_bytes("a.bit"), Some(raw_len));
        assert_eq!(card.file("a.bit"), Some(&bs));
    }
}
