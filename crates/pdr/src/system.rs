//! The full Fig. 2 system: PS driver, DRAM, interconnect, over-clocked
//! DMA → width converter → ICAP, CRC read-back, clock wizard, interrupts,
//! and the power/thermal instrumentation around them.

use pdr_axi::interconnect::ReadInterconnect;
use pdr_axi::stream::StreamBeat;
use pdr_axi::width::{Width64To32, Word32};
use pdr_axi::RegisterFile;
use pdr_bitstream::{Action, Bitstream, Builder, Frame, FrameAddress, Parser, FRAME_WORDS};
use pdr_dma::{AxiDma, DmaConfig, DMACR_RS, REG_DMACR, REG_LENGTH, REG_SA};
use pdr_fabric::{AspImage, AspKind, ColumnKind, ConfigMemory, Floorplan, Geometry, Partition};
use pdr_icap::{shared_config_memory, IcapController, SharedConfigMemory};
use pdr_mem::{Backing, DramConfig, DramController};
use pdr_power::{CurrentSenseMeter, PowerModel};
use pdr_sim_core::json::{Json, JsonError};
use pdr_sim_core::thermal::{ThermalRc, ThermalRcConfig, ThermalSample};
use pdr_sim_core::{
    ClockDomainId, ComponentId, Engine, EngineStrategy, Fifo, Frequency, IrqBus, IrqLine,
    SimDuration, SimTime, Xoshiro256StarStar,
};
use pdr_timing::{voltage_derate_mhz, DieThermal, OverclockModel, XadcSensor};
use std::fmt::Write as _;

use crate::clockwizard::ClockWizard;
use crate::crc_readback::{CrcReadback, Region, CYCLES_PER_FRAME};
use crate::faults::FaultKind;
use crate::report::{CrcStatus, ReconfigError, ReconfigReport, TimeoutCause};
use crate::trace::{TraceEvent, TraceLevel, TraceSink};

/// DRAM byte address where partial bitstreams are staged (the paper copies
/// them from the SD card at boot).
pub const BITSTREAM_ADDR: u64 = 0x0010_0000;

/// Device IDCODE used by generated bitstreams (7z020-like).
pub const IDCODE: u32 = 0x0372_7093;

/// Configuration of the closed thermal–power loop (see `docs/DVFS.md`).
///
/// When [`SystemConfig::thermal_loop`] is `Some`, the system wires a
/// deterministic [`ThermalRc`] node onto the fabric clock: dissipated power
/// (dynamic switching + constant on-die share + temperature-dependent
/// leakage) drives die temperature, which in turn worsens the over-clock
/// failure envelope at the next reconfiguration — the paper's exogenous
/// temperature sweep, closed into a feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalLoopConfig {
    /// Thermal integration step (work-edge spacing on the fabric clock).
    pub tick: SimDuration,
    /// RC time constant of the die + sink.
    pub tau: SimDuration,
    /// Junction-to-ambient thermal resistance, °C per watt.
    pub r_c_per_w: f64,
    /// Ambient temperature, °C.
    pub env_c: f64,
    /// Die temperature at which the thermal-alarm interrupt asserts, °C.
    pub alarm_c: f64,
    /// The alarm re-arms once the die cools this far below the threshold.
    pub hysteresis_c: f64,
    /// Constant on-die dissipation that heats the junction but is not part
    /// of the frequency-dependent PDR datapath (PS share through the die),
    /// watts.
    pub idle_die_w: f64,
    /// Record one trajectory sample every this many integration steps
    /// (0 disables the trajectory tape).
    pub sample_every_ticks: u64,
}

impl Default for ThermalLoopConfig {
    /// ZedBoard-like constants with a CI-runnable τ: 50 µs steps, τ = 5 ms
    /// (steady states match the physical board; transients are compressed),
    /// 8 °C/W into 25 °C ambient, alarm at 85 °C with 5 °C hysteresis, and
    /// one trajectory sample per millisecond.
    fn default() -> Self {
        ThermalLoopConfig {
            tick: SimDuration::from_micros(50),
            tau: SimDuration::from_millis(5),
            r_c_per_w: 8.0,
            env_c: 25.0,
            alarm_c: 85.0,
            hysteresis_c: 5.0,
            idle_die_w: 1.1,
            sample_every_ticks: 20,
        }
    }
}

/// Everything needed to build a [`ZynqPdrSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Device geometry and reconfigurable partitions.
    pub floorplan: Floorplan,
    /// Fabric/interconnect clock (the plateau-setting domain).
    pub interconnect_clock: Frequency,
    /// DRAM controller clock.
    pub dram_clock: Frequency,
    /// DRAM timing.
    pub dram: DramConfig,
    /// DMA engine parameters.
    pub dma: DmaConfig,
    /// Over-clocking failure model.
    pub overclock: OverclockModel,
    /// Power model.
    pub power: PowerModel,
    /// Initial die temperature in °C.
    pub initial_die_temp_c: f64,
    /// Software driver overhead between timer start and the DMA doorbell
    /// (register writes, cache flush for the descriptor, calibrated against
    /// Table I).
    pub driver_overhead: SimDuration,
    /// Abort threshold for one reconfiguration attempt.
    pub transfer_timeout: SimDuration,
    /// Depth of the 64-bit stream FIFO between DMA and width converter
    /// (the DMA's internal data buffer; ablation A1).
    pub stream_fifo_depth: usize,
    /// Experiment seed (corruption sampling, sensor noise).
    pub seed: u64,
    /// Use noiseless instruments (exact determinism for tests).
    pub ideal_instruments: bool,
    /// Simulation kernel: the event-skipping default or the edge-by-edge
    /// tick oracle (differential testing; see `docs/KERNEL.md`).
    pub strategy: EngineStrategy,
    /// Initial PL core supply voltage, millivolts (DVFS axis; 1000 mV is
    /// the nominal point at which every model output is bitwise identical
    /// to the pre-DVFS system).
    pub vdd_mv: u32,
    /// Closed thermal–power loop; `None` (the default) keeps temperature an
    /// exogenous input exactly as before.
    pub thermal_loop: Option<ThermalLoopConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            floorplan: Floorplan::zedboard_quad(),
            interconnect_clock: Frequency::from_mhz(100),
            dram_clock: Frequency::from_mhz(533),
            dram: DramConfig::ddr3_533(),
            dma: DmaConfig::default(),
            overclock: OverclockModel::paper_calibration(),
            power: PowerModel::paper_calibration(),
            initial_die_temp_c: 40.0,
            driver_overhead: SimDuration::from_nanos(3300),
            transfer_timeout: SimDuration::from_millis(40),
            stream_fifo_depth: 64,
            seed: 0xC0FFEE,
            ideal_instruments: false,
            strategy: EngineStrategy::EventSkip,
            vdd_mv: pdr_power::VDD_NOMINAL_MV,
            thermal_loop: None,
        }
    }
}

impl SystemConfig {
    /// A miniature device (two 3-column partitions of 108 frames, ~44 kB
    /// bitstreams) with ideal instruments: full-system behaviour at unit-test
    /// speed.
    pub fn fast_test() -> Self {
        let geometry = Geometry::new(2, vec![ColumnKind::Clb; 6]);
        let partitions = vec![
            Partition::new("RP1", 0, 0..3),
            Partition::new("RP2", 1, 0..3),
        ];
        SystemConfig {
            floorplan: Floorplan::new(geometry, partitions),
            ideal_instruments: true,
            ..SystemConfig::default()
        }
    }

    /// A four-partition variant of [`Self::fast_test`] — the smallest
    /// floorplan that exercises multi-tenant scheduling (one partition per
    /// row, identical shapes so bitstream sizes match across tenants).
    pub fn fast_quad() -> Self {
        let geometry = Geometry::new(4, vec![ColumnKind::Clb; 6]);
        let partitions = (0..4u32)
            .map(|r| Partition::new(&format!("RP{}", r + 1), r, 0..3))
            .collect();
        SystemConfig {
            floorplan: Floorplan::new(geometry, partitions),
            ideal_instruments: true,
            ..SystemConfig::default()
        }
    }
}

/// The assembled system. See the [crate documentation](crate) for a
/// quickstart.
pub struct ZynqPdrSystem {
    engine: Engine,
    config: SystemConfig,
    wizard: ClockWizard,
    /// Per-partition clocks from the Clock Manager (Fig. 1's CLK 1–5).
    rp_clocks: Vec<ClockDomainId>,
    #[allow(dead_code)]
    axi_clk: ClockDomainId,
    dma_id: ComponentId,
    icap_id: ComponentId,
    readback_id: ComponentId,
    ic_id: ComponentId,
    regs: RegisterFile,
    /// Per-partition data DMAs on the HP ports (Fig. 1), with their
    /// register files and completion lines.
    rp_dmas: Vec<(ComponentId, RegisterFile, IrqLine)>,
    icap_done: IrqLine,
    dma_ioc: IrqLine,
    crc_err: IrqLine,
    backing: Backing,
    mem: SharedConfigMemory,
    /// Monitor handles for draining between runs.
    stream64: Fifo<StreamBeat>,
    words32: Fifo<Word32>,
    mem_beats: Fifo<pdr_axi::mm::ReadBeat>,
    mem_reqs: Fifo<pdr_axi::mm::ReadReq>,
    thermal: DieThermal,
    /// The closed-loop thermal node (`None` when the loop is off and
    /// [`Self::thermal`] remains the exogenous truth).
    thermal_id: Option<ComponentId>,
    thermal_alarm: IrqLine,
    /// Current PL core supply, millivolts.
    vdd_mv: u32,
    sensor: XadcSensor,
    meter: CurrentSenseMeter,
    rng: Xoshiro256StarStar,
    reconfigs: u64,
    /// Frames covered by the background monitor's registered regions.
    monitored_frames: u32,
    /// Active timing-violation burst: extra MHz of derating applied to the
    /// failure envelope until the given instant.
    derate_until: Option<(f64, SimTime)>,
    /// DMA stall cycles to arm on the next reconfiguration (applied after
    /// the pre-flight quiesce, which would otherwise clear them).
    pending_dma_stall: u64,
    /// Structured event bus ([`crate::trace`]); `Off` by default.
    trace: TraceSink,
}

impl ZynqPdrSystem {
    /// Builds and wires the system of Fig. 2.
    pub fn new(config: SystemConfig) -> Self {
        let mut engine = Engine::with_strategy(config.strategy);
        let axi_clk = engine.add_clock_domain("fclk-axi", config.interconnect_clock);
        let dram_clk = engine.add_clock_domain("ddr", config.dram_clock);
        let oc_clk = engine.add_clock_domain("overclock", Frequency::from_mhz(100));

        let (mut interconnect, slave) = ReadInterconnect::new("axi-mem", 4, 8);
        let (port, mep) = interconnect.add_master(64);
        let mem_beats = mep.beats.fifo().clone();
        let mem_reqs = mep.req.fifo().clone();

        let backing = Backing::new(16 << 20);
        let regs = RegisterFile::new();
        let irq_bus = IrqBus::new();
        let icap_done = irq_bus.allocate("icap-done");
        let dma_ioc = irq_bus.allocate("mm2s-ioc");
        let crc_err = irq_bus.allocate("crc-error");

        let (s64_tx, s64_rx) =
            pdr_sim_core::fifo_channel::<StreamBeat>("dma-axis", config.stream_fifo_depth);
        let stream64 = s64_tx.fifo().clone();
        let (w32_tx, w32_rx) = pdr_sim_core::fifo_channel::<Word32>("icap-axis", 32);
        let words32 = w32_tx.fifo().clone();

        let mem = shared_config_memory(ConfigMemory::new(config.floorplan.geometry().clone()));

        let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);

        engine.add_component(
            DramController::new("ddr3", config.dram, backing.clone(), slave),
            Some(dram_clk),
        );
        let ic_id = engine.add_component(interconnect, Some(axi_clk));
        // Over-clock domain, in pipeline order.
        let dma_id = engine.add_component(
            AxiDma::new(
                "axi-dma",
                config.dma,
                regs.clone(),
                port,
                mep,
                s64_tx,
                dma_ioc.clone(),
            ),
            Some(oc_clk),
        );
        engine.add_component(
            Width64To32::new("dwidth-64-32", s64_rx, w32_tx),
            Some(oc_clk),
        );
        let icap_id = engine.add_component(
            {
                let mut icap = IcapController::new(
                    "icap",
                    w32_rx,
                    mem.clone(),
                    icap_done.clone(),
                    rng.next_u64(),
                );
                icap.set_expected_idcode(IDCODE);
                icap
            },
            Some(oc_clk),
        );
        let readback_id = engine.add_component(
            CrcReadback::new("crc-readback", mem.clone(), crc_err.clone()),
            Some(axi_clk),
        );

        // The Clock Manager's per-partition clocks (Fig. 1: CLK 1–5): each
        // RP runs its hosted ASP at its own frequency, 100 MHz by default.
        let rp_clocks: Vec<ClockDomainId> = (0..config.floorplan.partitions().len())
            .map(|i| engine.add_clock_domain(&format!("rp{}-clk", i + 1), Frequency::from_mhz(100)))
            .collect();

        // Per-partition data DMAs (Fig. 1: one DMA controller per HP port):
        // they share the memory interconnect with the configuration DMA, so
        // accelerator traffic genuinely contends with reconfiguration.
        let mut rp_dmas = Vec::new();
        for (i, _) in config.floorplan.partitions().iter().enumerate() {
            let (rp_port, rp_mep) = {
                // Re-borrow the interconnect registered above.
                let ic = engine.component_mut::<ReadInterconnect>(ic_id);
                ic.add_master(64)
            };
            let rp_regs = RegisterFile::new();
            let rp_ioc = irq_bus.allocate(&format!("rp{}-ioc", i + 1));
            let (rp_tx, rp_rx) =
                pdr_sim_core::fifo_channel::<StreamBeat>(&format!("rp{}-axis", i + 1), 64);
            let dma_id = engine.add_component(
                AxiDma::new(
                    &format!("rp{}-dma", i + 1),
                    DmaConfig::default(),
                    rp_regs.clone(),
                    rp_port,
                    rp_mep,
                    rp_tx,
                    rp_ioc.clone(),
                ),
                Some(axi_clk),
            );
            // The hosted accelerator consumes one 64-bit beat per RP-clock
            // cycle (a streaming ASP's input port).
            engine.add_component(
                pdr_sim_core::blocks::Sink::new(
                    &format!("rp{}-asp-in", i + 1),
                    rp_rx,
                    drop_beat as fn(StreamBeat),
                ),
                Some(rp_clocks[i]),
            );
            rp_dmas.push((dma_id, rp_regs, rp_ioc));
        }

        let wizard = ClockWizard::zynq(oc_clk);
        let (sensor, meter) = if config.ideal_instruments {
            (XadcSensor::ideal(), CurrentSenseMeter::ideal())
        } else {
            (XadcSensor::new(), CurrentSenseMeter::new())
        };

        // The closed thermal–power loop (opt-in): an integer RC node on the
        // always-running fabric clock. Its heater is the frequency-dependent
        // dynamic power plus the constant on-die share; static leakage is
        // derived inside the node from its own temperature (docs/DVFS.md).
        let thermal_alarm = irq_bus.allocate("thermal-alarm");
        let thermal_id = config.thermal_loop.as_ref().map(|tl| {
            let hz = config.interconnect_clock.as_hz();
            let tick_cycles =
                ((tl.tick.as_ps() as u128 * hz as u128) / 1_000_000_000_000u128) as u64;
            let node_cfg = ThermalRcConfig {
                tick_cycles,
                tau_ticks: (tl.tau.as_ps() / tl.tick.as_ps()).max(1),
                r_mc_per_w: (tl.r_c_per_w * 1000.0) as i64,
                env_mc: (tl.env_c * 1000.0) as i64,
                alarm_mc: (tl.alarm_c * 1000.0) as i64,
                hysteresis_mc: (tl.hysteresis_c * 1000.0) as i64,
                leak_ref_uw: (config.power.p_static_w_at(40.0, config.vdd_mv) * 1e6) as u64,
                sample_every_ticks: tl.sample_every_ticks,
                ..ThermalRcConfig::default()
            };
            let mut node = ThermalRc::new(
                "die-thermal",
                node_cfg,
                thermal_alarm.clone(),
                (config.initial_die_temp_c * 1000.0) as i64,
            );
            // The over-clock domain starts at 100 MHz (the wizard's reset
            // frequency); `reconfigure` re-bases the heater on every clock
            // change.
            let p_dyn = config.power.p_dynamic_w_at(100e6, config.vdd_mv);
            node.set_power_uw(((tl.idle_die_w + p_dyn) * 1e6) as u64);
            engine.add_component(node, Some(axi_clk))
        });

        ZynqPdrSystem {
            engine,
            thermal: DieThermal::zedboard(config.initial_die_temp_c),
            thermal_id,
            thermal_alarm,
            vdd_mv: config.vdd_mv,
            config,
            wizard,
            rp_clocks,
            rp_dmas,
            axi_clk,
            dma_id,
            icap_id,
            readback_id,
            ic_id,
            regs,
            icap_done,
            dma_ioc,
            crc_err,
            backing,
            mem,
            stream64,
            words32,
            mem_beats,
            mem_reqs,
            sensor,
            meter,
            rng,
            reconfigs: 0,
            monitored_frames: 0,
            derate_until: None,
            pending_dma_stall: 0,
            trace: TraceSink::new(),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The floorplan (geometry + partitions).
    pub fn floorplan(&self) -> &Floorplan {
        &self.config.floorplan
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Direct engine access (benches and advanced scenarios).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Sets the structured-trace level (default [`TraceLevel::Off`]).
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace.set_level(level);
    }

    /// The structured event bus.
    pub fn tracer(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable event-bus access (reports need `&mut` for exact quantiles;
    /// `clear()` scopes a tape to a region of interest).
    pub fn tracer_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Stamps and records `event` at the current simulated time. Collaborator
    /// subsystems (recovery ladder, scheduler) emit through this so every
    /// tape shares one clock and one sequence.
    pub fn trace_emit(&mut self, event: TraceEvent) {
        let now = self.engine.now();
        self.trace.emit(now, event);
    }

    /// Current die temperature (truth, not sensor), °C. With the closed
    /// loop on, this is the RC node's integer state; otherwise the
    /// exogenous [`DieThermal`] value.
    pub fn die_temp_c(&self) -> f64 {
        match self.thermal_id {
            Some(id) => self.engine.component::<ThermalRc>(id).temp_c(),
            None => self.thermal.die_temp_c(),
        }
    }

    /// Forces the die temperature (the heat-gun + settle step of the
    /// paper's stress protocol).
    pub fn set_die_temp_c(&mut self, t: f64) {
        match self.thermal_id {
            Some(id) => self
                .engine
                .component_mut::<ThermalRc>(id)
                .force_temp_mc((t * 1000.0) as i64),
            None => self.thermal.force_die_temp(t),
        }
    }

    /// One XADC sensor reading of the die temperature.
    pub fn read_die_temp_c(&mut self) -> f64 {
        let truth = self.die_temp_c();
        self.sensor.read(truth, &mut self.rng)
    }

    /// Whether the closed thermal–power loop is wired in.
    pub fn thermal_loop_enabled(&self) -> bool {
        self.thermal_id.is_some()
    }

    /// Current PL core supply voltage, millivolts.
    pub fn vdd_mv(&self) -> u32 {
        self.vdd_mv
    }

    /// Moves the PL core supply to `vdd_mv` (the VolTune-style runtime
    /// voltage axis). Re-bases the thermal node's leakage reference and
    /// heater, and books a [`TraceEvent::DvfsSet`] with the current
    /// over-clock so the tape records every committed operating point.
    pub fn set_vdd_mv(&mut self, vdd_mv: u32) {
        self.vdd_mv = vdd_mv;
        if let Some(id) = self.thermal_id {
            let leak = (self.config.power.p_static_w_at(40.0, vdd_mv) * 1e6) as u64;
            self.engine
                .component_mut::<ThermalRc>(id)
                .set_leak_ref_uw(leak);
            self.rebase_thermal_heater();
        }
        let freq_mhz = self.wizard.frequency().as_hz() / 1_000_000;
        self.trace_emit(TraceEvent::DvfsSet {
            vdd_mv: vdd_mv as u64,
            freq_mhz,
        });
    }

    /// Points the thermal node's external heater at the current (V, f)
    /// operating point: constant on-die share plus dynamic switching power.
    fn rebase_thermal_heater(&mut self) {
        let Some(id) = self.thermal_id else { return };
        let idle_w = self
            .config
            .thermal_loop
            .as_ref()
            .expect("thermal node implies loop config")
            .idle_die_w;
        let p_dyn = self
            .config
            .power
            .p_dynamic_w_at(self.wizard.frequency().as_hz() as f64, self.vdd_mv);
        self.engine
            .component_mut::<ThermalRc>(id)
            .set_power_uw(((idle_w + p_dyn) * 1e6) as u64);
    }

    /// The thermal-alarm interrupt line (raised by the RC node when the die
    /// crosses the alarm threshold; latched with hysteresis).
    pub fn thermal_alarm_irq(&self) -> &IrqLine {
        &self.thermal_alarm
    }

    /// Polls the thermal alarm: if the line is raised, clears it, books a
    /// [`TraceEvent::ThermalAlarm`] stamped with the *current* die
    /// temperature, and returns that temperature in milli-°C. The governor
    /// calls this between settle runs.
    pub fn poll_thermal_alarm(&mut self) -> Option<i64> {
        if !self.thermal_alarm.is_raised() {
            return None;
        }
        self.thermal_alarm.clear();
        let temp_mc = match self.thermal_id {
            Some(id) => self.engine.component::<ThermalRc>(id).temp_mc(),
            None => (self.thermal.die_temp_c() * 1000.0) as i64,
        };
        self.trace_emit(TraceEvent::ThermalAlarm {
            temp_mc: temp_mc.max(0) as u64,
        });
        Some(temp_mc)
    }

    /// Applies an ambient heat-soak excursion of `delta_mc` milli-°C for
    /// `duration` (the heat-gun fault of the DVFS scenarios). With the loop
    /// on, the node's ambient rises and reverts on its own clock; with the
    /// loop off, the excursion collapses to an instantaneous die-temperature
    /// bump (the pre-loop stress-protocol approximation).
    pub fn inject_heat_soak(&mut self, delta_mc: i64, duration: SimDuration) {
        match self.thermal_id {
            Some(id) => {
                let node = self.engine.component_mut::<ThermalRc>(id);
                let tick_ps = node.config().tick_cycles * 10_000; // 100 MHz edges
                let ticks = (duration.as_ps() / tick_ps.max(1)).max(1);
                node.inject_soak_mc(delta_mc, ticks);
            }
            None => {
                let bumped = self.thermal.die_temp_c() + delta_mc as f64 / 1000.0;
                self.thermal.force_die_temp(bumped);
            }
        }
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::HeatSoak,
        });
    }

    /// The recorded thermal trajectory (empty when the loop is off or
    /// sampling is disabled).
    pub fn thermal_samples(&self) -> &[ThermalSample] {
        match self.thermal_id {
            Some(id) => self.engine.component::<ThermalRc>(id).samples(),
            None => &[],
        }
    }

    /// The thermal trajectory as a JSONL tape (the format committed under
    /// `tests/golden/`).
    pub fn thermal_trajectory_jsonl(&self) -> String {
        match self.thermal_id {
            Some(id) => self.engine.component::<ThermalRc>(id).samples_jsonl(),
            None => String::new(),
        }
    }

    /// Generates a partition-filling ASP bitstream for partition `rp`.
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range.
    pub fn make_asp_bitstream(&self, rp: usize, kind: AspKind, seed: u32) -> Bitstream {
        let p = self.config.floorplan.partition(rp);
        let frames = p.frame_count(self.config.floorplan.geometry());
        let image = AspImage::generate(kind, seed, frames);
        let mut b = Builder::new(IDCODE);
        b.add_frames(p.start_far(), image.into_frames());
        b.build()
    }

    /// Generates a partial bitstream for partition `rp` (ASP kind derived
    /// from the seed).
    pub fn make_partial_bitstream(&self, rp: usize, seed: u32) -> Bitstream {
        let kind = AspKind::ALL[seed as usize % AspKind::ALL.len()];
        self.make_asp_bitstream(rp, kind, seed)
    }

    /// Identifies the ASP currently configured in partition `rp`.
    pub fn identify_asp(&self, rp: usize) -> Option<(AspKind, u32)> {
        let p = self.config.floorplan.partition(rp);
        AspImage::identify(&mut self.mem.borrow_mut(), p)
    }

    /// Runs the ASP configured in `rp` on `input` (behavioural execution).
    ///
    /// Returns `None` when the partition holds no valid ASP.
    pub fn execute_asp(&self, rp: usize, input: &[i64]) -> Option<Vec<i64>> {
        let (kind, seed) = self.identify_asp(rp)?;
        Some(kind.execute(seed, input))
    }

    /// The current clock frequency of partition `rp` (the Clock Manager's
    /// per-RP output).
    pub fn rp_clock(&self, rp: usize) -> Frequency {
        self.engine.clock_info(self.rp_clocks[rp]).frequency
    }

    /// Re-programs partition `rp`'s clock — "clock rate adaptable to the
    /// specific ASP timing constraint" (Sec. II). The over-clocking timing
    /// model applies to the configuration datapath, not to user logic;
    /// validating an ASP's own timing is the responsibility of its
    /// implementation flow, so any MMCM-range frequency is accepted here.
    pub fn set_rp_clock(&mut self, rp: usize, freq: Frequency) {
        self.engine.set_clock_frequency(self.rp_clocks[rp], freq);
    }

    /// Runs the ASP configured in `rp` on `input`, advancing simulated time
    /// by its streaming execution: one input element per RP-clock cycle
    /// plus a fixed dispatch overhead. Returns the output and the elapsed
    /// accelerator time.
    ///
    /// Returns `None` when the partition holds no valid ASP.
    pub fn run_asp_timed(&mut self, rp: usize, input: &[i64]) -> Option<(Vec<i64>, SimDuration)> {
        let (kind, seed) = self.identify_asp(rp)?;
        let freq = self.rp_clock(rp);
        let dispatch = SimDuration::from_micros(2); // driver call + start
        let compute = freq.cycles(input.len() as u64);
        let total = dispatch + compute;
        self.engine.run_for(total);
        Some((kind.execute(seed, input), total))
    }

    /// Starts a data transfer of `bytes` from DRAM to the accelerator in
    /// partition `rp` through its HP-port DMA (Fig. 1). The transfer shares
    /// the memory interconnect with the configuration path, so it contends
    /// with any concurrent reconfiguration — measurably (see the contention
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range or a transfer is already in flight on
    /// that DMA.
    pub fn start_asp_dma(&mut self, rp: usize, src_addr: u32, bytes: u32) {
        let (dma_id, regs, ioc) = &self.rp_dmas[rp];
        assert!(
            !self.engine.component::<AxiDma>(*dma_id).is_busy(),
            "RP{} DMA already busy",
            rp + 1
        );
        ioc.clear();
        regs.write(pdr_dma::REG_SA, src_addr);
        regs.set_bits(pdr_dma::REG_DMACR, pdr_dma::DMACR_RS);
        regs.write(pdr_dma::REG_LENGTH, bytes);
    }

    /// True while partition `rp`'s data DMA has a transfer in flight.
    pub fn asp_dma_busy(&self, rp: usize) -> bool {
        self.engine
            .component::<AxiDma>(self.rp_dmas[rp].0)
            .is_busy()
    }

    /// Performs one dynamic partial reconfiguration of partition `rp` with
    /// `bitstream` at over-clock frequency `freq`, reproducing the paper's
    /// measurement protocol: arm the DMA, time to the completion interrupt
    /// (or record its absence), then verify the partition by CRC read-back.
    ///
    /// An empty bitstream is refused (`ReconfigError::Refused`) before any
    /// register writes — it would otherwise program a zero-length DMA
    /// descriptor whose behavior the DMA leaves undefined.
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range or the bitstream is malformed (the
    /// *input* image must be pristine; corruption is injected in flight).
    pub fn reconfigure(
        &mut self,
        rp: usize,
        bitstream: &Bitstream,
        freq: Frequency,
    ) -> ReconfigReport {
        self.reconfigs += 1;
        // An empty bitstream used to fall through to the datapath and
        // program a zero-length DMA descriptor (REG_LENGTH = 0), whose
        // behavior the DMA leaves undefined. Refuse before any register
        // writes: nothing is staged, armed, or timed.
        if bitstream.is_empty() {
            return self.refuse_before_transfer(rp, freq.as_hz());
        }
        // The partition argument documents intent and validates the index;
        // the verified region is derived from the bitstream itself.
        let _partition = self.config.floorplan.partition(rp);
        self.trace_emit(TraceEvent::ReconfigStart {
            rp: rp as u64,
            bytes: bitstream.len() as u64,
            freq_mhz: freq.as_hz() / 1_000_000,
        });
        let die_temp = self.die_temp_c();
        // Thermal derate is non-negative; the voltage bias is signed (an
        // over-volted rail buys margin back). At nominal Vdd the bias term
        // is exactly 0.0, so legacy fixed-voltage tapes are bit-identical.
        let bias = self.active_derate_mhz() + voltage_derate_mhz(self.vdd_mv);
        let assessment = self.config.overclock.assess_biased(freq, die_temp, bias);

        // ---- Pre-flight: quiesce the pipeline from any previous failure. --
        self.engine.component_mut::<AxiDma>(self.dma_id).abort();
        self.mem_reqs.clear();
        self.engine.run_for(SimDuration::from_micros(2)); // drain in-flight bursts
        self.mem_beats.clear();
        self.stream64.clear();
        self.words32.clear();
        self.icap_done.clear();
        self.dma_ioc.clear();
        self.crc_err.clear();
        self.engine
            .component_mut::<CrcReadback>(self.readback_id)
            .set_enabled(false);

        // ---- Program the over-clock and apply its physics. ---------------
        self.wizard.set_frequency(&mut self.engine, freq);
        self.rebase_thermal_heater();
        {
            let icap = self.engine.component_mut::<IcapController>(self.icap_id);
            icap.reset();
            icap.set_word_error_rate(assessment.word_error_rate);
            icap.set_irq_functional(assessment.interrupt_ok);
        }
        self.engine
            .component_mut::<AxiDma>(self.dma_id)
            .set_irq_functional(assessment.interrupt_ok);

        // ---- Stage the bitstream and compute the golden region CRC. ------
        // Staged in little-endian word layout: the 64-bit DRAM path reads
        // little-endian, and the width converter emits the low half first.
        self.backing.write(BITSTREAM_ADDR, &bitstream.to_le_bytes());
        let (start_far, frames) = bitstream_payload(bitstream);
        let geometry = self.config.floorplan.geometry();
        let start_idx = geometry
            .frame_index(start_far)
            .expect("bitstream targets an address outside the device");
        let golden = frames_crc(&frames);

        // ---- Arm injected faults that must survive the quiesce. ----------
        if self.pending_dma_stall > 0 {
            self.engine
                .component_mut::<AxiDma>(self.dma_id)
                .inject_stall(self.pending_dma_stall);
            self.pending_dma_stall = 0;
        }

        // ---- The measured section: driver + transfer + interrupt wait. ---
        let t_start = self.engine.now();
        self.engine.run_for(self.config.driver_overhead);
        self.regs.write(REG_SA, BITSTREAM_ADDR as u32);
        self.regs.set_bits(REG_DMACR, DMACR_RS);
        self.regs.write(REG_LENGTH, bitstream.len() as u32);
        self.trace_emit(TraceEvent::DmaBurst {
            bytes: bitstream.len() as u64,
        });

        let deadline = self.engine.now() + self.config.transfer_timeout;
        let done_irq = self.icap_done.clone();
        let icap_id = self.icap_id;
        let dma_id = self.dma_id;
        let expected_transfers = self
            .engine
            .component::<AxiDma>(self.dma_id)
            .stats()
            .transfers
            + 1;
        let (_, _hit) = self.engine.run_until_condition(deadline, |e| {
            if done_irq.is_raised() {
                return true;
            }
            let st = e.component::<IcapController>(icap_id).status();
            if st.done || st.parse_error.is_some() {
                return true;
            }
            // All bytes streamed but the ICAP never completed (corrupted
            // tail): stop once the DMA reports the transfer finished.
            e.component::<AxiDma>(dma_id).stats().transfers >= expected_transfers
        });
        // Grace period: let trailing words drain through the ICAP.
        self.engine.run_for(SimDuration::from_micros(2));

        let interrupt_seen = self.icap_done.is_raised();
        let latency = if interrupt_seen {
            Some(
                self.icap_done
                    .last_raised()
                    .expect("raised line has a timestamp")
                    .duration_since(t_start),
            )
        } else {
            None
        };

        let transfer_finished = self
            .engine
            .component::<AxiDma>(self.dma_id)
            .stats()
            .transfers
            >= expected_transfers;

        // ---- CRC read-back verification of the partition. ----------------
        let crc = self.verify_region(start_idx, frames.len() as u32, golden);

        // ---- Instrument readings. -----------------------------------------
        let p_board = self
            .config
            .power
            .p_board_w_at(freq.as_hz() as f64, die_temp, self.vdd_mv);
        let p_pdr = self.meter.read_w(p_board, &mut self.rng) - self.config.power.p0_board_w();
        let icap_status = self
            .engine
            .component::<IcapController>(self.icap_id)
            .status()
            .clone();

        // ---- Failure classification (the watchdog verdict). --------------
        let refused = (icap_status.parse_error.is_some() || icap_status.idcode_mismatch)
            && icap_status.frames_written == 0
            && icap_status.corrupted_words == 0;
        let error = if refused {
            Some(ReconfigError::Refused)
        } else if !interrupt_seen && !transfer_finished && !icap_status.done {
            Some(ReconfigError::Timeout(TimeoutCause::StillInFlight))
        } else if crc == CrcStatus::Invalid {
            Some(ReconfigError::CrcMismatch)
        } else if !interrupt_seen {
            Some(ReconfigError::Timeout(TimeoutCause::InterruptLost))
        } else {
            None
        };

        self.trace_emit(TraceEvent::ReconfigDone {
            rp: rp as u64,
            ok: error.is_none(),
            latency_ps: latency.map_or(0, |l| l.as_ps()),
        });

        ReconfigReport {
            frequency_hz: freq.as_hz(),
            die_temp_c: self.sensor.read(die_temp, &mut self.rng),
            bitstream_bytes: bitstream.len() as u64,
            latency,
            interrupt_seen,
            crc,
            stream_crc_ok: icap_status.stream_crc_ok,
            frames_written: icap_status.frames_written,
            corrupted_words: icap_status.corrupted_words,
            p_pdr_w: p_pdr,
            energy_j: latency.map(|l| p_pdr * l.as_secs_f64()),
            error,
        }
    }

    /// Builds the report for a request refused *before* the transfer was
    /// armed: no registers written, no bytes staged, no latency measured.
    /// The instruments are still sampled so the report carries a plausible
    /// (finite) temperature and power reading.
    fn refuse_before_transfer(&mut self, rp: usize, frequency_hz: u64) -> ReconfigReport {
        let _partition = self.config.floorplan.partition(rp); // validate index
                                                              // A refused attempt still books one Start/Done pair, so the tape
                                                              // invariant `reconfig_started == reconfig_ok + reconfig_failed`
                                                              // holds for every path through the driver.
        self.trace_emit(TraceEvent::ReconfigStart {
            rp: rp as u64,
            bytes: 0,
            freq_mhz: frequency_hz / 1_000_000,
        });
        self.trace_emit(TraceEvent::ReconfigDone {
            rp: rp as u64,
            ok: false,
            latency_ps: 0,
        });
        let die_temp = self.die_temp_c();
        // No transfer ran, so the PL contribution is the idle share (as on
        // the PCAP path, which also drives no over-clocked datapath).
        let p_board = self.config.power.p_board_w_at(0.0, die_temp, self.vdd_mv);
        let p_pdr = self.meter.read_w(p_board, &mut self.rng) - self.config.power.p0_board_w();
        ReconfigReport {
            frequency_hz,
            die_temp_c: self.sensor.read(die_temp, &mut self.rng),
            bitstream_bytes: 0,
            latency: None,
            interrupt_seen: false,
            crc: CrcStatus::NotChecked,
            stream_crc_ok: None,
            frames_written: 0,
            corrupted_words: 0,
            p_pdr_w: p_pdr,
            energy_j: None,
            error: Some(ReconfigError::Refused),
        }
    }

    /// Runs one CRC read-back scan of a frame region against `golden`.
    fn verify_region(&mut self, start_idx: u32, frame_count: u32, golden: u32) -> CrcStatus {
        if frame_count == 0 {
            return CrcStatus::NotChecked;
        }
        {
            let rb = self.engine.component_mut::<CrcReadback>(self.readback_id);
            rb.set_region(
                0,
                Region {
                    start_idx,
                    frames: frame_count,
                    golden,
                },
            );
            rb.set_enabled(true);
        }
        let cycles = (frame_count as u64 + 2) * CYCLES_PER_FRAME as u64;
        let scan_time = SimDuration::from_secs_f64(
            cycles as f64 / self.config.interconnect_clock.as_hz() as f64 * 1.2,
        );
        let readback_id = self.readback_id;
        let deadline = self.engine.now() + scan_time;
        let (_, hit) = self.engine.run_until_condition(deadline, |e| {
            e.component::<CrcReadback>(readback_id).result(0).scans >= 1
        });
        let result = self
            .engine
            .component::<CrcReadback>(self.readback_id)
            .result(0);
        self.engine
            .component_mut::<CrcReadback>(self.readback_id)
            .set_enabled(false);
        if !hit {
            return CrcStatus::NotChecked;
        }
        let status = match result.last_ok {
            Some(true) => CrcStatus::Valid,
            Some(false) => CrcStatus::Invalid,
            None => CrcStatus::NotChecked,
        };
        let frames = frame_count as u64;
        match status {
            CrcStatus::Valid => self.trace_emit(TraceEvent::CrcPass { frames }),
            CrcStatus::Invalid => self.trace_emit(TraceEvent::CrcFail { frames }),
            CrcStatus::NotChecked => {}
        }
        status
    }

    /// Boots from an SD card (Fig. 4): stages every bitstream file into
    /// DRAM, charging simulated time per file, and returns the catalog of
    /// staged addresses. Staging happens once; subsequent reconfigurations
    /// run from DRAM at full speed.
    ///
    /// Read time is charged on the bytes the card actually stores, so a
    /// [compressed card](crate::sdcard::SdCard::with_compression) boots
    /// faster; the image is expanded on the way into DRAM, and the report
    /// always records raw (staged) byte counts.
    pub fn boot_from_sd(&mut self, card: &crate::sdcard::SdCard) -> crate::sdcard::BootReport {
        let mut files = Vec::new();
        let mut total = SimDuration::ZERO;
        let mut addr = BITSTREAM_ADDR;
        for (name, bs) in card.iter() {
            let dt = card
                .read_time_for(name)
                .expect("iterating a file the card holds");
            self.engine.run_for(dt);
            self.backing.write(addr, &bs.to_le_bytes());
            let stored = card
                .stored_bytes(name)
                .expect("iterating a file the card holds");
            self.trace_emit(TraceEvent::SdFileStaged {
                raw_bytes: bs.len() as u64,
                stored_bytes: stored,
            });
            files.push((name.to_string(), bs.len() as u64, dt));
            total += dt;
            addr += (bs.len() as u64).next_multiple_of(4096);
        }
        crate::sdcard::BootReport { files, total }
    }

    /// Reconfigures partition `rp` through the **PCAP** — the Zynq's stock
    /// processor-driven configuration path, requiring no PL logic. The PCAP
    /// sustains ~145 MB/s regardless of the PL over-clock, which is the
    /// baseline the paper's ICAP architecture beats by >5×.
    ///
    /// An empty bitstream is refused before the PCAP is touched, matching
    /// [`Self::reconfigure`].
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range or the bitstream is malformed.
    pub fn reconfigure_pcap(&mut self, rp: usize, bitstream: &Bitstream) -> ReconfigReport {
        self.reconfigs += 1;
        // Same contract as `reconfigure`: an empty image is refused before
        // the PCAP is touched (frequency 0 marks the PS-driven path).
        if bitstream.is_empty() {
            return self.refuse_before_transfer(rp, 0);
        }
        let _partition = self.config.floorplan.partition(rp);
        self.trace_emit(TraceEvent::ReconfigStart {
            rp: rp as u64,
            bytes: bitstream.len() as u64,
            freq_mhz: 0, // the PS-driven PCAP path has no over-clock
        });
        let die_temp = self.die_temp_c();
        self.engine
            .component_mut::<CrcReadback>(self.readback_id)
            .set_enabled(false);

        let (start_far, frames) = bitstream_payload(bitstream);
        let geometry = self.config.floorplan.geometry();
        let start_idx = geometry
            .frame_index(start_far)
            .expect("bitstream targets an address outside the device");
        let golden = frames_crc(&frames);

        let t_start = self.engine.now();
        self.engine.run_for(self.config.driver_overhead);
        let transfer = SimDuration::from_secs_f64(
            bitstream.len() as f64 / (crate::baselines::Pcap::THROUGHPUT_MB_S * 1e6),
        );
        self.engine.run_for(transfer);
        // The PCAP writes configuration memory directly (no over-clocked
        // datapath, hence no corruption physics).
        {
            let mut mem = self.mem.borrow_mut();
            for (i, f) in frames.iter().enumerate() {
                let ok = mem.write_burst_frame(start_far, i as u32, f.clone());
                debug_assert!(ok, "PCAP frame write out of device");
            }
        }
        let latency = self.engine.now().duration_since(t_start);
        let crc = self.verify_region(start_idx, frames.len() as u32, golden);

        // No PL clocking involved: P_PDR is the static share plus the PS
        // doing programmed I/O.
        let p_board = self.config.power.p_board_w_at(0.0, die_temp, self.vdd_mv);
        let p_pdr = self.meter.read_w(p_board, &mut self.rng) - self.config.power.p0_board_w();
        self.trace_emit(TraceEvent::ReconfigDone {
            rp: rp as u64,
            ok: crc != CrcStatus::Invalid,
            latency_ps: latency.as_ps(),
        });
        ReconfigReport {
            frequency_hz: 0,
            die_temp_c: self.sensor.read(die_temp, &mut self.rng),
            bitstream_bytes: bitstream.len() as u64,
            latency: Some(latency),
            interrupt_seen: true, // PCAP completion is PS-observed
            crc,
            stream_crc_ok: None,
            frames_written: frames.len() as u64,
            corrupted_words: 0,
            p_pdr_w: p_pdr,
            energy_j: Some(p_pdr * latency.as_secs_f64()),
            error: (crc == CrcStatus::Invalid).then_some(ReconfigError::CrcMismatch),
        }
    }

    /// The CRC-error interrupt line (for SEU-monitoring scenarios).
    pub fn crc_error_irq(&self) -> &IrqLine {
        &self.crc_err
    }

    /// Starts the background CRC read-back monitor over the given
    /// partitions, taking the *current* configuration-memory content as
    /// golden. Scans run round-robin until the next reconfiguration (which
    /// pauses the monitor) or another call to this method.
    ///
    /// # Panics
    ///
    /// Panics if `rps` is empty or an index is out of range.
    pub fn start_background_monitor(&mut self, rps: &[usize]) {
        assert!(!rps.is_empty(), "monitor needs at least one partition");
        let geometry = self.config.floorplan.geometry().clone();
        let mut frames_total = 0;
        let regions: Vec<Region> = rps
            .iter()
            .map(|&rp| {
                let p = self.config.floorplan.partition(rp);
                let start_idx = p.start_index(&geometry);
                let frames = p.frame_count(&geometry);
                frames_total += frames;
                let golden = self.mem.borrow().range_crc(start_idx, frames);
                Region {
                    start_idx,
                    frames,
                    golden,
                }
            })
            .collect();
        let rb = self.engine.component_mut::<CrcReadback>(self.readback_id);
        for (slot, region) in regions.into_iter().enumerate() {
            rb.set_region(slot, region);
        }
        rb.set_enabled(true);
        self.monitored_frames = frames_total;
        self.crc_err.clear();
    }

    /// Duration of one full monitor sweep over all registered partitions.
    pub fn monitor_scan_period(&self) -> SimDuration {
        let cycles = self.monitored_frames as u64 * CYCLES_PER_FRAME as u64;
        SimDuration::from_secs_f64(cycles as f64 / self.config.interconnect_clock.as_hz() as f64)
    }

    /// Lets the system (and its background monitor) run for `d`.
    pub fn run_monitor_for(&mut self, d: SimDuration) {
        self.engine.run_for(d);
    }

    /// Runs until the CRC-error interrupt fires, returning the detection
    /// latency, or `None` if `max_wait` elapses first.
    pub fn run_monitor_until_alarm(&mut self, max_wait: SimDuration) -> Option<SimDuration> {
        let t0 = self.engine.now();
        let deadline = t0 + max_wait;
        let alarm = self.crc_err.clone();
        let (_, hit) = self
            .engine
            .run_until_condition(deadline, |_| alarm.is_raised());
        let latency = hit.then(|| {
            let raised = self
                .crc_err
                .last_raised()
                .expect("raised line has a timestamp");
            // An alarm that was already pending when the wait began reports
            // zero latency instead of a backwards time span.
            raised.max(t0).duration_since(t0)
        });
        if let Some(l) = latency {
            self.trace_emit(TraceEvent::CrcAlarm {
                latency_ps: l.as_ps(),
            });
        }
        latency
    }

    /// Injects a single-event upset at an arbitrary frame address (static
    /// region included).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the device.
    pub fn inject_static_seu(&mut self, far: FrameAddress, word: usize, bit: u32) {
        let ok = self.mem.borrow_mut().inject_bit_flip(far, word, bit);
        assert!(ok, "SEU address outside device");
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::Seu,
        });
    }

    /// Injects a single-event upset: flips `bit` of `word` in the frame
    /// `frame_offset` frames into partition `rp`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn inject_seu(&mut self, rp: usize, frame_offset: u32, word: usize, bit: u32) {
        let geometry = self.config.floorplan.geometry();
        let p = self.config.floorplan.partition(rp);
        assert!(
            frame_offset < p.frame_count(geometry),
            "frame offset outside partition"
        );
        let far = geometry.far_at(p.start_index(geometry) + frame_offset);
        let ok = self.mem.borrow_mut().inject_bit_flip(far, word, bit);
        assert!(ok, "SEU coordinates outside device");
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::Seu,
        });
    }

    /// Starts a transient timing-violation burst: for `duration` from now,
    /// every over-clock assessment sees its failure envelope shrunk by
    /// `derate_mhz` on both paths (a local die-temperature excursion or
    /// voltage droop). A new burst replaces any active one.
    ///
    /// # Panics
    ///
    /// Panics if `derate_mhz` is negative or non-finite.
    pub fn inject_timing_burst(&mut self, derate_mhz: f64, duration: SimDuration) {
        assert!(
            derate_mhz >= 0.0 && derate_mhz.is_finite(),
            "derate must be a finite non-negative MHz value: {derate_mhz}"
        );
        self.derate_until = Some((derate_mhz, self.engine.now() + duration));
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::TimingBurst,
        });
    }

    /// The derating currently in force (0 when no burst is active). Expired
    /// bursts are dropped lazily.
    pub fn active_derate_mhz(&mut self) -> f64 {
        match self.derate_until {
            Some((mhz, until)) if self.engine.now() < until => mhz,
            Some(_) => {
                self.derate_until = None;
                0.0
            }
            None => 0.0,
        }
    }

    /// Arms a configuration-DMA stall of `cycles` over-clock cycles for the
    /// *next* reconfiguration attempt (injected after the driver's
    /// pre-flight quiesce so the quiesce cannot clear it). Stalls
    /// accumulate until consumed.
    pub fn inject_dma_stall(&mut self, cycles: u64) {
        self.pending_dma_stall = self.pending_dma_stall.saturating_add(cycles);
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::DmaStall,
        });
    }

    /// Arms a one-shot dropped completion interrupt: the next ICAP done
    /// interrupt is swallowed even though the transfer itself completes
    /// (an interrupt-controller glitch, distinct from the 310 MHz dead
    /// interrupt path).
    pub fn drop_next_completion_irq(&mut self) {
        self.engine
            .component_mut::<IcapController>(self.icap_id)
            .drop_next_done_irq();
        self.trace_emit(TraceEvent::FaultInjected {
            kind: FaultKind::DroppedIrq,
        });
    }

    /// True when configuration memory holds exactly `bitstream`'s frames at
    /// their target address (golden-CRC comparison) — the offline check a
    /// campaign uses to prove no corruption slipped past the read-back.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream is malformed or targets an address outside
    /// the device.
    pub fn fabric_matches(&self, bitstream: &Bitstream) -> bool {
        let (start_far, frames) = bitstream_payload(bitstream);
        let geometry = self.config.floorplan.geometry();
        let start_idx = geometry
            .frame_index(start_far)
            .expect("bitstream targets an address outside the device");
        let actual = self.mem.borrow().range_crc(start_idx, frames.len() as u32);
        actual == frames_crc(&frames)
    }

    /// The DMA IOC interrupt line.
    pub fn dma_ioc_irq(&self) -> &IrqLine {
        &self.dma_ioc
    }

    /// Interconnect statistics (for ablation studies).
    pub fn interconnect_stats(&self) -> pdr_axi::interconnect::InterconnectStats {
        self.engine
            .component::<ReadInterconnect>(self.ic_id)
            .stats()
    }

    /// Lifetime reconfiguration count.
    pub fn reconfig_count(&self) -> u64 {
        self.reconfigs
    }

    /// Serializes every piece of dynamic system state: the engine (clocks,
    /// event queues, and all component state via their
    /// [`pdr_sim_core::Component`] snapshot hooks), DRAM backing store,
    /// configuration memory,
    /// over-clock frequency, thermal state, the system RNG, fault-injection
    /// arming, and the trace sink.
    ///
    /// Restoring this object onto a freshly built system with the *same*
    /// [`SystemConfig`] (see [`Self::restore_json`]) yields a run that is
    /// byte-identical to one that never stopped. Structural configuration
    /// is deliberately *not* serialized — the construction code is the
    /// single source of truth for topology.
    pub fn snapshot_json(&self) -> Json {
        let mem = self.mem.borrow();
        let frames: Vec<Json> = mem
            .nonzero_frames()
            .into_iter()
            .map(|(idx, frame)| {
                let mut hex = String::with_capacity(FRAME_WORDS * 8);
                for w in frame.words() {
                    let _ = write!(hex, "{w:08x}");
                }
                Json::Obj(vec![
                    ("idx".into(), Json::U64(u64::from(idx))),
                    ("hex".into(), Json::Str(hex)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("engine".into(), self.engine.snapshot()),
            ("backing".into(), self.backing.snapshot_json()),
            (
                "config_mem".into(),
                Json::Obj(vec![
                    ("frames".into(), Json::Arr(frames)),
                    ("writes".into(), Json::U64(mem.write_count())),
                    ("reads".into(), Json::U64(mem.read_count())),
                ]),
            ),
            (
                "overclock_hz".into(),
                Json::U64(self.wizard.frequency().as_hz()),
            ),
            ("die_c".into(), Json::F64(self.thermal.die_temp_c())),
            ("env_c".into(), Json::F64(self.thermal.env_temp_c())),
            (
                "rng".into(),
                Json::Arr(self.rng.state().iter().map(|&w| Json::U64(w)).collect()),
            ),
            ("reconfigs".into(), Json::U64(self.reconfigs)),
            (
                "monitored_frames".into(),
                Json::U64(u64::from(self.monitored_frames)),
            ),
            (
                "derate".into(),
                match self.derate_until {
                    None => Json::Null,
                    Some((mhz, until)) => Json::Obj(vec![
                        ("mhz".into(), Json::F64(mhz)),
                        ("until_ps".into(), Json::U64(until.as_ps())),
                    ]),
                },
            ),
            (
                "pending_dma_stall".into(),
                Json::U64(self.pending_dma_stall),
            ),
            ("vdd_mv".into(), Json::U64(u64::from(self.vdd_mv))),
            ("trace".into(), self.trace.snapshot_json()),
        ])
    }

    /// Overlays a [`Self::snapshot_json`] object onto this system.
    ///
    /// The receiver must be freshly constructed from the *same*
    /// [`SystemConfig`] that produced the snapshot (same floorplan, seeds,
    /// and engine strategy) — the engine restore validates the component
    /// structure and rejects mismatches before any state is mutated.
    pub fn restore_json(&mut self, json: &Json) -> Result<(), JsonError> {
        fn req<'a>(json: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
            json.get(key).ok_or_else(|| JsonError {
                msg: format!("system snapshot missing `{key}`"),
            })
        }
        // The engine restore validates clock-domain and component structure
        // against the snapshot before touching any component, so a snapshot
        // from a different floorplan fails here without partial mutation.
        self.engine.restore(req(json, "engine")?)?;
        self.backing.restore_json(req(json, "backing")?)?;

        let cm = req(json, "config_mem")?;
        let frames_json = req(cm, "frames")?.as_array().ok_or_else(|| JsonError {
            msg: "config_mem.frames must be an array".into(),
        })?;
        let mut frames = Vec::with_capacity(frames_json.len());
        for f in frames_json {
            let idx = req(f, "idx")?.as_u64().ok_or_else(|| JsonError {
                msg: "config_mem frame idx must be u64".into(),
            })?;
            let idx = u32::try_from(idx).map_err(|_| JsonError {
                msg: format!("config_mem frame idx {idx} out of u32 range"),
            })?;
            let hex = req(f, "hex")?.as_str().ok_or_else(|| JsonError {
                msg: "config_mem frame hex must be a string".into(),
            })?;
            if hex.len() != FRAME_WORDS * 8 || !hex.is_ascii() {
                return Err(JsonError {
                    msg: format!(
                        "config_mem frame {idx}: expected {} hex chars, got {}",
                        FRAME_WORDS * 8,
                        hex.len()
                    ),
                });
            }
            let mut words = Vec::with_capacity(FRAME_WORDS);
            for i in 0..FRAME_WORDS {
                let w = u32::from_str_radix(&hex[8 * i..8 * i + 8], 16).map_err(|_| JsonError {
                    msg: format!("config_mem frame {idx}: bad hex word at {i}"),
                })?;
                words.push(w);
            }
            frames.push((idx, Frame::from_words(words)));
        }
        let writes = req(cm, "writes")?.as_u64().ok_or_else(|| JsonError {
            msg: "config_mem.writes must be u64".into(),
        })?;
        let reads = req(cm, "reads")?.as_u64().ok_or_else(|| JsonError {
            msg: "config_mem.reads must be u64".into(),
        })?;
        self.mem
            .borrow_mut()
            .restore_parts(&frames, writes, reads)
            .map_err(|msg| JsonError { msg })?;

        let hz = req(json, "overclock_hz")?
            .as_u64()
            .ok_or_else(|| JsonError {
                msg: "overclock_hz must be u64".into(),
            })?;
        self.wizard.restore_frequency(Frequency::from_hz(hz));

        let die_c = req(json, "die_c")?.as_f64().ok_or_else(|| JsonError {
            msg: "die_c must be a number".into(),
        })?;
        let env_c = req(json, "env_c")?.as_f64().ok_or_else(|| JsonError {
            msg: "env_c must be a number".into(),
        })?;
        self.thermal.set_env_temp(env_c);
        self.thermal.force_die_temp(die_c);

        let rng_json = req(json, "rng")?.as_array().ok_or_else(|| JsonError {
            msg: "rng must be an array".into(),
        })?;
        if rng_json.len() != 4 {
            return Err(JsonError {
                msg: format!("rng state must have 4 words, got {}", rng_json.len()),
            });
        }
        let mut state = [0u64; 4];
        for (slot, v) in state.iter_mut().zip(rng_json) {
            *slot = v.as_u64().ok_or_else(|| JsonError {
                msg: "rng state word must be u64".into(),
            })?;
        }
        self.rng = Xoshiro256StarStar::from_state(state);

        self.reconfigs = req(json, "reconfigs")?.as_u64().ok_or_else(|| JsonError {
            msg: "reconfigs must be u64".into(),
        })?;
        let monitored = req(json, "monitored_frames")?
            .as_u64()
            .ok_or_else(|| JsonError {
                msg: "monitored_frames must be u64".into(),
            })?;
        self.monitored_frames = u32::try_from(monitored).map_err(|_| JsonError {
            msg: format!("monitored_frames {monitored} out of u32 range"),
        })?;

        self.derate_until = match req(json, "derate")? {
            Json::Null => None,
            d => {
                let mhz = req(d, "mhz")?.as_f64().ok_or_else(|| JsonError {
                    msg: "derate.mhz must be a number".into(),
                })?;
                let until = req(d, "until_ps")?.as_u64().ok_or_else(|| JsonError {
                    msg: "derate.until_ps must be u64".into(),
                })?;
                Some((mhz, SimTime::from_ps(until)))
            }
        };

        self.pending_dma_stall =
            req(json, "pending_dma_stall")?
                .as_u64()
                .ok_or_else(|| JsonError {
                    msg: "pending_dma_stall must be u64".into(),
                })?;

        // Snapshots written before the voltage axis existed carry no
        // `vdd_mv`; keep the constructed value (nominal) in that case.
        if let Some(v) = json.get("vdd_mv") {
            let mv = v.as_u64().ok_or_else(|| JsonError {
                msg: "vdd_mv must be u64".into(),
            })?;
            self.vdd_mv = u32::try_from(mv).map_err(|_| JsonError {
                msg: format!("vdd_mv {mv} out of u32 range"),
            })?;
        }

        self.trace.restore_json(req(json, "trace")?)
    }
}

impl std::fmt::Debug for ZynqPdrSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZynqPdrSystem")
            .field("now", &self.engine.now())
            .field("overclock", &self.wizard.frequency())
            .field("die_temp_c", &self.thermal.die_temp_c())
            .field("reconfigs", &self.reconfigs)
            .finish()
    }
}

/// Discards an accelerator input beat (the behavioural ASPs compute from
/// software-visible inputs; the stream models bus occupancy).
fn drop_beat(_beat: StreamBeat) {}

/// Extracts the frame payload (start FAR + frames) of a well-formed partial
/// bitstream by running the parser offline.
///
/// # Panics
///
/// Panics on a malformed bitstream — generator bugs must fail loudly.
pub fn bitstream_payload(bs: &Bitstream) -> (FrameAddress, Vec<Frame>) {
    let actions = Parser::parse_all(bs.words()).expect("input bitstream must be well-formed");
    let mut start = None;
    let mut frames = Vec::new();
    for a in actions {
        match a {
            Action::SetFar(far) if start.is_none() => start = Some(far),
            Action::WriteFrame { data, .. } => frames.push(data),
            _ => {}
        }
    }
    (start.expect("bitstream sets no frame address"), frames)
}

/// CRC-32 (IEEE) over a frame sequence — the golden value a clean read-back
/// must reproduce.
pub fn frames_crc(frames: &[Frame]) -> u32 {
    let mut crc = pdr_bitstream::Crc32::ieee();
    for f in frames {
        for &w in f.words() {
            crc.update_word(w);
        }
    }
    crc.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::json::ToJson;

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    #[test]
    fn nominal_reconfiguration_succeeds() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 7);
        let r = sys.reconfigure(0, &bs, mhz(100));
        assert!(r.interrupt_seen, "report: {r:?}");
        assert!(r.crc_ok());
        assert_eq!(r.stream_crc_ok, Some(true));
        assert_eq!(r.frames_written, 108);
        assert_eq!(r.corrupted_words, 0);
        let t = r.throughput_mb_s().unwrap();
        // 4 B/cycle at 100 MHz ≈ 400 MB/s minus overheads.
        assert!((330.0..=400.0).contains(&t), "throughput {t}");
        assert_eq!(sys.identify_asp(0), Some((AspKind::Fir16, 7)));
    }

    #[test]
    fn overclocked_200mhz_roughly_doubles_throughput() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 1);
        let r100 = sys.reconfigure(0, &bs, mhz(100));
        let r200 = sys.reconfigure(0, &bs, mhz(200));
        let (t100, t200) = (
            r100.throughput_mb_s().unwrap(),
            r200.throughput_mb_s().unwrap(),
        );
        assert!(r200.crc_ok());
        let gain = t200 / t100;
        assert!(
            (1.6..=2.1).contains(&gain),
            "gain {gain} (t100={t100} t200={t200})"
        );
    }

    #[test]
    fn at_310mhz_no_interrupt_but_crc_valid() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::MatMul8, 2);
        let r = sys.reconfigure(0, &bs, mhz(310));
        assert!(!r.interrupt_seen, "interrupt path must be dead at 310 MHz");
        assert_eq!(r.latency, None);
        assert!(r.crc_ok(), "data path is healthy at 40 °C: {r:?}");
    }

    #[test]
    fn at_320mhz_crc_not_valid() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 3);
        let r = sys.reconfigure(0, &bs, mhz(320));
        assert!(!r.interrupt_seen);
        assert!(!r.crc_ok(), "320 MHz corrupts the transfer: {r:?}");
        assert!(r.corrupted_words > 0);
    }

    #[test]
    fn stress_cell_310mhz_100c_fails() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        sys.set_die_temp_c(100.0);
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 4);
        let r = sys.reconfigure(0, &bs, mhz(310));
        assert!(!r.crc_ok(), "the paper's single failing stress cell");
        // And the same frequency at 90 °C still verifies.
        sys.set_die_temp_c(90.0);
        let r = sys.reconfigure(0, &bs, mhz(310));
        assert!(r.crc_ok(), "{r:?}");
    }

    #[test]
    fn failed_run_does_not_poison_the_next() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 5);
        let bad = sys.reconfigure(0, &bs, mhz(360));
        assert!(!bad.crc_ok());
        let good = sys.reconfigure(0, &bs, mhz(140));
        assert!(good.crc_ok(), "{good:?}");
        assert!(good.interrupt_seen);
    }

    #[test]
    fn asp_swaps_between_partitions_execute() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let fir = sys.make_asp_bitstream(0, AspKind::Fir16, 11);
        let mat = sys.make_asp_bitstream(1, AspKind::MatMul8, 12);
        assert!(sys.reconfigure(0, &fir, mhz(200)).crc_ok());
        assert!(sys.reconfigure(1, &mat, mhz(200)).crc_ok());
        let y = sys.execute_asp(0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(y.len(), 4);
        let z = sys.execute_asp(1, &[1; 64]).unwrap();
        assert_eq!(z.len(), 64);
        // Swapping RP0 to a different ASP leaves RP1 intact.
        let aes = sys.make_asp_bitstream(0, AspKind::AesMix, 13);
        assert!(sys.reconfigure(0, &aes, mhz(200)).crc_ok());
        assert_eq!(sys.identify_asp(0), Some((AspKind::AesMix, 13)));
        assert_eq!(sys.identify_asp(1), Some((AspKind::MatMul8, 12)));
    }

    #[test]
    fn power_reading_tracks_frequency() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 6);
        let r100 = sys.reconfigure(0, &bs, mhz(100));
        let r280 = sys.reconfigure(0, &bs, mhz(280));
        assert!(r280.p_pdr_w > r100.p_pdr_w);
        assert!((r100.p_pdr_w - 1.15).abs() < 0.05, "{}", r100.p_pdr_w);
    }

    #[test]
    fn per_rp_clocks_scale_asp_execution_time() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 5);
        assert!(sys.reconfigure(0, &bs, mhz(200)).crc_ok());
        assert_eq!(sys.rp_clock(0), Frequency::from_mhz(100));
        let input = vec![1i64; 10_000];
        let (_, slow) = sys.run_asp_timed(0, &input).expect("configured");
        // Double the RP clock: the streaming phase halves.
        sys.set_rp_clock(0, mhz(200));
        let (out, fast) = sys.run_asp_timed(0, &input).expect("configured");
        assert_eq!(out.len(), input.len());
        let (s, f) = (slow.as_micros_f64(), fast.as_micros_f64());
        // slow = 2 + 100 µs; fast = 2 + 50 µs.
        assert!((s - 102.0).abs() < 0.5, "slow={s}");
        assert!((f - 52.0).abs() < 0.5, "fast={f}");
        // Unconfigured partitions run nothing.
        assert!(sys.run_asp_timed(1, &input).is_none());
    }

    #[test]
    fn accelerator_traffic_contends_with_reconfiguration() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 5);
        // Quiet baseline at a plateau frequency.
        let quiet = sys.reconfigure(0, &bs, mhz(280));
        let t_quiet = quiet.throughput_mb_s().expect("interrupts");
        // Start a large accelerator transfer on RP2's HP-port DMA, then
        // reconfigure RP1 concurrently.
        sys.start_asp_dma(1, 0x40_0000, 4_000_000);
        sys.engine_mut().run_for(SimDuration::from_micros(1)); // DMA arms
        assert!(sys.asp_dma_busy(1));
        let busy = sys.reconfigure(0, &bs, mhz(280));
        assert!(busy.crc_ok(), "contention must not corrupt: {busy:?}");
        let t_busy = busy.throughput_mb_s().expect("interrupts");
        // Round-robin arbitration: roughly half the memory bandwidth.
        assert!(
            t_busy < 0.65 * t_quiet,
            "expected visible contention: quiet {t_quiet:.1} vs busy {t_busy:.1}"
        );
        assert!(t_busy > 0.35 * t_quiet, "but not starvation: {t_busy:.1}");
    }

    #[test]
    fn asp_dma_completes_and_interrupts() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        sys.start_asp_dma(0, 0x10_0000, 64 * 1024);
        // 64 kB at ≤ 800 MB/s (shared port) ≈ 82 µs; allow slack.
        sys.engine_mut().run_for(SimDuration::from_micros(400));
        assert!(!sys.asp_dma_busy(0));
    }

    #[test]
    fn pcap_path_configures_slowly_but_safely() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::MatMul8, 8);
        let pcap = sys.reconfigure_pcap(0, &bs);
        assert!(pcap.crc_ok());
        assert!(pcap.interrupt_seen);
        let t_pcap = pcap.throughput_mb_s().expect("PCAP completes");
        assert!((140.0..=146.0).contains(&t_pcap), "t={t_pcap}");
        assert_eq!(sys.identify_asp(0), Some((AspKind::MatMul8, 8)));
        // The over-clocked ICAP at 200 MHz beats it by >5x.
        let icap = sys.reconfigure(0, &bs, mhz(200));
        let t_icap = icap.throughput_mb_s().expect("ICAP completes");
        assert!(t_icap / t_pcap > 4.5, "icap {t_icap} vs pcap {t_pcap}");
        // And PCAP burns less PDR power (no PL clock).
        assert!(pcap.p_pdr_w < icap.p_pdr_w);
    }

    #[test]
    fn wrong_idcode_bitstream_is_refused() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        // A bitstream built for a *different* device id.
        let p = sys.floorplan().partition(0).clone();
        let frames =
            AspImage::generate(AspKind::Fir16, 1, p.frame_count(sys.floorplan().geometry()));
        let mut b = Builder::new(IDCODE ^ 0xFFFF);
        b.add_frames(p.start_far(), frames.into_frames());
        let bs = b.build();
        let r = sys.reconfigure(0, &bs, mhz(100));
        assert!(!r.crc_ok(), "foreign bitstream must not configure: {r:?}");
        assert_eq!(r.frames_written, 0, "config logic refused all frames");
        assert!(!r.interrupt_seen);
        // The right-id image still works afterwards.
        let good = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
        assert!(sys.reconfigure(0, &good, mhz(100)).crc_ok());
    }

    #[test]
    fn sd_boot_stages_files_and_charges_time() {
        use crate::sdcard::SdCard;
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut card = SdCard::class10();
        card.store("rp1.bit", sys.make_asp_bitstream(0, AspKind::Fir16, 1));
        card.store("rp2.bit", sys.make_asp_bitstream(1, AspKind::AesMix, 2));
        let t0 = sys.now();
        let boot = sys.boot_from_sd(&card);
        assert_eq!(boot.files.len(), 2);
        assert_eq!(sys.now().duration_since(t0), boot.total);
        // Two ~44 kB files at 19 MB/s + 2 ms each ≈ 8.6 ms.
        let ms = boot.total.as_secs_f64() * 1e3;
        assert!((7.0..=11.0).contains(&ms), "boot took {ms} ms");
        assert_eq!(boot.total_bytes(), 2 * 43_768);
    }

    #[test]
    fn lost_interrupt_is_classified_not_silent() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::MatMul8, 2);
        // The paper's 310 MHz row: transfer completes, interrupt path dead.
        let r = sys.reconfigure(0, &bs, mhz(310));
        assert!(!r.interrupt_seen);
        assert_eq!(
            r.error,
            Some(ReconfigError::Timeout(TimeoutCause::InterruptLost)),
            "lost interrupt must be classified, not a silent None latency: {r:?}"
        );
        // Distinct from a transfer that never finished: stall the DMA past
        // a shortened watchdog deadline.
        let mut cfg = SystemConfig::fast_test();
        cfg.transfer_timeout = SimDuration::from_micros(200);
        let mut sys = ZynqPdrSystem::new(cfg);
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 3);
        sys.inject_dma_stall(200_000); // 2 ms at 100 MHz >> 200 µs deadline
        let r = sys.reconfigure(0, &bs, mhz(100));
        assert_eq!(
            r.error,
            Some(ReconfigError::Timeout(TimeoutCause::StillInFlight)),
            "{r:?}"
        );
        assert!(!r.interrupt_seen);
    }

    #[test]
    fn classification_covers_the_failure_taxonomy() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 4);
        assert_eq!(sys.reconfigure(0, &bs, mhz(200)).error, None);
        assert_eq!(
            sys.reconfigure(0, &bs, mhz(320)).error,
            Some(ReconfigError::CrcMismatch)
        );
        // Wrong-device bitstream: refused outright.
        let p = sys.floorplan().partition(0).clone();
        let frames =
            AspImage::generate(AspKind::Fir16, 1, p.frame_count(sys.floorplan().geometry()));
        let mut b = Builder::new(IDCODE ^ 0xFFFF);
        b.add_frames(p.start_far(), frames.into_frames());
        let foreign = b.build();
        assert_eq!(
            sys.reconfigure(0, &foreign, mhz(100)).error,
            Some(ReconfigError::Refused)
        );
    }

    #[test]
    fn dropped_completion_irq_times_out_with_data_intact() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 5);
        sys.drop_next_completion_irq();
        let r = sys.reconfigure(0, &bs, mhz(140));
        assert!(!r.interrupt_seen, "{r:?}");
        assert_eq!(
            r.error,
            Some(ReconfigError::Timeout(TimeoutCause::InterruptLost))
        );
        assert!(r.crc_ok(), "the fabric content is fine: {r:?}");
        // One-shot: the next attempt interrupts normally.
        let r2 = sys.reconfigure(0, &bs, mhz(140));
        assert!(r2.interrupt_seen && r2.error.is_none(), "{r2:?}");
    }

    #[test]
    fn timing_burst_transiently_shrinks_the_envelope() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 6);
        // 280 MHz is safe in steady state...
        assert!(sys.reconfigure(0, &bs, mhz(280)).error.is_none());
        // ...but a 30 MHz burst kills the interrupt path (25 MHz slack).
        sys.inject_timing_burst(30.0, SimDuration::from_millis(500));
        let r = sys.reconfigure(0, &bs, mhz(280));
        assert_eq!(
            r.error,
            Some(ReconfigError::Timeout(TimeoutCause::InterruptLost)),
            "{r:?}"
        );
        assert!(r.crc_ok(), "data path still holds under a 30 MHz burst");
        // After the burst expires the same point is clean again.
        sys.engine_mut().run_for(SimDuration::from_millis(600));
        assert_eq!(sys.active_derate_mhz(), 0.0);
        assert!(sys.reconfigure(0, &bs, mhz(280)).error.is_none());
    }

    #[test]
    fn payload_extraction_roundtrip() {
        let sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(1, AspKind::AesMix, 9);
        let (far, frames) = bitstream_payload(&bs);
        assert_eq!(far, sys.floorplan().partition(1).start_far());
        assert_eq!(frames.len(), 108);
    }

    fn thermal_cfg() -> SystemConfig {
        SystemConfig {
            thermal_loop: Some(ThermalLoopConfig::default()),
            ..SystemConfig::fast_test()
        }
    }

    #[test]
    fn thermal_loop_settles_near_the_rc_steady_state() {
        let mut sys = ZynqPdrSystem::new(thermal_cfg());
        assert!(sys.thermal_loop_enabled());
        // Heater at construction: idle 1.1 W + P_dyn(100 MHz) ≈ 1.257 W,
        // plus ~1 W of leakage at 25 °C ambient and R = 8 °C/W puts the
        // settle point in the low 40s. Run well past 5 τ.
        sys.engine_mut().run_for(SimDuration::from_millis(40));
        let t = sys.die_temp_c();
        assert!(
            (38.0..=50.0).contains(&t),
            "loop settle point out of range: {t} °C"
        );
        assert!(!sys.thermal_samples().is_empty());
        assert!(sys.poll_thermal_alarm().is_none(), "no alarm at idle");
    }

    #[test]
    fn heat_soak_raises_the_die_and_trips_the_alarm() {
        let mut sys = ZynqPdrSystem::new(thermal_cfg());
        sys.engine_mut().run_for(SimDuration::from_millis(30));
        let before = sys.die_temp_c();
        // +55 °C ambient excursion for 20 ms: target jumps past the 85 °C
        // alarm line while the soak holds.
        sys.inject_heat_soak(55_000, SimDuration::from_millis(20));
        sys.engine_mut().run_for(SimDuration::from_millis(18));
        let during = sys.die_temp_c();
        assert!(during > before + 40.0, "soak must heat the die: {during}");
        let alarm = sys.poll_thermal_alarm();
        assert!(alarm.is_some(), "85 °C alarm must latch during the soak");
        // Polling clears the line and books exactly one tape event.
        assert!(sys.poll_thermal_alarm().is_none());
        // After the soak horizon the die relaxes back toward idle.
        sys.engine_mut().run_for(SimDuration::from_millis(40));
        let after = sys.die_temp_c();
        assert!(after < during - 30.0, "soak must revert: {after}");
    }

    #[test]
    fn heat_soak_without_the_loop_degrades_to_a_step() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        assert!(!sys.thermal_loop_enabled());
        let before = sys.die_temp_c();
        sys.inject_heat_soak(15_000, SimDuration::from_millis(5));
        assert!((sys.die_temp_c() - before - 15.0).abs() < 1e-9);
        assert_eq!(sys.thermal_samples().len(), 0);
        assert_eq!(sys.thermal_trajectory_jsonl(), "");
    }

    #[test]
    fn nominal_voltage_reports_are_bitwise_unchanged() {
        // The voltage axis at 1000 mV must be invisible: same RNG draws,
        // same float math, byte-identical report JSON.
        let mut a = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut b = ZynqPdrSystem::new(SystemConfig::fast_test());
        assert_eq!(b.vdd_mv(), pdr_power::VDD_NOMINAL_MV);
        let bs_a = a.make_asp_bitstream(0, AspKind::Fir16, 7);
        let bs_b = b.make_asp_bitstream(0, AspKind::Fir16, 7);
        let ra = a.reconfigure(0, &bs_a, mhz(200));
        b.set_vdd_mv(pdr_power::VDD_NOMINAL_MV); // explicit no-op set
        let rb = b.reconfigure(0, &bs_b, mhz(200));
        assert_eq!(ra.to_json_string(), rb.to_json_string());
    }

    #[test]
    fn undervolting_kills_a_point_overvolting_rescues_one() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 8);
        // 200 MHz is clean at nominal...
        assert!(sys.reconfigure(0, &bs, mhz(200)).error.is_none());
        // ...but at 950 mV the +150 MHz bias corrupts the data path.
        sys.set_vdd_mv(950);
        assert!(!sys.reconfigure(0, &bs, mhz(200)).crc_ok());
        // 140 MHz still holds at 950 mV.
        assert!(sys.reconfigure(0, &bs, mhz(140)).error.is_none());
        // Over-volting to 1050 mV buys back the dead 310 MHz interrupt.
        sys.set_vdd_mv(1050);
        let r = sys.reconfigure(0, &bs, mhz(310));
        assert!(r.interrupt_seen && r.error.is_none(), "{r:?}");
    }

    #[test]
    fn vdd_survives_snapshot_and_old_snapshots_default_to_nominal() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        sys.set_vdd_mv(950);
        let snap = sys.snapshot_json();
        let mut restored = ZynqPdrSystem::new(SystemConfig::fast_test());
        restored.restore_json(&snap).unwrap();
        assert_eq!(restored.vdd_mv(), 950);
        // A pre-voltage-axis snapshot (key absent) keeps the constructed
        // nominal value rather than erroring.
        let legacy = match snap {
            Json::Obj(kv) => Json::Obj(kv.into_iter().filter(|(k, _)| k != "vdd_mv").collect()),
            _ => unreachable!("snapshot is an object"),
        };
        let mut fresh = ZynqPdrSystem::new(SystemConfig::fast_test());
        fresh.restore_json(&legacy).unwrap();
        assert_eq!(fresh.vdd_mv(), pdr_power::VDD_NOMINAL_MV);
    }

    #[test]
    fn thermal_loop_snapshot_restores_mid_soak_byte_identically() {
        let cfg = thermal_cfg;
        let mut a = ZynqPdrSystem::new(cfg());
        a.engine_mut().run_for(SimDuration::from_millis(10));
        a.inject_heat_soak(40_000, SimDuration::from_millis(15));
        a.engine_mut().run_for(SimDuration::from_millis(5));
        let snap = a.snapshot_json();
        let mut b = ZynqPdrSystem::new(cfg());
        b.restore_json(&snap).unwrap();
        a.engine_mut().run_for(SimDuration::from_millis(30));
        b.engine_mut().run_for(SimDuration::from_millis(30));
        assert_eq!(a.thermal_trajectory_jsonl(), b.thermal_trajectory_jsonl());
        assert_eq!(a.die_temp_c().to_bits(), b.die_temp_c().to_bits());
    }
}
