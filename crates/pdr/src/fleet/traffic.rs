//! Open-loop synthetic fleet traffic: deterministic Poisson arrivals under
//! a diurnal burst envelope, with Zipf-skewed tenant and catalog-entry
//! popularity.
//!
//! Everything here is bit-deterministic across hosts. The usual samplers
//! lean on `ln`/`powf`/`sin`, whose last-ulp behaviour is libm-specific and
//! would leak into the committed `BENCH_fleet.json`; instead this module
//! ships its own `det_ln`/`det_exp` built from IEEE-exact operations only
//! (add/mul/div/floor and bit twiddling), and a triangular wave replaces
//! the sinusoidal envelope. Tests pin both against `std` to 1e-12.
//!
//! The arrival process is *count-exact*: a model generates exactly
//! `target_requests` arrivals (the campaign's denominator is a constant,
//! not a random variate); `duration` sets the mean rate, so the realised
//! span of the stream is `duration` give or take Poisson noise.

use pdr_sim_core::rng::Xoshiro256StarStar;
use pdr_sim_core::SimDuration;

use super::ring::mix64;

const LN_2: f64 = core::f64::consts::LN_2;

/// Deterministic natural log for finite `x > 0`: exponent/mantissa split by
/// bit pattern, then the atanh series on the mantissa folded into
/// `[1/sqrt(2), sqrt(2))`. Uses only IEEE-exact ops, so every host computes
/// the same bits. Accurate to ~1 ulp over the f64 range.
pub fn det_ln(x: f64) -> f64 {
    assert!(
        x > 0.0 && x.is_finite(),
        "det_ln domain: finite x > 0, got {x}"
    );
    let bits = x.to_bits();
    let mut exp = ((bits >> 52) & 0x7ff) as i64;
    let frac_bits;
    if exp == 0 {
        // Subnormal: normalise by scaling with 2^64 (exact).
        let y = x * f64::from_bits((1023u64 + 64) << 52);
        let yb = y.to_bits();
        exp = ((yb >> 52) & 0x7ff) as i64 - 64;
        frac_bits = yb & 0x000f_ffff_ffff_ffff;
    } else {
        frac_bits = bits & 0x000f_ffff_ffff_ffff;
    }
    let mut e = exp - 1023;
    // m in [1, 2); fold to [1/sqrt(2), sqrt(2)) so |t| <= 0.1716.
    let mut m = f64::from_bits((1023u64 << 52) | frac_bits);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // 2 * (t + t^3/3 + ... + t^19/19): the t^21 term is < 3e-16 relative.
    let mut s = 1.0 / 19.0;
    for k in (1..=9).rev() {
        s = s * t2 + 1.0 / (2 * k - 1) as f64;
    }
    e as f64 * LN_2 + 2.0 * t * s
}

/// Deterministic `exp(x)` for `|x| <= 700`: argument reduction by powers of
/// two plus a Taylor tail on `|r| <= ln(2)/2`. IEEE-exact ops only.
pub fn det_exp(x: f64) -> f64 {
    assert!(
        x.is_finite() && x.abs() <= 700.0,
        "det_exp domain: |x| <= 700, got {x}"
    );
    let k = (x / LN_2 + 0.5).floor();
    let r = x - k * LN_2;
    // 16 Taylor terms: r^16/16! < 1e-17 at |r| <= 0.347.
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..=16 {
        term = term * r / n as f64;
        sum += term;
    }
    // Scale by 2^k via exponent arithmetic (k in [-1011, 1011] here).
    let ki = k as i64;
    let scale = if (-1022..=1023).contains(&ki) {
        f64::from_bits(((ki + 1023) as u64) << 52)
    } else if ki > 1023 {
        f64::INFINITY
    } else {
        0.0
    };
    sum * scale
}

/// Deterministic `base^(-s)` for `base >= 1`, `s >= 0` — the Zipf weight.
pub fn det_pow_neg(base: f64, s: f64) -> f64 {
    if s == 0.0 {
        return 1.0;
    }
    det_exp(-s * det_ln(base))
}

/// Zipf(s) sampler over `0..n` by inverse CDF (precomputed cumulative
/// weights + binary search). Rank 0 is the most popular.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` items with exponent `s_milli / 1000`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, s_milli: u32) -> Self {
        assert!(n > 0, "zipf sampler needs at least one item");
        let s = s_milli as f64 / 1000.0;
        let mut cdf = Vec::with_capacity(n as usize);
        let mut cum = 0.0;
        for i in 0..n {
            cum += det_pow_neg((i + 1) as f64, s);
            cdf.push(cum);
        }
        ZipfSampler { cdf }
    }

    /// Maps a uniform `u in [0, 1)` to an item rank.
    pub fn sample(&self, u: f64) -> u32 {
        let target = u * self.cdf[self.cdf.len() - 1];
        let i = self.cdf.partition_point(|&c| c <= target);
        (i as u32).min(self.cdf.len() as u32 - 1)
    }
}

/// Traffic-model knobs. See `docs/FLEET.md` for the full schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Exact number of arrivals the model generates.
    pub target_requests: u64,
    /// Mean span of the arrival stream; sets the base rate
    /// `target_requests / duration`.
    pub duration: SimDuration,
    /// Diurnal burst amplitude in permille: the instantaneous rate swings
    /// between `base*(1 - a)` and `base*(1 + a)` with `a = permille/1000`.
    pub burst_amplitude_permille: u32,
    /// Period of the (triangular) diurnal envelope.
    pub burst_period: SimDuration,
    /// Zipf exponent x1000 for tenant popularity (1000 = classic Zipf).
    pub tenant_zipf_milli: u32,
    /// Zipf exponent x1000 for catalog-entry popularity.
    pub entry_zipf_milli: u32,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            target_requests: 20_000,
            duration: SimDuration::from_millis(2_000),
            burst_amplitude_permille: 600,
            burst_period: SimDuration::from_millis(500),
            tenant_zipf_milli: 1100,
            entry_zipf_milli: 900,
        }
    }
}

/// One reconfiguration request entering the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant, picoseconds since campaign start.
    pub at_ps: u64,
    /// Requesting tenant.
    pub tenant: u32,
    /// Requested catalog entry.
    pub entry: u32,
    /// Placement key (tenant x entry mixed) fed to the ring.
    pub key: u64,
}

/// The seeded arrival generator: thinned exponential inter-arrivals (exact
/// Poisson at the envelope rate), Zipf draws for tenant and entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    cfg: TrafficConfig,
    tenants: ZipfSampler,
    entries: ZipfSampler,
    rng: Xoshiro256StarStar,
    /// Current stream time in ps (f64 accumulation is exact to ~1 ps for
    /// campaigns up to hours of simulated time).
    t_ps: f64,
    generated: u64,
    /// Lookahead arrival that fell past the last epoch boundary.
    pending: Option<Arrival>,
}

impl TrafficModel {
    /// A model drawing from `seed` over `tenants x entries`.
    pub fn new(cfg: TrafficConfig, tenants: u32, entries: u32, seed: u64) -> Self {
        assert!(cfg.target_requests > 0, "traffic needs a positive target");
        assert!(
            cfg.duration.as_ps() > 0,
            "traffic needs a positive duration"
        );
        TrafficModel {
            tenants: ZipfSampler::new(tenants, cfg.tenant_zipf_milli),
            entries: ZipfSampler::new(entries, cfg.entry_zipf_milli),
            rng: Xoshiro256StarStar::seed_from_u64(seed ^ 0x5452_4146_4649_4331),
            cfg,
            t_ps: 0.0,
            generated: 0,
            pending: None,
        }
    }

    /// Triangular diurnal multiplier in `[1-a, 1+a]` at stream time `t_ps`.
    fn envelope(&self, t_ps: f64) -> f64 {
        let a = self.cfg.burst_amplitude_permille as f64 / 1000.0;
        if a == 0.0 {
            return 1.0;
        }
        let phase = t_ps / self.cfg.burst_period.as_ps() as f64;
        let frac = phase - phase.floor();
        let tri = if frac < 0.5 {
            4.0 * frac - 1.0
        } else {
            3.0 - 4.0 * frac
        };
        1.0 + a * tri
    }

    fn draw(&mut self) -> Option<Arrival> {
        if self.generated >= self.cfg.target_requests {
            return None;
        }
        let base_per_ps = self.cfg.target_requests as f64 / self.cfg.duration.as_ps() as f64;
        let a = self.cfg.burst_amplitude_permille as f64 / 1000.0;
        let peak = base_per_ps * (1.0 + a);
        loop {
            // Exponential inter-arrival at the peak rate...
            let u = self.rng.next_f64();
            self.t_ps += -det_ln(1.0 - u) / peak;
            // ...thinned against the envelope: an exact non-homogeneous
            // Poisson process at rate base*envelope(t).
            let accept = self.rng.next_f64() * (1.0 + a);
            if accept < self.envelope(self.t_ps) {
                break;
            }
        }
        self.generated += 1;
        let tenant = self.tenants.sample(self.rng.next_f64());
        let entry = self.entries.sample(self.rng.next_f64());
        Some(Arrival {
            at_ps: self.t_ps as u64,
            tenant,
            entry,
            key: mix64((u64::from(tenant) << 32) ^ u64::from(entry) ^ 0x004b_4559),
        })
    }

    /// Appends every arrival strictly before `end_ps` to `out`, in time
    /// order. Returns `false` once the stream is exhausted *and* no
    /// lookahead remains.
    pub fn fill_until(&mut self, end_ps: u64, out: &mut Vec<Arrival>) -> bool {
        if let Some(p) = self.pending {
            if p.at_ps >= end_ps {
                return true;
            }
            out.push(p);
            self.pending = None;
        }
        loop {
            match self.draw() {
                None => return false,
                Some(arr) if arr.at_ps >= end_ps => {
                    self.pending = Some(arr);
                    return true;
                }
                Some(arr) => out.push(arr),
            }
        }
    }

    /// True when every one of `target_requests` arrivals has been handed
    /// out (no pending lookahead either).
    pub fn exhausted(&self) -> bool {
        self.generated >= self.cfg.target_requests && self.pending.is_none()
    }

    /// Arrivals generated so far (including a pending lookahead).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Checkpoint state: `(rng_state, t_ps_bits, generated, pending)`.
    pub fn raw_parts(&self) -> ([u64; 4], u64, u64, Option<Arrival>) {
        (
            self.rng.state(),
            self.t_ps.to_bits(),
            self.generated,
            self.pending,
        )
    }

    /// Rebuilds a model from config plus [`TrafficModel::raw_parts`] state.
    pub fn from_raw_parts(
        cfg: TrafficConfig,
        tenants: u32,
        entries: u32,
        rng_state: [u64; 4],
        t_ps_bits: u64,
        generated: u64,
        pending: Option<Arrival>,
    ) -> Self {
        TrafficModel {
            tenants: ZipfSampler::new(tenants, cfg.tenant_zipf_milli),
            entries: ZipfSampler::new(entries, cfg.entry_zipf_milli),
            rng: Xoshiro256StarStar::from_state(rng_state),
            cfg,
            t_ps: f64::from_bits(t_ps_bits),
            generated,
            pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_ln_matches_std() {
        let mut worst: f64 = 0.0;
        for i in 1..=2000 {
            let x = i as f64 * 0.37 + 1e-4;
            let rel = ((det_ln(x) - x.ln()) / x.ln().abs().max(1e-300)).abs();
            worst = worst.max(rel);
        }
        for x in [1e-300, 1e-12, 0.5, 1.0 - 1e-9, 1.0 + 1e-9, 2.0, 1e18] {
            let d = det_ln(x);
            let s = x.ln();
            assert!(
                (d - s).abs() <= 1e-12 * s.abs().max(1.0),
                "ln({x}): {d} vs {s}"
            );
        }
        assert!(worst < 1e-12, "worst relative error {worst}");
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn det_exp_matches_std() {
        for i in -600..=600 {
            let x = i as f64 * 0.731;
            let d = det_exp(x);
            let s = x.exp();
            let rel = ((d - s) / s).abs();
            assert!(rel < 1e-12, "exp({x}): {d} vs {s} (rel {rel})");
        }
        assert_eq!(det_exp(0.0), 1.0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(100, 1000);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(rng.next_f64()) as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 must dominate rank 50");
        assert!(counts.iter().sum::<u64>() == 20_000);
        // u -> 1 must stay in range.
        assert!(z.sample(1.0 - 1e-16) < 100);
    }

    #[test]
    fn traffic_is_count_exact_ordered_and_replayable() {
        let cfg = TrafficConfig {
            target_requests: 5000,
            duration: SimDuration::from_millis(50),
            ..TrafficConfig::default()
        };
        let mut m1 = TrafficModel::new(cfg.clone(), 50, 16, 42);
        let mut all = Vec::new();
        let epoch = SimDuration::from_millis(5).as_ps();
        let mut end = epoch;
        while m1.fill_until(end, &mut all) {
            end += epoch;
        }
        assert_eq!(all.len(), 5000, "count-exact");
        assert!(
            all.windows(2).all(|w| w[0].at_ps <= w[1].at_ps),
            "time-ordered"
        );
        assert!(all.iter().all(|a| a.tenant < 50 && a.entry < 16));
        // Same seed, different epoching: identical stream.
        let mut m2 = TrafficModel::new(cfg, 50, 16, 42);
        let mut all2 = Vec::new();
        m2.fill_until(u64::MAX, &mut all2);
        assert_eq!(all, all2);
        assert!(m1.exhausted() && m2.exhausted());
    }

    #[test]
    fn traffic_checkpoint_round_trip_is_exact() {
        let cfg = TrafficConfig {
            target_requests: 2000,
            duration: SimDuration::from_millis(20),
            ..TrafficConfig::default()
        };
        let mut whole = TrafficModel::new(cfg.clone(), 20, 8, 9);
        let mut expect = Vec::new();
        whole.fill_until(u64::MAX, &mut expect);

        let mut front = TrafficModel::new(cfg.clone(), 20, 8, 9);
        let mut got = Vec::new();
        front.fill_until(SimDuration::from_millis(7).as_ps(), &mut got);
        let (rng, t, n, pending) = front.raw_parts();
        let mut back = TrafficModel::from_raw_parts(cfg, 20, 8, rng, t, n, pending);
        back.fill_until(u64::MAX, &mut got);
        assert_eq!(got, expect);
    }
}
