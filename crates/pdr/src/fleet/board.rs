//! Fleet boards and the calibration bridge to the cycle-level simulator.
//!
//! A fleet of a thousand boards serving a million requests cannot run a
//! thousand cycle-level [`ZynqPdrSystem`]s — but it must not invent service
//! times either. The bridge is **calibration**: per campaign, one real
//! system (built from the campaign's [`SystemConfig`], so the configured
//! [`EngineStrategy`](pdr_sim_core::EngineStrategy) kernel is what actually
//! runs) executes a managed reconfiguration per catalog size class through
//! [`RecoveryManager::reconfigure`], and the *measured* picosecond costs —
//! service transfer, scrub re-apply, catalog fetch of the compressed image
//! — become the exact integer service kernels every board replays. Engine
//! invariance of the fleet is therefore inherited from the PR 6 kernel
//! contract rather than asserted by fiat, and
//! `tests/fleet.rs::board_service_time_matches_cycle_level_system` pins a
//! board's latency to the direct cycle-level measurement.
//!
//! Boards themselves are plain deterministic state machines: a FIFO of
//! in-flight completions, an LRU slice of the replicated catalog cache, a
//! per-board fault stream, and the quarantine strike counter mirroring the
//! `RecoveryManager` ladder semantics (consecutive scrub failures).

use pdr_bitstream_codec::compress_bitstream;
use pdr_sim_core::rng::Xoshiro256StarStar;
use pdr_sim_core::Frequency;

use crate::recovery::{RecoveryConfig, RecoveryManager};
use crate::scheduler::FetchModel;
use crate::system::{SystemConfig, ZynqPdrSystem};

use std::collections::VecDeque;

/// Calibrated picosecond costs for one bitstream size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClass {
    /// Raw bitstream bytes (what crosses the ICAP).
    pub raw_bytes: u64,
    /// Compressed (`PDRC`) bytes — what the catalog stores and fetches.
    pub stored_bytes: u64,
    /// Managed reconfiguration at the service frequency, measured on the
    /// cycle-level system.
    pub transfer_ps: u64,
    /// Golden re-apply at the scrub frequency, measured likewise.
    pub scrub_ps: u64,
    /// Catalog fetch of the stored image through the [`FetchModel`].
    pub fetch_ps: u64,
}

/// The per-campaign calibration table: one [`ServiceClass`] per size class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Calibration {
    /// Calibrated classes, indexed by `entry % classes.len()`.
    pub classes: Vec<ServiceClass>,
    /// Service-path reconfiguration frequency, MHz.
    pub service_mhz: u64,
    /// Scrub frequency, MHz.
    pub scrub_mhz: u64,
}

impl Calibration {
    /// Runs the calibration campaign on a real system built from `system`.
    /// Deterministic: same config, same table — under either engine
    /// strategy (the PR 6 kernel contract).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero or a calibration reconfiguration fails
    /// (both frequencies are within the safe envelope by construction).
    pub fn measure(
        system: &SystemConfig,
        fetch: &FetchModel,
        classes: u32,
        service_mhz: u64,
        scrub_mhz: u64,
    ) -> Calibration {
        assert!(classes > 0, "calibration needs at least one size class");
        let mut sys = ZynqPdrSystem::new(system.clone());
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let partitions = system.floorplan.partitions().len();
        let mut table = Vec::with_capacity(classes as usize);
        for c in 0..classes {
            let rp = c as usize % partitions;
            let bs = sys.make_partial_bitstream(rp, c + 1);
            let stored_bytes = compress_bitstream(&bs).bytes.len() as u64;
            let raw_bytes = bs.len() as u64;

            let t0 = sys.now();
            let out = mgr.reconfigure(&mut sys, None, rp, &bs, Frequency::from_mhz(service_mhz));
            assert!(
                out.error.is_none(),
                "calibration reconfigure failed for class {c}: {:?}",
                out.error
            );
            let transfer_ps = sys.now().duration_since(t0).as_ps();

            let t1 = sys.now();
            let out = mgr.reconfigure(&mut sys, None, rp, &bs, Frequency::from_mhz(scrub_mhz));
            assert!(
                out.error.is_none(),
                "calibration scrub failed for class {c}"
            );
            let scrub_ps = sys.now().duration_since(t1).as_ps();

            table.push(ServiceClass {
                raw_bytes,
                stored_bytes,
                transfer_ps,
                scrub_ps,
                fetch_ps: fetch.fetch_time(stored_bytes).as_ps(),
            });
        }
        Calibration {
            classes: table,
            service_mhz,
            scrub_mhz,
        }
    }

    /// The class serving catalog entry `entry`.
    pub fn class_of(&self, entry: u32) -> &ServiceClass {
        &self.classes[entry as usize % self.classes.len()]
    }
}

/// One catalog entry as the fleet control plane sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetCatalogEntry {
    /// Size class index into [`Calibration::classes`].
    pub class: u32,
    /// Current version; bumped by control-plane invalidation.
    pub version: u32,
}

/// Builds the fleet catalog over `entries` entries and `classes` classes.
pub fn build_catalog(entries: u32, classes: u32) -> Vec<FleetCatalogEntry> {
    (0..entries)
        .map(|e| FleetCatalogEntry {
            class: e % classes,
            version: 0,
        })
        .collect()
}

/// A resident copy in a board's replicated catalog cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCopy {
    /// Catalog entry id.
    pub entry: u32,
    /// Version the copy was fetched at.
    pub version: u32,
    /// Stored bytes charged against the cache budget.
    pub stored_bytes: u64,
}

/// What one dispatch did — folded into the shard delta by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// When service started (>= arrival; queueing delay is start-arrival).
    pub start_ps: u64,
    /// When the request left the board.
    pub completion_ps: u64,
    /// Catalog cache hit?
    pub hit: bool,
    /// Copies evicted to make room.
    pub evictions: u32,
    /// CRC failure on the first transfer attempt?
    pub crc_failed: bool,
    /// A scrub (golden re-apply + retry) ran?
    pub scrubbed: bool,
    /// The scrub itself failed — the request is lost and the board takes a
    /// quarantine strike.
    pub scrub_failed: bool,
}

/// One simulated board: deterministic queue/cache/fault state driving the
/// calibrated service kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Board {
    /// Fleet-wide board id.
    pub id: u32,
    /// Per-board fault stream (seeded from the campaign seed and id).
    pub rng: Xoshiro256StarStar,
    /// Per-request CRC failure probability on this board.
    pub fault_rate: f64,
    /// When the board next goes idle, ps.
    pub busy_until_ps: u64,
    /// Completion instants of admitted, not-yet-finished requests (FIFO).
    pub inflight: VecDeque<u64>,
    /// Replicated catalog cache, LRU order (most recent last).
    pub cache: Vec<CachedCopy>,
    /// Bytes currently charged against the cache budget.
    pub cache_bytes: u64,
    /// Consecutive scrub failures (the quarantine ladder).
    pub scrub_strikes: u32,
    /// Quarantined by the control plane?
    pub quarantined: bool,
}

impl Board {
    /// A fresh board.
    pub fn new(id: u32, seed: u64, fault_rate: f64) -> Board {
        Board {
            id,
            rng: Xoshiro256StarStar::seed_from_u64(seed ^ 0x424f_4152_4400_0000 ^ u64::from(id)),
            fault_rate,
            busy_until_ps: 0,
            inflight: VecDeque::new(),
            cache: Vec::new(),
            cache_bytes: 0,
            scrub_strikes: 0,
            quarantined: false,
        }
    }

    /// Drops completions at or before `now_ps` and returns the remaining
    /// backlog (queued or in service).
    pub fn prune(&mut self, now_ps: u64) -> usize {
        while matches!(self.inflight.front(), Some(&c) if c <= now_ps) {
            self.inflight.pop_front();
        }
        self.inflight.len()
    }

    fn cache_lookup(&mut self, entry: u32, version: u32) -> bool {
        if let Some(pos) = self.cache.iter().position(|c| c.entry == entry) {
            let copy = self.cache.remove(pos);
            if copy.version == version {
                self.cache.push(copy); // refresh LRU position
                return true;
            }
            self.cache_bytes -= copy.stored_bytes; // stale: drop and refetch
        }
        false
    }

    fn cache_insert(&mut self, copy: CachedCopy, capacity_bytes: u64) -> u32 {
        if copy.stored_bytes > capacity_bytes {
            return 0; // an image larger than the budget is never cached
        }
        let mut evictions = 0;
        while self.cache_bytes + copy.stored_bytes > capacity_bytes {
            let evicted = self.cache.remove(0);
            self.cache_bytes -= evicted.stored_bytes;
            evictions += 1;
        }
        self.cache_bytes += copy.stored_bytes;
        self.cache.push(copy);
        evictions
    }

    /// Drops a cached copy of `entry` (control-plane invalidation). Returns
    /// whether a copy was resident.
    pub fn invalidate(&mut self, entry: u32) -> bool {
        if let Some(pos) = self.cache.iter().position(|c| c.entry == entry) {
            let copy = self.cache.remove(pos);
            self.cache_bytes -= copy.stored_bytes;
            return true;
        }
        false
    }

    /// Warms `copy` into the cache (control-plane re-replication after a
    /// quarantine). Returns evictions performed.
    pub fn warm(&mut self, copy: CachedCopy, capacity_bytes: u64) -> u32 {
        if self.cache.iter().any(|c| c.entry == copy.entry) {
            return 0;
        }
        self.cache_insert(copy, capacity_bytes)
    }

    /// Serves one request for `entry` arriving at `arr_ps`: cache lookup
    /// (miss pays the calibrated fetch), the calibrated transfer, and the
    /// fault ladder (CRC failure -> scrub + retry; scrub failure -> lost
    /// request + strike). Advances the board clock and in-flight FIFO.
    pub fn dispatch(
        &mut self,
        arr_ps: u64,
        entry: u32,
        version: u32,
        class: &ServiceClass,
        cache_capacity_bytes: u64,
    ) -> DispatchOutcome {
        let start_ps = self.busy_until_ps.max(arr_ps);
        let hit = self.cache_lookup(entry, version);
        let mut evictions = 0;
        let mut service_ps = class.transfer_ps;
        if !hit {
            service_ps += class.fetch_ps;
            evictions = self.cache_insert(
                CachedCopy {
                    entry,
                    version,
                    stored_bytes: class.stored_bytes,
                },
                cache_capacity_bytes,
            );
        }
        let crc_failed = self.rng.next_f64() < self.fault_rate;
        let mut scrubbed = false;
        let mut scrub_failed = false;
        if crc_failed {
            scrubbed = true;
            service_ps += class.scrub_ps + class.transfer_ps;
            scrub_failed = self.rng.next_f64() < self.fault_rate;
        }
        if scrub_failed {
            self.scrub_strikes += 1;
        } else {
            self.scrub_strikes = 0;
        }
        let completion_ps = start_ps + service_ps;
        self.busy_until_ps = completion_ps;
        self.inflight.push_back(completion_ps);
        DispatchOutcome {
            start_ps,
            completion_ps,
            hit,
            evictions,
            crc_failed,
            scrubbed,
            scrub_failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> ServiceClass {
        ServiceClass {
            raw_bytes: 4096,
            stored_bytes: 1024,
            transfer_ps: 1_000_000,
            scrub_ps: 2_000_000,
            fetch_ps: 500_000,
        }
    }

    #[test]
    fn dispatch_hits_after_miss_and_respects_fifo() {
        let mut b = Board::new(0, 1, 0.0);
        let c = class();
        let first = b.dispatch(0, 7, 0, &c, 10_000);
        assert!(!first.hit);
        assert_eq!(first.completion_ps, c.transfer_ps + c.fetch_ps);
        let second = b.dispatch(0, 7, 0, &c, 10_000);
        assert!(second.hit, "second request for the same entry hits");
        assert_eq!(second.start_ps, first.completion_ps, "FIFO service");
        assert_eq!(second.completion_ps - second.start_ps, c.transfer_ps);
        assert_eq!(b.prune(first.completion_ps), 1);
        assert_eq!(b.prune(second.completion_ps), 0);
    }

    #[test]
    fn stale_version_misses_and_refetches() {
        let mut b = Board::new(0, 1, 0.0);
        let c = class();
        b.dispatch(0, 7, 0, &c, 10_000);
        let stale = b.dispatch(0, 7, 1, &c, 10_000);
        assert!(!stale.hit, "version bump invalidates the resident copy");
        let fresh = b.dispatch(0, 7, 1, &c, 10_000);
        assert!(fresh.hit);
    }

    #[test]
    fn lru_eviction_charges_stored_bytes() {
        let mut b = Board::new(0, 1, 0.0);
        let c = class();
        let out = b.dispatch(0, 0, 0, &c, 2_500);
        assert_eq!(out.evictions, 0);
        b.dispatch(0, 1, 0, &c, 2_500);
        // Third distinct entry: budget 2500 holds two 1024-byte copies.
        let out = b.dispatch(0, 2, 0, &c, 2_500);
        assert_eq!(out.evictions, 1);
        assert!(b.invalidate(2));
        assert!(!b.invalidate(0), "entry 0 was the LRU victim");
        assert_eq!(b.cache_bytes, 1024);
    }

    #[test]
    fn certain_faults_walk_the_strike_ladder() {
        let mut b = Board::new(3, 9, 1.0);
        let c = class();
        let out = b.dispatch(0, 0, 0, &c, 10_000);
        assert!(out.crc_failed && out.scrubbed && out.scrub_failed);
        assert_eq!(b.scrub_strikes, 1);
        assert_eq!(
            out.completion_ps,
            c.fetch_ps + c.transfer_ps + c.scrub_ps + c.transfer_ps
        );
        b.dispatch(out.completion_ps, 0, 0, &c, 10_000);
        assert_eq!(b.scrub_strikes, 2);
        // A healthy board resets the ladder.
        let mut ok = Board::new(4, 9, 0.0);
        ok.scrub_strikes = 1;
        let out = ok.dispatch(0, 0, 0, &c, 10_000);
        assert!(!out.crc_failed);
        assert_eq!(ok.scrub_strikes, 0);
    }
}
