//! Fleet-scale PDR-as-a-service control plane.
//!
//! Turns the single-board simulator into a control plane over N simulated
//! boards: a consistent-hash [`PlacementRing`] routes Zipf-skewed tenant
//! traffic ([`TrafficModel`]) onto boards whose service costs are
//! *calibrated* on the real cycle-level system ([`Calibration`]); boards
//! cache the compressed catalog ([`Board`]), steal work within their
//! shard, and walk a quarantine ladder whose events propagate to the
//! control plane at epoch barriers — draining the board from the ring and
//! optionally re-replicating its hot entries.
//!
//! # Determinism invariants (see `docs/FLEET.md`)
//!
//! The merged [`FleetReport`] is **byte-identical** for every
//! `PDR_THREADS` value and both `PDR_ENGINE` strategies, and a campaign
//! killed at any epoch and resumed from its checkpoint finishes with the
//! same bytes. The construction:
//!
//! * the shard count is a config knob, *never* derived from the thread
//!   count — threads only decide which worker executes a shard;
//! * arrivals are generated serially from one RNG stream and routed
//!   before the fan-out; each shard's epoch step is a pure function of
//!   (shard boards, its arrivals, catalog, calibration);
//! * shard deltas are merged in shard-index order on the committing
//!   thread ([`ParallelExecutor::map`]'s ordered-commit contract), and
//!   cross-shard effects (quarantine, re-replication, invalidation) apply
//!   only at the barrier;
//! * engine invariance is inherited: the only component that touches the
//!   [`EngineStrategy`](pdr_sim_core::EngineStrategy) kernel is the
//!   calibration pass, whose observables are byte-identical under both
//!   engines by the PR 6 contract;
//! * no libm transcendentals anywhere near report bytes
//!   ([`traffic::det_ln`]/[`traffic::det_exp`],
//!   bit-pattern histogram bins in
//!   [`pdr_sim_core::stats::BoundedQuantiles`]) — the
//!   committed `BENCH_fleet.json` must reproduce across hosts.

pub mod board;
pub mod ring;
pub mod traffic;

pub use board::{Board, CachedCopy, Calibration, DispatchOutcome, FleetCatalogEntry, ServiceClass};
pub use ring::{mix64, PlacementRing};
pub use traffic::{Arrival, TrafficConfig, TrafficModel, ZipfSampler};

use pdr_sim_core::json::{Json, JsonError, ToJson};
use pdr_sim_core::rng::Xoshiro256StarStar;
use pdr_sim_core::stats::{BoundedQuantiles, OnlineStats};
use pdr_sim_core::{impl_json_struct, SimDuration};

use crate::campaign::{ParallelExecutor, StatsSummary};
use crate::scheduler::FetchModel;
use crate::snapshot;
use crate::system::SystemConfig;

use board::build_catalog;

/// Exact-mode capacity of the fleet latency sketches: small campaigns (and
/// every per-shard epoch delta) stay exact; million-request campaigns spill
/// into the fixed histogram and RSS stays flat.
const QUANTILE_LIMIT: usize = 4096;

/// Fleet campaign configuration. `Default` is the CI-sized smoke fleet;
/// [`FleetConfig::full_scale`] is the ISSUE's ≥1000-board, ≥10⁶-request
/// campaign.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated boards behind the control plane.
    pub boards: u32,
    /// Shards the boards are split into (contiguous ranges). Fixed by
    /// config — never derived from the thread count.
    pub shards: u32,
    /// Virtual nodes per board on the placement ring.
    pub vnodes_per_board: u32,
    /// Tenant population.
    pub tenants: u32,
    /// Catalog entries (distinct bitstream images).
    pub catalog_entries: u32,
    /// Calibrated size classes (entry -> class by modulo).
    pub size_classes: u32,
    /// Campaign seed: traffic, per-board fault streams, bad-board draw.
    pub seed: u64,
    /// Traffic model knobs.
    pub traffic: TrafficConfig,
    /// Epoch barrier interval.
    pub epoch: SimDuration,
    /// Per-board admission cap (queued + in-service requests).
    pub queue_capacity: u32,
    /// Backlog at which an arrival tries to steal to a sibling board.
    pub steal_threshold: u32,
    /// Per-board replicated-catalog cache budget, stored (compressed) bytes.
    pub cache_capacity_bytes: u64,
    /// Catalog fetch path for cache misses.
    pub fetch: FetchModel,
    /// Service-path reconfiguration frequency, MHz (safe envelope).
    pub service_mhz: u64,
    /// Scrub frequency, MHz.
    pub scrub_mhz: u64,
    /// Per-request CRC failure probability on a healthy board.
    pub base_fault_rate: f64,
    /// Permille of boards drawn "bad" at init.
    pub bad_board_permille: u32,
    /// Per-request CRC failure probability on a bad board.
    pub bad_fault_rate: f64,
    /// Consecutive scrub failures before the control plane quarantines.
    pub quarantine_strikes: u32,
    /// Re-replicate a quarantined board's resident entries to their ring
    /// homes?
    pub replicate_on_quarantine: bool,
    /// Bump one catalog entry's version every this many epochs (0 = never).
    pub invalidate_every_epochs: u64,
    /// The cycle-level system calibration runs on. Its `strategy` field is
    /// how `PDR_ENGINE` reaches the fleet.
    pub system: SystemConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            boards: 16,
            shards: 4,
            vnodes_per_board: 128,
            tenants: 500,
            catalog_entries: 96,
            size_classes: 6,
            seed: 2017,
            traffic: TrafficConfig {
                duration: SimDuration::from_millis(2_500),
                ..TrafficConfig::default()
            },
            epoch: SimDuration::from_millis(50),
            queue_capacity: 64,
            steal_threshold: 6,
            cache_capacity_bytes: 256 * 1024,
            fetch: FetchModel {
                bandwidth_bytes_per_s: 19_000_000,
                per_fetch_overhead: SimDuration::from_micros(200),
            },
            service_mhz: 200,
            scrub_mhz: 100,
            base_fault_rate: 0.002,
            bad_board_permille: 0,
            bad_fault_rate: 0.25,
            quarantine_strikes: 2,
            replicate_on_quarantine: true,
            invalidate_every_epochs: 4,
            system: SystemConfig::fast_quad(),
        }
    }
}

impl FleetConfig {
    /// The ISSUE's acceptance-scale campaign: ≥1000 boards, ≥10⁶ requests,
    /// a sprinkling of bad boards so quarantine propagation actually fires.
    pub fn full_scale() -> Self {
        FleetConfig {
            boards: 1000,
            shards: 16,
            tenants: 10_000,
            catalog_entries: 512,
            traffic: TrafficConfig {
                target_requests: 1_010_000,
                duration: SimDuration::from_millis(2_500),
                ..TrafficConfig::default()
            },
            epoch: SimDuration::from_millis(100),
            bad_board_permille: 5,
            ..FleetConfig::default()
        }
    }

    /// Effective shard count (clamped into `1..=boards`).
    pub fn effective_shards(&self) -> u32 {
        self.shards.clamp(1, self.boards.max(1))
    }

    /// Boards per shard (contiguous ranges; the last shard may be short).
    pub fn boards_per_shard(&self) -> u32 {
        self.boards.div_ceil(self.effective_shards())
    }
}

/// The merged fleet campaign report. Every field is deterministic
/// simulation output — no wall-clock, no host state — and every float is
/// finite or `None` (the repo-wide JSON contract).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Boards in the fleet.
    pub boards: u64,
    /// Shards the epoch step fanned over.
    pub shards: u64,
    /// Epoch barriers executed.
    pub epochs: u64,
    /// Requests entering the control plane.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to scrub failures.
    pub failed: u64,
    /// Requests refused admission (full queue or no healthy board).
    pub rejected: u64,
    /// Requests re-routed off a quarantined board mid-epoch.
    pub rerouted: u64,
    /// Requests stolen to a less-loaded sibling board.
    pub stolen: u64,
    /// First-attempt CRC failures.
    pub crc_failures: u64,
    /// Scrub (golden re-apply + retry) passes.
    pub scrubs: u64,
    /// Scrubs that themselves failed.
    pub scrub_failures: u64,
    /// Boards quarantined and drained from the ring.
    pub boards_quarantined: u64,
    /// Hot entries re-replicated to ring homes after quarantines.
    pub replicated_entries: u64,
    /// Control-plane invalidation rounds.
    pub invalidations: u64,
    /// Resident copies dropped by invalidations.
    pub invalidated_copies: u64,
    /// Replicated-catalog cache hits (fleet-wide).
    pub cache_hits: u64,
    /// Cache misses (paid the calibrated fetch).
    pub cache_misses: u64,
    /// LRU evictions across all boards.
    pub cache_evictions: u64,
    /// Fleet-wide hit rate, `None` when no lookups happened.
    pub cache_hit_rate: Option<f64>,
    /// completed / submitted, `None` when nothing was submitted.
    pub availability: Option<f64>,
    /// End-to-end sojourn (arrival to completion), µs.
    pub latency_us: StatsSummary,
    /// Queueing delay (arrival to service start), µs.
    pub queue_wait_us: StatsSummary,
    /// Median sojourn, µs (bounded-memory sketch; `None` when empty).
    pub latency_p50_us: Option<f64>,
    /// 99th-percentile sojourn, µs.
    pub latency_p99_us: Option<f64>,
    /// First arrival to last completion, µs.
    pub makespan_us: f64,
    /// Completed requests per simulated second, `None` for an empty run.
    pub throughput_rps: Option<f64>,
}

impl_json_struct!(FleetReport {
    boards,
    shards,
    epochs,
    submitted,
    completed,
    failed,
    rejected,
    rerouted,
    stolen,
    crc_failures,
    scrubs,
    scrub_failures,
    boards_quarantined,
    replicated_entries,
    invalidations,
    invalidated_copies,
    cache_hits,
    cache_misses,
    cache_evictions,
    cache_hit_rate,
    availability,
    latency_us,
    queue_wait_us,
    latency_p50_us,
    latency_p99_us,
    makespan_us,
    throughput_rps,
});

/// Cumulative campaign counters + bounded-memory latency accumulators.
#[derive(Debug, Clone, PartialEq)]
struct FleetStats {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    rerouted: u64,
    stolen: u64,
    crc_failures: u64,
    scrubs: u64,
    scrub_failures: u64,
    boards_quarantined: u64,
    replicated_entries: u64,
    invalidations: u64,
    invalidated_copies: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    latency: OnlineStats,
    queue_wait: OnlineStats,
    sketch: BoundedQuantiles,
    max_completion_ps: u64,
}

impl FleetStats {
    fn new() -> Self {
        FleetStats {
            submitted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            rerouted: 0,
            stolen: 0,
            crc_failures: 0,
            scrubs: 0,
            scrub_failures: 0,
            boards_quarantined: 0,
            replicated_entries: 0,
            invalidations: 0,
            invalidated_copies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            latency: OnlineStats::new(),
            queue_wait: OnlineStats::new(),
            sketch: BoundedQuantiles::new(QUANTILE_LIMIT),
            max_completion_ps: 0,
        }
    }
}

/// One shard's epoch outcome, merged in shard order at the barrier.
struct ShardDelta {
    completed: u64,
    failed: u64,
    rejected: u64,
    rerouted: u64,
    stolen: u64,
    crc_failures: u64,
    scrubs: u64,
    scrub_failures: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    latency: OnlineStats,
    queue_wait: OnlineStats,
    sketch: BoundedQuantiles,
    max_completion_ps: u64,
    /// Boards newly quarantined this epoch, with their resident cache at
    /// the moment of quarantine (for re-replication).
    quarantines: Vec<(u32, Vec<CachedCopy>)>,
}

/// Pure shard epoch step: processes `arrivals` (time-ordered, already
/// routed to boards in this shard) against the shard's board slice.
fn process_shard(
    boards: &mut [Board],
    base_id: u32,
    arrivals: &[(Arrival, u32)],
    catalog: &[FleetCatalogEntry],
    calibration: &Calibration,
    cfg: &FleetConfig,
) -> ShardDelta {
    let mut d = ShardDelta {
        completed: 0,
        failed: 0,
        rejected: 0,
        rerouted: 0,
        stolen: 0,
        crc_failures: 0,
        scrubs: 0,
        scrub_failures: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        latency: OnlineStats::new(),
        queue_wait: OnlineStats::new(),
        sketch: BoundedQuantiles::new(QUANTILE_LIMIT),
        max_completion_ps: 0,
        quarantines: Vec::new(),
    };
    for &(arr, board_id) in arrivals {
        let mut bi = (board_id - base_id) as usize;
        // Least-backlog healthy sibling (deterministic tie-break: lowest
        // index) — the fallback for both re-routing and work-stealing.
        let least_loaded =
            |boards: &mut [Board], except: Option<usize>| -> Option<(usize, usize)> {
                let mut best: Option<(usize, usize)> = None;
                for (j, b) in boards.iter_mut().enumerate() {
                    if b.quarantined || Some(j) == except {
                        continue;
                    }
                    let depth = b.prune(arr.at_ps);
                    if best.is_none_or(|(_, bd)| depth < bd) {
                        best = Some((j, depth));
                    }
                }
                best
            };
        if boards[bi].quarantined {
            // Mid-epoch the ring still names this board (membership changes
            // only at barriers); the shard's admission layer re-routes.
            match least_loaded(boards, None) {
                Some((j, _)) => {
                    bi = j;
                    d.rerouted += 1;
                }
                None => {
                    d.rejected += 1;
                    continue;
                }
            }
        } else {
            let backlog = boards[bi].prune(arr.at_ps);
            if backlog >= cfg.steal_threshold as usize {
                if let Some((j, depth)) = least_loaded(boards, Some(bi)) {
                    if depth + 1 < backlog {
                        bi = j;
                        d.stolen += 1;
                    }
                }
            }
        }
        if boards[bi].prune(arr.at_ps) >= cfg.queue_capacity as usize {
            d.rejected += 1;
            continue;
        }
        let entry = &catalog[arr.entry as usize];
        let class = &calibration.classes[entry.class as usize];
        let out = boards[bi].dispatch(
            arr.at_ps,
            arr.entry,
            entry.version,
            class,
            cfg.cache_capacity_bytes,
        );
        if out.hit {
            d.cache_hits += 1;
        } else {
            d.cache_misses += 1;
        }
        d.cache_evictions += u64::from(out.evictions);
        if out.crc_failed {
            d.crc_failures += 1;
        }
        if out.scrubbed {
            d.scrubs += 1;
        }
        if out.scrub_failed {
            d.scrub_failures += 1;
            d.failed += 1;
        } else {
            d.completed += 1;
            let sojourn_us = (out.completion_ps - arr.at_ps) as f64 / 1e6;
            d.latency.push(sojourn_us);
            d.sketch.push(sojourn_us);
            d.queue_wait.push((out.start_ps - arr.at_ps) as f64 / 1e6);
        }
        d.max_completion_ps = d.max_completion_ps.max(out.completion_ps);
        if boards[bi].scrub_strikes >= cfg.quarantine_strikes && !boards[bi].quarantined {
            boards[bi].quarantined = true;
            d.quarantines
                .push((boards[bi].id, boards[bi].cache.clone()));
        }
    }
    d
}

/// Per-board fault rates drawn once from the campaign seed (bad boards are
/// a deterministic function of config, so resume can rebuild them).
fn fault_rates(cfg: &FleetConfig) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0x4241_445f_424f_4152);
    let p_bad = cfg.bad_board_permille as f64 / 1000.0;
    (0..cfg.boards)
        .map(|_| {
            if rng.next_f64() < p_bad {
                cfg.bad_fault_rate
            } else {
                cfg.base_fault_rate
            }
        })
        .collect()
}

/// A resumable fleet campaign. Drive with [`FleetRun::step_epoch`] or
/// [`FleetRun::run_to_end`]; checkpoint with [`FleetRun::checkpoint`] +
/// [`snapshot::save`]; resume with [`FleetRun::resume`].
pub struct FleetRun {
    config: FleetConfig,
    calibration: Calibration,
    catalog: Vec<FleetCatalogEntry>,
    ring: PlacementRing,
    /// Boards, shard-major: `shards[s]` owns ids `s*per .. (s+1)*per`.
    shards: Vec<Vec<Board>>,
    traffic: TrafficModel,
    epoch_idx: u64,
    finished: bool,
    stats: FleetStats,
    config_digest: u64,
}

impl FleetRun {
    /// Builds a fresh campaign: runs calibration on the cycle-level system,
    /// builds catalog, ring, boards and the traffic stream.
    pub fn new(config: FleetConfig) -> FleetRun {
        assert!(config.boards > 0, "fleet needs at least one board");
        assert!(config.epoch.as_ps() > 0, "fleet needs a positive epoch");
        let calibration = Calibration::measure(
            &config.system,
            &config.fetch,
            config.size_classes,
            config.service_mhz,
            config.scrub_mhz,
        );
        let catalog = build_catalog(config.catalog_entries, config.size_classes);
        let ring = PlacementRing::new(config.boards, config.vnodes_per_board);
        let rates = fault_rates(&config);
        let per = config.boards_per_shard();
        let shards = (0..config.effective_shards())
            .map(|s| {
                (s * per..((s + 1) * per).min(config.boards))
                    .map(|b| Board::new(b, config.seed, rates[b as usize]))
                    .collect()
            })
            .collect();
        let traffic = TrafficModel::new(
            config.traffic.clone(),
            config.tenants,
            config.catalog_entries,
            config.seed,
        );
        let config_digest = Self::digest_config(&config, &calibration);
        FleetRun {
            config,
            calibration,
            catalog,
            ring,
            shards,
            traffic,
            epoch_idx: 0,
            finished: false,
            stats: FleetStats::new(),
            config_digest,
        }
    }

    /// A digest binding a checkpoint to its config — including the
    /// calibration table, which transitively covers the [`SystemConfig`]
    /// (but *not* the engine strategy: both engines calibrate to identical
    /// tables, so checkpoints are engine-portable by construction).
    fn digest_config(cfg: &FleetConfig, calibration: &Calibration) -> u64 {
        let t = &cfg.traffic;
        let fields: Vec<u64> = [
            u64::from(cfg.boards),
            u64::from(cfg.shards),
            u64::from(cfg.vnodes_per_board),
            u64::from(cfg.tenants),
            u64::from(cfg.catalog_entries),
            u64::from(cfg.size_classes),
            cfg.seed,
            t.target_requests,
            t.duration.as_ps(),
            u64::from(t.burst_amplitude_permille),
            t.burst_period.as_ps(),
            u64::from(t.tenant_zipf_milli),
            u64::from(t.entry_zipf_milli),
            cfg.epoch.as_ps(),
            u64::from(cfg.queue_capacity),
            u64::from(cfg.steal_threshold),
            cfg.cache_capacity_bytes,
            cfg.fetch.bandwidth_bytes_per_s,
            cfg.fetch.per_fetch_overhead.as_ps(),
            cfg.service_mhz,
            cfg.scrub_mhz,
            cfg.base_fault_rate.to_bits(),
            u64::from(cfg.bad_board_permille),
            cfg.bad_fault_rate.to_bits(),
            u64::from(cfg.quarantine_strikes),
            u64::from(cfg.replicate_on_quarantine),
            cfg.invalidate_every_epochs,
        ]
        .into_iter()
        .chain(calibration.classes.iter().flat_map(|c| {
            [
                c.raw_bytes,
                c.stored_bytes,
                c.transfer_ps,
                c.scrub_ps,
                c.fetch_ps,
            ]
        }))
        .collect();
        let mut bytes = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            bytes.extend_from_slice(&f.to_le_bytes());
        }
        snapshot::fnv1a(&bytes)
    }

    /// The placement ring (current membership).
    pub fn ring(&self) -> &PlacementRing {
        &self.ring
    }

    /// The calibration table driving every board's service times.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Epoch barriers executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch_idx
    }

    /// True once the traffic stream is exhausted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Runs one epoch: serial arrival generation + routing, parallel shard
    /// step over `executor`, ordered merge, then the control-plane barrier
    /// (quarantine propagation, re-replication, invalidation). Returns
    /// `false` once the campaign is finished.
    pub fn step_epoch(&mut self, executor: &ParallelExecutor) -> bool {
        if self.finished {
            return false;
        }
        let end_ps = (self.epoch_idx + 1) * self.config.epoch.as_ps();
        let mut arrivals = Vec::new();
        let more = self.traffic.fill_until(end_ps, &mut arrivals);

        // Serial routing through the barrier-frozen ring.
        let shard_count = self.shards.len();
        let per = self.config.boards_per_shard();
        let mut buckets: Vec<Vec<(Arrival, u32)>> = (0..shard_count).map(|_| Vec::new()).collect();
        for a in arrivals {
            self.stats.submitted += 1;
            match self.ring.lookup(a.key) {
                None => self.stats.rejected += 1,
                Some(b) => buckets[(b / per) as usize].push((a, b)),
            }
        }

        // Parallel shard step; results committed in shard-index order.
        let shards_ref = &self.shards;
        let buckets_ref = &buckets;
        let catalog_ref = &self.catalog;
        let calib_ref = &self.calibration;
        let cfg_ref = &self.config;
        let results = executor.map(shard_count, |s| {
            let mut boards = shards_ref[s].clone();
            let delta = process_shard(
                &mut boards,
                s as u32 * per,
                &buckets_ref[s],
                catalog_ref,
                calib_ref,
                cfg_ref,
            );
            (boards, delta)
        });

        // Ordered merge at the barrier.
        let mut quarantines: Vec<(u32, Vec<CachedCopy>)> = Vec::new();
        for (s, (boards, d)) in results.into_iter().enumerate() {
            self.shards[s] = boards;
            self.stats.completed += d.completed;
            self.stats.failed += d.failed;
            self.stats.rejected += d.rejected;
            self.stats.rerouted += d.rerouted;
            self.stats.stolen += d.stolen;
            self.stats.crc_failures += d.crc_failures;
            self.stats.scrubs += d.scrubs;
            self.stats.scrub_failures += d.scrub_failures;
            self.stats.cache_hits += d.cache_hits;
            self.stats.cache_misses += d.cache_misses;
            self.stats.cache_evictions += d.cache_evictions;
            self.stats.latency.merge(&d.latency);
            self.stats.queue_wait.merge(&d.queue_wait);
            self.stats.sketch.merge(&d.sketch);
            self.stats.max_completion_ps = self.stats.max_completion_ps.max(d.max_completion_ps);
            quarantines.extend(d.quarantines);
        }

        // Quarantine propagation: drain from the ring, then re-replicate
        // the drained boards' resident entries to their ring homes.
        for &(board_id, _) in &quarantines {
            if self.ring.drain(board_id) {
                self.stats.boards_quarantined += 1;
            }
        }
        if self.config.replicate_on_quarantine {
            let budget = self.config.cache_capacity_bytes;
            for (_, residents) in &quarantines {
                for copy in residents {
                    let home_key = mix64(0x454e_5452_595f_484f ^ u64::from(copy.entry));
                    if let Some(home) = self.ring.lookup(home_key) {
                        let fresh = CachedCopy {
                            entry: copy.entry,
                            version: self.catalog[copy.entry as usize].version,
                            stored_bytes: copy.stored_bytes,
                        };
                        let per = self.config.boards_per_shard();
                        let b = &mut self.shards[(home / per) as usize][(home % per) as usize];
                        let evicted = b.warm(fresh, budget);
                        if evicted > 0 {
                            self.stats.cache_evictions += u64::from(evicted);
                        }
                        self.stats.replicated_entries += 1;
                    }
                }
            }
        }

        // Catalog invalidation: bump one entry's version; every resident
        // copy fleet-wide drops (the next request re-fetches).
        let k = self.config.invalidate_every_epochs;
        if k > 0 && (self.epoch_idx + 1).is_multiple_of(k) && !self.catalog.is_empty() {
            let victim =
                (mix64(self.config.seed ^ (self.epoch_idx + 1)) % self.catalog.len() as u64) as u32;
            self.catalog[victim as usize].version += 1;
            self.stats.invalidations += 1;
            for shard in &mut self.shards {
                for b in shard {
                    if b.invalidate(victim) {
                        self.stats.invalidated_copies += 1;
                    }
                }
            }
        }

        self.epoch_idx += 1;
        if !more {
            // Every admitted request already has a computed completion —
            // the fleet clock is lazy — so exhaustion ends the campaign.
            self.finished = true;
        }
        more
    }

    /// Steps until the traffic stream is exhausted.
    pub fn run_to_end(&mut self, executor: &ParallelExecutor) {
        while self.step_epoch(executor) {}
    }

    fn board_mut(&mut self, id: u32) -> &mut Board {
        let per = self.config.boards_per_shard();
        let s = (id / per) as usize;
        &mut self.shards[s][(id % per) as usize]
    }

    /// The merged fleet report.
    pub fn report(&self) -> FleetReport {
        let st = &self.stats;
        let ratio = |num: u64, den: u64| (den > 0).then(|| num as f64 / den as f64);
        let makespan_us = st.max_completion_ps as f64 / 1e6;
        FleetReport {
            boards: u64::from(self.config.boards),
            shards: self.shards.len() as u64,
            epochs: self.epoch_idx,
            submitted: st.submitted,
            completed: st.completed,
            failed: st.failed,
            rejected: st.rejected,
            rerouted: st.rerouted,
            stolen: st.stolen,
            crc_failures: st.crc_failures,
            scrubs: st.scrubs,
            scrub_failures: st.scrub_failures,
            boards_quarantined: st.boards_quarantined,
            replicated_entries: st.replicated_entries,
            invalidations: st.invalidations,
            invalidated_copies: st.invalidated_copies,
            cache_hits: st.cache_hits,
            cache_misses: st.cache_misses,
            cache_evictions: st.cache_evictions,
            cache_hit_rate: ratio(st.cache_hits, st.cache_hits + st.cache_misses),
            availability: ratio(st.completed, st.submitted),
            latency_us: StatsSummary::from(&st.latency),
            queue_wait_us: StatsSummary::from(&st.queue_wait),
            latency_p50_us: st.sketch.quantile(0.5),
            latency_p99_us: st.sketch.quantile(0.99),
            makespan_us,
            throughput_rps: (st.max_completion_ps > 0)
                .then(|| st.completed as f64 / (st.max_completion_ps as f64 / 1e12)),
        }
    }

    /// FNV-1a digest of the rendered report — the campaign's identity for
    /// equivalence checks.
    pub fn digest(&self) -> u64 {
        snapshot::fnv1a(self.report().to_json_string().as_bytes())
    }

    // ---- checkpoint / resume -------------------------------------------

    /// Serialises the full campaign state as a snapshot envelope of kind
    /// `"fleet"`. Pair with [`snapshot::save`] for atomic on-disk
    /// checkpoints.
    pub fn checkpoint(&self) -> Json {
        let rng_json = |s: [u64; 4]| Json::Arr(s.iter().map(|&w| Json::U64(w)).collect());
        let opt_f64 = |v: Option<f64>| v.map_or(Json::Null, Json::F64);
        let (t_rng, t_bits, t_gen, t_pending) = self.traffic.raw_parts();
        let traffic = Json::Obj(vec![
            ("rng".into(), rng_json(t_rng)),
            ("t_bits".into(), Json::U64(t_bits)),
            ("generated".into(), Json::U64(t_gen)),
            (
                "pending".into(),
                t_pending.map_or(Json::Null, |p| {
                    Json::Arr(vec![
                        Json::U64(p.at_ps),
                        Json::U64(u64::from(p.tenant)),
                        Json::U64(u64::from(p.entry)),
                        Json::U64(p.key),
                    ])
                }),
            ),
        ]);
        let versions = Json::Arr(
            self.catalog
                .iter()
                .map(|e| Json::U64(u64::from(e.version)))
                .collect(),
        );
        let st = &self.stats;
        let (lat_n, lat_mean, lat_m2, lat_min, lat_max) = st.latency.raw_parts();
        let (qw_n, qw_mean, qw_m2, qw_min, qw_max) = st.queue_wait.raw_parts();
        let (sk_count, sk_min, sk_max, sk_exact, sk_bins) = st.sketch.raw_parts();
        let stats = Json::Obj(vec![
            ("submitted".into(), Json::U64(st.submitted)),
            ("completed".into(), Json::U64(st.completed)),
            ("failed".into(), Json::U64(st.failed)),
            ("rejected".into(), Json::U64(st.rejected)),
            ("rerouted".into(), Json::U64(st.rerouted)),
            ("stolen".into(), Json::U64(st.stolen)),
            ("crc_failures".into(), Json::U64(st.crc_failures)),
            ("scrubs".into(), Json::U64(st.scrubs)),
            ("scrub_failures".into(), Json::U64(st.scrub_failures)),
            (
                "boards_quarantined".into(),
                Json::U64(st.boards_quarantined),
            ),
            (
                "replicated_entries".into(),
                Json::U64(st.replicated_entries),
            ),
            ("invalidations".into(), Json::U64(st.invalidations)),
            (
                "invalidated_copies".into(),
                Json::U64(st.invalidated_copies),
            ),
            ("cache_hits".into(), Json::U64(st.cache_hits)),
            ("cache_misses".into(), Json::U64(st.cache_misses)),
            ("cache_evictions".into(), Json::U64(st.cache_evictions)),
            (
                "latency".into(),
                Json::Arr(vec![
                    Json::U64(lat_n),
                    Json::U64(lat_mean.to_bits()),
                    Json::U64(lat_m2.to_bits()),
                    opt_f64(lat_min),
                    opt_f64(lat_max),
                ]),
            ),
            (
                "queue_wait".into(),
                Json::Arr(vec![
                    Json::U64(qw_n),
                    Json::U64(qw_mean.to_bits()),
                    Json::U64(qw_m2.to_bits()),
                    opt_f64(qw_min),
                    opt_f64(qw_max),
                ]),
            ),
            (
                "sketch".into(),
                Json::Obj(vec![
                    ("count".into(), Json::U64(sk_count)),
                    ("min".into(), opt_f64(sk_min)),
                    ("max".into(), opt_f64(sk_max)),
                    (
                        "exact".into(),
                        Json::Arr(sk_exact.iter().map(|&x| Json::U64(x.to_bits())).collect()),
                    ),
                    (
                        "bins".into(),
                        Json::Arr(
                            sk_bins
                                .iter()
                                .map(|&(i, c)| Json::Arr(vec![Json::U64(i), Json::U64(c)]))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("max_completion_ps".into(), Json::U64(st.max_completion_ps)),
        ]);
        let boards = Json::Arr(
            self.shards
                .iter()
                .flatten()
                .map(|b| {
                    Json::Obj(vec![
                        ("id".into(), Json::U64(u64::from(b.id))),
                        ("rng".into(), rng_json(b.rng.state())),
                        ("busy".into(), Json::U64(b.busy_until_ps)),
                        (
                            "inflight".into(),
                            Json::Arr(b.inflight.iter().map(|&c| Json::U64(c)).collect()),
                        ),
                        (
                            "cache".into(),
                            Json::Arr(
                                b.cache
                                    .iter()
                                    .map(|c| {
                                        Json::Arr(vec![
                                            Json::U64(u64::from(c.entry)),
                                            Json::U64(u64::from(c.version)),
                                            Json::U64(c.stored_bytes),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("strikes".into(), Json::U64(u64::from(b.scrub_strikes))),
                        ("quarantined".into(), Json::Bool(b.quarantined)),
                    ])
                })
                .collect(),
        );
        snapshot::envelope(
            "fleet",
            Json::Obj(vec![
                ("config_digest".into(), Json::U64(self.config_digest)),
                ("epoch".into(), Json::U64(self.epoch_idx)),
                ("finished".into(), Json::Bool(self.finished)),
                ("traffic".into(), traffic),
                ("versions".into(), versions),
                ("stats".into(), stats),
                ("boards".into(), boards),
            ]),
        )
    }

    /// Rebuilds a campaign from `config` plus a checkpoint produced by
    /// [`FleetRun::checkpoint`]. The config must match the one the
    /// checkpoint was taken under (verified via the config digest, which
    /// includes the calibration table); the continued run is byte-identical
    /// to one that never stopped.
    pub fn resume(config: FleetConfig, json: &Json) -> Result<FleetRun, JsonError> {
        let payload = snapshot::open(json, "fleet")?;
        let err = |msg: &str| JsonError { msg: msg.into() };
        let get_u64 = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| err(&format!("fleet checkpoint missing `{key}`")))
        };
        let rng_from = |v: &Json| -> Result<[u64; 4], JsonError> {
            let arr = v
                .as_array()
                .ok_or_else(|| err("rng state must be an array"))?;
            if arr.len() != 4 {
                return Err(err("rng state must have 4 words"));
            }
            let mut s = [0u64; 4];
            for (i, w) in arr.iter().enumerate() {
                s[i] = w.as_u64().ok_or_else(|| err("rng word must be u64"))?;
            }
            Ok(s)
        };
        let opt_f64 = |v: Option<&Json>| -> Option<f64> { v.and_then(Json::as_f64) };

        let mut run = FleetRun::new(config);
        let digest = get_u64(payload, "config_digest")?;
        if digest != run.config_digest {
            return Err(err(&format!(
                "fleet checkpoint config digest {digest:#x} does not match \
                 {:#x} — wrong config for this checkpoint",
                run.config_digest
            )));
        }
        run.epoch_idx = get_u64(payload, "epoch")?;
        run.finished = payload
            .get("finished")
            .and_then(Json::as_bool)
            .ok_or_else(|| err("fleet checkpoint missing `finished`"))?;

        // Traffic stream.
        let t = payload
            .get("traffic")
            .ok_or_else(|| err("fleet checkpoint missing `traffic`"))?;
        let pending = match t.get("pending") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(a)) if a.len() == 4 => Some(Arrival {
                at_ps: a[0].as_u64().ok_or_else(|| err("pending.at_ps"))?,
                tenant: a[1].as_u64().ok_or_else(|| err("pending.tenant"))? as u32,
                entry: a[2].as_u64().ok_or_else(|| err("pending.entry"))? as u32,
                key: a[3].as_u64().ok_or_else(|| err("pending.key"))?,
            }),
            _ => return Err(err("malformed pending arrival")),
        };
        run.traffic = TrafficModel::from_raw_parts(
            run.config.traffic.clone(),
            run.config.tenants,
            run.config.catalog_entries,
            rng_from(t.get("rng").ok_or_else(|| err("traffic.rng"))?)?,
            get_u64(t, "t_bits")?,
            get_u64(t, "generated")?,
            pending,
        );

        // Catalog versions.
        let versions = payload
            .get("versions")
            .and_then(Json::as_array)
            .ok_or_else(|| err("fleet checkpoint missing `versions`"))?;
        if versions.len() != run.catalog.len() {
            return Err(err("catalog version count mismatch"));
        }
        for (e, v) in run.catalog.iter_mut().zip(versions) {
            e.version = v.as_u64().ok_or_else(|| err("catalog version"))? as u32;
        }

        // Stats.
        let st = payload
            .get("stats")
            .ok_or_else(|| err("fleet checkpoint missing `stats`"))?;
        let online_from = |v: &Json| -> Result<OnlineStats, JsonError> {
            let a = v
                .as_array()
                .ok_or_else(|| err("online stats must be an array"))?;
            if a.len() != 5 {
                return Err(err("online stats must have 5 fields"));
            }
            Ok(OnlineStats::from_raw_parts(
                a[0].as_u64().ok_or_else(|| err("stats.n"))?,
                f64::from_bits(a[1].as_u64().ok_or_else(|| err("stats.mean"))?),
                f64::from_bits(a[2].as_u64().ok_or_else(|| err("stats.m2"))?),
                opt_f64(Some(&a[3])),
                opt_f64(Some(&a[4])),
            ))
        };
        let mut s = FleetStats::new();
        s.submitted = get_u64(st, "submitted")?;
        s.completed = get_u64(st, "completed")?;
        s.failed = get_u64(st, "failed")?;
        s.rejected = get_u64(st, "rejected")?;
        s.rerouted = get_u64(st, "rerouted")?;
        s.stolen = get_u64(st, "stolen")?;
        s.crc_failures = get_u64(st, "crc_failures")?;
        s.scrubs = get_u64(st, "scrubs")?;
        s.scrub_failures = get_u64(st, "scrub_failures")?;
        s.boards_quarantined = get_u64(st, "boards_quarantined")?;
        s.replicated_entries = get_u64(st, "replicated_entries")?;
        s.invalidations = get_u64(st, "invalidations")?;
        s.invalidated_copies = get_u64(st, "invalidated_copies")?;
        s.cache_hits = get_u64(st, "cache_hits")?;
        s.cache_misses = get_u64(st, "cache_misses")?;
        s.cache_evictions = get_u64(st, "cache_evictions")?;
        s.latency = online_from(st.get("latency").ok_or_else(|| err("stats.latency"))?)?;
        s.queue_wait = online_from(
            st.get("queue_wait")
                .ok_or_else(|| err("stats.queue_wait"))?,
        )?;
        let sk = st.get("sketch").ok_or_else(|| err("stats.sketch"))?;
        let exact = sk
            .get("exact")
            .and_then(Json::as_array)
            .ok_or_else(|| err("sketch.exact"))?
            .iter()
            .map(|v| v.as_u64().map(f64::from_bits))
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| err("sketch.exact entries"))?;
        let bins = sk
            .get("bins")
            .and_then(Json::as_array)
            .ok_or_else(|| err("sketch.bins"))?
            .iter()
            .map(|v| {
                let pair = v.as_array()?;
                Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
            })
            .collect::<Option<Vec<(u64, u64)>>>()
            .ok_or_else(|| err("sketch.bins entries"))?;
        s.sketch = BoundedQuantiles::from_raw_parts(
            QUANTILE_LIMIT,
            get_u64(sk, "count")?,
            opt_f64(sk.get("min")),
            opt_f64(sk.get("max")),
            exact,
            bins,
        );
        s.max_completion_ps = get_u64(st, "max_completion_ps")?;
        run.stats = s;

        // Boards (ids are positional: shard-major flatten order).
        let boards = payload
            .get("boards")
            .and_then(Json::as_array)
            .ok_or_else(|| err("fleet checkpoint missing `boards`"))?;
        if boards.len() != u64::from(run.config.boards) as usize {
            return Err(err("board count mismatch"));
        }
        for bj in boards {
            let id = get_u64(bj, "id")? as u32;
            if id >= run.config.boards {
                return Err(err("board id out of range"));
            }
            let quarantined = bj
                .get("quarantined")
                .and_then(Json::as_bool)
                .ok_or_else(|| err("board.quarantined"))?;
            let inflight = bj
                .get("inflight")
                .and_then(Json::as_array)
                .ok_or_else(|| err("board.inflight"))?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<std::collections::VecDeque<u64>>>()
                .ok_or_else(|| err("board.inflight entries"))?;
            let cache = bj
                .get("cache")
                .and_then(Json::as_array)
                .ok_or_else(|| err("board.cache"))?
                .iter()
                .map(|v| {
                    let t = v.as_array()?;
                    Some(CachedCopy {
                        entry: t.first()?.as_u64()? as u32,
                        version: t.get(1)?.as_u64()? as u32,
                        stored_bytes: t.get(2)?.as_u64()?,
                    })
                })
                .collect::<Option<Vec<CachedCopy>>>()
                .ok_or_else(|| err("board.cache entries"))?;
            let rng = rng_from(bj.get("rng").ok_or_else(|| err("board.rng"))?)?;
            let b = run.board_mut(id);
            b.rng = Xoshiro256StarStar::from_state(rng);
            b.busy_until_ps = get_u64(bj, "busy")?;
            b.cache_bytes = cache.iter().map(|c| c.stored_bytes).sum();
            b.inflight = inflight;
            b.cache = cache;
            b.scrub_strikes = get_u64(bj, "strikes")? as u32;
            b.quarantined = quarantined;
            if quarantined {
                run.ring.drain(id);
            }
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            boards: 6,
            shards: 2,
            tenants: 40,
            catalog_entries: 24,
            size_classes: 3,
            traffic: TrafficConfig {
                target_requests: 400,
                duration: SimDuration::from_millis(40),
                ..TrafficConfig::default()
            },
            epoch: SimDuration::from_millis(10),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_campaign_is_thread_invariant() {
        let mut serial = FleetRun::new(tiny());
        serial.run_to_end(&ParallelExecutor::serial());
        let reference = serial.report().to_json_string();
        for threads in [2, 3, 8] {
            let mut run = FleetRun::new(tiny());
            run.run_to_end(&ParallelExecutor::new(threads));
            assert_eq!(
                reference,
                run.report().to_json_string(),
                "threads={threads} must not change fleet bytes"
            );
        }
        assert!(serial.finished());
        let r = serial.report();
        assert_eq!(r.submitted, 400);
        assert_eq!(r.submitted, r.completed + r.failed + r.rejected);
        assert!(r.cache_hit_rate.unwrap() > 0.0);
    }

    #[test]
    fn fleet_checkpoint_resumes_byte_identically() {
        let ex = ParallelExecutor::new(2);
        let mut whole = FleetRun::new(tiny());
        whole.run_to_end(&ex);
        let expect = whole.report().to_json_string();

        let mut front = FleetRun::new(tiny());
        front.step_epoch(&ex);
        front.step_epoch(&ex);
        let ckpt = front.checkpoint();
        // Round-trip through rendered text, as a file would.
        let parsed = Json::parse(&ckpt.render()).expect("checkpoint parses");
        let mut back = FleetRun::resume(tiny(), &parsed).expect("resume");
        assert_eq!(back.epoch(), 2);
        back.run_to_end(&ex);
        assert_eq!(expect, back.report().to_json_string());
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let mut run = FleetRun::new(tiny());
        run.step_epoch(&ParallelExecutor::serial());
        let ckpt = run.checkpoint();
        let mut other = tiny();
        other.seed ^= 1;
        assert!(FleetRun::resume(other, &ckpt).is_err());
    }

    #[test]
    fn bad_boards_quarantine_and_leave_the_ring() {
        let mut cfg = tiny();
        cfg.bad_board_permille = 400;
        cfg.bad_fault_rate = 0.9;
        cfg.traffic.target_requests = 1500;
        let mut run = FleetRun::new(cfg);
        run.run_to_end(&ParallelExecutor::new(3));
        let r = run.report();
        assert!(
            r.boards_quarantined > 0,
            "bad boards must quarantine: {r:?}"
        );
        assert!(r.scrub_failures > 0 && r.crc_failures > r.scrub_failures);
        assert_eq!(
            run.ring().member_count() as u64,
            r.boards - r.boards_quarantined
        );
        // Placement never routes to a quarantined board after the barrier.
        for k in 0..200u64 {
            if let Some(b) = run.ring().lookup(mix64(k)) {
                assert!(run.ring().is_member(b));
            }
        }
        assert!(r.replicated_entries > 0, "hot entries re-replicate");
    }

    #[test]
    fn invalidation_rounds_drop_copies() {
        let mut cfg = tiny();
        cfg.invalidate_every_epochs = 1;
        let mut run = FleetRun::new(cfg);
        run.run_to_end(&ParallelExecutor::serial());
        let r = run.report();
        assert!(r.invalidations > 0);
        assert!(
            r.invalidated_copies > 0,
            "popular entries must have resident copies to drop: {r:?}"
        );
    }
}
