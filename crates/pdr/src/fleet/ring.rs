//! Consistent-hash placement ring: catalog entries and tenant requests onto
//! simulated boards.
//!
//! Each member board contributes `vnodes_per_board` virtual nodes, hashed
//! onto a 64-bit ring; a key is owned by the first virtual node clockwise
//! from it. Two properties carry the fleet's routing contract:
//!
//! * **Bounded imbalance** — with `v` virtual nodes per board, per-board
//!   load over uniform keys concentrates around the mean with relative
//!   spread ~`1/sqrt(v)`. At the default `v = 128` the documented (and
//!   proptested) bound is `max load <= 1.75 x mean` for fleets of up to a
//!   few hundred boards and key sets of at least `64 x boards`.
//! * **Minimal disruption** — draining a board remaps *only* the keys that
//!   board owned (each to the next surviving virtual node); every other
//!   key keeps its owner. Re-admitting the board restores the original
//!   assignment exactly. Proven structurally by
//!   `tests/proptest_fleet.rs::ring_drain_remaps_only_owned_keys`.
//!
//! All hashing is the SplitMix64 finaliser over plain integers — no
//! `RandomState`, no pointer identity — so placement is byte-identical
//! across processes, thread counts, and engine strategies.

/// SplitMix64 finaliser: the ring's stateless 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain-separation salt for virtual-node hashes (vs request keys).
const VNODE_SALT: u64 = 0x5044_525f_5249_4e47; // "PDR_RING"

/// The consistent-hash ring. Construction and membership changes rebuild a
/// sorted `(hash, board)` table; lookups binary-search it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementRing {
    boards: u32,
    vnodes_per_board: u32,
    members: Vec<bool>,
    ring: Vec<(u64, u32)>,
}

impl PlacementRing {
    /// A ring over boards `0..boards`, all initially members.
    ///
    /// # Panics
    ///
    /// Panics if `boards` or `vnodes_per_board` is zero.
    pub fn new(boards: u32, vnodes_per_board: u32) -> Self {
        assert!(boards > 0, "ring needs at least one board");
        assert!(vnodes_per_board > 0, "ring needs at least one vnode/board");
        let mut r = PlacementRing {
            boards,
            vnodes_per_board,
            members: vec![true; boards as usize],
            ring: Vec::new(),
        };
        r.rebuild();
        r
    }

    fn vnode_hash(board: u32, v: u32) -> u64 {
        mix64(VNODE_SALT ^ ((u64::from(board) << 32) | u64::from(v)))
    }

    fn rebuild(&mut self) {
        self.ring.clear();
        for b in 0..self.boards {
            if self.members[b as usize] {
                for v in 0..self.vnodes_per_board {
                    self.ring.push((Self::vnode_hash(b, v), b));
                }
            }
        }
        // Sorting by (hash, board) makes the (astronomically unlikely)
        // hash-collision order deterministic too.
        self.ring.sort_unstable();
    }

    /// The board owning `key`: the first virtual node at or clockwise of
    /// the key's position, wrapping at the top of the ring. `None` when no
    /// board remains a member.
    pub fn lookup(&self, key: u64) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        let h = mix64(key);
        let i = self.ring.partition_point(|&(vh, _)| vh < h);
        Some(self.ring[i % self.ring.len()].1)
    }

    /// Drains `board` from the ring (quarantine / planned removal). Returns
    /// `false` if it was not a member. Only keys the board owned remap.
    pub fn drain(&mut self, board: u32) -> bool {
        if board >= self.boards || !self.members[board as usize] {
            return false;
        }
        self.members[board as usize] = false;
        self.ring.retain(|&(_, b)| b != board);
        true
    }

    /// Re-admits a drained board. Returns `false` if it was already a
    /// member. Restores exactly the assignment the ring had before the
    /// matching [`PlacementRing::drain`].
    pub fn admit(&mut self, board: u32) -> bool {
        if board >= self.boards || self.members[board as usize] {
            return false;
        }
        self.members[board as usize] = true;
        self.rebuild();
        true
    }

    /// Whether `board` is currently a member.
    pub fn is_member(&self, board: u32) -> bool {
        board < self.boards && self.members[board as usize]
    }

    /// Number of member boards.
    pub fn member_count(&self) -> usize {
        self.members.iter().filter(|&&m| m).count()
    }

    /// Total board slots (members and drained).
    pub fn boards(&self) -> u32 {
        self.boards
    }

    /// Virtual nodes per board.
    pub fn vnodes_per_board(&self) -> u32 {
        self.vnodes_per_board
    }

    /// Per-board key counts over `keys` — the balance diagnostic the
    /// proptests assert on.
    pub fn load_histogram(&self, keys: impl Iterator<Item = u64>) -> Vec<u64> {
        let mut counts = vec![0u64; self.boards as usize];
        for k in keys {
            if let Some(b) = self.lookup(k) {
                counts[b as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic_and_total() {
        let ring = PlacementRing::new(16, 64);
        for k in 0..1000u64 {
            let a = ring.lookup(k).unwrap();
            let b = ring.lookup(k).unwrap();
            assert_eq!(a, b);
            assert!(a < 16);
        }
    }

    #[test]
    fn drain_then_admit_restores_assignment() {
        let mut ring = PlacementRing::new(8, 32);
        let before: Vec<_> = (0..500u64).map(|k| ring.lookup(k)).collect();
        assert!(ring.drain(3));
        assert!(!ring.drain(3), "double drain is a no-op");
        for k in 0..500u64 {
            assert_ne!(ring.lookup(k), Some(3), "drained board must own nothing");
        }
        assert!(ring.admit(3));
        let after: Vec<_> = (0..500u64).map(|k| ring.lookup(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn drain_remaps_only_owned_keys() {
        let mut ring = PlacementRing::new(12, 64);
        let keys: Vec<u64> = (0..4000).map(|i| mix64(i ^ 0xabcd)).collect();
        let before: Vec<u32> = keys.iter().map(|&k| ring.lookup(k).unwrap()).collect();
        ring.drain(5);
        for (k, &was) in keys.iter().zip(&before) {
            let now = ring.lookup(*k).unwrap();
            if was != 5 {
                assert_eq!(now, was, "key not owned by the drained board moved");
            } else {
                assert_ne!(now, 5);
            }
        }
    }

    #[test]
    fn empty_ring_returns_none() {
        let mut ring = PlacementRing::new(2, 8);
        ring.drain(0);
        ring.drain(1);
        assert_eq!(ring.member_count(), 0);
        assert_eq!(ring.lookup(42), None);
    }
}
