//! The test front panel: switch-selected frequencies and the OLED status
//! display (Fig. 3/4 of the paper).
//!
//! During testing the paper selects the over-clock frequency with the
//! ZedBoard's eight slide switches, starts transfers with two push-buttons
//! and reads results from the OLED. The same information flows through
//! [`FrontPanel`], which examples print instead of driving a panel.

use pdr_sim_core::Frequency;

use crate::report::ReconfigReport;

/// The switch-to-frequency map used in the experiments: switch *i* (one-hot,
/// highest set bit wins) selects the *i*-th tested frequency; all-off is the
/// 100 MHz nominal.
pub const SWITCH_TABLE_MHZ: [u64; 8] = [140, 180, 200, 240, 280, 310, 320, 360];

/// Decodes the eight slide switches into an over-clock frequency.
///
/// ```
/// use pdr_core::frontpanel::switch_frequency;
/// use pdr_sim_core::Frequency;
///
/// assert_eq!(switch_frequency(0b0000_0000), Frequency::from_mhz(100));
/// assert_eq!(switch_frequency(0b0000_0001), Frequency::from_mhz(140));
/// assert_eq!(switch_frequency(0b0001_0000), Frequency::from_mhz(280));
/// ```
pub fn switch_frequency(switches: u8) -> Frequency {
    if switches == 0 {
        return Frequency::from_mhz(100);
    }
    let idx = 7 - switches.leading_zeros() as usize;
    Frequency::from_mhz(SWITCH_TABLE_MHZ[idx])
}

/// The OLED panel state: what the tester reads after each run.
#[derive(Debug, Clone, Default)]
pub struct FrontPanel {
    lines: Vec<String>,
}

impl FrontPanel {
    /// An empty (blank) panel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders a report onto the panel, replacing its content — over-clock
    /// frequency and chip temperature, CRC result and transfer time, exactly
    /// the quantities of Fig. 3.
    pub fn show(&mut self, report: &ReconfigReport) {
        self.lines = vec![
            format!(
                "FREQ {:>4} MHz   TEMP {:>5.1} C",
                report.frequency_hz / 1_000_000,
                report.die_temp_c
            ),
            match report.latency {
                Some(l) => format!("XFER {:>10.2} us", l.as_micros_f64()),
                None => "XFER        N/A (no irq)".to_string(),
            },
            match report.throughput_mb_s() {
                Some(t) => format!("RATE {t:>10.2} MB/s"),
                None => "RATE        N/A".to_string(),
            },
            format!(
                "CRC  {}",
                match report.crc {
                    crate::report::CrcStatus::Valid => "VALID",
                    crate::report::CrcStatus::Invalid => "NOT VALID",
                    crate::report::CrcStatus::NotChecked => "----",
                }
            ),
        ];
    }

    /// The panel's current lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The panel as one printable block.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CrcStatus;
    use pdr_sim_core::SimDuration;

    #[test]
    fn switch_decoding_matches_table() {
        assert_eq!(switch_frequency(0), Frequency::from_mhz(100));
        assert_eq!(switch_frequency(0b0000_0010), Frequency::from_mhz(180));
        assert_eq!(switch_frequency(0b1000_0000), Frequency::from_mhz(360));
        // Highest set switch wins.
        assert_eq!(switch_frequency(0b1000_0001), Frequency::from_mhz(360));
    }

    #[test]
    fn panel_shows_the_papers_quantities() {
        let report = ReconfigReport {
            frequency_hz: 200_000_000,
            die_temp_c: 40.0,
            bitstream_bytes: 528_568,
            latency: Some(SimDuration::from_micros(676)),
            interrupt_seen: true,
            crc: CrcStatus::Valid,
            stream_crc_ok: Some(true),
            frames_written: 1308,
            corrupted_words: 0,
            p_pdr_w: 1.3,
            energy_j: None,
            error: None,
        };
        let mut panel = FrontPanel::new();
        panel.show(&report);
        let text = panel.render();
        assert!(text.contains("200 MHz"));
        assert!(text.contains("40.0 C"));
        assert!(text.contains("676.00 us"));
        assert!(text.contains("CRC  VALID"));
        assert_eq!(panel.lines().len(), 4);
    }
}
