//! The CRC Bitstream Read-Back block.
//!
//! "The CRC Bitstream Read-Back block reads back continuously in the
//! background the whole bitstream to check the CRC of the configuration
//! memory content. If a CRC error is detected an interrupt is asserted."
//! (paper, Sec. III.)
//!
//! The block scans registered regions of configuration memory round-robin at
//! read-back speed — one frame per 101 + 1 cycles of its clock (frame words
//! plus pipeline overhead) — computes a CRC-32 per region and compares it
//! against the golden value registered by software after each intended
//! reconfiguration. On mismatch it raises the CRC-error interrupt. The
//! block pauses while the ICAP is writing (a read-back during configuration
//! would see a half-written region).

use pdr_icap::SharedConfigMemory;
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{impl_json_struct, Component, EdgeCtx, IrqLine, NextWake};

use pdr_bitstream::Crc32;

/// A verification region: a linear frame range with a golden CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Linear index of the first frame.
    pub start_idx: u32,
    /// Number of frames.
    pub frames: u32,
    /// Expected CRC-32 (IEEE) over the region's words in address order.
    pub golden: u32,
}

/// Per-region scan results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionResult {
    /// Completed scans of this region.
    pub scans: u64,
    /// Whether the most recent completed scan matched the golden CRC.
    pub last_ok: Option<bool>,
    /// Total mismatching scans.
    pub failures: u64,
}

impl_json_struct!(Region {
    start_idx,
    frames,
    golden,
});

impl_json_struct!(RegionResult {
    scans,
    last_ok,
    failures,
});

/// The read-back component. Bind it to the fabric clock domain (the block is
/// standard logic, not over-clocked).
#[derive(Debug)]
pub struct CrcReadback {
    name: String,
    mem: SharedConfigMemory,
    err_irq: IrqLine,
    regions: Vec<Region>,
    results: Vec<RegionResult>,
    enabled: bool,
    /// Scan cursor: region index, frame offset within region.
    cursor: (usize, u32),
    /// Cycles remaining before the current frame's words are absorbed.
    frame_countdown: u32,
    crc: Crc32,
    /// Total frames read back.
    frames_read: u64,
    /// Domain cycle up to which `frame_countdown` is synchronised (event
    /// skipping).
    last_cycle: u64,
}

/// Cycles to read one frame back through the ICAP's read port (101 words +
/// one overhead cycle).
pub const CYCLES_PER_FRAME: u32 = pdr_bitstream::FRAME_WORDS as u32 + 1;

impl CrcReadback {
    /// Creates a disabled read-back block over `mem`.
    pub fn new(name: &str, mem: SharedConfigMemory, err_irq: IrqLine) -> Self {
        CrcReadback {
            name: name.to_string(),
            mem,
            err_irq,
            regions: Vec::new(),
            results: Vec::new(),
            enabled: false,
            cursor: (0, 0),
            frame_countdown: CYCLES_PER_FRAME,
            crc: Crc32::ieee(),
            frames_read: 0,
            last_cycle: 0,
        }
    }

    /// Registers (or replaces) the region at `slot`, restarting the scan.
    pub fn set_region(&mut self, slot: usize, region: Region) {
        if slot >= self.regions.len() {
            self.regions.resize(
                slot + 1,
                Region {
                    start_idx: 0,
                    frames: 0,
                    golden: 0,
                },
            );
            self.results.resize(slot + 1, RegionResult::default());
        }
        self.regions[slot] = region;
        self.results[slot] = RegionResult::default();
        self.restart_scan();
    }

    /// Pauses (`false`) or resumes (`true`) scanning; resuming restarts the
    /// current region from its first frame.
    pub fn set_enabled(&mut self, enabled: bool) {
        if self.enabled != enabled {
            self.enabled = enabled;
            self.restart_scan();
        }
    }

    /// True while scanning.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Results for the region at `slot`.
    pub fn result(&self, slot: usize) -> RegionResult {
        self.results.get(slot).copied().unwrap_or_default()
    }

    /// Total frames read back over the block's lifetime.
    pub fn frames_read(&self) -> u64 {
        self.frames_read
    }

    fn restart_scan(&mut self) {
        self.cursor = (self.cursor.0.min(self.regions.len().saturating_sub(1)), 0);
        self.frame_countdown = CYCLES_PER_FRAME;
        self.crc = Crc32::ieee();
    }

    fn finish_region(&mut self, ctx: &mut EdgeCtx<'_>) {
        let (r, _) = self.cursor;
        let ok = self.crc.value() == self.regions[r].golden;
        let res = &mut self.results[r];
        res.scans += 1;
        res.last_ok = Some(ok);
        if !ok {
            res.failures += 1;
            self.err_irq.raise(ctx.now());
            ctx.trace("crc-readback-error", r as u64, 0);
        }
        // Advance to the next non-empty region.
        let n = self.regions.len();
        let mut next = (r + 1) % n;
        for _ in 0..n {
            if self.regions[next].frames > 0 {
                break;
            }
            next = (next + 1) % n;
        }
        self.cursor = (next, 0);
        self.crc = Crc32::ieee();
    }
}

impl Component for CrcReadback {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_clock_edge(&mut self, ctx: &mut EdgeCtx<'_>) {
        let cycle = ctx.cycle();
        self.catch_up(cycle - 1);
        self.last_cycle = cycle;
        if !self.enabled || self.regions.iter().all(|r| r.frames == 0) {
            return;
        }
        if self.frame_countdown > 1 {
            self.frame_countdown -= 1;
            return;
        }
        self.frame_countdown = CYCLES_PER_FRAME;
        let (r, f) = self.cursor;
        let region = &self.regions[r];
        if region.frames == 0 {
            self.finish_region(ctx);
            return;
        }
        {
            let mut mem = self.mem.borrow_mut();
            let frame = mem.read_frame_at(region.start_idx + f);
            for &w in frame.words() {
                self.crc.update_word(w);
            }
        }
        self.frames_read += 1;
        if f + 1 == region.frames {
            self.finish_region(ctx);
        } else {
            self.cursor = (r, f + 1);
        }
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        // Disabled or empty: edges are pure no-ops until software re-enables
        // scanning (run-end sync keeps `last_cycle` current across runs, so
        // a later set_enabled starts from a synchronised countdown).
        if !self.enabled || self.regions.iter().all(|r| r.frames == 0) {
            return NextWake::Idle;
        }
        // Edges with countdown > 1 only decrement it; the interesting edge
        // (frame absorb + CRC) is the one that sees countdown == 1.
        NextWake::In(self.frame_countdown as u64)
    }

    fn catch_up(&mut self, cycle: u64) {
        if cycle <= self.last_cycle {
            return;
        }
        let k = cycle - self.last_cycle;
        self.last_cycle = cycle;
        if !self.enabled || self.regions.iter().all(|r| r.frames == 0) {
            return;
        }
        // next_wake never sleeps past the countdown==1 work edge, so every
        // folded edge strictly decrements the countdown.
        debug_assert!(
            k < self.frame_countdown as u64,
            "folded past a read-back work edge"
        );
        self.frame_countdown -= k as u32;
    }

    fn snapshot_state(&self) -> Json {
        // The block owns the crc-error interrupt line (it is the raiser) and
        // its own scan engine; config memory is shared system state.
        Json::Obj(vec![
            (
                "regions".to_string(),
                Json::Arr(self.regions.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "results".to_string(),
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
            ("enabled".to_string(), self.enabled.to_json()),
            ("cursor_region".to_string(), Json::U64(self.cursor.0 as u64)),
            ("cursor_frame".to_string(), self.cursor.1.to_json()),
            (
                "frame_countdown".to_string(),
                self.frame_countdown.to_json(),
            ),
            ("crc".to_string(), self.crc.raw_state().to_json()),
            ("frames_read".to_string(), self.frames_read.to_json()),
            ("last_cycle".to_string(), self.last_cycle.to_json()),
            ("err_irq".to_string(), self.err_irq.snapshot_json()),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        let regions = state
            .get("regions")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "crc-readback snapshot missing `regions`".to_string(),
            })?
            .iter()
            .map(Region::from_json)
            .collect::<Result<Vec<Region>, JsonError>>()?;
        let results = state
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "crc-readback snapshot missing `results`".to_string(),
            })?
            .iter()
            .map(RegionResult::from_json)
            .collect::<Result<Vec<RegionResult>, JsonError>>()?;
        if regions.len() != results.len() {
            return Err(JsonError {
                msg: "crc-readback snapshot region/result length mismatch".to_string(),
            });
        }
        let cursor_region =
            u64::from_json(state.get("cursor_region").unwrap_or(&Json::Null))? as usize;
        if cursor_region != 0 && cursor_region >= regions.len() {
            return Err(JsonError {
                msg: "crc-readback snapshot cursor out of range".to_string(),
            });
        }
        self.regions = regions;
        self.results = results;
        self.enabled = bool::from_json(state.get("enabled").unwrap_or(&Json::Null))?;
        self.cursor = (
            cursor_region,
            u32::from_json(state.get("cursor_frame").unwrap_or(&Json::Null))?,
        );
        self.frame_countdown = u32::from_json(state.get("frame_countdown").unwrap_or(&Json::Null))?;
        self.crc
            .set_raw_state(u32::from_json(state.get("crc").unwrap_or(&Json::Null))?);
        self.frames_read = u64::from_json(state.get("frames_read").unwrap_or(&Json::Null))?;
        self.last_cycle = u64::from_json(state.get("last_cycle").unwrap_or(&Json::Null))?;
        self.err_irq
            .restore_json(state.get("err_irq").unwrap_or(&Json::Null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_bitstream::{Frame, FrameAddress};
    use pdr_fabric::{ConfigMemory, Geometry};
    use pdr_icap::shared_config_memory;
    use pdr_sim_core::{Engine, Frequency, IrqBus, SimDuration};

    fn rig() -> (
        Engine,
        SharedConfigMemory,
        IrqLine,
        pdr_sim_core::ComponentId,
    ) {
        let mut e = Engine::new();
        let clk = e.add_clock_domain("fabric", Frequency::from_mhz(100));
        let mem = shared_config_memory(ConfigMemory::new(Geometry::zynq7020()));
        let bus = IrqBus::new();
        let irq = bus.allocate("crc-err");
        let rb = CrcReadback::new("crc-rb", mem.clone(), irq.clone());
        let id = e.add_component(rb, Some(clk));
        (e, mem, irq, id)
    }

    fn golden_for(mem: &SharedConfigMemory, start: u32, frames: u32) -> u32 {
        mem.borrow().range_crc(start, frames)
    }

    #[test]
    fn matching_region_scans_clean() {
        let (mut e, mem, irq, id) = rig();
        mem.borrow_mut()
            .write_frame(FrameAddress::new(0, 0, 0, 0), Frame::filled(7));
        let golden = golden_for(&mem, 0, 10);
        {
            let rb = e.component_mut::<CrcReadback>(id);
            rb.set_region(
                0,
                Region {
                    start_idx: 0,
                    frames: 10,
                    golden,
                },
            );
            rb.set_enabled(true);
        }
        // 10 frames × 102 cycles at 100 MHz ≈ 10.2 us per scan.
        e.run_for(SimDuration::from_micros(25));
        let res = e.component::<CrcReadback>(id).result(0);
        assert!(res.scans >= 2, "scans={}", res.scans);
        assert_eq!(res.last_ok, Some(true));
        assert_eq!(res.failures, 0);
        assert!(!irq.is_raised());
    }

    #[test]
    fn corruption_raises_the_error_interrupt() {
        let (mut e, mem, irq, id) = rig();
        let golden = golden_for(&mem, 0, 10);
        {
            let rb = e.component_mut::<CrcReadback>(id);
            rb.set_region(
                0,
                Region {
                    start_idx: 0,
                    frames: 10,
                    golden,
                },
            );
            rb.set_enabled(true);
        }
        e.run_for(SimDuration::from_micros(15));
        assert!(!irq.is_raised());
        // Inject an SEU-like flip mid-region.
        mem.borrow_mut()
            .inject_bit_flip(FrameAddress::new(0, 0, 0, 5), 17, 3);
        e.run_for(SimDuration::from_micros(25));
        assert!(irq.is_raised(), "flip must be detected within two scans");
        assert!(e.component::<CrcReadback>(id).result(0).failures > 0);
    }

    #[test]
    fn disabled_block_reads_nothing() {
        let (mut e, mem, _irq, id) = rig();
        let golden = golden_for(&mem, 0, 4);
        e.component_mut::<CrcReadback>(id).set_region(
            0,
            Region {
                start_idx: 0,
                frames: 4,
                golden,
            },
        );
        e.run_for(SimDuration::from_micros(10));
        assert_eq!(e.component::<CrcReadback>(id).frames_read(), 0);
    }

    #[test]
    fn scan_rate_is_one_frame_per_102_cycles() {
        let (mut e, mem, _irq, id) = rig();
        let golden = golden_for(&mem, 0, 1000);
        {
            let rb = e.component_mut::<CrcReadback>(id);
            rb.set_region(
                0,
                Region {
                    start_idx: 0,
                    frames: 1000,
                    golden,
                },
            );
            rb.set_enabled(true);
        }
        e.run_for(SimDuration::from_micros(102)); // 10200 cycles
        let read = e.component::<CrcReadback>(id).frames_read();
        assert!((99..=100).contains(&read), "read={read}");
    }

    #[test]
    fn multiple_regions_round_robin() {
        let (mut e, mem, _irq, id) = rig();
        let g0 = golden_for(&mem, 0, 5);
        let g1 = golden_for(&mem, 100, 5);
        {
            let rb = e.component_mut::<CrcReadback>(id);
            rb.set_region(
                0,
                Region {
                    start_idx: 0,
                    frames: 5,
                    golden: g0,
                },
            );
            rb.set_region(
                1,
                Region {
                    start_idx: 100,
                    frames: 5,
                    golden: g1,
                },
            );
            rb.set_enabled(true);
        }
        e.run_for(SimDuration::from_micros(30));
        let r0 = e.component::<CrcReadback>(id).result(0);
        let r1 = e.component::<CrcReadback>(id).result(1);
        assert!(r0.scans >= 1 && r1.scans >= 1, "r0={r0:?} r1={r1:?}");
        assert_eq!(r0.last_ok, Some(true));
        assert_eq!(r1.last_ok, Some(true));
    }
}
