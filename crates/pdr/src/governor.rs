//! The over-clocking governor: the paper's "methodology to achieve the most
//! power efficient implementation" as executable code.
//!
//! The paper closes by noting that its throughput/power/temperature analysis
//! "can be extended to any IP block implemented in the FPGA to determine its
//! best trade-off throughput vs. energy". This module packages that
//! methodology:
//!
//! 1. **Characterise** ([`Governor::characterise`]): sweep the over-clock
//!    frequency on the live system, measuring throughput and P_PDR per
//!    point and validating every transfer with the CRC read-back — points
//!    that corrupt or lose their interrupt are marked unusable, exactly as
//!    in Table I.
//! 2. **Select** ([`Governor::select`]): pick the operating point for an
//!    [`Objective`] — maximum throughput, maximum performance-per-watt, or
//!    the lowest-power point meeting a latency target — with a configurable
//!    safety margin below the highest working frequency (robustness
//!    headroom for temperature excursions, Sec. IV-A).
//! 3. **Adapt** ([`Governor::on_failure`]): back off when the field reports
//!    a CRC error or lost interrupt (die heated past the characterised
//!    envelope), mirroring the active-feedback idea the paper credits to
//!    HP-2011 — but driven by end-to-end verification instead of voltage
//!    monitors.
//!
//! ```
//! use pdr_core::governor::{Governor, GovernorConfig, Objective};
//! use pdr_core::{SystemConfig, ZynqPdrSystem};
//!
//! let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
//! let mut gov = Governor::new(GovernorConfig {
//!     probe_ceil_mhz: 220, // a short probe for the example
//!     guard_band_mhz: 0,
//!     ..GovernorConfig::default()
//! });
//! gov.characterise(&mut sys, 0);
//! let point = gov.select(Objective::MaxEfficiency);
//! assert_eq!(point.freq_mhz, 200); // the paper's knee
//! ```

use pdr_sim_core::Frequency;

use crate::report::CrcStatus;
use crate::system::ZynqPdrSystem;

/// One characterised operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Over-clock frequency in MHz.
    pub freq_mhz: u64,
    /// Measured throughput in MB/s (`None` when unusable).
    pub throughput_mb_s: Option<f64>,
    /// Measured configuration latency in µs (`None` when the interrupt was
    /// lost).
    pub latency_us: Option<f64>,
    /// Measured P_PDR in W.
    pub p_pdr_w: f64,
    /// Performance-per-watt in MB/J (`None` when unusable).
    pub ppw_mb_j: Option<f64>,
    /// The point completed with a verified CRC and a completion interrupt.
    pub usable: bool,
}

pdr_sim_core::impl_json_struct!(OperatingPoint {
    freq_mhz,
    throughput_mb_s,
    latency_us,
    p_pdr_w,
    ppw_mb_j,
    usable,
});

/// What the governor optimises for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Highest verified throughput (the 280 MHz point of Table I).
    MaxThroughput,
    /// Highest performance-per-watt (the 200 MHz knee of Table II).
    MaxEfficiency,
    /// Lowest power that still reconfigures a bitstream of the
    /// characterisation size within the given budget.
    LatencyBudget(pdr_sim_core::SimDuration),
}

/// Governor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Frequencies to probe during characterisation, in MHz.
    pub probe_floor_mhz: u64,
    /// Upper probe bound, in MHz.
    pub probe_ceil_mhz: u64,
    /// Probe step, in MHz.
    pub probe_step_mhz: u64,
    /// Safety margin: selected points must sit at least this many MHz below
    /// the highest usable probe (temperature headroom).
    pub guard_band_mhz: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            probe_floor_mhz: 100,
            probe_ceil_mhz: 340,
            probe_step_mhz: 20,
            guard_band_mhz: 20,
        }
    }
}

/// The governor: characterisation results plus selection/adaptation state.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    points: Vec<OperatingPoint>,
    /// Index of the currently selected point, if any.
    current: Option<usize>,
}

impl Governor {
    /// Creates an uncharacterised governor.
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            config,
            points: Vec::new(),
            current: None,
        }
    }

    /// Sweeps the probe range on `sys` (at its current die temperature),
    /// reconfiguring partition `rp` once per frequency and recording
    /// verified throughput and power. Returns the characterised points.
    pub fn characterise(&mut self, sys: &mut ZynqPdrSystem, rp: usize) -> &[OperatingPoint] {
        let bs = sys.make_partial_bitstream(rp, 1);
        self.points.clear();
        let mut mhz = self.config.probe_floor_mhz;
        while mhz <= self.config.probe_ceil_mhz {
            let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(mhz));
            let usable = r.crc == CrcStatus::Valid && r.interrupt_seen;
            self.points.push(OperatingPoint {
                freq_mhz: mhz,
                throughput_mb_s: r.throughput_mb_s(),
                latency_us: r.latency.map(|l| l.as_micros_f64()),
                p_pdr_w: r.p_pdr_w,
                ppw_mb_j: r.ppw_mb_j(),
                usable,
            });
            // A corrupted probe means we are already past the data-path
            // envelope; probing even faster only stresses the part.
            if r.crc == CrcStatus::Invalid {
                break;
            }
            mhz += self.config.probe_step_mhz;
        }
        // Leave the fabric in a verified state after probing.
        let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(self.config.probe_floor_mhz));
        debug_assert!(r.crc_ok());
        &self.points
    }

    /// The characterised points.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The highest usable probe frequency, if any point worked.
    pub fn max_usable_mhz(&self) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.usable)
            .map(|p| p.freq_mhz)
            .max()
    }

    /// Selects the operating point for `objective`, honouring the guard
    /// band. Returns the chosen point.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Governor::characterise`] or if no usable
    /// point exists.
    pub fn select(&mut self, objective: Objective) -> &OperatingPoint {
        let ceiling = self
            .max_usable_mhz()
            .expect("characterise() found no usable operating point")
            .saturating_sub(self.config.guard_band_mhz);
        let candidates: Vec<usize> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz <= ceiling)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !candidates.is_empty(),
            "guard band of {} MHz leaves no usable point",
            self.config.guard_band_mhz
        );
        let best = match objective {
            Objective::MaxThroughput => candidates
                .into_iter()
                .max_by(|&a, &b| {
                    let ta = self.points[a].throughput_mb_s.unwrap_or(0.0);
                    let tb = self.points[b].throughput_mb_s.unwrap_or(0.0);
                    // Ties (on the plateau) go to the *lower* frequency:
                    // same speed, less power.
                    ta.partial_cmp(&tb)
                        .expect("finite")
                        .then(self.points[b].freq_mhz.cmp(&self.points[a].freq_mhz))
                })
                .expect("non-empty"),
            Objective::MaxEfficiency => candidates
                .into_iter()
                .max_by(|&a, &b| {
                    let ea = self.points[a].ppw_mb_j.unwrap_or(0.0);
                    let eb = self.points[b].ppw_mb_j.unwrap_or(0.0);
                    ea.partial_cmp(&eb).expect("finite")
                })
                .expect("non-empty"),
            Objective::LatencyBudget(budget) => candidates
                .into_iter()
                .filter(|&i| match self.points[i].latency_us {
                    Some(us) => us <= budget.as_micros_f64(),
                    None => false,
                })
                .min_by(|&a, &b| {
                    self.points[a]
                        .p_pdr_w
                        .partial_cmp(&self.points[b].p_pdr_w)
                        .expect("finite")
                })
                .expect("no usable point meets the latency budget"),
        };
        self.current = Some(best);
        &self.points[best]
    }

    /// Selects the *highest* usable frequency within the guard band — the
    /// edge-riding policy a latency-obsessed deployment might use, and the
    /// one most likely to need [`Governor::on_failure`] when conditions
    /// shift.
    ///
    /// # Panics
    ///
    /// Panics if no usable point exists.
    pub fn select_highest(&mut self) -> &OperatingPoint {
        let ceiling = self
            .max_usable_mhz()
            .expect("characterise() found no usable operating point")
            .saturating_sub(self.config.guard_band_mhz);
        let best = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz <= ceiling)
            .max_by_key(|(_, p)| p.freq_mhz)
            .map(|(i, _)| i)
            .expect("guard band leaves no usable point");
        self.current = Some(best);
        &self.points[best]
    }

    /// The currently selected point.
    pub fn current(&self) -> Option<&OperatingPoint> {
        self.current.map(|i| &self.points[i])
    }

    /// Field feedback: a reconfiguration at the selected point failed
    /// (CRC error or lost interrupt — e.g. the die heated past the
    /// characterised envelope). The governor marks the point unusable and
    /// steps down to the next-slower usable frequency, returning it, or
    /// `None` when no slower point remains.
    pub fn on_failure(&mut self) -> Option<&OperatingPoint> {
        let i = self.current.take()?;
        self.points[i].usable = false;
        let fallback = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz < self.points[i].freq_mhz)
            .max_by_key(|(_, p)| p.freq_mhz)
            .map(|(j, _)| j)?;
        self.current = Some(fallback);
        Some(&self.points[fallback])
    }

    /// The lowest characterised frequency, usable or not — the hard floor
    /// no amount of backoff may cross.
    pub fn floor_mhz(&self) -> Option<u64> {
        self.points.iter().map(|p| p.freq_mhz).min()
    }

    /// Checkpoints the characterisation table and selection cursor. The
    /// probe configuration is structural (supplied at construction) and
    /// does not travel.
    pub fn snapshot_json(&self) -> pdr_sim_core::json::Json {
        use pdr_sim_core::json::{Json, ToJson};
        Json::Obj(vec![
            (
                "points".to_string(),
                Json::Arr(self.points.iter().map(|p| p.to_json()).collect()),
            ),
            (
                "current".to_string(),
                self.current.map(|i| i as u64).to_json(),
            ),
        ])
    }

    /// Restores a checkpoint taken with [`Governor::snapshot_json`].
    pub fn restore_json(
        &mut self,
        json: &pdr_sim_core::json::Json,
    ) -> Result<(), pdr_sim_core::json::JsonError> {
        use pdr_sim_core::json::{FromJson, Json, JsonError};
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "governor snapshot missing `points`".to_string(),
            })?
            .iter()
            .map(OperatingPoint::from_json)
            .collect::<Result<Vec<OperatingPoint>, JsonError>>()?;
        let current = Option::<u64>::from_json(json.get("current").unwrap_or(&Json::Null))?
            .map(|i| i as usize);
        if let Some(i) = current {
            if i >= points.len() {
                return Err(JsonError {
                    msg: "governor snapshot `current` out of range".to_string(),
                });
            }
        }
        self.points = points;
        self.current = current;
        Ok(())
    }

    /// Re-marks the point at `freq_mhz` usable — the recovery path for
    /// *transient* failures (a timing burst that has passed), where
    /// permanently burning the operating point would ratchet the system to
    /// its floor over a long campaign. Returns true when the point exists.
    pub fn reinstate(&mut self, freq_mhz: u64) -> bool {
        match self.points.iter_mut().find(|p| p.freq_mhz == freq_mhz) {
            Some(p) => {
                p.usable = true;
                true
            }
            None => false,
        }
    }
}

/// HP-2011-style **active feedback**: instead of characterising offline, the
/// controller reads the die-temperature sensor before every transfer and
/// clamps the requested over-clock to the model-predicted safe envelope
/// minus a guard band.
///
/// The paper contrasts its open-loop over-clocking (characterise once,
/// verify with CRC) against HP-2011's closed loop (monitor, stay nominal).
/// This type implements the closed loop on top of the same timing model, so
/// the two philosophies can be compared on equal substrate: feedback never
/// fails but sacrifices the top of the envelope when hot.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveFeedback {
    model: pdr_timing::OverclockModel,
    guard_mhz: u64,
}

impl ActiveFeedback {
    /// Creates a feedback controller around a timing model.
    pub fn new(model: pdr_timing::OverclockModel, guard_mhz: u64) -> Self {
        ActiveFeedback { model, guard_mhz }
    }

    /// The paper-calibrated model with a 5 MHz guard.
    pub fn paper_calibration() -> Self {
        ActiveFeedback::new(pdr_timing::OverclockModel::paper_calibration(), 5)
    }

    /// Clamps a requested frequency to the safe envelope at the sensed die
    /// temperature.
    pub fn clamp(&self, requested: Frequency, sensed_temp_c: f64) -> Frequency {
        let limit = self
            .model
            .max_safe_mhz(sensed_temp_c)
            .saturating_sub(self.guard_mhz);
        let req_mhz = requested.as_hz() / 1_000_000;
        Frequency::from_mhz(req_mhz.min(limit.max(1)))
    }

    /// Performs a feedback-clamped reconfiguration: sense, clamp, transfer.
    pub fn reconfigure(
        &self,
        sys: &mut ZynqPdrSystem,
        rp: usize,
        bitstream: &pdr_bitstream::Bitstream,
        requested: Frequency,
    ) -> crate::report::ReconfigReport {
        let sensed = sys.read_die_temp_c();
        let clamped = self.clamp(requested, sensed);
        sys.reconfigure(rp, bitstream, clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use pdr_sim_core::SimDuration;

    fn governed_system() -> (ZynqPdrSystem, Governor) {
        let sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let gov = Governor::new(GovernorConfig::default());
        (sys, gov)
    }

    #[test]
    fn characterisation_finds_the_envelope() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        // Highest usable probe ≤ 300 MHz (interrupt path dies at ~305).
        let max = gov.max_usable_mhz().expect("some point works");
        assert_eq!(max, 300);
        // Probing stopped shortly after the first corrupt point.
        let last = gov.points().last().expect("non-empty");
        assert!(last.freq_mhz <= 340);
    }

    #[test]
    fn max_throughput_prefers_plateau_start_under_ties() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let p = gov.select(Objective::MaxThroughput).clone();
        assert!(p.usable);
        // Guard band keeps it at least 20 MHz under the 300 MHz ceiling.
        assert!(p.freq_mhz <= 280);
        // And it must sit on the plateau.
        let plateau = gov
            .points()
            .iter()
            .filter_map(|p| p.throughput_mb_s)
            .fold(0.0f64, f64::max);
        assert!(p.throughput_mb_s.unwrap() > 0.98 * plateau);
    }

    #[test]
    fn max_efficiency_selects_the_knee() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let p = gov.select(Objective::MaxEfficiency).clone();
        assert_eq!(p.freq_mhz, 200, "points: {:?}", gov.points());
    }

    #[test]
    fn latency_budget_picks_lowest_power_that_fits() {
        let mut cfg = SystemConfig::fast_test();
        cfg.floorplan = crate::system::SystemConfig::default().floorplan;
        cfg.ideal_instruments = true;
        let mut sys = ZynqPdrSystem::new(cfg);
        let mut gov = Governor::new(GovernorConfig::default());
        gov.characterise(&mut sys, 0);
        // 1 ms budget: 528 kB needs ≥ ~529 MB/s → 140 MHz (558 MB/s) is the
        // slowest (= lowest power) point that fits.
        let p = gov
            .select(Objective::LatencyBudget(SimDuration::from_millis(1)))
            .clone();
        assert_eq!(p.freq_mhz, 140, "points: {:?}", gov.points());
        // A generous budget falls back to the cheapest point overall.
        let p = gov
            .select(Objective::LatencyBudget(SimDuration::from_millis(100)))
            .clone();
        assert_eq!(p.freq_mhz, 100);
    }

    #[test]
    fn select_highest_rides_the_edge() {
        let (mut sys, _) = governed_system();
        let mut gov = Governor::new(GovernorConfig {
            guard_band_mhz: 0,
            ..GovernorConfig::default()
        });
        gov.characterise(&mut sys, 0);
        let p = gov.select_highest().clone();
        assert_eq!(p.freq_mhz, 300);
        // With the default guard band the same policy stays 20 MHz lower.
        let mut careful = Governor::new(GovernorConfig::default());
        careful.characterise(&mut sys, 0);
        assert_eq!(careful.select_highest().freq_mhz, 280);
    }

    #[test]
    fn failure_feedback_steps_down() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let before = gov.select(Objective::MaxThroughput).freq_mhz;
        let after = gov.on_failure().expect("slower point exists").freq_mhz;
        assert!(after < before);
        assert_eq!(gov.current().unwrap().freq_mhz, after);
    }

    #[test]
    fn reinstate_undoes_a_transient_failure() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        assert_eq!(gov.floor_mhz(), Some(100));
        let before = gov.select_highest().freq_mhz;
        let after = gov.on_failure().expect("slower point exists").freq_mhz;
        assert!(after < before);
        // The burst passes; the burned point comes back.
        assert!(gov.reinstate(before));
        assert_eq!(gov.select_highest().freq_mhz, before);
        // Unknown frequencies are reported, not invented.
        assert!(!gov.reinstate(999));
    }

    #[test]
    fn active_feedback_clamps_hot_requests() {
        let fb = ActiveFeedback::paper_calibration();
        // Cool die: a 310 MHz request is clamped just under the envelope.
        let cool = fb.clamp(Frequency::from_mhz(310), 40.0);
        assert_eq!(cool, Frequency::from_mhz(300)); // 305 − 5 guard
                                                    // Hot die: clamped harder.
        let hot = fb.clamp(Frequency::from_mhz(310), 100.0);
        assert!(
            hot < cool,
            "hot clamp {hot} must be below cool clamp {cool}"
        );
        // Requests inside the envelope pass through.
        assert_eq!(
            fb.clamp(Frequency::from_mhz(200), 100.0),
            Frequency::from_mhz(200)
        );
    }

    #[test]
    fn active_feedback_never_fails_end_to_end() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let fb = ActiveFeedback::paper_calibration();
        let bs = sys.make_partial_bitstream(0, 1);
        for temp in [40.0, 70.0, 100.0] {
            sys.set_die_temp_c(temp);
            // The user greedily asks for 340 MHz at every temperature.
            let r = fb.reconfigure(&mut sys, 0, &bs, Frequency::from_mhz(340));
            assert!(r.crc_ok(), "feedback must keep {temp} °C safe: {r:?}");
            assert!(r.interrupt_seen);
            assert!(r.frequency().expect("PL-clocked").as_mhz_f64() <= 300.0);
        }
    }

    #[test]
    #[should_panic(expected = "no usable operating point")]
    fn select_without_characterise_panics() {
        let (_, mut gov) = governed_system();
        let _ = gov.select(Objective::MaxThroughput);
    }
}
