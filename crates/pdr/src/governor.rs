//! The over-clocking governor: the paper's "methodology to achieve the most
//! power efficient implementation" as executable code.
//!
//! The paper closes by noting that its throughput/power/temperature analysis
//! "can be extended to any IP block implemented in the FPGA to determine its
//! best trade-off throughput vs. energy". This module packages that
//! methodology:
//!
//! 1. **Characterise** ([`Governor::characterise`]): sweep the over-clock
//!    frequency on the live system, measuring throughput and P_PDR per
//!    point and validating every transfer with the CRC read-back — points
//!    that corrupt or lose their interrupt are marked unusable, exactly as
//!    in Table I.
//! 2. **Select** ([`Governor::select`]): pick the operating point for an
//!    [`Objective`] — maximum throughput, maximum performance-per-watt, or
//!    the lowest-power point meeting a latency target — with a configurable
//!    safety margin below the highest working frequency (robustness
//!    headroom for temperature excursions, Sec. IV-A).
//! 3. **Adapt** ([`Governor::on_failure`]): back off when the field reports
//!    a CRC error or lost interrupt (die heated past the characterised
//!    envelope), mirroring the active-feedback idea the paper credits to
//!    HP-2011 — but driven by end-to-end verification instead of voltage
//!    monitors.
//!
//! ```
//! use pdr_core::governor::{Governor, GovernorConfig, Objective};
//! use pdr_core::{SystemConfig, ZynqPdrSystem};
//!
//! let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
//! let mut gov = Governor::new(GovernorConfig {
//!     probe_ceil_mhz: 220, // a short probe for the example
//!     guard_band_mhz: 0,
//!     ..GovernorConfig::default()
//! });
//! gov.characterise(&mut sys, 0);
//! let point = gov.select(Objective::MaxEfficiency);
//! assert_eq!(point.freq_mhz, 200); // the paper's knee
//! ```

use pdr_sim_core::Frequency;

use crate::report::CrcStatus;
use crate::system::ZynqPdrSystem;

/// One characterised operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Over-clock frequency in MHz.
    pub freq_mhz: u64,
    /// Measured throughput in MB/s (`None` when unusable).
    pub throughput_mb_s: Option<f64>,
    /// Measured configuration latency in µs (`None` when the interrupt was
    /// lost).
    pub latency_us: Option<f64>,
    /// Measured P_PDR in W.
    pub p_pdr_w: f64,
    /// Performance-per-watt in MB/J (`None` when unusable).
    pub ppw_mb_j: Option<f64>,
    /// The point completed with a verified CRC and a completion interrupt.
    pub usable: bool,
}

pdr_sim_core::impl_json_struct!(OperatingPoint {
    freq_mhz,
    throughput_mb_s,
    latency_us,
    p_pdr_w,
    ppw_mb_j,
    usable,
});

/// What the governor optimises for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Highest verified throughput (the 280 MHz point of Table I).
    MaxThroughput,
    /// Highest performance-per-watt (the 200 MHz knee of Table II).
    MaxEfficiency,
    /// Lowest power that still reconfigures a bitstream of the
    /// characterisation size within the given budget.
    LatencyBudget(pdr_sim_core::SimDuration),
}

/// Governor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Frequencies to probe during characterisation, in MHz.
    pub probe_floor_mhz: u64,
    /// Upper probe bound, in MHz.
    pub probe_ceil_mhz: u64,
    /// Probe step, in MHz.
    pub probe_step_mhz: u64,
    /// Safety margin: selected points must sit at least this many MHz below
    /// the highest usable probe (temperature headroom).
    pub guard_band_mhz: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            probe_floor_mhz: 100,
            probe_ceil_mhz: 340,
            probe_step_mhz: 20,
            guard_band_mhz: 20,
        }
    }
}

/// The governor: characterisation results plus selection/adaptation state.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    points: Vec<OperatingPoint>,
    /// Index of the currently selected point, if any.
    current: Option<usize>,
}

impl Governor {
    /// Creates an uncharacterised governor.
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            config,
            points: Vec::new(),
            current: None,
        }
    }

    /// Sweeps the probe range on `sys` (at its current die temperature),
    /// reconfiguring partition `rp` once per frequency and recording
    /// verified throughput and power. Returns the characterised points.
    pub fn characterise(&mut self, sys: &mut ZynqPdrSystem, rp: usize) -> &[OperatingPoint] {
        let bs = sys.make_partial_bitstream(rp, 1);
        self.points.clear();
        let mut mhz = self.config.probe_floor_mhz;
        while mhz <= self.config.probe_ceil_mhz {
            let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(mhz));
            let usable = r.crc == CrcStatus::Valid && r.interrupt_seen;
            self.points.push(OperatingPoint {
                freq_mhz: mhz,
                throughput_mb_s: r.throughput_mb_s(),
                latency_us: r.latency.map(|l| l.as_micros_f64()),
                p_pdr_w: r.p_pdr_w,
                ppw_mb_j: r.ppw_mb_j(),
                usable,
            });
            // A corrupted probe means we are already past the data-path
            // envelope; probing even faster only stresses the part.
            if r.crc == CrcStatus::Invalid {
                break;
            }
            mhz += self.config.probe_step_mhz;
        }
        // Leave the fabric in a verified state after probing.
        let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(self.config.probe_floor_mhz));
        debug_assert!(r.crc_ok());
        &self.points
    }

    /// The characterised points.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The highest usable probe frequency, if any point worked.
    pub fn max_usable_mhz(&self) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.usable)
            .map(|p| p.freq_mhz)
            .max()
    }

    /// Selects the operating point for `objective`, honouring the guard
    /// band. Returns the chosen point.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Governor::characterise`] or if no usable
    /// point exists.
    pub fn select(&mut self, objective: Objective) -> &OperatingPoint {
        let ceiling = self
            .max_usable_mhz()
            .expect("characterise() found no usable operating point")
            .saturating_sub(self.config.guard_band_mhz);
        let candidates: Vec<usize> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz <= ceiling)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !candidates.is_empty(),
            "guard band of {} MHz leaves no usable point",
            self.config.guard_band_mhz
        );
        let best = match objective {
            Objective::MaxThroughput => candidates
                .into_iter()
                .max_by(|&a, &b| {
                    let ta = self.points[a].throughput_mb_s.unwrap_or(0.0);
                    let tb = self.points[b].throughput_mb_s.unwrap_or(0.0);
                    // Ties (on the plateau) go to the *lower* frequency:
                    // same speed, less power.
                    ta.partial_cmp(&tb)
                        .expect("finite")
                        .then(self.points[b].freq_mhz.cmp(&self.points[a].freq_mhz))
                })
                .expect("non-empty"),
            Objective::MaxEfficiency => candidates
                .into_iter()
                .max_by(|&a, &b| {
                    let ea = self.points[a].ppw_mb_j.unwrap_or(0.0);
                    let eb = self.points[b].ppw_mb_j.unwrap_or(0.0);
                    ea.partial_cmp(&eb).expect("finite")
                })
                .expect("non-empty"),
            Objective::LatencyBudget(budget) => candidates
                .into_iter()
                .filter(|&i| match self.points[i].latency_us {
                    Some(us) => us <= budget.as_micros_f64(),
                    None => false,
                })
                .min_by(|&a, &b| {
                    self.points[a]
                        .p_pdr_w
                        .partial_cmp(&self.points[b].p_pdr_w)
                        .expect("finite")
                })
                .expect("no usable point meets the latency budget"),
        };
        self.current = Some(best);
        &self.points[best]
    }

    /// Selects the *highest* usable frequency within the guard band — the
    /// edge-riding policy a latency-obsessed deployment might use, and the
    /// one most likely to need [`Governor::on_failure`] when conditions
    /// shift.
    ///
    /// # Panics
    ///
    /// Panics if no usable point exists.
    pub fn select_highest(&mut self) -> &OperatingPoint {
        let ceiling = self
            .max_usable_mhz()
            .expect("characterise() found no usable operating point")
            .saturating_sub(self.config.guard_band_mhz);
        let best = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz <= ceiling)
            .max_by_key(|(_, p)| p.freq_mhz)
            .map(|(i, _)| i)
            .expect("guard band leaves no usable point");
        self.current = Some(best);
        &self.points[best]
    }

    /// The currently selected point.
    pub fn current(&self) -> Option<&OperatingPoint> {
        self.current.map(|i| &self.points[i])
    }

    /// Field feedback: a reconfiguration at the selected point failed
    /// (CRC error or lost interrupt — e.g. the die heated past the
    /// characterised envelope). The governor marks the point unusable and
    /// steps down to the next-slower usable frequency, returning it, or
    /// `None` when no slower point remains.
    pub fn on_failure(&mut self) -> Option<&OperatingPoint> {
        let i = self.current.take()?;
        self.points[i].usable = false;
        let fallback = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.usable && p.freq_mhz < self.points[i].freq_mhz)
            .max_by_key(|(_, p)| p.freq_mhz)
            .map(|(j, _)| j)?;
        self.current = Some(fallback);
        Some(&self.points[fallback])
    }

    /// The lowest characterised frequency, usable or not — the hard floor
    /// no amount of backoff may cross.
    pub fn floor_mhz(&self) -> Option<u64> {
        self.points.iter().map(|p| p.freq_mhz).min()
    }

    /// Checkpoints the characterisation table and selection cursor. The
    /// probe configuration is structural (supplied at construction) and
    /// does not travel.
    pub fn snapshot_json(&self) -> pdr_sim_core::json::Json {
        use pdr_sim_core::json::{Json, ToJson};
        Json::Obj(vec![
            (
                "points".to_string(),
                Json::Arr(self.points.iter().map(|p| p.to_json()).collect()),
            ),
            (
                "current".to_string(),
                self.current.map(|i| i as u64).to_json(),
            ),
        ])
    }

    /// Restores a checkpoint taken with [`Governor::snapshot_json`].
    pub fn restore_json(
        &mut self,
        json: &pdr_sim_core::json::Json,
    ) -> Result<(), pdr_sim_core::json::JsonError> {
        use pdr_sim_core::json::{FromJson, Json, JsonError};
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "governor snapshot missing `points`".to_string(),
            })?
            .iter()
            .map(OperatingPoint::from_json)
            .collect::<Result<Vec<OperatingPoint>, JsonError>>()?;
        let current = Option::<u64>::from_json(json.get("current").unwrap_or(&Json::Null))?
            .map(|i| i as usize);
        if let Some(i) = current {
            if i >= points.len() {
                return Err(JsonError {
                    msg: "governor snapshot `current` out of range".to_string(),
                });
            }
        }
        self.points = points;
        self.current = current;
        Ok(())
    }

    /// Re-marks the point at `freq_mhz` usable — the recovery path for
    /// *transient* failures (a timing burst that has passed), where
    /// permanently burning the operating point would ratchet the system to
    /// its floor over a long campaign. Returns true when the point exists.
    pub fn reinstate(&mut self, freq_mhz: u64) -> bool {
        match self.points.iter_mut().find(|p| p.freq_mhz == freq_mhz) {
            Some(p) => {
                p.usable = true;
                true
            }
            None => false,
        }
    }
}

/// One characterised voltage–frequency operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsOperatingPoint {
    /// PL core supply in millivolts.
    pub vdd_mv: u32,
    /// The frequency-axis point measured at that supply.
    pub point: OperatingPoint,
}

pdr_sim_core::impl_json_struct!(DvfsOperatingPoint { vdd_mv, point });

/// Configuration for the V/f co-optimizing governor.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsConfig {
    /// Supply voltages to characterise, in millivolts. Probed in order;
    /// score ties go to the earlier entry, so list the preferred (nominal)
    /// supply before exotic ones if determinism of ties matters to you.
    pub vdd_grid_mv: Vec<u32>,
    /// The per-voltage frequency sweep.
    pub governor: GovernorConfig,
    /// What the co-optimizer maximises across the whole (V, f) grid.
    pub objective: Objective,
    /// Simulated time to let the die settle between convergence rounds.
    pub settle: pdr_sim_core::SimDuration,
    /// Convergence-round budget: characterise → select → settle, repeated
    /// until the selection stops moving or this many rounds have run.
    pub max_rounds: usize,
    /// The frequency the governor falls back to under a thermal alarm.
    pub throttle_floor_mhz: u64,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        DvfsConfig {
            vdd_grid_mv: vec![950, pdr_power::VDD_NOMINAL_MV, 1050],
            governor: GovernorConfig::default(),
            objective: Objective::MaxEfficiency,
            settle: pdr_sim_core::SimDuration::from_millis(2),
            max_rounds: 4,
            throttle_floor_mhz: 100,
        }
    }
}

/// The closed-loop V/f co-optimizer: one frequency [`Governor`] per grid
/// voltage, plus the thermal-alarm backoff state.
///
/// The paper's methodology characterises frequency at a fixed supply; the
/// VolTune/VAS line of work it cites varies the supply too. This governor
/// runs the paper's sweep once per grid voltage, scores every usable (V, f)
/// cell under one objective, and commits the winner to the live system —
/// then keeps re-characterising until the electro-thermal loop stops moving
/// the answer (the *emergent* sweet spot the test suite locks down).
#[derive(Debug, Clone)]
pub struct DvfsGovernor {
    config: DvfsConfig,
    /// One characterisation table per grid voltage, in grid order.
    tables: Vec<(u32, Governor)>,
    /// Index into `tables` of the committed voltage, if any.
    active: Option<usize>,
    /// Latched by a thermal alarm until [`DvfsGovernor::reinstate`].
    throttled: bool,
}

impl DvfsGovernor {
    /// Creates an uncharacterised co-optimizer.
    ///
    /// # Panics
    ///
    /// Panics on an empty voltage grid.
    pub fn new(config: DvfsConfig) -> Self {
        assert!(
            !config.vdd_grid_mv.is_empty(),
            "DVFS governor needs at least one grid voltage"
        );
        DvfsGovernor {
            config,
            tables: Vec::new(),
            active: None,
            throttled: false,
        }
    }

    /// The configuration (read-only).
    pub fn config(&self) -> &DvfsConfig {
        &self.config
    }

    /// Sweeps frequency at every grid voltage, rebuilding all tables. The
    /// system is left at the *last* grid voltage; callers normally follow
    /// with [`DvfsGovernor::select`], which commits the winning supply.
    pub fn characterise(&mut self, sys: &mut ZynqPdrSystem, rp: usize) {
        self.tables.clear();
        self.active = None;
        for &vdd in &self.config.vdd_grid_mv {
            sys.set_vdd_mv(vdd);
            let mut gov = Governor::new(self.config.governor);
            gov.characterise(sys, rp);
            self.tables.push((vdd, gov));
        }
    }

    /// The per-voltage tables, in grid order.
    pub fn tables(&self) -> &[(u32, Governor)] {
        &self.tables
    }

    /// True while a thermal alarm has the governor pinned to its floor.
    pub fn throttled(&self) -> bool {
        self.throttled
    }

    /// Whether this voltage's table has at least one candidate that survives
    /// the guard band (and, for a latency objective, meets the budget) — the
    /// pre-check that keeps [`Governor::select`]'s panic unreachable.
    fn eligible(&self, gov: &Governor) -> bool {
        let Some(max) = gov.max_usable_mhz() else {
            return false;
        };
        let ceiling = max.saturating_sub(self.config.governor.guard_band_mhz);
        gov.points().iter().any(|p| {
            p.usable
                && p.freq_mhz <= ceiling
                && match self.config.objective {
                    Objective::LatencyBudget(budget) => match p.latency_us {
                        Some(us) => us <= budget.as_micros_f64(),
                        None => false,
                    },
                    _ => true,
                }
        })
    }

    /// How good a selected point is under the configured objective (higher
    /// is better; power is negated so cheaper wins).
    fn score(&self, p: &OperatingPoint) -> f64 {
        match self.config.objective {
            Objective::MaxThroughput => p.throughput_mb_s.unwrap_or(0.0),
            Objective::MaxEfficiency => p.ppw_mb_j.unwrap_or(0.0),
            Objective::LatencyBudget(_) => -p.p_pdr_w,
        }
    }

    /// Scores every eligible voltage's best point and **commits** the winner:
    /// the system's supply moves to the winning voltage (booking a
    /// [`crate::trace::TraceEvent::DvfsSet`]) and the winning table's cursor
    /// points at the chosen frequency. Ties go to the earlier grid entry.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DvfsGovernor::characterise`] or when no
    /// (V, f) cell is usable under the guard band and objective.
    pub fn select(&mut self, sys: &mut ZynqPdrSystem) -> DvfsOperatingPoint {
        assert!(
            !self.tables.is_empty(),
            "select() before characterise(): no (V, f) tables"
        );
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.tables.len() {
            if !self.eligible(&self.tables[i].1) {
                continue;
            }
            let objective = self.config.objective;
            let point = self.tables[i].1.select(objective).clone();
            let s = self.score(&point);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
        let (idx, _) = best.expect("no usable (V, f) operating point on the grid");
        self.active = Some(idx);
        let (vdd, ref gov) = self.tables[idx];
        let point = gov.current().expect("select() set the cursor").clone();
        sys.set_vdd_mv(vdd);
        DvfsOperatingPoint { vdd_mv: vdd, point }
    }

    /// The committed (V, f) point, if any.
    pub fn current(&self) -> Option<DvfsOperatingPoint> {
        let idx = self.active?;
        let (vdd, ref gov) = self.tables[idx];
        Some(DvfsOperatingPoint {
            vdd_mv: vdd,
            point: gov.current()?.clone(),
        })
    }

    /// The frequency governor of the committed voltage — the hook the
    /// recovery ladder drives ([`Governor::on_failure`] /
    /// [`Governor::reinstate`] keep working unchanged under DVFS).
    pub fn active_governor_mut(&mut self) -> Option<&mut Governor> {
        self.active.map(|i| &mut self.tables[i].1)
    }

    /// Runs the closed loop to a fixed point: characterise at the present
    /// die temperature, commit the best (V, f) cell, reconfigure once at the
    /// committed point (re-basing the thermal heater), let the die settle,
    /// service any thermal alarm, and repeat until the selection stops
    /// moving or the round budget runs out. Returns the converged point.
    ///
    /// # Panics
    ///
    /// Panics if no (V, f) cell is ever usable.
    pub fn converge(&mut self, sys: &mut ZynqPdrSystem, rp: usize) -> DvfsOperatingPoint {
        let mut last: Option<(u32, u64)> = None;
        let mut chosen = None;
        for _ in 0..self.config.max_rounds.max(1) {
            self.characterise(sys, rp);
            let pick = self.select(sys);
            // Park the fabric (and the heater) at the committed point, not
            // at the sweep's floor probe.
            let bs = sys.make_partial_bitstream(rp, 1);
            let r = sys.reconfigure(rp, &bs, Frequency::from_mhz(pick.point.freq_mhz));
            debug_assert!(r.crc_ok(), "committed point must verify: {r:?}");
            sys.engine_mut().run_for(self.config.settle);
            if sys.poll_thermal_alarm().is_some() {
                self.on_thermal_alarm(sys);
                last = None; // a throttle invalidates the fixed point
                continue;
            }
            let key = (pick.vdd_mv, pick.point.freq_mhz);
            let stable = last == Some(key);
            chosen = Some(pick);
            last = Some(key);
            if stable {
                break;
            }
        }
        chosen.expect("at least one convergence round ran")
    }

    /// Thermal-alarm backoff: drop the supply to the lowest grid voltage and
    /// the frequency to the throttle floor, booking a
    /// [`crate::trace::TraceEvent::ThermalThrottle`]. The governor stays
    /// throttled (selection state cleared) until [`DvfsGovernor::reinstate`].
    pub fn on_thermal_alarm(&mut self, sys: &mut ZynqPdrSystem) -> DvfsOperatingPoint {
        let vdd = *self
            .config
            .vdd_grid_mv
            .iter()
            .min()
            .expect("non-empty grid");
        let freq_mhz = self.config.throttle_floor_mhz;
        self.throttled = true;
        self.active = None;
        sys.set_vdd_mv(vdd);
        sys.trace_emit(crate::trace::TraceEvent::ThermalThrottle {
            vdd_mv: u64::from(vdd),
            freq_mhz,
        });
        DvfsOperatingPoint {
            vdd_mv: vdd,
            point: OperatingPoint {
                freq_mhz,
                throughput_mb_s: None,
                latency_us: None,
                p_pdr_w: 0.0,
                ppw_mb_j: None,
                usable: true,
            },
        }
    }

    /// Clears the throttle latch once the die has cooled; the next
    /// [`DvfsGovernor::select`] or [`DvfsGovernor::converge`] may climb
    /// back up the grid.
    pub fn reinstate(&mut self) {
        self.throttled = false;
    }

    /// Checkpoints every per-voltage table plus the selection/throttle
    /// state. The grid and objective are structural and do not travel.
    pub fn snapshot_json(&self) -> pdr_sim_core::json::Json {
        use pdr_sim_core::json::{Json, ToJson};
        Json::Obj(vec![
            (
                "tables".to_string(),
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|(vdd, gov)| {
                            Json::Obj(vec![
                                ("vdd_mv".to_string(), Json::U64(u64::from(*vdd))),
                                ("governor".to_string(), gov.snapshot_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "active".to_string(),
                self.active.map(|i| i as u64).to_json(),
            ),
            ("throttled".to_string(), Json::Bool(self.throttled)),
        ])
    }

    /// Restores a checkpoint taken with [`DvfsGovernor::snapshot_json`].
    pub fn restore_json(
        &mut self,
        json: &pdr_sim_core::json::Json,
    ) -> Result<(), pdr_sim_core::json::JsonError> {
        use pdr_sim_core::json::{FromJson, Json, JsonError};
        let raw = json
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "dvfs snapshot missing `tables`".to_string(),
            })?;
        let mut tables = Vec::with_capacity(raw.len());
        for entry in raw {
            let vdd = entry
                .get("vdd_mv")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError {
                    msg: "dvfs table entry missing `vdd_mv`".to_string(),
                })?;
            let vdd = u32::try_from(vdd).map_err(|_| JsonError {
                msg: format!("vdd_mv {vdd} out of u32 range"),
            })?;
            let mut gov = Governor::new(self.config.governor);
            gov.restore_json(entry.get("governor").ok_or_else(|| JsonError {
                msg: "dvfs table entry missing `governor`".to_string(),
            })?)?;
            tables.push((vdd, gov));
        }
        let active = Option::<u64>::from_json(json.get("active").unwrap_or(&Json::Null))?
            .map(|i| i as usize);
        if let Some(i) = active {
            if i >= tables.len() {
                return Err(JsonError {
                    msg: "dvfs snapshot `active` out of range".to_string(),
                });
            }
        }
        let throttled = bool::from_json(json.get("throttled").unwrap_or(&Json::Bool(false)))?;
        self.tables = tables;
        self.active = active;
        self.throttled = throttled;
        Ok(())
    }
}

/// HP-2011-style **active feedback**: instead of characterising offline, the
/// controller reads the die-temperature sensor before every transfer and
/// clamps the requested over-clock to the model-predicted safe envelope
/// minus a guard band.
///
/// The paper contrasts its open-loop over-clocking (characterise once,
/// verify with CRC) against HP-2011's closed loop (monitor, stay nominal).
/// This type implements the closed loop on top of the same timing model, so
/// the two philosophies can be compared on equal substrate: feedback never
/// fails but sacrifices the top of the envelope when hot.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveFeedback {
    model: pdr_timing::OverclockModel,
    guard_mhz: u64,
}

impl ActiveFeedback {
    /// Creates a feedback controller around a timing model.
    pub fn new(model: pdr_timing::OverclockModel, guard_mhz: u64) -> Self {
        ActiveFeedback { model, guard_mhz }
    }

    /// The paper-calibrated model with a 5 MHz guard.
    pub fn paper_calibration() -> Self {
        ActiveFeedback::new(pdr_timing::OverclockModel::paper_calibration(), 5)
    }

    /// Clamps a requested frequency to the safe envelope at the sensed die
    /// temperature.
    pub fn clamp(&self, requested: Frequency, sensed_temp_c: f64) -> Frequency {
        let limit = self
            .model
            .max_safe_mhz(sensed_temp_c)
            .saturating_sub(self.guard_mhz);
        let req_mhz = requested.as_hz() / 1_000_000;
        Frequency::from_mhz(req_mhz.min(limit.max(1)))
    }

    /// Performs a feedback-clamped reconfiguration: sense, clamp, transfer.
    pub fn reconfigure(
        &self,
        sys: &mut ZynqPdrSystem,
        rp: usize,
        bitstream: &pdr_bitstream::Bitstream,
        requested: Frequency,
    ) -> crate::report::ReconfigReport {
        let sensed = sys.read_die_temp_c();
        let clamped = self.clamp(requested, sensed);
        sys.reconfigure(rp, bitstream, clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use pdr_sim_core::SimDuration;

    fn governed_system() -> (ZynqPdrSystem, Governor) {
        let sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let gov = Governor::new(GovernorConfig::default());
        (sys, gov)
    }

    #[test]
    fn characterisation_finds_the_envelope() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        // Highest usable probe ≤ 300 MHz (interrupt path dies at ~305).
        let max = gov.max_usable_mhz().expect("some point works");
        assert_eq!(max, 300);
        // Probing stopped shortly after the first corrupt point.
        let last = gov.points().last().expect("non-empty");
        assert!(last.freq_mhz <= 340);
    }

    #[test]
    fn max_throughput_prefers_plateau_start_under_ties() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let p = gov.select(Objective::MaxThroughput).clone();
        assert!(p.usable);
        // Guard band keeps it at least 20 MHz under the 300 MHz ceiling.
        assert!(p.freq_mhz <= 280);
        // And it must sit on the plateau.
        let plateau = gov
            .points()
            .iter()
            .filter_map(|p| p.throughput_mb_s)
            .fold(0.0f64, f64::max);
        assert!(p.throughput_mb_s.unwrap() > 0.98 * plateau);
    }

    #[test]
    fn max_efficiency_selects_the_knee() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let p = gov.select(Objective::MaxEfficiency).clone();
        assert_eq!(p.freq_mhz, 200, "points: {:?}", gov.points());
    }

    #[test]
    fn latency_budget_picks_lowest_power_that_fits() {
        let mut cfg = SystemConfig::fast_test();
        cfg.floorplan = crate::system::SystemConfig::default().floorplan;
        cfg.ideal_instruments = true;
        let mut sys = ZynqPdrSystem::new(cfg);
        let mut gov = Governor::new(GovernorConfig::default());
        gov.characterise(&mut sys, 0);
        // 1 ms budget: 528 kB needs ≥ ~529 MB/s → 140 MHz (558 MB/s) is the
        // slowest (= lowest power) point that fits.
        let p = gov
            .select(Objective::LatencyBudget(SimDuration::from_millis(1)))
            .clone();
        assert_eq!(p.freq_mhz, 140, "points: {:?}", gov.points());
        // A generous budget falls back to the cheapest point overall.
        let p = gov
            .select(Objective::LatencyBudget(SimDuration::from_millis(100)))
            .clone();
        assert_eq!(p.freq_mhz, 100);
    }

    #[test]
    fn select_highest_rides_the_edge() {
        let (mut sys, _) = governed_system();
        let mut gov = Governor::new(GovernorConfig {
            guard_band_mhz: 0,
            ..GovernorConfig::default()
        });
        gov.characterise(&mut sys, 0);
        let p = gov.select_highest().clone();
        assert_eq!(p.freq_mhz, 300);
        // With the default guard band the same policy stays 20 MHz lower.
        let mut careful = Governor::new(GovernorConfig::default());
        careful.characterise(&mut sys, 0);
        assert_eq!(careful.select_highest().freq_mhz, 280);
    }

    #[test]
    fn failure_feedback_steps_down() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        let before = gov.select(Objective::MaxThroughput).freq_mhz;
        let after = gov.on_failure().expect("slower point exists").freq_mhz;
        assert!(after < before);
        assert_eq!(gov.current().unwrap().freq_mhz, after);
    }

    #[test]
    fn reinstate_undoes_a_transient_failure() {
        let (mut sys, mut gov) = governed_system();
        gov.characterise(&mut sys, 0);
        assert_eq!(gov.floor_mhz(), Some(100));
        let before = gov.select_highest().freq_mhz;
        let after = gov.on_failure().expect("slower point exists").freq_mhz;
        assert!(after < before);
        // The burst passes; the burned point comes back.
        assert!(gov.reinstate(before));
        assert_eq!(gov.select_highest().freq_mhz, before);
        // Unknown frequencies are reported, not invented.
        assert!(!gov.reinstate(999));
    }

    #[test]
    fn active_feedback_clamps_hot_requests() {
        let fb = ActiveFeedback::paper_calibration();
        // Cool die: a 310 MHz request is clamped just under the envelope.
        let cool = fb.clamp(Frequency::from_mhz(310), 40.0);
        assert_eq!(cool, Frequency::from_mhz(300)); // 305 − 5 guard
                                                    // Hot die: clamped harder.
        let hot = fb.clamp(Frequency::from_mhz(310), 100.0);
        assert!(
            hot < cool,
            "hot clamp {hot} must be below cool clamp {cool}"
        );
        // Requests inside the envelope pass through.
        assert_eq!(
            fb.clamp(Frequency::from_mhz(200), 100.0),
            Frequency::from_mhz(200)
        );
    }

    #[test]
    fn active_feedback_never_fails_end_to_end() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let fb = ActiveFeedback::paper_calibration();
        let bs = sys.make_partial_bitstream(0, 1);
        for temp in [40.0, 70.0, 100.0] {
            sys.set_die_temp_c(temp);
            // The user greedily asks for 340 MHz at every temperature.
            let r = fb.reconfigure(&mut sys, 0, &bs, Frequency::from_mhz(340));
            assert!(r.crc_ok(), "feedback must keep {temp} °C safe: {r:?}");
            assert!(r.interrupt_seen);
            assert!(r.frequency().expect("PL-clocked").as_mhz_f64() <= 300.0);
        }
    }

    #[test]
    #[should_panic(expected = "no usable operating point")]
    fn select_without_characterise_panics() {
        let (_, mut gov) = governed_system();
        let _ = gov.select(Objective::MaxThroughput);
    }

    #[test]
    fn dvfs_grid_prefers_the_nominal_knee_for_efficiency() {
        // Undervolting cuts power ~10% but the +150 MHz timing bias caps the
        // usable sweep near 140 MHz; overvolting extends the envelope but
        // pays ~10% more power on the saturated plateau. The nominal 200 MHz
        // knee must win the whole grid.
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut dvfs = DvfsGovernor::new(DvfsConfig::default());
        dvfs.characterise(&mut sys, 0);
        assert_eq!(dvfs.tables().len(), 3);
        let pick = dvfs.select(&mut sys);
        assert_eq!(pick.vdd_mv, 1000, "tables: {:?}", dvfs.tables());
        assert_eq!(pick.point.freq_mhz, 200);
        assert_eq!(sys.vdd_mv(), 1000, "select must commit the supply");
        // Noisy (fast_test) instruments: the knee's MB/J lands near the
        // paper's 599 but the tight 5% claim lives in tests/paper_claims.rs
        // on ideal instruments.
        let ppw = pick.point.ppw_mb_j.expect("usable point");
        assert!((540.0..=660.0).contains(&ppw), "ppw {ppw}");
    }

    #[test]
    fn dvfs_overvolt_wins_when_throughput_is_the_objective() {
        // At 1050 mV the interrupt envelope stretches past 340 MHz, so the
        // throughput plateau is reachable deeper into the sweep; the
        // efficiency penalty is irrelevant under MaxThroughput — but the
        // plateau tie-break (same MB/s, lower power at nominal... still
        // scores equal throughput) keeps the earlier grid entry unless the
        // extended envelope actually buys bytes. Either way the chosen point
        // must be usable and at least as fast as the nominal pick.
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut dvfs = DvfsGovernor::new(DvfsConfig {
            objective: Objective::MaxThroughput,
            ..DvfsConfig::default()
        });
        dvfs.characterise(&mut sys, 0);
        let pick = dvfs.select(&mut sys);
        assert!(pick.point.usable);
        assert!(pick.point.freq_mhz >= 200, "pick: {pick:?}");
    }

    #[test]
    fn dvfs_recovery_hook_drives_the_active_table() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut dvfs = DvfsGovernor::new(DvfsConfig::default());
        dvfs.characterise(&mut sys, 0);
        let before = dvfs.select(&mut sys);
        let g = dvfs.active_governor_mut().expect("committed");
        let stepped = g.on_failure().expect("slower point exists").freq_mhz;
        assert!(stepped < before.point.freq_mhz);
        assert_eq!(dvfs.current().unwrap().point.freq_mhz, stepped);
    }

    #[test]
    fn dvfs_thermal_alarm_throttles_and_reinstates() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut dvfs = DvfsGovernor::new(DvfsConfig::default());
        dvfs.characterise(&mut sys, 0);
        let _ = dvfs.select(&mut sys);
        let floor = dvfs.on_thermal_alarm(&mut sys);
        assert!(dvfs.throttled());
        assert_eq!(floor.vdd_mv, 950);
        assert_eq!(floor.point.freq_mhz, 100);
        assert_eq!(sys.vdd_mv(), 950);
        assert!(dvfs.current().is_none(), "throttle clears the selection");
        dvfs.reinstate();
        assert!(!dvfs.throttled());
        let again = dvfs.select(&mut sys);
        assert_eq!(again.vdd_mv, 1000, "recovers the sweet spot");
    }

    #[test]
    fn dvfs_snapshot_round_trips_tables_and_cursor() {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        let mut dvfs = DvfsGovernor::new(DvfsConfig::default());
        dvfs.characterise(&mut sys, 0);
        let picked = dvfs.select(&mut sys);
        let snap = dvfs.snapshot_json();
        let mut restored = DvfsGovernor::new(DvfsConfig::default());
        restored.restore_json(&snap).unwrap();
        assert_eq!(restored.current(), Some(picked));
        assert_eq!(
            restored.snapshot_json().render(),
            snap.render(),
            "snapshot of a restore must be byte-identical"
        );
    }

    #[test]
    #[should_panic(expected = "at least one grid voltage")]
    fn dvfs_empty_grid_is_rejected() {
        let _ = DvfsGovernor::new(DvfsConfig {
            vdd_grid_mv: vec![],
            ..DvfsConfig::default()
        });
    }
}
