//! Typed runners for every table and figure of the paper.
//!
//! Each runner returns plain data rows so that benches, examples and tests
//! share one implementation; the paper's published values ship alongside as
//! constants for side-by-side comparison (EXPERIMENTS.md is generated from
//! these).

use pdr_bitstream::{Bitstream, Builder};
use pdr_fabric::{AspImage, AspKind, Geometry};
use pdr_power::knee_frequency_mhz;
use pdr_sim_core::{impl_json_struct, Frequency};

use crate::baselines::{Hkt2011, Hp2011, Vf2012};
use crate::proposed::{ProposedConfig, ProposedSystem};
use crate::report::CrcStatus;
use crate::system::{SystemConfig, ZynqPdrSystem, IDCODE};

/// Controls experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Full scale = the ZedBoard floorplan with 528,568-byte bitstreams
    /// (what the benches run); small scale = the fast-test floorplan (what
    /// unit tests run to check *shape* quickly).
    pub full_scale: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            full_scale: true,
            seed: 0xC0FFEE,
        }
    }
}

impl ExperimentConfig {
    /// Small-scale config for tests.
    pub fn small() -> Self {
        ExperimentConfig {
            full_scale: false,
            seed: 0xC0FFEE,
        }
    }

    fn system(&self, die_temp_c: f64) -> ZynqPdrSystem {
        let mut cfg = if self.full_scale {
            SystemConfig {
                ideal_instruments: true,
                ..SystemConfig::default()
            }
        } else {
            SystemConfig::fast_test()
        };
        cfg.seed = self.seed;
        cfg.initial_die_temp_c = die_temp_c;
        ZynqPdrSystem::new(cfg)
    }
}

// ---------------------------------------------------------------------------
// E1: Table I — throughput vs frequency when over-clocking (40 °C).
// ---------------------------------------------------------------------------

/// The frequencies of Table I, in MHz.
pub const TABLE1_FREQS_MHZ: [u64; 9] = [100, 140, 180, 200, 240, 280, 310, 320, 360];

/// One published Table I row: `(MHz, Some((latency µs, throughput MB/s)))`,
/// with `None` for the "N/A no interrupt" rows, plus the CRC verdict.
pub type PaperTable1Row = (u64, Option<(f64, f64)>, bool);

/// Paper values of Table I.
pub const TABLE1_PAPER: [PaperTable1Row; 9] = [
    (100, Some((1325.60, 399.06)), true),
    (140, Some((947.40, 558.12)), true),
    (180, Some((737.50, 716.96)), true),
    (200, Some((676.30, 781.84)), true),
    (240, Some((671.90, 786.96)), true),
    (280, Some((669.20, 790.14)), true),
    (310, None, true),
    (320, None, false),
    (360, None, false),
];

/// One measured row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// ICAP/DMA over-clock frequency in MHz.
    pub freq_mhz: u64,
    /// Configuration latency in µs (`None` = no interrupt).
    pub latency_us: Option<f64>,
    /// Throughput in MB/s (`None` = no interrupt).
    pub throughput_mb_s: Option<f64>,
    /// CRC read-back verdict.
    pub crc_valid: bool,
    /// Whether the completion interrupt arrived.
    pub interrupt_seen: bool,
}

impl_json_struct!(Table1Row {
    freq_mhz,
    latency_us,
    throughput_mb_s,
    crc_valid,
    interrupt_seen,
});

/// Runs Table I: one reconfiguration per tested frequency at 40 °C.
pub fn table1(cfg: &ExperimentConfig) -> Vec<Table1Row> {
    TABLE1_FREQS_MHZ
        .iter()
        .map(|&mhz| {
            let mut sys = cfg.system(40.0);
            let bs = sys.make_partial_bitstream(0, 1);
            let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
            Table1Row {
                freq_mhz: mhz,
                latency_us: r.latency.map(|l| l.as_micros_f64()),
                throughput_mb_s: r.throughput_mb_s(),
                crc_valid: r.crc == CrcStatus::Valid,
                interrupt_seen: r.interrupt_seen,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E2: Fig. 5 — the throughput-vs-frequency curve.
// ---------------------------------------------------------------------------

/// One point of the Fig. 5 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Frequency in MHz.
    pub freq_mhz: u64,
    /// Throughput in MB/s (`None` where the interrupt is lost).
    pub throughput_mb_s: Option<f64>,
}

impl_json_struct!(Fig5Point {
    freq_mhz,
    throughput_mb_s,
});

/// Runs Fig. 5: 100–310 MHz in 10 MHz steps at 40 °C.
pub fn fig5(cfg: &ExperimentConfig) -> Vec<Fig5Point> {
    (100..=310)
        .step_by(10)
        .map(|mhz| {
            let mut sys = cfg.system(40.0);
            let bs = sys.make_partial_bitstream(0, 1);
            let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
            Fig5Point {
                freq_mhz: mhz,
                throughput_mb_s: r.throughput_mb_s(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E3: Sec. IV-A — the temperature stress matrix.
// ---------------------------------------------------------------------------

/// One cell of the stress matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressCell {
    /// Frequency in MHz.
    pub freq_mhz: u64,
    /// Die temperature in °C.
    pub temp_c: f64,
    /// Whether the configuration verified.
    pub crc_valid: bool,
    /// Whether the completion interrupt arrived.
    pub interrupt_seen: bool,
}

impl_json_struct!(StressCell {
    freq_mhz,
    temp_c,
    crc_valid,
    interrupt_seen,
});

/// The temperatures of the stress protocol.
pub const STRESS_TEMPS_C: [f64; 7] = [40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];

/// Runs the Sec. IV-A stress: every Table I frequency up to 310 MHz at every
/// temperature step. The paper's result: a single failing cell, (310 MHz,
/// 100 °C).
pub fn stress(cfg: &ExperimentConfig) -> Vec<StressCell> {
    let freqs: Vec<u64> = TABLE1_FREQS_MHZ
        .iter()
        .copied()
        .filter(|&f| f <= 310)
        .collect();
    let mut cells = Vec::new();
    for &temp in &STRESS_TEMPS_C {
        for &mhz in &freqs {
            let mut sys = cfg.system(temp);
            let bs = sys.make_partial_bitstream(0, 1);
            let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
            cells.push(StressCell {
                freq_mhz: mhz,
                temp_c: temp,
                crc_valid: r.crc == CrcStatus::Valid,
                interrupt_seen: r.interrupt_seen,
            });
        }
    }
    cells
}

/// The failing cells of a stress matrix (CRC-invalid ones).
pub fn stress_failures(cells: &[StressCell]) -> Vec<(u64, f64)> {
    cells
        .iter()
        .filter(|c| !c.crc_valid)
        .map(|c| (c.freq_mhz, c.temp_c))
        .collect()
}

// ---------------------------------------------------------------------------
// E4: Fig. 6 — power vs frequency at different die temperatures.
// ---------------------------------------------------------------------------

/// One point of the Fig. 6 fan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Die temperature in °C.
    pub temp_c: f64,
    /// Frequency in MHz.
    pub freq_mhz: u64,
    /// P_PDR in W (board reading minus P0).
    pub p_pdr_w: f64,
}

impl_json_struct!(Fig6Point {
    temp_c,
    freq_mhz,
    p_pdr_w,
});

/// The temperatures plotted in Fig. 6.
pub const FIG6_TEMPS_C: [f64; 4] = [40.0, 60.0, 80.0, 100.0];

/// Runs Fig. 6: P_PDR measured during transfers at each (f, T).
pub fn fig6(cfg: &ExperimentConfig) -> Vec<Fig6Point> {
    let mut points = Vec::new();
    for &temp in &FIG6_TEMPS_C {
        for mhz in (100..=310).step_by(30) {
            let mut sys = cfg.system(temp);
            let bs = sys.make_partial_bitstream(0, 1);
            let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
            points.push(Fig6Point {
                temp_c: temp,
                freq_mhz: mhz,
                p_pdr_w: r.p_pdr_w,
            });
        }
    }
    points
}

// ---------------------------------------------------------------------------
// E5: Table II — power efficiency at 40 °C.
// ---------------------------------------------------------------------------

/// Paper values of Table II: `(MHz, P_PDR W, throughput MB/s, PpW MB/J)`.
pub const TABLE2_PAPER: [(u64, f64, f64, f64); 6] = [
    (100, 1.14, 399.06, 351.0),
    (140, 1.23, 558.12, 453.0),
    (180, 1.28, 716.96, 560.0),
    (200, 1.30, 781.84, 599.0),
    (240, 1.36, 786.96, 577.0),
    (280, 1.44, 790.14, 550.0),
];

/// One measured row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Frequency in MHz.
    pub freq_mhz: u64,
    /// P_PDR in W.
    pub p_pdr_w: f64,
    /// Throughput in MB/s.
    pub throughput_mb_s: f64,
    /// Performance per watt in MB/J.
    pub ppw_mb_j: f64,
    /// Energy per reconfiguration in mJ (P_PDR × latency) — the dual view
    /// of PpW: minimal exactly where PpW peaks.
    pub energy_mj: f64,
}

impl_json_struct!(Table2Row {
    freq_mhz,
    p_pdr_w,
    throughput_mb_s,
    ppw_mb_j,
    energy_mj,
});

/// Runs Table II at 40 °C.
pub fn table2(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    TABLE2_PAPER
        .iter()
        .map(|&(mhz, _, _, _)| {
            let mut sys = cfg.system(40.0);
            let bs = sys.make_partial_bitstream(0, 1);
            let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
            Table2Row {
                freq_mhz: mhz,
                p_pdr_w: r.p_pdr_w,
                throughput_mb_s: r.throughput_mb_s().expect("rows ≤ 280 MHz interrupt"),
                ppw_mb_j: r.ppw_mb_j().expect("rows ≤ 280 MHz interrupt"),
                energy_mj: r.energy_j.expect("rows ≤ 280 MHz interrupt") * 1e3,
            }
        })
        .collect()
}

/// The most power-efficient row of a Table II run.
pub fn best_ppw(rows: &[Table2Row]) -> Table2Row {
    *rows
        .iter()
        .max_by(|a, b| a.ppw_mb_j.total_cmp(&b.ppw_mb_j))
        .expect("non-empty table")
}

// ---------------------------------------------------------------------------
// E6: Table III — comparison with related work.
// ---------------------------------------------------------------------------

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Design label.
    pub design: String,
    /// Platform.
    pub platform: String,
    /// ICAP frequency in MHz.
    pub freq_mhz: f64,
    /// Throughput in MB/s.
    pub throughput_mb_s: f64,
}

impl_json_struct!(Table3Row {
    design,
    platform,
    freq_mhz,
    throughput_mb_s,
});

/// Paper values of Table III.
pub const TABLE3_PAPER: [(&str, &str, f64, f64); 4] = [
    ("VF-2012", "Virtex-6", 210.0, 839.0),
    ("HP-2011", "Virtex-5", 133.0, 419.0),
    ("HKT-2011", "Virtex-5", 550.0, 2200.0),
    ("This work", "Zynq-7000", 280.0, 790.0),
];

/// Runs Table III: baselines at their published points, "this work" measured
/// at 280 MHz.
pub fn table3(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let (vf_f, vf_t) = Vf2012.table3_point();
    let (hp_f, hp_t) = Hp2011.table3_point();
    let (hkt_f, hkt_t) = Hkt2011::default().table3_point();
    let mut sys = cfg.system(40.0);
    let bs = sys.make_partial_bitstream(0, 1);
    let ours = sys.reconfigure(0, &bs, Frequency::from_mhz(280));
    vec![
        Table3Row {
            design: "VF-2012".into(),
            platform: "Virtex-6".into(),
            freq_mhz: vf_f,
            throughput_mb_s: vf_t,
        },
        Table3Row {
            design: "HP-2011".into(),
            platform: "Virtex-5".into(),
            freq_mhz: hp_f,
            throughput_mb_s: hp_t,
        },
        Table3Row {
            design: "HKT-2011".into(),
            platform: "Virtex-5".into(),
            freq_mhz: hkt_f,
            throughput_mb_s: hkt_t,
        },
        Table3Row {
            design: "This work".into(),
            platform: "Zynq-7000 (sim)".into(),
            freq_mhz: 280.0,
            throughput_mb_s: ours.throughput_mb_s().expect("280 MHz interrupts"),
        },
    ]
}

// ---------------------------------------------------------------------------
// E7: Sec. VI — the proposed SRAM-based environment.
// ---------------------------------------------------------------------------

/// Results of the proposed-system experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposedRow {
    /// Scenario label.
    pub scenario: String,
    /// Raw bitstream size in bytes.
    pub raw_bytes: u64,
    /// Latency in µs.
    pub latency_us: f64,
    /// Effective raw throughput in MB/s.
    pub throughput_mb_s: f64,
    /// Compression ratio (1.0 = stored raw).
    pub compression_ratio: f64,
    /// Whether the configuration verified.
    pub crc_ok: bool,
}

impl_json_struct!(ProposedRow {
    scenario,
    raw_bytes,
    latency_us,
    throughput_mb_s,
    compression_ratio,
    crc_ok,
});

/// Runs the Sec. VI experiment: the measured system's best point vs the
/// proposed system raw and compressed.
pub fn proposed(cfg: &ExperimentConfig) -> Vec<ProposedRow> {
    let mut rows = Vec::new();
    let pcfg_of = |compress: bool| {
        if cfg.full_scale {
            ProposedConfig {
                compress,
                ..ProposedConfig::default()
            }
        } else {
            let geometry = Geometry::new(2, vec![pdr_fabric::ColumnKind::Clb; 6]);
            let partitions = vec![pdr_fabric::Partition::new("RP1", 0, 0..3)];
            ProposedConfig {
                floorplan: pdr_fabric::Floorplan::new(geometry, partitions),
                compress,
                ..ProposedConfig::default()
            }
        }
    };
    for compress in [false, true] {
        let mut sys = ProposedSystem::new(pcfg_of(compress));
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
        let r = sys.reconfigure(&bs);
        rows.push(ProposedRow {
            scenario: if compress {
                "proposed (compressed)".into()
            } else {
                "proposed (raw)".into()
            },
            raw_bytes: r.raw_bytes,
            latency_us: r.latency.as_micros_f64(),
            throughput_mb_s: r.throughput_mb_s,
            compression_ratio: r.compression_ratio,
            crc_ok: r.crc_ok,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E8: the abstract's headline numbers.
// ---------------------------------------------------------------------------

/// The headline metrics the abstract/conclusion quote.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Knee of the throughput curve in MHz (paper: ~200).
    pub knee_mhz: f64,
    /// Throughput at the knee in MB/s (paper: ~782).
    pub knee_throughput_mb_s: f64,
    /// Maximum observed throughput in MB/s (paper: ~790 at 280 MHz).
    pub max_throughput_mb_s: f64,
    /// Best power efficiency in MB/J (paper: ~600 at 200 MHz).
    pub best_ppw_mb_j: f64,
    /// Latency for a ~1.2 MB bitstream at the knee frequency, µs (the
    /// abstract quotes "about 670 µs for bitstreams of 1.2 MB", which is
    /// internally inconsistent with Table I — see EXPERIMENTS.md).
    pub latency_1p2mb_us: f64,
    /// Size of the "1.2 MB" bitstream actually used, bytes.
    pub big_bitstream_bytes: u64,
}

impl_json_struct!(Headline {
    knee_mhz,
    knee_throughput_mb_s,
    max_throughput_mb_s,
    best_ppw_mb_j,
    latency_1p2mb_us,
    big_bitstream_bytes,
});

/// Builds a ~1.2 MB partial bitstream spanning row 0 entirely plus the start
/// of row 1 (2996 frames) on the full-scale geometry.
pub fn big_bitstream(geometry: &Geometry) -> Bitstream {
    let mut b = Builder::new(IDCODE);
    let row0 = geometry.frames_per_row();
    let img0 = AspImage::generate(AspKind::AesMix, 42, row0);
    b.add_frames(
        pdr_bitstream::FrameAddress::new(0, 0, 0, 0),
        img0.into_frames(),
    );
    let extra = 2996u32.saturating_sub(row0).max(1);
    let img1 = AspImage::generate(AspKind::AesMix, 43, extra);
    b.add_frames(
        pdr_bitstream::FrameAddress::new(0, 1, 0, 0),
        img1.into_frames(),
    );
    b.build()
}

/// Runs the headline experiment (full-scale only; small scale would not
/// have a 1.2 MB region).
pub fn headline(cfg: &ExperimentConfig) -> Headline {
    assert!(
        cfg.full_scale,
        "headline numbers need the full-scale device"
    );
    let curve = fig5(cfg);
    let pts: Vec<(f64, f64)> = curve
        .iter()
        .filter_map(|p| p.throughput_mb_s.map(|t| (p.freq_mhz as f64, t)))
        .collect();
    let knee = knee_frequency_mhz(&pts, 1.0);
    let knee_thpt = pts
        .iter()
        .find(|(f, _)| *f == knee)
        .map(|(_, t)| *t)
        .expect("knee is a curve point");
    let max_thpt = pts.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    let t2 = table2(cfg);
    let best = best_ppw(&t2);

    let mut sys = cfg.system(40.0);
    let big = big_bitstream(sys.floorplan().geometry());
    let r = sys.reconfigure(0, &big, Frequency::from_mhz(knee as u64));
    Headline {
        knee_mhz: knee,
        knee_throughput_mb_s: knee_thpt,
        max_throughput_mb_s: max_thpt,
        best_ppw_mb_j: best.ppw_mb_j,
        latency_1p2mb_us: r
            .latency
            .expect("knee frequency interrupts")
            .as_micros_f64(),
        big_bitstream_bytes: big.len() as u64,
    }
}

// ---------------------------------------------------------------------------
// Size sweep: latency scales with bitstream size at constant throughput.
// ---------------------------------------------------------------------------

/// One point of the bitstream-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeSweepRow {
    /// Bitstream size in bytes.
    pub bytes: u64,
    /// Latency in µs.
    pub latency_us: f64,
    /// Throughput in MB/s.
    pub throughput_mb_s: f64,
}

impl_json_struct!(SizeSweepRow {
    bytes,
    latency_us,
    throughput_mb_s,
});

/// Sweeps bitstream size at the knee frequency (200 MHz): reconfiguration
/// latency is linear in size while throughput stays at the plateau — the
/// reason the paper reports MB/s as the size-independent figure of merit.
///
/// Full scale only (the sweep needs room for multi-thousand-frame images).
pub fn size_sweep(cfg: &ExperimentConfig) -> Vec<SizeSweepRow> {
    assert!(cfg.full_scale, "size sweep needs the full-scale device");
    let mut rows = Vec::new();
    for frames in [100u32, 400, 1308, 2536, 2996] {
        let mut sys = cfg.system(40.0);
        let geometry = sys.floorplan().geometry().clone();
        let mut b = Builder::new(IDCODE);
        let per_row = geometry.frames_per_row();
        if frames <= per_row {
            let img = AspImage::generate(AspKind::Fir16, frames, frames);
            b.add_frames(
                pdr_bitstream::FrameAddress::new(0, 0, 0, 0),
                img.into_frames(),
            );
        } else {
            let img0 = AspImage::generate(AspKind::Fir16, frames, per_row);
            b.add_frames(
                pdr_bitstream::FrameAddress::new(0, 0, 0, 0),
                img0.into_frames(),
            );
            let img1 = AspImage::generate(AspKind::Fir16, frames + 1, frames - per_row);
            b.add_frames(
                pdr_bitstream::FrameAddress::new(0, 1, 0, 0),
                img1.into_frames(),
            );
        }
        let bs = b.build();
        let r = sys.reconfigure(0, &bs, Frequency::from_mhz(200));
        assert!(r.crc_ok(), "size sweep point {frames} frames failed: {r:?}");
        rows.push(SizeSweepRow {
            bytes: bs.len() as u64,
            latency_us: r.latency.expect("200 MHz interrupts").as_micros_f64(),
            throughput_mb_s: r.throughput_mb_s().expect("200 MHz interrupts"),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// CSV export: machine-readable experiment results.
// ---------------------------------------------------------------------------

/// Renders Table I rows as CSV.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "freq_mhz,latency_us,throughput_mb_s,crc_valid,interrupt_seen
",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{}
",
            r.freq_mhz,
            r.latency_us.map(|v| v.to_string()).unwrap_or_default(),
            r.throughput_mb_s.map(|v| v.to_string()).unwrap_or_default(),
            r.crc_valid,
            r.interrupt_seen
        ));
    }
    out
}

/// Renders Fig. 5 points as CSV.
pub fn fig5_csv(points: &[Fig5Point]) -> String {
    let mut out = String::from(
        "freq_mhz,throughput_mb_s
",
    );
    for p in points {
        out.push_str(&format!(
            "{},{}
",
            p.freq_mhz,
            p.throughput_mb_s.map(|v| v.to_string()).unwrap_or_default()
        ));
    }
    out
}

/// Renders stress cells as CSV.
pub fn stress_csv(cells: &[StressCell]) -> String {
    let mut out = String::from(
        "freq_mhz,temp_c,crc_valid,interrupt_seen
",
    );
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{}
",
            c.freq_mhz, c.temp_c, c.crc_valid, c.interrupt_seen
        ));
    }
    out
}

/// Renders Fig. 6 points as CSV.
pub fn fig6_csv(points: &[Fig6Point]) -> String {
    let mut out = String::from(
        "temp_c,freq_mhz,p_pdr_w
",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{}
",
            p.temp_c, p.freq_mhz, p.p_pdr_w
        ));
    }
    out
}

/// Renders Table II rows as CSV.
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "freq_mhz,p_pdr_w,throughput_mb_s,ppw_mb_j,energy_mj
",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{}
",
            r.freq_mhz, r.p_pdr_w, r.throughput_mb_s, r.ppw_mb_j, r.energy_mj
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_scale_has_paper_shape() {
        let rows = table1(&ExperimentConfig::small());
        assert_eq!(rows.len(), 9);
        // ≤ 280 MHz: interrupt + valid CRC; throughput increases to the knee.
        for r in &rows[..6] {
            assert!(r.interrupt_seen, "{r:?}");
            assert!(r.crc_valid, "{r:?}");
        }
        assert!(rows[1].throughput_mb_s.unwrap() > rows[0].throughput_mb_s.unwrap());
        // 310: no interrupt, CRC valid. 320/360: CRC invalid.
        assert!(
            !rows[6].interrupt_seen && rows[6].crc_valid,
            "{:?}",
            rows[6]
        );
        assert!(
            !rows[7].interrupt_seen && !rows[7].crc_valid,
            "{:?}",
            rows[7]
        );
        assert!(!rows[8].crc_valid);
    }

    #[test]
    fn stress_small_scale_single_failure_cell() {
        let cells = stress(&ExperimentConfig::small());
        assert_eq!(cells.len(), 7 * 7);
        assert_eq!(stress_failures(&cells), vec![(310, 100.0)]);
    }

    #[test]
    fn table2_ppw_peaks_at_the_knee() {
        let rows = table2(&ExperimentConfig::small());
        let best = best_ppw(&rows);
        // On the small device the absolute numbers differ, but the peak must
        // sit at the knee (200 MHz), exactly as in the paper.
        assert_eq!(best.freq_mhz, 200, "rows: {rows:?}");
    }

    #[test]
    fn table3_ordering_matches_paper() {
        let rows = table3(&ExperimentConfig::small());
        let get = |d: &str| {
            rows.iter()
                .find(|r| r.design == d)
                .map(|r| r.throughput_mb_s)
                .expect("row present")
        };
        // HKT > VF > ours? On the small device "this work" throughput is
        // lower than full scale, but the baseline ordering is fixed:
        assert!(get("HKT-2011") > get("VF-2012"));
        assert!(get("VF-2012") > get("HP-2011"));
    }

    #[test]
    fn big_bitstream_is_about_1p2_mb() {
        let g = Geometry::zynq7020();
        let bs = big_bitstream(&g);
        // 2996 frames (full row 0 + 460 frames of row 1) + packet overhead.
        assert!(
            (1_150_000..1_300_000).contains(&bs.len()),
            "{} bytes",
            bs.len()
        );
        // And it is well-formed: the parser accepts it with a valid CRC.
        let actions = pdr_bitstream::Parser::parse_all(bs.words()).expect("well-formed");
        assert!(actions.contains(&pdr_bitstream::Action::CrcCheck { ok: true }));
    }

    #[test]
    fn table2_energy_is_minimal_at_the_knee() {
        let rows = table2(&ExperimentConfig::small());
        let min = rows
            .iter()
            .min_by(|a, b| a.energy_mj.total_cmp(&b.energy_mj))
            .expect("non-empty");
        assert_eq!(min.freq_mhz, 200, "rows: {rows:?}");
        assert!(min.energy_mj > 0.0);
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let cfg = ExperimentConfig::small();
        let t1 = table1_csv(&table1(&cfg));
        assert_eq!(t1.lines().count(), 10); // header + 9 rows
        assert!(t1.starts_with("freq_mhz,"));
        let f5 = fig5_csv(&fig5(&cfg));
        assert_eq!(f5.lines().count(), 23); // header + 22 points
        let t2 = table2_csv(&table2(&cfg));
        assert!(t2.lines().nth(1).expect("row").split(',').count() == 5);
    }

    #[test]
    fn proposed_rows_beat_the_measured_plateau() {
        let rows = proposed(&ExperimentConfig::small());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.crc_ok, "{r:?}");
            assert!(r.throughput_mb_s > 1000.0, "{r:?}");
        }
        let raw = &rows[0];
        let comp = &rows[1];
        assert!(comp.compression_ratio < 1.0);
        assert!(comp.throughput_mb_s > raw.throughput_mb_s);
    }
}
