//! Versioned whole-system snapshot envelopes.
//!
//! A snapshot is a JSON object produced by [`ZynqPdrSystem::snapshot_json`]
//! (plus whatever campaign state rides along) wrapped in an envelope that
//! records the format version and a payload kind. The contract, enforced by
//! `tests/snapshot.rs` and the CI crash-resume smoke test, is **byte
//! identity**: restore a snapshot onto a freshly built system with the same
//! [`SystemConfig`] and the continued run produces exactly the same trace
//! tape, counters, report, and simulated time as a run that never stopped —
//! under both engine strategies.
//!
//! Files are written atomically (temp file + rename) so a process killed
//! mid-checkpoint leaves either the previous complete snapshot or the new
//! one, never a torn file. See `docs/SNAPSHOT.md` for the format and the
//! bisection workflow built on top of it.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use pdr_sim_core::json::{Json, JsonError};

use crate::system::{SystemConfig, ZynqPdrSystem};

/// Snapshot format version. Bump on any incompatible change to the payload
/// layout; [`open`] rejects mismatched versions so a stale checkpoint fails
/// loudly instead of deserializing garbage.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Wraps a payload in a versioned envelope.
pub fn envelope(kind: &str, payload: Json) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::U64(SNAPSHOT_VERSION)),
        ("kind".into(), Json::Str(kind.into())),
        ("payload".into(), payload),
    ])
}

/// Validates an envelope's version and kind and returns the payload.
pub fn open<'a>(json: &'a Json, kind: &str) -> Result<&'a Json, JsonError> {
    let version = json
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| JsonError {
            msg: "snapshot envelope missing `version`".into(),
        })?;
    if version != SNAPSHOT_VERSION {
        return Err(JsonError {
            msg: format!("snapshot version {version} unsupported (expected {SNAPSHOT_VERSION})"),
        });
    }
    let found = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError {
            msg: "snapshot envelope missing `kind`".into(),
        })?;
    if found != kind {
        return Err(JsonError {
            msg: format!("snapshot kind `{found}` where `{kind}` was expected"),
        });
    }
    json.get("payload").ok_or_else(|| JsonError {
        msg: "snapshot envelope missing `payload`".into(),
    })
}

/// Captures a standalone system snapshot (kind `"system"`).
pub fn take(sys: &ZynqPdrSystem) -> Json {
    envelope("system", sys.snapshot_json())
}

/// Rebuilds a system from `config` and overlays a snapshot taken with
/// [`take`]. The config must be the one the snapshotted system was built
/// from; structural mismatches are rejected before any state is mutated.
pub fn restore(config: SystemConfig, json: &Json) -> Result<ZynqPdrSystem, JsonError> {
    let payload = open(json, "system")?;
    let mut sys = ZynqPdrSystem::new(config);
    sys.restore_json(payload)?;
    Ok(sys)
}

/// 64-bit FNV-1a over a byte slice — the digest primitive used to compare
/// run prefixes during first-divergence bisection.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a JSON value's canonical rendering. Two runs whose observable
/// state renders identically digest identically; any byte of divergence
/// (an event, a counter, a timestamp) changes the digest.
pub fn digest(json: &Json) -> u64 {
    fnv1a(json.render().as_bytes())
}

/// Monotonic discriminator for temp-file names: two in-flight [`save`]
/// calls in the same process must never share a temp file.
static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically writes a snapshot to `path`: the rendered JSON goes to a
/// sibling temp file which is then renamed over the target, so a crash
/// mid-write never leaves a torn checkpoint.
///
/// The temp name is unique per call (pid + in-process counter), so
/// concurrent savers targeting the same path — parallel campaign workers
/// checkpointing shards, or two processes sharing a checkpoint directory —
/// cannot interleave writes or rename each other's half-written file: each
/// rename atomically installs one complete snapshot, last writer wins. A
/// failed write or rename removes its own temp file instead of leaking it.
pub fn save(path: &Path, json: &Json) -> io::Result<()> {
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(name);
    let result = fs::write(&tmp, json.render()).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads and parses a snapshot written by [`save`].
pub fn load(path: &Path) -> Result<Json, JsonError> {
    let text = fs::read_to_string(path).map_err(|e| JsonError {
        msg: format!("read {}: {e}", path.display()),
    })?;
    Json::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let env = envelope("system", Json::U64(7));
        assert_eq!(open(&env, "system").unwrap(), &Json::U64(7));
    }

    #[test]
    fn open_rejects_wrong_kind_and_version() {
        let env = envelope("system", Json::Null);
        assert!(open(&env, "campaign").is_err());
        let stale = Json::Obj(vec![
            ("version".into(), Json::U64(SNAPSHOT_VERSION + 1)),
            ("kind".into(), Json::Str("system".into())),
            ("payload".into(), Json::Null),
        ]);
        assert!(open(&stale, "system").is_err());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = Json::Obj(vec![("x".into(), Json::U64(1))]);
        let b = Json::Obj(vec![("x".into(), Json::U64(2))]);
        assert_eq!(digest(&a), digest(&a));
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("pdr-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let env = envelope("system", Json::Str("abc".into()));
        save(&path, &env).unwrap();
        assert_eq!(load(&path).unwrap(), env);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_saves_to_one_target_never_tear() {
        // Before per-call temp names, two savers shared `path.tmp`: one
        // could rename the other's half-written file over the target. Now
        // every completed save installs one complete snapshot and the last
        // rename wins; a reader can never observe a torn or mixed file.
        let dir = std::env::temp_dir().join("pdr-snapshot-concurrent-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.json");
        std::fs::remove_file(&path).ok();
        const THREADS: u64 = 4;
        const SAVES: u64 = 25;
        // Payloads are large enough that a torn write would be parseable
        // only by accident, and tagged so a reader can attribute content.
        let payload = |t: u64, i: u64| {
            envelope(
                "system",
                Json::Arr(
                    (0..256)
                        .map(|k| Json::U64(t * 1_000_000 + i * 1_000 + k))
                        .collect(),
                ),
            )
        };
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let path = &path;
                let payload = &payload;
                scope.spawn(move || {
                    for i in 0..SAVES {
                        save(path, &payload(t, i)).expect("save");
                        // Every observation must be one complete envelope.
                        let seen = load(path).expect("concurrently saved file must parse");
                        assert!(open(&seen, "system").is_ok(), "torn or mixed snapshot");
                    }
                });
            }
        });
        // The survivor is exactly one of the payloads that were written.
        let last = load(&path).expect("final file parses");
        let wrote = (0..THREADS)
            .flat_map(|t| (0..SAVES).map(move |i| payload(t, i)))
            .any(|p| p == last);
        assert!(wrote, "final snapshot is not any payload that was saved");
        // No temp files leak once every save has completed.
        let leaked: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leaked.is_empty(), "leaked temp files: {leaked:?}");
        std::fs::remove_file(&path).ok();
    }
}
