//! Self-healing recovery: watchdog classification, bounded retry with
//! frequency backoff, golden-bitstream scrubbing, and per-partition
//! quarantine.
//!
//! The paper's architecture *detects* every over-clocking failure (CRC
//! read-back, lost-interrupt watchdog) but leaves repair to the operator.
//! [`RecoveryManager`] closes the loop with a degradation ladder:
//!
//! 1. **Retry** the transfer — transient faults (a timing burst that
//!    passed, a dropped interrupt) usually clear on the second attempt.
//! 2. **Back off** the over-clock on each retry — delegated to the
//!    [`Governor`] when one is provided (its characterised step-down),
//!    arithmetic `backoff_mhz` steps towards `floor_mhz` otherwise.
//! 3. **Scrub** — re-run the transfer at the known-safe `scrub_mhz`; for
//!    background CRC alarms ([`RecoveryManager::on_crc_alarm`]), re-apply
//!    the partition's registered *golden* bitstream and re-verify by
//!    read-back.
//! 4. **Quarantine** — when even scrubbing fails repeatedly, take the
//!    partition out of service instead of looping forever.
//!
//! Every step feeds the telemetry counters surfaced by
//! [`RecoveryManager::stats`]: detection latency, mean-time-to-repair,
//! retries per success, scrub and quarantine counts.

use std::fmt::Write as _;

use pdr_bitstream::{Bitstream, Bytes};
use pdr_bitstream_codec::{compress_bitstream, decompress_to_bitstream};
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::stats::OnlineStats;
use pdr_sim_core::{impl_json_enum, impl_json_struct, Frequency, SimDuration};

use crate::campaign::StatsSummary;
use crate::governor::Governor;
use crate::report::{ReconfigError, ReconfigReport};
use crate::system::ZynqPdrSystem;
use crate::trace::TraceEvent;

/// Recovery-ladder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Retries after the first failed attempt before escalating to scrub.
    pub max_retries: u32,
    /// Arithmetic backoff step per retry, MHz (used without a governor).
    pub backoff_mhz: u64,
    /// Hard frequency floor for backoff, MHz.
    pub floor_mhz: u64,
    /// The known-safe scrub frequency, MHz.
    pub scrub_mhz: u64,
    /// Consecutive scrub failures on one partition before quarantine.
    pub quarantine_after: u32,
    /// Hold golden images as `PDRC` containers (see `pdr-bitstream-codec`)
    /// instead of raw bitstreams. Scrubbing expands the container before
    /// re-applying it, and read-back still verifies the expanded image.
    pub compress_golden: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 3,
            backoff_mhz: 20,
            floor_mhz: 100,
            scrub_mhz: 100,
            quarantine_after: 1,
            compress_golden: false,
        }
    }
}

/// How a partition's golden image is held in the manager's store.
#[derive(Debug, Clone)]
enum GoldenImage {
    /// The raw image, as registered.
    Raw(Bitstream),
    /// A `PDRC` container; expanded when scrubbing needs it.
    Compressed(Vec<u8>),
}

impl GoldenImage {
    fn encode(bitstream: Bitstream, compress: bool) -> Self {
        if compress {
            GoldenImage::Compressed(compress_bitstream(&bitstream).bytes)
        } else {
            GoldenImage::Raw(bitstream)
        }
    }

    fn materialise(&self) -> Bitstream {
        match self {
            GoldenImage::Raw(bs) => bs.clone(),
            GoldenImage::Compressed(bytes) => decompress_to_bitstream(bytes)
                .expect("manager-encoded golden container round-trips bit-exactly"),
        }
    }

    fn stored_bytes(&self) -> u64 {
        match self {
            GoldenImage::Raw(bs) => bs.len() as u64,
            GoldenImage::Compressed(bytes) => bytes.len() as u64,
        }
    }
}

/// Per-partition health on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionHealth {
    /// Operating at the requested point.
    Healthy,
    /// Recovered, but only after backoff or scrubbing.
    Degraded,
    /// Out of service: even scrubbing failed.
    Quarantined,
}

impl_json_enum!(PartitionHealth {
    Healthy,
    Degraded,
    Quarantined
});

/// What one managed reconfiguration did end-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The final attempt's report (`None` when the partition was already
    /// quarantined and nothing ran).
    pub report: Option<ReconfigReport>,
    /// Final classified error; `None` means the partition holds the
    /// requested content, verified by read-back.
    pub error: Option<ReconfigError>,
    /// Transfer attempts performed (0 when quarantined on entry).
    pub attempts: u32,
    /// The ladder escalated to the scrub step.
    pub scrubbed: bool,
    /// The first attempt failed but a later step succeeded.
    pub recovered_after_failure: bool,
    /// Failure-detection to verified-repair time, when recovery happened.
    pub mttr: Option<SimDuration>,
}

impl RecoveryOutcome {
    /// True when the partition ended up correctly configured.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

/// Aggregate recovery telemetry, serialisable for campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Faults detected (failed first attempts + monitor alarms).
    pub faults_detected: u64,
    /// Faults repaired by retry, backoff or scrub.
    pub faults_recovered: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Scrub transfers issued.
    pub scrubs: u64,
    /// Scrubs that themselves failed.
    pub scrub_failures: u64,
    /// Partitions quarantined.
    pub quarantines: u64,
    /// Background-monitor detection latency, µs.
    pub detection_latency_us: StatsSummary,
    /// Mean time to repair, µs.
    pub mttr_us: StatsSummary,
}

impl_json_struct!(RecoveryStats {
    faults_detected,
    faults_recovered,
    retries,
    scrubs,
    scrub_failures,
    quarantines,
    detection_latency_us,
    mttr_us,
});

/// The self-healing controller. One instance manages every partition of a
/// system; state is per-partition.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    config: RecoveryConfig,
    golden: Vec<Option<GoldenImage>>,
    health: Vec<PartitionHealth>,
    /// Consecutive scrub failures per partition (quarantine trigger).
    scrub_strikes: Vec<u32>,
    detection_latency_us: OnlineStats,
    mttr_us: OnlineStats,
    faults_detected: u64,
    faults_recovered: u64,
    retries: u64,
    scrubs: u64,
    scrub_failures: u64,
    quarantines: u64,
}

impl RecoveryManager {
    /// Creates a manager for `partitions` reconfigurable partitions.
    pub fn new(partitions: usize, config: RecoveryConfig) -> Self {
        RecoveryManager {
            config,
            golden: vec![None; partitions],
            health: vec![PartitionHealth::Healthy; partitions],
            scrub_strikes: vec![0; partitions],
            detection_latency_us: OnlineStats::new(),
            mttr_us: OnlineStats::new(),
            faults_detected: 0,
            faults_recovered: 0,
            retries: 0,
            scrubs: 0,
            scrub_failures: 0,
            quarantines: 0,
        }
    }

    /// Creates a manager sized for `sys`'s floorplan.
    pub fn for_system(sys: &ZynqPdrSystem, config: RecoveryConfig) -> Self {
        RecoveryManager::new(sys.floorplan().partitions().len(), config)
    }

    /// The configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Registers `bitstream` as partition `rp`'s golden image — the content
    /// scrubbing restores on a CRC alarm.
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range.
    pub fn register_golden(&mut self, rp: usize, bitstream: Bitstream) {
        self.golden[rp] = Some(GoldenImage::encode(bitstream, self.config.compress_golden));
    }

    /// The registered golden image for `rp`, if any — always the raw
    /// bitstream, expanded on demand when the store is compressed.
    pub fn golden(&self, rp: usize) -> Option<Bitstream> {
        self.golden[rp].as_ref().map(GoldenImage::materialise)
    }

    /// Bytes the golden store holds for `rp` (container size under
    /// [`RecoveryConfig::compress_golden`], raw size otherwise).
    pub fn golden_stored_bytes(&self, rp: usize) -> Option<u64> {
        self.golden[rp].as_ref().map(GoldenImage::stored_bytes)
    }

    /// Health of partition `rp`.
    pub fn health(&self, rp: usize) -> PartitionHealth {
        self.health[rp]
    }

    /// Health of every partition.
    pub fn health_all(&self) -> &[PartitionHealth] {
        &self.health
    }

    /// Records a background-monitor detection latency (the time from
    /// injection/occurrence to the CRC-error interrupt).
    pub fn record_detection(&mut self, latency: SimDuration) {
        self.faults_detected += 1;
        self.detection_latency_us.push(latency.as_micros_f64());
    }

    /// Managed reconfiguration: runs the degradation ladder until partition
    /// `rp` verifiably holds `bitstream` or the ladder is exhausted.
    ///
    /// On success after any failure, the successfully applied bitstream
    /// becomes the partition's golden image.
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range.
    pub fn reconfigure(
        &mut self,
        sys: &mut ZynqPdrSystem,
        mut gov: Option<&mut Governor>,
        rp: usize,
        bitstream: &Bitstream,
        freq: Frequency,
    ) -> RecoveryOutcome {
        if self.health[rp] == PartitionHealth::Quarantined {
            return RecoveryOutcome {
                report: None,
                error: Some(ReconfigError::Quarantined),
                attempts: 0,
                scrubbed: false,
                recovered_after_failure: false,
                mttr: None,
            };
        }

        let mut report = sys.reconfigure(rp, bitstream, freq);
        let mut attempts = 1;
        if report.error.is_none() {
            self.on_clean_success(rp, bitstream);
            return RecoveryOutcome {
                report: Some(report),
                error: None,
                attempts,
                scrubbed: false,
                recovered_after_failure: false,
                mttr: None,
            };
        }

        // The watchdog/read-back caught a failure: walk the ladder.
        self.faults_detected += 1;
        let t_detect = sys.now();
        let mut freq_mhz = freq.as_hz() / 1_000_000;
        for _ in 0..self.config.max_retries {
            let prev_mhz = freq_mhz;
            freq_mhz = self.next_backoff(&mut gov, freq_mhz);
            if freq_mhz != prev_mhz {
                sys.trace_emit(TraceEvent::Backoff {
                    rp: rp as u64,
                    from_mhz: prev_mhz,
                    to_mhz: freq_mhz,
                });
            }
            self.retries += 1;
            attempts += 1;
            sys.trace_emit(TraceEvent::Retry {
                rp: rp as u64,
                attempt: attempts as u64 - 1,
                freq_mhz,
            });
            report = sys.reconfigure(rp, bitstream, Frequency::from_mhz(freq_mhz));
            if report.error.is_none() {
                return self.recovered(sys, rp, bitstream, report, attempts, false, t_detect);
            }
            if freq_mhz <= self.config.floor_mhz {
                break; // further retries would repeat the same point
            }
        }

        // Retries exhausted: scrub — the known-safe frequency.
        self.scrubs += 1;
        attempts += 1;
        sys.trace_emit(TraceEvent::Scrub {
            rp: rp as u64,
            freq_mhz: self.config.scrub_mhz,
        });
        report = sys.reconfigure(rp, bitstream, Frequency::from_mhz(self.config.scrub_mhz));
        if report.error.is_none() {
            self.scrub_strikes[rp] = 0;
            return self.recovered(sys, rp, bitstream, report, attempts, true, t_detect);
        }

        // Even the safe point failed: strike, and quarantine past the limit.
        self.scrub_failures += 1;
        self.scrub_strikes[rp] += 1;
        let error = if self.scrub_strikes[rp] >= self.config.quarantine_after {
            self.quarantine(sys, rp);
            Some(ReconfigError::Quarantined)
        } else {
            report.error
        };
        RecoveryOutcome {
            report: Some(report),
            error,
            attempts,
            scrubbed: true,
            recovered_after_failure: false,
            mttr: None,
        }
    }

    /// Handles a background CRC-error alarm on partition `rp`: clears the
    /// interrupt, re-applies the registered golden bitstream at the scrub
    /// frequency and re-verifies by read-back. Returns the scrub outcome.
    ///
    /// The caller owns monitor lifecycle: reconfiguration pauses the
    /// background monitor, so re-arm it (`start_background_monitor`) after
    /// a successful scrub.
    ///
    /// # Panics
    ///
    /// Panics if `rp` is out of range or has no registered golden image.
    pub fn on_crc_alarm(&mut self, sys: &mut ZynqPdrSystem, rp: usize) -> RecoveryOutcome {
        let golden = self.golden[rp]
            .as_ref()
            .map(GoldenImage::materialise)
            .expect("scrubbing needs a registered golden bitstream");
        if self.health[rp] == PartitionHealth::Quarantined {
            return RecoveryOutcome {
                report: None,
                error: Some(ReconfigError::Quarantined),
                attempts: 0,
                scrubbed: true,
                recovered_after_failure: false,
                mttr: None,
            };
        }
        let t_detect = sys.now();
        sys.crc_error_irq().clear();
        self.scrubs += 1;
        sys.trace_emit(TraceEvent::Scrub {
            rp: rp as u64,
            freq_mhz: self.config.scrub_mhz,
        });
        let report = sys.reconfigure(rp, &golden, Frequency::from_mhz(self.config.scrub_mhz));
        if report.error.is_none() {
            self.scrub_strikes[rp] = 0;
            // A scrubbed partition is fully restored, not degraded: the
            // fault was in the fabric, not the operating point.
            self.health[rp] = PartitionHealth::Healthy;
            let mttr = sys.now().duration_since(t_detect);
            self.mttr_us.push(mttr.as_micros_f64());
            self.faults_recovered += 1;
            return RecoveryOutcome {
                report: Some(report),
                error: None,
                attempts: 1,
                scrubbed: true,
                recovered_after_failure: true,
                mttr: Some(mttr),
            };
        }
        self.scrub_failures += 1;
        self.scrub_strikes[rp] += 1;
        let error = if self.scrub_strikes[rp] >= self.config.quarantine_after {
            self.quarantine(sys, rp);
            Some(ReconfigError::Quarantined)
        } else {
            report.error
        };
        RecoveryOutcome {
            report: Some(report),
            error,
            attempts: 1,
            scrubbed: true,
            recovered_after_failure: false,
            mttr: None,
        }
    }

    /// Aggregate telemetry.
    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            faults_detected: self.faults_detected,
            faults_recovered: self.faults_recovered,
            retries: self.retries,
            scrubs: self.scrubs,
            scrub_failures: self.scrub_failures,
            quarantines: self.quarantines,
            detection_latency_us: StatsSummary::from(&self.detection_latency_us),
            mttr_us: StatsSummary::from(&self.mttr_us),
        }
    }

    /// Checkpoints the manager: per-partition golden images (which mutate
    /// as successful reconfigurations re-register them), health, scrub
    /// strikes, and the telemetry accumulators.
    pub fn snapshot_json(&self) -> Json {
        fn hex(bytes: &[u8]) -> String {
            let mut s = String::with_capacity(bytes.len() * 2);
            for b in bytes {
                let _ = write!(s, "{b:02x}");
            }
            s
        }
        let golden = self
            .golden
            .iter()
            .map(|g| match g {
                None => Json::Null,
                Some(GoldenImage::Raw(bs)) => Json::Obj(vec![
                    ("kind".to_string(), Json::Str("raw".to_string())),
                    ("hex".to_string(), Json::Str(hex(bs.bytes().as_slice()))),
                ]),
                Some(GoldenImage::Compressed(bytes)) => Json::Obj(vec![
                    ("kind".to_string(), Json::Str("compressed".to_string())),
                    ("hex".to_string(), Json::Str(hex(bytes))),
                ]),
            })
            .collect();
        fn stats_json(s: &OnlineStats) -> Json {
            let (n, mean, m2, min, max) = s.raw_parts();
            Json::Obj(vec![
                ("n".to_string(), Json::U64(n)),
                ("mean".to_string(), mean.to_json()),
                ("m2".to_string(), m2.to_json()),
                ("min".to_string(), min.to_json()),
                ("max".to_string(), max.to_json()),
            ])
        }
        Json::Obj(vec![
            ("golden".to_string(), Json::Arr(golden)),
            (
                "health".to_string(),
                Json::Arr(self.health.iter().map(|h| h.to_json()).collect()),
            ),
            (
                "scrub_strikes".to_string(),
                Json::Arr(self.scrub_strikes.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "detection_latency_us".to_string(),
                stats_json(&self.detection_latency_us),
            ),
            ("mttr_us".to_string(), stats_json(&self.mttr_us)),
            (
                "faults_detected".to_string(),
                self.faults_detected.to_json(),
            ),
            (
                "faults_recovered".to_string(),
                self.faults_recovered.to_json(),
            ),
            ("retries".to_string(), self.retries.to_json()),
            ("scrubs".to_string(), self.scrubs.to_json()),
            ("scrub_failures".to_string(), self.scrub_failures.to_json()),
            ("quarantines".to_string(), self.quarantines.to_json()),
        ])
    }

    /// Restores a checkpoint taken with [`RecoveryManager::snapshot_json`].
    /// The partition count must match this manager's construction.
    pub fn restore_json(&mut self, json: &Json) -> Result<(), JsonError> {
        fn req<'a>(json: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
            json.get(key).ok_or_else(|| JsonError {
                msg: format!("recovery snapshot missing `{key}`"),
            })
        }
        fn unhex(s: &str) -> Result<Vec<u8>, JsonError> {
            if !s.len().is_multiple_of(2) {
                return Err(JsonError {
                    msg: "recovery snapshot hex payload has odd length".to_string(),
                });
            }
            (0..s.len() / 2)
                .map(|i| {
                    u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| JsonError {
                        msg: "recovery snapshot hex payload is not hex".to_string(),
                    })
                })
                .collect()
        }
        fn stats_from(json: &Json) -> Result<OnlineStats, JsonError> {
            Ok(OnlineStats::from_raw_parts(
                u64::from_json(req(json, "n")?)?,
                f64::from_json(req(json, "mean")?)?,
                f64::from_json(req(json, "m2")?)?,
                Option::<f64>::from_json(req(json, "min")?)?,
                Option::<f64>::from_json(req(json, "max")?)?,
            ))
        }
        let golden_json = req(json, "golden")?.as_array().ok_or_else(|| JsonError {
            msg: "recovery snapshot `golden` is not an array".to_string(),
        })?;
        if golden_json.len() != self.golden.len() {
            return Err(JsonError {
                msg: format!(
                    "recovery snapshot has {} partitions, manager has {}",
                    golden_json.len(),
                    self.golden.len()
                ),
            });
        }
        let golden = golden_json
            .iter()
            .map(|g| match g {
                Json::Null => Ok(None),
                g => {
                    let kind = g
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| JsonError {
                            msg: "recovery snapshot golden image missing `kind`".to_string(),
                        })?;
                    let bytes =
                        unhex(
                            g.get("hex")
                                .and_then(Json::as_str)
                                .ok_or_else(|| JsonError {
                                    msg: "recovery snapshot golden image missing `hex`".to_string(),
                                })?,
                        )?;
                    match kind {
                        "raw" => {
                            if !bytes.len().is_multiple_of(4) {
                                return Err(JsonError {
                                    msg: "golden raw image is not word-aligned".to_string(),
                                });
                            }
                            Ok(Some(GoldenImage::Raw(Bitstream::from_bytes(
                                Bytes::copy_from_slice(&bytes),
                            ))))
                        }
                        "compressed" => Ok(Some(GoldenImage::Compressed(bytes))),
                        other => Err(JsonError {
                            msg: format!("unknown golden image kind `{other}`"),
                        }),
                    }
                }
            })
            .collect::<Result<Vec<Option<GoldenImage>>, JsonError>>()?;
        let health = req(json, "health")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "recovery snapshot `health` is not an array".to_string(),
            })?
            .iter()
            .map(PartitionHealth::from_json)
            .collect::<Result<Vec<PartitionHealth>, JsonError>>()?;
        let strikes = req(json, "scrub_strikes")?
            .as_array()
            .ok_or_else(|| JsonError {
                msg: "recovery snapshot `scrub_strikes` is not an array".to_string(),
            })?
            .iter()
            .map(u32::from_json)
            .collect::<Result<Vec<u32>, JsonError>>()?;
        if health.len() != self.golden.len() || strikes.len() != self.golden.len() {
            return Err(JsonError {
                msg: "recovery snapshot per-partition arrays have mismatched lengths".to_string(),
            });
        }
        self.golden = golden;
        self.health = health;
        self.scrub_strikes = strikes;
        self.detection_latency_us = stats_from(req(json, "detection_latency_us")?)?;
        self.mttr_us = stats_from(req(json, "mttr_us")?)?;
        self.faults_detected = u64::from_json(req(json, "faults_detected")?)?;
        self.faults_recovered = u64::from_json(req(json, "faults_recovered")?)?;
        self.retries = u64::from_json(req(json, "retries")?)?;
        self.scrubs = u64::from_json(req(json, "scrubs")?)?;
        self.scrub_failures = u64::from_json(req(json, "scrub_failures")?)?;
        self.quarantines = u64::from_json(req(json, "quarantines")?)?;
        Ok(())
    }

    fn next_backoff(&self, gov: &mut Option<&mut Governor>, freq_mhz: u64) -> u64 {
        if let Some(g) = gov.as_deref_mut() {
            if let Some(p) = g.on_failure() {
                return p.freq_mhz.max(self.config.floor_mhz);
            }
        }
        freq_mhz
            .saturating_sub(self.config.backoff_mhz)
            .max(self.config.floor_mhz)
    }

    fn on_clean_success(&mut self, rp: usize, bitstream: &Bitstream) {
        self.scrub_strikes[rp] = 0;
        if self.health[rp] == PartitionHealth::Degraded {
            self.health[rp] = PartitionHealth::Healthy;
        }
        self.golden[rp] = Some(GoldenImage::encode(
            bitstream.clone(),
            self.config.compress_golden,
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn recovered(
        &mut self,
        sys: &ZynqPdrSystem,
        rp: usize,
        bitstream: &Bitstream,
        report: ReconfigReport,
        attempts: u32,
        scrubbed: bool,
        t_detect: pdr_sim_core::SimTime,
    ) -> RecoveryOutcome {
        self.health[rp] = PartitionHealth::Degraded;
        self.golden[rp] = Some(GoldenImage::encode(
            bitstream.clone(),
            self.config.compress_golden,
        ));
        let mttr = sys.now().duration_since(t_detect);
        self.mttr_us.push(mttr.as_micros_f64());
        self.faults_recovered += 1;
        RecoveryOutcome {
            report: Some(report),
            error: None,
            attempts,
            scrubbed,
            recovered_after_failure: true,
            mttr: Some(mttr),
        }
    }

    fn quarantine(&mut self, sys: &mut ZynqPdrSystem, rp: usize) {
        if self.health[rp] != PartitionHealth::Quarantined {
            self.health[rp] = PartitionHealth::Quarantined;
            self.quarantines += 1;
            sys.trace_emit(TraceEvent::Quarantine { rp: rp as u64 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorConfig;
    use crate::report::TimeoutCause;
    use crate::system::SystemConfig;
    use pdr_fabric::AspKind;
    use pdr_sim_core::json::{FromJson, ToJson};

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    fn system() -> ZynqPdrSystem {
        ZynqPdrSystem::new(SystemConfig::fast_test())
    }

    #[test]
    fn clean_success_needs_one_attempt_and_registers_golden() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
        let out = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(200));
        assert!(out.succeeded());
        assert_eq!(out.attempts, 1);
        assert!(!out.recovered_after_failure);
        assert_eq!(mgr.health(0), PartitionHealth::Healthy);
        assert_eq!(mgr.golden(0), Some(bs));
        assert_eq!(mgr.stats().faults_detected, 0);
    }

    #[test]
    fn compressed_golden_store_shrinks_and_scrub_still_restores() {
        let mut sys = system();
        let config = RecoveryConfig {
            compress_golden: true,
            ..RecoveryConfig::default()
        };
        let mut mgr = RecoveryManager::for_system(&sys, config);
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 9);
        assert!(mgr
            .reconfigure(&mut sys, None, 0, &bs, mhz(200))
            .succeeded());
        // The store holds a container smaller than the raw image, yet
        // hands back the bit-exact original.
        let stored = mgr.golden_stored_bytes(0).expect("registered");
        assert!(stored < bs.len() as u64, "{stored} vs {}", bs.len());
        assert_eq!(mgr.golden(0), Some(bs));
        // A CRC alarm scrubs from the compressed golden and re-verifies.
        sys.start_background_monitor(&[0]);
        let scan = sys.monitor_scan_period();
        sys.inject_seu(0, 11, 13, 3);
        sys.run_monitor_until_alarm(scan * 3)
            .expect("monitor must catch the upset");
        let out = mgr.on_crc_alarm(&mut sys, 0);
        assert!(out.succeeded(), "{out:?}");
        assert!(out.report.as_ref().unwrap().crc_ok());
    }

    #[test]
    fn lost_interrupt_recovers_via_backoff_retry() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::MatMul8, 2);
        // 310 MHz loses the interrupt; one 20 MHz backoff lands at 290,
        // inside the envelope.
        let out = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(310));
        assert!(out.succeeded(), "{out:?}");
        assert!(out.recovered_after_failure);
        assert_eq!(out.attempts, 2);
        assert!(!out.scrubbed);
        assert!(out.mttr.expect("recovered").as_micros_f64() > 0.0);
        assert_eq!(mgr.health(0), PartitionHealth::Degraded);
        let s = mgr.stats();
        assert_eq!(
            (s.faults_detected, s.faults_recovered, s.retries),
            (1, 1, 1)
        );
        // A later clean success at a safe point restores full health.
        assert!(mgr
            .reconfigure(&mut sys, None, 0, &bs, mhz(200))
            .succeeded());
        assert_eq!(mgr.health(0), PartitionHealth::Healthy);
    }

    #[test]
    fn governor_delegated_backoff_steps_down_its_ladder() {
        let mut sys = system();
        let mut gov = Governor::new(GovernorConfig::default());
        gov.characterise(&mut sys, 0);
        let start = gov.select_highest().freq_mhz; // 280 under guard band
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 3);
        // A 30 MHz burst makes 280 lose its interrupt; the governor's
        // step-down (260) still has 45 MHz of interrupt slack.
        sys.inject_timing_burst(30.0, SimDuration::from_millis(400));
        let out = mgr.reconfigure(&mut sys, Some(&mut gov), 0, &bs, mhz(start));
        assert!(out.succeeded(), "{out:?}");
        assert_eq!(out.attempts, 2);
        assert_eq!(
            out.report.as_ref().unwrap().frequency_hz,
            260 * 1_000_000,
            "backoff must come from the governor's ladder"
        );
        assert_eq!(gov.current().unwrap().freq_mhz, 260);
    }

    #[test]
    fn persistent_fault_escalates_to_scrub_then_quarantine() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 4);
        // A catastrophic 280 MHz envelope collapse: every frequency down to
        // the floor corrupts data for the burst's duration.
        sys.inject_timing_burst(280.0, SimDuration::from_secs_f64(1.0));
        let out = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(280));
        assert!(!out.succeeded());
        assert!(out.scrubbed, "ladder must reach the scrub step");
        assert_eq!(out.error, Some(ReconfigError::Quarantined));
        assert_eq!(mgr.health(0), PartitionHealth::Quarantined);
        let s = mgr.stats();
        assert_eq!(s.quarantines, 1);
        assert!(s.scrub_failures >= 1);
        // Quarantined partitions refuse further work without touching the
        // hardware.
        let n = sys.reconfig_count();
        let refused = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(200));
        assert_eq!(refused.error, Some(ReconfigError::Quarantined));
        assert_eq!(refused.attempts, 0);
        assert_eq!(sys.reconfig_count(), n);
        // Other partitions are unaffected.
        let bs1 = sys.make_asp_bitstream(1, AspKind::Fir16, 5);
        sys.inject_timing_burst(0.0, SimDuration::from_micros(1)); // burst over
        sys.run_monitor_for(SimDuration::from_micros(2));
        assert!(mgr
            .reconfigure(&mut sys, None, 1, &bs1, mhz(200))
            .succeeded());
    }

    #[test]
    fn crc_alarm_scrub_restores_golden_content() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 6);
        assert!(mgr
            .reconfigure(&mut sys, None, 0, &bs, mhz(200))
            .succeeded());
        sys.start_background_monitor(&[0]);
        let scan = sys.monitor_scan_period();
        sys.inject_seu(0, 17, 31, 5);
        let latency = sys
            .run_monitor_until_alarm(scan * 3)
            .expect("monitor must catch the upset");
        mgr.record_detection(latency);
        let out = mgr.on_crc_alarm(&mut sys, 0);
        assert!(out.succeeded(), "{out:?}");
        assert!(out.scrubbed);
        assert!(out.report.as_ref().unwrap().crc_ok());
        assert_eq!(mgr.health(0), PartitionHealth::Healthy);
        assert_eq!(sys.identify_asp(0), Some((AspKind::AesMix, 6)));
        let s = mgr.stats();
        assert_eq!(s.detection_latency_us.count, 1);
        assert_eq!(s.mttr_us.count, 1);
        assert!(s.mttr_us.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "registered golden bitstream")]
    fn alarm_without_golden_panics() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let _ = mgr.on_crc_alarm(&mut sys, 0);
    }

    #[test]
    fn stats_json_round_trips() {
        let mut sys = system();
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::MatMul8, 7);
        let _ = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(310));
        let s = mgr.stats();
        let text = s.to_json_string();
        let back = RecoveryStats::from_json_str(&text).expect("decodes");
        assert_eq!(back, s);
        assert!(text.contains("\"mttr_us\""), "{text}");
    }

    #[test]
    fn timeout_cause_distinguishes_recovery_paths() {
        // A StillInFlight timeout (stalled DMA) still recovers by retry:
        // the stall is consumed by the failed attempt.
        let mut cfg = SystemConfig::fast_test();
        cfg.transfer_timeout = SimDuration::from_micros(200);
        let mut sys = ZynqPdrSystem::new(cfg);
        let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
        let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 8);
        sys.inject_dma_stall(100_000);
        let probe = sys.reconfigure(0, &bs, mhz(100));
        assert_eq!(
            probe.error,
            Some(ReconfigError::Timeout(TimeoutCause::StillInFlight))
        );
        let out = mgr.reconfigure(&mut sys, None, 0, &bs, mhz(100));
        assert!(out.succeeded(), "{out:?}");
    }
}
