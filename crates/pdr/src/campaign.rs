//! Fault-injection campaigns: statistical characterisation of the CRC
//! read-back monitor.
//!
//! The paper motivates the CRC block with "industrial IoT computers working
//! in harsh environments, such as factories" — environments where
//! configuration memory accumulates single-event upsets. A campaign injects
//! many randomly placed SEUs into monitored partitions, measures the
//! detection latency distribution, and verifies that upsets *outside* the
//! monitored regions (the static part, in this model's scope) do not raise
//! false alarms.
//!
//! Detection latency is bounded by construction: the monitor scans
//! round-robin, so an upset is caught within at most one full sweep after
//! the scan that first re-reads the flipped frame — the campaign checks the
//! measured distribution against that bound.

use pdr_sim_core::stats::OnlineStats;
use pdr_sim_core::{impl_json_struct, SimDuration, Xoshiro256StarStar};

use crate::system::ZynqPdrSystem;

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Upsets to inject into monitored partitions.
    pub injections: u32,
    /// Additional upsets injected *outside* the monitored regions, which
    /// must not alarm (scope check).
    pub out_of_scope_injections: u32,
    /// Partitions under monitoring.
    pub rps: Vec<usize>,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for SeuCampaign {
    fn default() -> Self {
        SeuCampaign {
            injections: 32,
            out_of_scope_injections: 4,
            rps: vec![0],
            seed: 2017,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Upsets detected by the monitor.
    pub detected: u32,
    /// Upsets the monitor failed to detect within the deadline (must be 0).
    pub missed: u32,
    /// False alarms raised by out-of-scope upsets (must be 0).
    pub false_alarms: u32,
    /// Detection latencies in µs.
    pub latency_us: StatsSummary,
    /// One full monitor sweep, in µs (the theoretical latency bound is
    /// roughly two sweeps).
    pub scan_period_us: f64,
}

impl_json_struct!(CampaignResult {
    detected,
    missed,
    false_alarms,
    latency_us,
    scan_period_us,
});

/// A serialisable summary of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl_json_struct!(StatsSummary {
    count,
    mean,
    std_dev,
    min,
    max
});

impl From<&OnlineStats> for StatsSummary {
    fn from(s: &OnlineStats) -> Self {
        StatsSummary {
            count: s.count(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min().unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }
}

/// Runs an SEU campaign on `sys`. The monitored partitions must already be
/// configured (their current content becomes the golden reference).
///
/// # Panics
///
/// Panics if the campaign monitors no partitions.
pub fn run_seu_campaign(sys: &mut ZynqPdrSystem, campaign: &SeuCampaign) -> CampaignResult {
    assert!(
        !campaign.rps.is_empty(),
        "campaign needs monitored partitions"
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(campaign.seed);
    sys.start_background_monitor(&campaign.rps);
    let scan = sys.monitor_scan_period();
    let deadline = scan * 3;

    let mut detected = 0;
    let mut missed = 0;
    let mut latency = OnlineStats::new();

    for _ in 0..campaign.injections {
        // Let the monitor free-run a random fraction of a sweep so the
        // injection lands at a random phase of the scan.
        sys.run_monitor_for(SimDuration::from_ps(rng.next_bounded(scan.as_ps().max(1))));
        let rp = campaign.rps[rng.next_bounded(campaign.rps.len() as u64) as usize];
        let frames = {
            let p = sys.floorplan().partition(rp);
            p.frame_count(sys.floorplan().geometry())
        };
        let frame = rng.next_bounded(frames as u64) as u32;
        let word = rng.next_bounded(pdr_bitstream::FRAME_WORDS as u64) as usize;
        let bit = rng.next_bounded(32) as u32;
        sys.inject_seu(rp, frame, word, bit);
        match sys.run_monitor_until_alarm(deadline) {
            Some(lat) => {
                detected += 1;
                latency.push(lat.as_micros_f64());
            }
            None => missed += 1,
        }
        // Scrub: flipping the same bit again restores the golden content,
        // then re-arm the alarm line.
        sys.inject_seu(rp, frame, word, bit);
        sys.crc_error_irq().clear();
        // Let the current sweep finish over the repaired frame so a stale
        // in-progress CRC cannot alarm spuriously.
        sys.run_monitor_for(scan);
        sys.crc_error_irq().clear();
    }

    // Out-of-scope upsets: static-region frames are nobody's golden
    // reference, so the monitor must stay silent.
    let mut false_alarms = 0;
    for _ in 0..campaign.out_of_scope_injections {
        if let Some(far) = static_region_far(sys, &campaign.rps, &mut rng) {
            sys.inject_static_seu(far, 3, 7);
            sys.run_monitor_for(scan * 2);
            if sys.crc_error_irq().is_raised() {
                false_alarms += 1;
                sys.crc_error_irq().clear();
            }
        }
    }

    CampaignResult {
        detected,
        missed,
        false_alarms,
        latency_us: StatsSummary::from(&latency),
        scan_period_us: scan.as_micros_f64(),
    }
}

/// Picks a frame outside every monitored partition, if the device has one.
fn static_region_far(
    sys: &ZynqPdrSystem,
    rps: &[usize],
    rng: &mut Xoshiro256StarStar,
) -> Option<pdr_bitstream::FrameAddress> {
    let geometry = sys.floorplan().geometry();
    let total = geometry.total_frames();
    'outer: for _ in 0..64 {
        let idx = rng.next_bounded(total as u64) as u32;
        for &rp in rps {
            let p = sys.floorplan().partition(rp);
            let start = p.start_index(geometry);
            let count = p.frame_count(geometry);
            if idx >= start && idx < start + count {
                continue 'outer;
            }
        }
        return Some(geometry.far_at(idx));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use pdr_fabric::AspKind;
    use pdr_sim_core::Frequency;

    fn configured_system() -> ZynqPdrSystem {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        for rp in 0..2 {
            let bs = sys.make_asp_bitstream(rp, AspKind::AesMix, rp as u32 + 1);
            assert!(sys.reconfigure(rp, &bs, Frequency::from_mhz(200)).crc_ok());
        }
        sys
    }

    #[test]
    fn campaign_detects_everything_in_scope() {
        let mut sys = configured_system();
        let campaign = SeuCampaign {
            injections: 16,
            out_of_scope_injections: 4,
            rps: vec![0, 1],
            seed: 7,
        };
        let r = run_seu_campaign(&mut sys, &campaign);
        assert_eq!(r.detected, 16, "{r:?}");
        assert_eq!(r.missed, 0, "{r:?}");
        assert_eq!(r.false_alarms, 0, "{r:?}");
        assert_eq!(r.latency_us.count, 16);
        // Every detection within the two-sweep bound (plus margin).
        assert!(
            r.latency_us.max <= 2.2 * r.scan_period_us,
            "worst {} vs bound {}",
            r.latency_us.max,
            2.0 * r.scan_period_us
        );
        assert!(r.latency_us.mean > 0.0);
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let run = |seed| {
            let mut sys = configured_system();
            run_seu_campaign(
                &mut sys,
                &SeuCampaign {
                    injections: 6,
                    out_of_scope_injections: 2,
                    rps: vec![0],
                    seed,
                },
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).latency_us.mean, run(2).latency_us.mean);
    }

    #[test]
    #[should_panic(expected = "needs monitored partitions")]
    fn empty_campaign_panics() {
        let mut sys = configured_system();
        let _ = run_seu_campaign(
            &mut sys,
            &SeuCampaign {
                rps: vec![],
                ..SeuCampaign::default()
            },
        );
    }
}
