//! Fault-injection campaigns: statistical characterisation of the CRC
//! read-back monitor.
//!
//! The paper motivates the CRC block with "industrial IoT computers working
//! in harsh environments, such as factories" — environments where
//! configuration memory accumulates single-event upsets. A campaign injects
//! many randomly placed SEUs into monitored partitions, measures the
//! detection latency distribution, and verifies that upsets *outside* the
//! monitored regions (the static part, in this model's scope) do not raise
//! false alarms.
//!
//! Detection latency is bounded by construction: the monitor scans
//! round-robin, so an upset is caught within at most one full sweep after
//! the scan that first re-reads the flipped frame — the campaign checks the
//! measured distribution against that bound.

use pdr_sim_core::stats::OnlineStats;
use pdr_sim_core::{impl_json_struct, Frequency, SimDuration, SimTime, Xoshiro256StarStar};

use crate::faults::{FaultKind, FaultPlan, FaultPlanConfig};
use crate::recovery::{PartitionHealth, RecoveryConfig, RecoveryManager, RecoveryStats};
use crate::system::{SystemConfig, ZynqPdrSystem};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Upsets to inject into monitored partitions.
    pub injections: u32,
    /// Additional upsets injected *outside* the monitored regions, which
    /// must not alarm (scope check).
    pub out_of_scope_injections: u32,
    /// Partitions under monitoring.
    pub rps: Vec<usize>,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for SeuCampaign {
    fn default() -> Self {
        SeuCampaign {
            injections: 32,
            out_of_scope_injections: 4,
            rps: vec![0],
            seed: 2017,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Upsets detected by the monitor.
    pub detected: u32,
    /// Upsets the monitor failed to detect within the deadline (must be 0).
    pub missed: u32,
    /// False alarms raised by out-of-scope upsets (must be 0).
    pub false_alarms: u32,
    /// Detection latencies in µs.
    pub latency_us: StatsSummary,
    /// One full monitor sweep, in µs (the theoretical latency bound is
    /// roughly two sweeps).
    pub scan_period_us: f64,
}

impl_json_struct!(CampaignResult {
    detected,
    missed,
    false_alarms,
    latency_us,
    scan_period_us,
});

/// A serialisable summary of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl_json_struct!(StatsSummary {
    count,
    mean,
    std_dev,
    min,
    max
});

impl StatsSummary {
    /// The canonical zero-sample summary: every field zero. A campaign that
    /// recorded nothing (e.g. a zero-fault recovery run) must still produce
    /// a well-defined, JSON-round-trippable summary, not NaN placeholders.
    pub const EMPTY: StatsSummary = StatsSummary {
        count: 0,
        mean: 0.0,
        std_dev: 0.0,
        min: 0.0,
        max: 0.0,
    };

    /// True when every field is finite (the codec renders non-finite floats
    /// as `null`, which then fails to decode — reports must never do that).
    pub fn is_json_safe(&self) -> bool {
        self.mean.is_finite()
            && self.std_dev.is_finite()
            && self.min.is_finite()
            && self.max.is_finite()
    }
}

impl From<&OnlineStats> for StatsSummary {
    fn from(s: &OnlineStats) -> Self {
        if s.count() == 0 {
            return StatsSummary::EMPTY;
        }
        // Defensive: a NaN pushed upstream would contaminate every Welford
        // moment. Clamp to 0.0 rather than serialize a non-finite float.
        let sanitize = |v: f64| if v.is_finite() { v } else { 0.0 };
        StatsSummary {
            count: s.count(),
            mean: sanitize(s.mean()),
            std_dev: sanitize(s.std_dev()),
            min: sanitize(s.min().unwrap_or(0.0)),
            max: sanitize(s.max().unwrap_or(0.0)),
        }
    }
}

/// Runs an SEU campaign on `sys`. The monitored partitions must already be
/// configured (their current content becomes the golden reference).
///
/// # Panics
///
/// Panics if the campaign monitors no partitions.
pub fn run_seu_campaign(sys: &mut ZynqPdrSystem, campaign: &SeuCampaign) -> CampaignResult {
    assert!(
        !campaign.rps.is_empty(),
        "campaign needs monitored partitions"
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(campaign.seed);
    sys.start_background_monitor(&campaign.rps);
    let scan = sys.monitor_scan_period();
    let deadline = scan * 3;

    let mut detected = 0;
    let mut missed = 0;
    let mut latency = OnlineStats::new();

    for _ in 0..campaign.injections {
        // Let the monitor free-run a random fraction of a sweep so the
        // injection lands at a random phase of the scan.
        sys.run_monitor_for(SimDuration::from_ps(rng.next_bounded(scan.as_ps().max(1))));
        let rp = campaign.rps[rng.next_bounded(campaign.rps.len() as u64) as usize];
        let frames = {
            let p = sys.floorplan().partition(rp);
            p.frame_count(sys.floorplan().geometry())
        };
        let frame = rng.next_bounded(frames as u64) as u32;
        let word = rng.next_bounded(pdr_bitstream::FRAME_WORDS as u64) as usize;
        let bit = rng.next_bounded(32) as u32;
        sys.inject_seu(rp, frame, word, bit);
        match sys.run_monitor_until_alarm(deadline) {
            Some(lat) => {
                detected += 1;
                latency.push(lat.as_micros_f64());
            }
            None => missed += 1,
        }
        // Scrub: flipping the same bit again restores the golden content,
        // then re-arm the alarm line.
        sys.inject_seu(rp, frame, word, bit);
        sys.crc_error_irq().clear();
        // Let the current sweep finish over the repaired frame so a stale
        // in-progress CRC cannot alarm spuriously.
        sys.run_monitor_for(scan);
        sys.crc_error_irq().clear();
    }

    // Out-of-scope upsets: static-region frames are nobody's golden
    // reference, so the monitor must stay silent.
    let mut false_alarms = 0;
    for _ in 0..campaign.out_of_scope_injections {
        if let Some(far) = static_region_far(sys, &campaign.rps, &mut rng) {
            sys.inject_static_seu(far, 3, 7);
            sys.run_monitor_for(scan * 2);
            if sys.crc_error_irq().is_raised() {
                false_alarms += 1;
                sys.crc_error_irq().clear();
            }
        }
    }

    CampaignResult {
        detected,
        missed,
        false_alarms,
        latency_us: StatsSummary::from(&latency),
        scan_period_us: scan.as_micros_f64(),
    }
}

/// Picks a frame outside every monitored partition, if the device has one.
fn static_region_far(
    sys: &ZynqPdrSystem,
    rps: &[usize],
    rng: &mut Xoshiro256StarStar,
) -> Option<pdr_bitstream::FrameAddress> {
    let geometry = sys.floorplan().geometry();
    let total = geometry.total_frames();
    'outer: for _ in 0..64 {
        let idx = rng.next_bounded(total as u64) as u32;
        for &rp in rps {
            let p = sys.floorplan().partition(rp);
            let start = p.start_index(geometry);
            let count = p.frame_count(geometry);
            if idx >= start && idx < start + count {
                continue 'outer;
            }
        }
        return Some(geometry.far_at(idx));
    }
    None
}

/// Mixed-fault campaign parameters: a replayable [`FaultPlanConfig`]
/// schedule plus the recovery policy that must absorb it.
///
/// The defaults are tuned so that, on [`FaultCampaign::fast_system`],
/// *every* scheduled fault manifests as an observable failure: timing
/// bursts derate past the 280 MHz interrupt slack (25 MHz at 40 °C), DMA
/// stalls outlast the watchdog timeout, and SEUs land in monitored
/// partitions. A fault that cannot manifest would count as `benign`, and
/// the acceptance tests pin `benign == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    /// The fault schedule (see [`FaultPlan::generate`]).
    pub plan: FaultPlanConfig,
    /// Partitions in service, monitored and used as reconfiguration
    /// vehicles. Must cover every partition the plan's SEUs target.
    pub rps: Vec<usize>,
    /// Requested over-clock for vehicle reconfigurations, MHz.
    pub operating_mhz: u64,
    /// The recovery ladder under test.
    pub recovery: RecoveryConfig,
}

impl Default for FaultCampaign {
    fn default() -> Self {
        FaultCampaign {
            plan: FaultPlanConfig {
                seed: 2017,
                duration: SimDuration::from_millis(6),
                mean_interarrival: SimDuration::from_micros(50),
                burst_probability: 0.1,
                burst_length: 3,
                burst_spacing: SimDuration::from_micros(20),
                weights: [6, 2, 1, 2],
                // 280 MHz has 25 MHz of interrupt slack and 38 MHz of data
                // slack at 40 °C: every derate in range kills at least the
                // interrupt path, derates past 38 corrupt data too.
                derate_mhz: (30.0, 60.0),
                timing_burst_duration: SimDuration::from_micros(400),
                // The watchdog fires at 250 µs = 70 k cycles at 280 MHz;
                // every stall in range outlasts it.
                stall_cycles: (80_000, 150_000),
            },
            rps: vec![0, 1],
            operating_mhz: 280,
            recovery: RecoveryConfig {
                scrub_mhz: 200,
                ..RecoveryConfig::default()
            },
        }
    }
}

impl FaultCampaign {
    /// A system configuration tuned for campaign runs: the fast-test
    /// floorplan with a watchdog timeout short enough that the plan's DMA
    /// stalls manifest within simulated microseconds instead of the
    /// production 40 ms.
    pub fn fast_system() -> SystemConfig {
        let mut cfg = SystemConfig::fast_test();
        cfg.transfer_timeout = SimDuration::from_micros(250);
        cfg
    }
}

/// Aggregate outcome of [`run_fault_campaign`]. Serialisable; two runs from
/// the same seed produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignResult {
    /// The plan seed (replay provenance).
    pub seed: u64,
    /// Total scheduled fault events.
    pub events: u64,
    /// SEU bit-flips injected.
    pub injected_seu: u64,
    /// Timing bursts injected.
    pub injected_timing_bursts: u64,
    /// DMA stalls injected.
    pub injected_dma_stalls: u64,
    /// Completion interrupts dropped.
    pub injected_dropped_irqs: u64,
    /// Faults observed by the monitor or the watchdog.
    pub detected: u64,
    /// SEUs the monitor missed within its deadline (must be 0; a miss also
    /// surfaces in the final golden sweep).
    pub undetected: u64,
    /// Faults that produced no observable failure (must be 0 under the
    /// default tuning).
    pub benign: u64,
    /// Faults skipped because every candidate partition was quarantined.
    pub skipped: u64,
    /// Detected faults repaired by the recovery ladder.
    pub recovered: u64,
    /// Detected faults the ladder could not repair.
    pub unrecovered: u64,
    /// Partitions whose post-campaign fabric content silently diverged
    /// from their golden image (must be 0).
    pub silent_corruptions: u64,
    /// Partitions taken out of service.
    pub quarantined_partitions: u64,
    /// In-service fraction of partition-time: 1 minus accumulated
    /// detection + repair + quarantine downtime over the campaign span.
    pub availability: f64,
    /// Campaign wall time, µs (simulated).
    pub campaign_us: f64,
    /// The recovery manager's own telemetry.
    pub recovery: RecoveryStats,
}

impl_json_struct!(FaultCampaignResult {
    seed,
    events,
    injected_seu,
    injected_timing_bursts,
    injected_dma_stalls,
    injected_dropped_irqs,
    detected,
    undetected,
    benign,
    skipped,
    recovered,
    unrecovered,
    silent_corruptions,
    quarantined_partitions,
    availability,
    campaign_us,
    recovery,
});

/// Runs a mixed-fault campaign: generates the plan, brings every partition
/// into service (initial content becomes the golden reference), then walks
/// the schedule. SEUs are detected by the background CRC monitor and
/// scrubbed; timing bursts, DMA stalls and dropped interrupts are exercised
/// through a managed reconfiguration on a round-robin vehicle partition, so
/// the watchdog + retry/backoff ladder absorbs them. A final golden sweep
/// counts silent corruptions.
///
/// Deterministic: the result (including its JSON) is a pure function of
/// the campaign, the system configuration and their seeds.
///
/// # Panics
///
/// Panics if the campaign monitors no partitions, the plan targets a
/// partition outside the monitored set, or initial configuration fails.
pub fn run_fault_campaign(
    sys: &mut ZynqPdrSystem,
    campaign: &FaultCampaign,
) -> FaultCampaignResult {
    assert!(
        !campaign.rps.is_empty(),
        "campaign needs monitored partitions"
    );
    let plan = FaultPlan::generate(&campaign.plan, sys.floorplan());
    for e in plan.events.iter().filter(|e| e.kind == FaultKind::Seu) {
        assert!(
            campaign.rps.contains(&e.rp),
            "plan targets partition {} outside the monitored set",
            e.rp
        );
    }
    let operating = Frequency::from_mhz(campaign.operating_mhz);
    let scrub = Frequency::from_mhz(campaign.recovery.scrub_mhz);
    let mut mgr = RecoveryManager::for_system(sys, campaign.recovery);

    for (i, &rp) in campaign.rps.iter().enumerate() {
        let bs = sys.make_partial_bitstream(rp, i as u32 + 1);
        let out = mgr.reconfigure(sys, None, rp, &bs, scrub);
        assert!(out.succeeded(), "initial configuration of rp{rp} failed");
    }
    sys.start_background_monitor(&campaign.rps);
    let scan = sys.monitor_scan_period();
    let t0 = sys.now();

    let mut detected = 0u64;
    let mut undetected = 0u64;
    let mut benign = 0u64;
    let mut skipped = 0u64;
    let mut recovered = 0u64;
    let mut unrecovered = 0u64;
    let mut downtime_ps = 0u64;
    let mut quarantined_at: Vec<Option<SimTime>> = vec![None; sys.floorplan().partitions().len()];
    let mut rr = 0usize;

    for e in &plan.events {
        // Advance to the scheduled instant; events that fall behind the
        // handling of their predecessors run back-to-back.
        let elapsed = sys.now().duration_since(t0).as_ps();
        if e.at_ps > elapsed {
            sys.run_monitor_for(SimDuration::from_ps(e.at_ps - elapsed));
        }
        match e.kind {
            FaultKind::Seu => {
                if mgr.health(e.rp) == PartitionHealth::Quarantined {
                    skipped += 1;
                    continue;
                }
                sys.inject_seu(e.rp, e.frame, e.word, e.bit);
                match sys.run_monitor_until_alarm(scan * 3) {
                    Some(lat) => {
                        detected += 1;
                        downtime_ps += lat.as_ps();
                        mgr.record_detection(lat);
                        let out = mgr.on_crc_alarm(sys, e.rp);
                        if out.succeeded() {
                            recovered += 1;
                            downtime_ps += out.mttr.expect("recovered").as_ps();
                        } else {
                            unrecovered += 1;
                            note_quarantines(&mgr, &mut quarantined_at, sys.now());
                        }
                        restart_monitor(sys, &mgr, &campaign.rps);
                    }
                    None => undetected += 1,
                }
            }
            kind => {
                match kind {
                    FaultKind::TimingBurst => {
                        sys.inject_timing_burst(e.derate_mhz, SimDuration::from_ps(e.duration_ps))
                    }
                    FaultKind::DmaStall => sys.inject_dma_stall(e.stall_cycles),
                    FaultKind::DroppedIrq => sys.drop_next_completion_irq(),
                    FaultKind::Seu => unreachable!("handled above"),
                }
                let n = campaign.rps.len();
                let mut vehicle = None;
                for k in 0..n {
                    let rp = campaign.rps[(rr + k) % n];
                    if mgr.health(rp) != PartitionHealth::Quarantined {
                        vehicle = Some(rp);
                        rr += k + 1;
                        break;
                    }
                }
                let Some(rp) = vehicle else {
                    skipped += 1;
                    continue;
                };
                let bs = mgr.golden(rp).expect("configured at start");
                let out = mgr.reconfigure(sys, None, rp, &bs, operating);
                if out.recovered_after_failure || !out.succeeded() {
                    detected += 1;
                } else {
                    benign += 1;
                }
                if out.succeeded() {
                    if out.recovered_after_failure {
                        recovered += 1;
                        downtime_ps += out.mttr.expect("recovered").as_ps();
                    }
                } else {
                    unrecovered += 1;
                    note_quarantines(&mgr, &mut quarantined_at, sys.now());
                }
                restart_monitor(sys, &mgr, &campaign.rps);
            }
        }
    }

    let end = sys.now();
    let duration = end.duration_since(t0);
    let mut silent_corruptions = 0u64;
    for &rp in &campaign.rps {
        if mgr.health(rp) == PartitionHealth::Quarantined {
            continue;
        }
        let golden = mgr.golden(rp).expect("configured at start");
        if !sys.fabric_matches(&golden) {
            silent_corruptions += 1;
        }
    }
    for q in quarantined_at.iter().flatten() {
        downtime_ps += end.duration_since(*q).as_ps();
    }
    let span_ps = duration
        .as_ps()
        .max(1)
        .saturating_mul(campaign.rps.len() as u64);
    let availability = (1.0 - downtime_ps as f64 / span_ps as f64).clamp(0.0, 1.0);

    FaultCampaignResult {
        seed: plan.seed,
        events: plan.events.len() as u64,
        injected_seu: plan.count(FaultKind::Seu) as u64,
        injected_timing_bursts: plan.count(FaultKind::TimingBurst) as u64,
        injected_dma_stalls: plan.count(FaultKind::DmaStall) as u64,
        injected_dropped_irqs: plan.count(FaultKind::DroppedIrq) as u64,
        detected,
        undetected,
        benign,
        skipped,
        recovered,
        unrecovered,
        silent_corruptions,
        quarantined_partitions: mgr.stats().quarantines,
        availability,
        campaign_us: duration.as_micros_f64(),
        recovery: mgr.stats(),
    }
}

/// Re-arms the background monitor over the partitions still in service
/// (reconfiguration pauses it; quarantined partitions leave the scan).
fn restart_monitor(sys: &mut ZynqPdrSystem, mgr: &RecoveryManager, rps: &[usize]) {
    let active: Vec<usize> = rps
        .iter()
        .copied()
        .filter(|&rp| mgr.health(rp) != PartitionHealth::Quarantined)
        .collect();
    if !active.is_empty() {
        sys.start_background_monitor(&active);
    }
}

/// Stamps the quarantine instant of any newly quarantined partition, for
/// availability accounting.
fn note_quarantines(mgr: &RecoveryManager, at: &mut [Option<SimTime>], now: SimTime) {
    for (rp, h) in mgr.health_all().iter().enumerate() {
        if *h == PartitionHealth::Quarantined && at[rp].is_none() {
            at[rp] = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::AspKind;
    use pdr_sim_core::json::ToJson;

    fn configured_system() -> ZynqPdrSystem {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        for rp in 0..2 {
            let bs = sys.make_asp_bitstream(rp, AspKind::AesMix, rp as u32 + 1);
            assert!(sys.reconfigure(rp, &bs, Frequency::from_mhz(200)).crc_ok());
        }
        sys
    }

    #[test]
    fn campaign_detects_everything_in_scope() {
        let mut sys = configured_system();
        let campaign = SeuCampaign {
            injections: 16,
            out_of_scope_injections: 4,
            rps: vec![0, 1],
            seed: 7,
        };
        let r = run_seu_campaign(&mut sys, &campaign);
        assert_eq!(r.detected, 16, "{r:?}");
        assert_eq!(r.missed, 0, "{r:?}");
        assert_eq!(r.false_alarms, 0, "{r:?}");
        assert_eq!(r.latency_us.count, 16);
        // Every detection within the two-sweep bound (plus margin).
        assert!(
            r.latency_us.max <= 2.2 * r.scan_period_us,
            "worst {} vs bound {}",
            r.latency_us.max,
            2.0 * r.scan_period_us
        );
        assert!(r.latency_us.mean > 0.0);
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let run = |seed| {
            let mut sys = configured_system();
            run_seu_campaign(
                &mut sys,
                &SeuCampaign {
                    injections: 6,
                    out_of_scope_injections: 2,
                    rps: vec![0],
                    seed,
                },
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).latency_us.mean, run(2).latency_us.mean);
    }

    fn small_fault_campaign() -> FaultCampaign {
        let mut c = FaultCampaign::default();
        c.plan.duration = SimDuration::from_millis(1);
        c.plan.mean_interarrival = SimDuration::from_micros(100);
        c
    }

    #[test]
    fn fault_campaign_detects_and_recovers_everything() {
        let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
        let c = small_fault_campaign();
        let r = run_fault_campaign(&mut sys, &c);
        assert!(r.events >= 5, "{r:?}");
        assert_eq!(r.detected, r.events, "{r:?}");
        assert_eq!(
            (r.undetected, r.benign, r.skipped, r.unrecovered),
            (0, 0, 0, 0),
            "{r:?}"
        );
        assert_eq!(r.recovered, r.detected, "{r:?}");
        assert_eq!(r.silent_corruptions, 0, "{r:?}");
        assert_eq!(r.quarantined_partitions, 0, "{r:?}");
        assert!(r.availability > 0.0 && r.availability < 1.0, "{r:?}");
        assert_eq!(r.recovery.faults_detected, r.detected, "{r:?}");
        assert_eq!(r.recovery.faults_recovered, r.recovered, "{r:?}");
    }

    #[test]
    fn fault_campaign_is_replay_identical() {
        let run = |seed| {
            let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
            let mut c = small_fault_campaign();
            c.plan.seed = seed;
            run_fault_campaign(&mut sys, &c)
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_ne!(run(5).to_json_string(), run(6).to_json_string());
    }

    #[test]
    #[should_panic(expected = "needs monitored partitions")]
    fn empty_campaign_panics() {
        let mut sys = configured_system();
        let _ = run_seu_campaign(
            &mut sys,
            &SeuCampaign {
                rps: vec![],
                ..SeuCampaign::default()
            },
        );
    }
}
