//! Fault-injection campaigns: statistical characterisation of the CRC
//! read-back monitor.
//!
//! The paper motivates the CRC block with "industrial IoT computers working
//! in harsh environments, such as factories" — environments where
//! configuration memory accumulates single-event upsets. A campaign injects
//! many randomly placed SEUs into monitored partitions, measures the
//! detection latency distribution, and verifies that upsets *outside* the
//! monitored regions (the static part, in this model's scope) do not raise
//! false alarms.
//!
//! Detection latency is bounded by construction: the monitor scans
//! round-robin, so an upset is caught within at most one full sweep after
//! the scan that first re-reads the flipped frame — the campaign checks the
//! measured distribution against that bound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::stats::OnlineStats;
use pdr_sim_core::{
    impl_json_enum, impl_json_struct, Frequency, SimDuration, SimTime, Xoshiro256StarStar,
};

use crate::faults::{FaultKind, FaultPlan, FaultPlanConfig};
use crate::recovery::{PartitionHealth, RecoveryConfig, RecoveryManager, RecoveryStats};
use crate::snapshot;
use crate::system::{SystemConfig, ZynqPdrSystem};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Upsets to inject into monitored partitions.
    pub injections: u32,
    /// Additional upsets injected *outside* the monitored regions, which
    /// must not alarm (scope check).
    pub out_of_scope_injections: u32,
    /// Partitions under monitoring.
    pub rps: Vec<usize>,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for SeuCampaign {
    fn default() -> Self {
        SeuCampaign {
            injections: 32,
            out_of_scope_injections: 4,
            rps: vec![0],
            seed: 2017,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Upsets detected by the monitor.
    pub detected: u32,
    /// Upsets the monitor failed to detect within the deadline (must be 0).
    pub missed: u32,
    /// False alarms raised by out-of-scope upsets (must be 0).
    pub false_alarms: u32,
    /// Detection latencies in µs.
    pub latency_us: StatsSummary,
    /// One full monitor sweep, in µs (the theoretical latency bound is
    /// roughly two sweeps).
    pub scan_period_us: f64,
}

impl_json_struct!(CampaignResult {
    detected,
    missed,
    false_alarms,
    latency_us,
    scan_period_us,
});

/// A serialisable summary of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl_json_struct!(StatsSummary {
    count,
    mean,
    std_dev,
    min,
    max
});

impl StatsSummary {
    /// The canonical zero-sample summary: every field zero. A campaign that
    /// recorded nothing (e.g. a zero-fault recovery run) must still produce
    /// a well-defined, JSON-round-trippable summary, not NaN placeholders.
    pub const EMPTY: StatsSummary = StatsSummary {
        count: 0,
        mean: 0.0,
        std_dev: 0.0,
        min: 0.0,
        max: 0.0,
    };

    /// True when every field is finite (the codec renders non-finite floats
    /// as `null`, which then fails to decode — reports must never do that).
    pub fn is_json_safe(&self) -> bool {
        self.mean.is_finite()
            && self.std_dev.is_finite()
            && self.min.is_finite()
            && self.max.is_finite()
    }
}

impl From<&OnlineStats> for StatsSummary {
    fn from(s: &OnlineStats) -> Self {
        if s.count() == 0 {
            return StatsSummary::EMPTY;
        }
        // Defensive: a NaN pushed upstream would contaminate every Welford
        // moment. Clamp to 0.0 rather than serialize a non-finite float.
        let sanitize = |v: f64| if v.is_finite() { v } else { 0.0 };
        StatsSummary {
            count: s.count(),
            mean: sanitize(s.mean()),
            std_dev: sanitize(s.std_dev()),
            min: sanitize(s.min().unwrap_or(0.0)),
            max: sanitize(s.max().unwrap_or(0.0)),
        }
    }
}

/// Runs an SEU campaign on `sys`. The monitored partitions must already be
/// configured (their current content becomes the golden reference).
///
/// # Panics
///
/// Panics if the campaign monitors no partitions.
pub fn run_seu_campaign(sys: &mut ZynqPdrSystem, campaign: &SeuCampaign) -> CampaignResult {
    assert!(
        !campaign.rps.is_empty(),
        "campaign needs monitored partitions"
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(campaign.seed);
    sys.start_background_monitor(&campaign.rps);
    let scan = sys.monitor_scan_period();
    let deadline = scan * 3;

    let mut detected = 0;
    let mut missed = 0;
    let mut latency = OnlineStats::new();

    for _ in 0..campaign.injections {
        // Let the monitor free-run a random fraction of a sweep so the
        // injection lands at a random phase of the scan.
        sys.run_monitor_for(SimDuration::from_ps(rng.next_bounded(scan.as_ps().max(1))));
        let rp = campaign.rps[rng.next_bounded(campaign.rps.len() as u64) as usize];
        let frames = {
            let p = sys.floorplan().partition(rp);
            p.frame_count(sys.floorplan().geometry())
        };
        let frame = rng.next_bounded(frames as u64) as u32;
        let word = rng.next_bounded(pdr_bitstream::FRAME_WORDS as u64) as usize;
        let bit = rng.next_bounded(32) as u32;
        sys.inject_seu(rp, frame, word, bit);
        match sys.run_monitor_until_alarm(deadline) {
            Some(lat) => {
                detected += 1;
                latency.push(lat.as_micros_f64());
            }
            None => missed += 1,
        }
        // Scrub: flipping the same bit again restores the golden content,
        // then re-arm the alarm line.
        sys.inject_seu(rp, frame, word, bit);
        sys.crc_error_irq().clear();
        // Let the current sweep finish over the repaired frame so a stale
        // in-progress CRC cannot alarm spuriously.
        sys.run_monitor_for(scan);
        sys.crc_error_irq().clear();
    }

    // Out-of-scope upsets: static-region frames are nobody's golden
    // reference, so the monitor must stay silent.
    let mut false_alarms = 0;
    for _ in 0..campaign.out_of_scope_injections {
        if let Some(far) = static_region_far(sys, &campaign.rps, &mut rng) {
            sys.inject_static_seu(far, 3, 7);
            sys.run_monitor_for(scan * 2);
            if sys.crc_error_irq().is_raised() {
                false_alarms += 1;
                sys.crc_error_irq().clear();
            }
        }
    }

    CampaignResult {
        detected,
        missed,
        false_alarms,
        latency_us: StatsSummary::from(&latency),
        scan_period_us: scan.as_micros_f64(),
    }
}

/// Picks a frame outside every monitored partition, if the device has one.
fn static_region_far(
    sys: &ZynqPdrSystem,
    rps: &[usize],
    rng: &mut Xoshiro256StarStar,
) -> Option<pdr_bitstream::FrameAddress> {
    let geometry = sys.floorplan().geometry();
    let total = geometry.total_frames();
    'outer: for _ in 0..64 {
        let idx = rng.next_bounded(total as u64) as u32;
        for &rp in rps {
            let p = sys.floorplan().partition(rp);
            let start = p.start_index(geometry);
            let count = p.frame_count(geometry);
            if idx >= start && idx < start + count {
                continue 'outer;
            }
        }
        return Some(geometry.far_at(idx));
    }
    None
}

/// Mixed-fault campaign parameters: a replayable [`FaultPlanConfig`]
/// schedule plus the recovery policy that must absorb it.
///
/// The defaults are tuned so that, on [`FaultCampaign::fast_system`],
/// *every* scheduled fault manifests as an observable failure: timing
/// bursts derate past the 280 MHz interrupt slack (25 MHz at 40 °C), DMA
/// stalls outlast the watchdog timeout, and SEUs land in monitored
/// partitions. A fault that cannot manifest would count as `benign`, and
/// the acceptance tests pin `benign == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    /// The fault schedule (see [`FaultPlan::generate`]).
    pub plan: FaultPlanConfig,
    /// Partitions in service, monitored and used as reconfiguration
    /// vehicles. Must cover every partition the plan's SEUs target.
    pub rps: Vec<usize>,
    /// Requested over-clock for vehicle reconfigurations, MHz.
    pub operating_mhz: u64,
    /// The recovery ladder under test.
    pub recovery: RecoveryConfig,
}

impl Default for FaultCampaign {
    fn default() -> Self {
        FaultCampaign {
            plan: FaultPlanConfig {
                seed: 2017,
                duration: SimDuration::from_millis(6),
                mean_interarrival: SimDuration::from_micros(50),
                burst_probability: 0.1,
                burst_length: 3,
                burst_spacing: SimDuration::from_micros(20),
                weights: [6, 2, 1, 2, 0],
                // 280 MHz has 25 MHz of interrupt slack and 38 MHz of data
                // slack at 40 °C: every derate in range kills at least the
                // interrupt path, derates past 38 corrupt data too.
                derate_mhz: (30.0, 60.0),
                timing_burst_duration: SimDuration::from_micros(400),
                // The watchdog fires at 250 µs = 70 k cycles at 280 MHz;
                // every stall in range outlasts it.
                stall_cycles: (80_000, 150_000),
                ..FaultPlanConfig::default()
            },
            rps: vec![0, 1],
            operating_mhz: 280,
            recovery: RecoveryConfig {
                scrub_mhz: 200,
                ..RecoveryConfig::default()
            },
        }
    }
}

impl FaultCampaign {
    /// A system configuration tuned for campaign runs: the fast-test
    /// floorplan with a watchdog timeout short enough that the plan's DMA
    /// stalls manifest within simulated microseconds instead of the
    /// production 40 ms.
    pub fn fast_system() -> SystemConfig {
        let mut cfg = SystemConfig::fast_test();
        cfg.transfer_timeout = SimDuration::from_micros(250);
        cfg
    }
}

/// Aggregate outcome of [`run_fault_campaign`]. Serialisable; two runs from
/// the same seed produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignResult {
    /// The plan seed (replay provenance).
    pub seed: u64,
    /// Total scheduled fault events.
    pub events: u64,
    /// SEU bit-flips injected.
    pub injected_seu: u64,
    /// Timing bursts injected.
    pub injected_timing_bursts: u64,
    /// DMA stalls injected.
    pub injected_dma_stalls: u64,
    /// Completion interrupts dropped.
    pub injected_dropped_irqs: u64,
    /// Faults observed by the monitor or the watchdog.
    pub detected: u64,
    /// SEUs the monitor missed within its deadline (must be 0; a miss also
    /// surfaces in the final golden sweep).
    pub undetected: u64,
    /// Faults that produced no observable failure (must be 0 under the
    /// default tuning).
    pub benign: u64,
    /// Faults skipped because every candidate partition was quarantined.
    pub skipped: u64,
    /// Detected faults repaired by the recovery ladder.
    pub recovered: u64,
    /// Detected faults the ladder could not repair.
    pub unrecovered: u64,
    /// Partitions whose post-campaign fabric content silently diverged
    /// from their golden image (must be 0).
    pub silent_corruptions: u64,
    /// Partitions taken out of service.
    pub quarantined_partitions: u64,
    /// In-service fraction of partition-time: 1 minus accumulated
    /// detection + repair + quarantine downtime over the campaign span.
    pub availability: f64,
    /// Campaign wall time, µs (simulated).
    pub campaign_us: f64,
    /// The recovery manager's own telemetry.
    pub recovery: RecoveryStats,
}

impl_json_struct!(FaultCampaignResult {
    seed,
    events,
    injected_seu,
    injected_timing_bursts,
    injected_dma_stalls,
    injected_dropped_irqs,
    detected,
    undetected,
    benign,
    skipped,
    recovered,
    unrecovered,
    silent_corruptions,
    quarantined_partitions,
    availability,
    campaign_us,
    recovery,
});

/// What the system observed for one scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The fault manifested and was caught (CRC alarm, watchdog, or a
    /// recovered transfer failure).
    Detected,
    /// An SEU the monitor failed to catch within its deadline.
    Undetected,
    /// The fault produced no observable failure.
    Benign,
    /// Injection or exercise was skipped (every candidate quarantined).
    Skipped,
}

impl_json_enum!(FaultOutcome {
    Detected,
    Undetected,
    Benign,
    Skipped
});

/// Per-event campaign record, streamed to the caller's sink the moment the
/// event is resolved. The record carries full replay provenance: the event
/// index, its per-fault seed ([`FaultPlan::fault_seed`]) and the exact
/// injection timestamp, so any single fault can be re-run in isolation via
/// [`FaultPlan::isolate`] without regenerating the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Index of the event in the plan.
    pub idx: u64,
    /// The fault kind.
    pub kind: FaultKind,
    /// Per-fault RNG seed (replay provenance).
    pub seed: u64,
    /// Scheduled instant, ps from campaign start.
    pub scheduled_ps: u64,
    /// Absolute simulation time when the event was handled, ps.
    pub injected_ps: u64,
    /// What the system observed.
    pub outcome: FaultOutcome,
    /// Whether the recovery ladder repaired it.
    pub recovered: bool,
    /// Detection latency, µs (SEU detections; 0 otherwise).
    pub latency_us: f64,
    /// Time-to-repair, µs (recovered faults; 0 otherwise).
    pub mttr_us: f64,
}

impl_json_struct!(FaultRecord {
    idx,
    kind,
    seed,
    scheduled_ps,
    injected_ps,
    outcome,
    recovered,
    latency_us,
    mttr_us,
});

/// The campaign's mutable bookkeeping between events — everything the
/// stepwise runner needs besides the system, the recovery manager and the
/// (immutable) plan. Serialized whole into campaign checkpoints.
#[derive(Debug, Clone, PartialEq)]
struct CampaignState {
    idx: usize,
    detected: u64,
    undetected: u64,
    benign: u64,
    skipped: u64,
    recovered: u64,
    unrecovered: u64,
    downtime_ps: u64,
    quarantined_at: Vec<Option<SimTime>>,
    rr: usize,
    t0: SimTime,
    scan: SimDuration,
}

impl CampaignState {
    fn to_json(&self) -> Json {
        let quarantined: Vec<Json> = self
            .quarantined_at
            .iter()
            .map(|q| match q {
                None => Json::Null,
                Some(t) => Json::U64(t.as_ps()),
            })
            .collect();
        Json::Obj(vec![
            ("idx".into(), Json::U64(self.idx as u64)),
            ("detected".into(), Json::U64(self.detected)),
            ("undetected".into(), Json::U64(self.undetected)),
            ("benign".into(), Json::U64(self.benign)),
            ("skipped".into(), Json::U64(self.skipped)),
            ("recovered".into(), Json::U64(self.recovered)),
            ("unrecovered".into(), Json::U64(self.unrecovered)),
            ("downtime_ps".into(), Json::U64(self.downtime_ps)),
            ("quarantined_at".into(), Json::Arr(quarantined)),
            ("rr".into(), Json::U64(self.rr as u64)),
            ("t0_ps".into(), Json::U64(self.t0.as_ps())),
            ("scan_ps".into(), Json::U64(self.scan.as_ps())),
        ])
    }

    fn from_json(v: &Json, partitions: usize) -> Result<CampaignState, JsonError> {
        let u = |key: &str| -> Result<u64, JsonError> {
            v.get(key).and_then(Json::as_u64).ok_or_else(|| JsonError {
                msg: format!("campaign state missing u64 `{key}`"),
            })
        };
        let quarantined_json = v
            .get("quarantined_at")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                msg: "campaign state missing `quarantined_at`".into(),
            })?;
        if quarantined_json.len() != partitions {
            return Err(JsonError {
                msg: format!(
                    "quarantined_at covers {} partitions, system has {partitions}",
                    quarantined_json.len()
                ),
            });
        }
        let mut quarantined_at = Vec::with_capacity(partitions);
        for q in quarantined_json {
            quarantined_at.push(match q {
                Json::Null => None,
                other => Some(SimTime::from_ps(other.as_u64().ok_or_else(|| {
                    JsonError {
                        msg: "quarantined_at entry must be null or u64".into(),
                    }
                })?)),
            });
        }
        Ok(CampaignState {
            idx: u("idx")? as usize,
            detected: u("detected")?,
            undetected: u("undetected")?,
            benign: u("benign")?,
            skipped: u("skipped")?,
            recovered: u("recovered")?,
            unrecovered: u("unrecovered")?,
            downtime_ps: u("downtime_ps")?,
            quarantined_at,
            rr: u("rr")? as usize,
            t0: SimTime::from_ps(u("t0_ps")?),
            scan: SimDuration::from_ps(u("scan_ps")?),
        })
    }
}

/// Brings the system into service for a campaign: asserts the plan is in
/// scope, configures every partition (initial content becomes the golden
/// reference) and arms the background monitor.
fn init_campaign(
    sys: &mut ZynqPdrSystem,
    campaign: &FaultCampaign,
    plan: &FaultPlan,
) -> (RecoveryManager, CampaignState) {
    assert!(
        !campaign.rps.is_empty(),
        "campaign needs monitored partitions"
    );
    for e in plan.events.iter().filter(|e| e.kind == FaultKind::Seu) {
        assert!(
            campaign.rps.contains(&e.rp),
            "plan targets partition {} outside the monitored set",
            e.rp
        );
    }
    let scrub = Frequency::from_mhz(campaign.recovery.scrub_mhz);
    let mut mgr = RecoveryManager::for_system(sys, campaign.recovery);
    for (i, &rp) in campaign.rps.iter().enumerate() {
        let bs = sys.make_partial_bitstream(rp, i as u32 + 1);
        let out = mgr.reconfigure(sys, None, rp, &bs, scrub);
        assert!(out.succeeded(), "initial configuration of rp{rp} failed");
    }
    sys.start_background_monitor(&campaign.rps);
    let st = CampaignState {
        idx: 0,
        detected: 0,
        undetected: 0,
        benign: 0,
        skipped: 0,
        recovered: 0,
        unrecovered: 0,
        downtime_ps: 0,
        quarantined_at: vec![None; sys.floorplan().partitions().len()],
        rr: 0,
        t0: sys.now(),
        scan: sys.monitor_scan_period(),
    };
    (mgr, st)
}

/// Handles the next scheduled event: advances simulated time to its slot,
/// injects it, lets the monitor/recovery machinery resolve it, and folds
/// the outcome into the running counters. Returns the event's record, or
/// `None` when the plan is exhausted.
fn step_campaign(
    sys: &mut ZynqPdrSystem,
    mgr: &mut RecoveryManager,
    campaign: &FaultCampaign,
    plan: &FaultPlan,
    st: &mut CampaignState,
) -> Option<FaultRecord> {
    let i = st.idx;
    let e = plan.events.get(i)?;
    st.idx += 1;
    // Advance to the scheduled instant; events that fall behind the
    // handling of their predecessors run back-to-back.
    let elapsed = sys.now().duration_since(st.t0).as_ps();
    if e.at_ps > elapsed {
        sys.run_monitor_for(SimDuration::from_ps(e.at_ps - elapsed));
    }
    let mut rec = FaultRecord {
        idx: i as u64,
        kind: e.kind,
        seed: plan.fault_seed(i),
        scheduled_ps: e.at_ps,
        injected_ps: sys.now().as_ps(),
        outcome: FaultOutcome::Skipped,
        recovered: false,
        latency_us: 0.0,
        mttr_us: 0.0,
    };
    match e.kind {
        FaultKind::Seu => {
            if mgr.health(e.rp) == PartitionHealth::Quarantined {
                st.skipped += 1;
                return Some(rec);
            }
            sys.inject_seu(e.rp, e.frame, e.word, e.bit);
            match sys.run_monitor_until_alarm(st.scan * 3) {
                Some(lat) => {
                    st.detected += 1;
                    rec.outcome = FaultOutcome::Detected;
                    rec.latency_us = lat.as_micros_f64();
                    st.downtime_ps += lat.as_ps();
                    mgr.record_detection(lat);
                    let out = mgr.on_crc_alarm(sys, e.rp);
                    if out.succeeded() {
                        st.recovered += 1;
                        rec.recovered = true;
                        let mttr = out.mttr.expect("recovered");
                        rec.mttr_us = mttr.as_micros_f64();
                        st.downtime_ps += mttr.as_ps();
                    } else {
                        st.unrecovered += 1;
                        note_quarantines(mgr, &mut st.quarantined_at, sys.now());
                    }
                    restart_monitor(sys, mgr, &campaign.rps);
                }
                None => {
                    st.undetected += 1;
                    rec.outcome = FaultOutcome::Undetected;
                }
            }
        }
        kind => {
            match kind {
                FaultKind::TimingBurst => {
                    sys.inject_timing_burst(e.derate_mhz, SimDuration::from_ps(e.duration_ps))
                }
                FaultKind::DmaStall => sys.inject_dma_stall(e.stall_cycles),
                FaultKind::DroppedIrq => sys.drop_next_completion_irq(),
                FaultKind::HeatSoak => {
                    sys.inject_heat_soak(e.delta_mc, SimDuration::from_ps(e.duration_ps))
                }
                FaultKind::Seu => unreachable!("handled above"),
            }
            let n = campaign.rps.len();
            let mut vehicle = None;
            for k in 0..n {
                let rp = campaign.rps[(st.rr + k) % n];
                if mgr.health(rp) != PartitionHealth::Quarantined {
                    vehicle = Some(rp);
                    st.rr += k + 1;
                    break;
                }
            }
            let Some(rp) = vehicle else {
                st.skipped += 1;
                return Some(rec);
            };
            let bs = mgr.golden(rp).expect("configured at start");
            let out = mgr.reconfigure(
                sys,
                None,
                rp,
                &bs,
                Frequency::from_mhz(campaign.operating_mhz),
            );
            if out.recovered_after_failure || !out.succeeded() {
                st.detected += 1;
                rec.outcome = FaultOutcome::Detected;
            } else {
                st.benign += 1;
                rec.outcome = FaultOutcome::Benign;
            }
            if out.succeeded() {
                if out.recovered_after_failure {
                    st.recovered += 1;
                    rec.recovered = true;
                    let mttr = out.mttr.expect("recovered");
                    rec.mttr_us = mttr.as_micros_f64();
                    st.downtime_ps += mttr.as_ps();
                }
            } else {
                st.unrecovered += 1;
                note_quarantines(mgr, &mut st.quarantined_at, sys.now());
            }
            restart_monitor(sys, mgr, &campaign.rps);
        }
    }
    Some(rec)
}

/// The final golden sweep and availability accounting.
fn finish_campaign(
    sys: &ZynqPdrSystem,
    mgr: &RecoveryManager,
    campaign: &FaultCampaign,
    plan: &FaultPlan,
    st: &CampaignState,
) -> FaultCampaignResult {
    let end = sys.now();
    let duration = end.duration_since(st.t0);
    let mut silent_corruptions = 0u64;
    for &rp in &campaign.rps {
        if mgr.health(rp) == PartitionHealth::Quarantined {
            continue;
        }
        let golden = mgr.golden(rp).expect("configured at start");
        if !sys.fabric_matches(&golden) {
            silent_corruptions += 1;
        }
    }
    let mut downtime_ps = st.downtime_ps;
    for q in st.quarantined_at.iter().flatten() {
        downtime_ps += end.duration_since(*q).as_ps();
    }
    let span_ps = duration
        .as_ps()
        .max(1)
        .saturating_mul(campaign.rps.len() as u64);
    let availability = (1.0 - downtime_ps as f64 / span_ps as f64).clamp(0.0, 1.0);

    FaultCampaignResult {
        seed: plan.seed,
        events: plan.events.len() as u64,
        injected_seu: plan.count(FaultKind::Seu) as u64,
        injected_timing_bursts: plan.count(FaultKind::TimingBurst) as u64,
        injected_dma_stalls: plan.count(FaultKind::DmaStall) as u64,
        injected_dropped_irqs: plan.count(FaultKind::DroppedIrq) as u64,
        detected: st.detected,
        undetected: st.undetected,
        benign: st.benign,
        skipped: st.skipped,
        recovered: st.recovered,
        unrecovered: st.unrecovered,
        silent_corruptions,
        quarantined_partitions: mgr.stats().quarantines,
        availability,
        campaign_us: duration.as_micros_f64(),
        recovery: mgr.stats(),
    }
}

/// Runs a mixed-fault campaign: generates the plan, brings every partition
/// into service (initial content becomes the golden reference), then walks
/// the schedule. SEUs are detected by the background CRC monitor and
/// scrubbed; timing bursts, DMA stalls and dropped interrupts are exercised
/// through a managed reconfiguration on a round-robin vehicle partition, so
/// the watchdog + retry/backoff ladder absorbs them. A final golden sweep
/// counts silent corruptions.
///
/// Memory stays flat in the number of faults: per-event [`FaultRecord`]s
/// are folded into the aggregate as they are produced and dropped — a
/// 10⁶-fault campaign holds the same RSS as a 10-fault one. Use
/// [`run_fault_campaign_streaming`] to observe the records.
///
/// Deterministic: the result (including its JSON) is a pure function of
/// the campaign, the system configuration and their seeds.
///
/// # Panics
///
/// Panics if the campaign monitors no partitions, the plan targets a
/// partition outside the monitored set, or initial configuration fails.
pub fn run_fault_campaign(
    sys: &mut ZynqPdrSystem,
    campaign: &FaultCampaign,
) -> FaultCampaignResult {
    run_fault_campaign_streaming(sys, campaign, &mut |_| {})
}

/// [`run_fault_campaign`] with a record sink: `sink` receives each event's
/// [`FaultRecord`] the moment it resolves (write it to a JSONL file, fold
/// it, or drop it). Records are never buffered by the runner.
pub fn run_fault_campaign_streaming(
    sys: &mut ZynqPdrSystem,
    campaign: &FaultCampaign,
    sink: &mut dyn FnMut(FaultRecord),
) -> FaultCampaignResult {
    let plan = FaultPlan::generate(&campaign.plan, sys.floorplan());
    let (mut mgr, mut st) = init_campaign(sys, campaign, &plan);
    while let Some(rec) = step_campaign(sys, &mut mgr, campaign, &plan, &mut st) {
        sink(rec);
    }
    finish_campaign(sys, &mgr, campaign, &plan, &st)
}

/// Re-arms the background monitor over the partitions still in service
/// (reconfiguration pauses it; quarantined partitions leave the scan).
fn restart_monitor(sys: &mut ZynqPdrSystem, mgr: &RecoveryManager, rps: &[usize]) {
    let active: Vec<usize> = rps
        .iter()
        .copied()
        .filter(|&rp| mgr.health(rp) != PartitionHealth::Quarantined)
        .collect();
    if !active.is_empty() {
        sys.start_background_monitor(&active);
    }
}

/// Stamps the quarantine instant of any newly quarantined partition, for
/// availability accounting.
fn note_quarantines(mgr: &RecoveryManager, at: &mut [Option<SimTime>], now: SimTime) {
    for (rp, h) in mgr.health_all().iter().enumerate() {
        if *h == PartitionHealth::Quarantined && at[rp].is_none() {
            at[rp] = Some(now);
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-resumable campaign runner
// ---------------------------------------------------------------------------

/// A stepwise, checkpointable fault campaign: the state `run_fault_campaign`
/// keeps in locals, owned so it can be serialized between events.
///
/// * [`CampaignRun::checkpoint`] captures the whole run — system snapshot,
///   recovery manager, plan, and counters — as a versioned JSON envelope;
///   [`CampaignRun::resume`] rebuilds a run from it that finishes
///   **byte-identically** to one that was never interrupted.
/// * [`CampaignRun::replan`] re-seeds the remaining schedule, which is how
///   [`fork_replicas`] fans a Monte Carlo fleet out of one warmed-up
///   checkpoint.
/// * [`CampaignRun::digest`] fingerprints the full observable state after
///   each event, which is what [`bisect_campaigns`] binary-searches to pin
///   a first divergence.
pub struct CampaignRun {
    sys: ZynqPdrSystem,
    mgr: RecoveryManager,
    campaign: FaultCampaign,
    plan: FaultPlan,
    st: CampaignState,
}

impl CampaignRun {
    /// Builds a run: constructs the system, generates the plan, configures
    /// every partition and arms the monitor. No events are handled yet.
    ///
    /// # Panics
    ///
    /// As [`run_fault_campaign`].
    pub fn new(config: SystemConfig, campaign: FaultCampaign) -> CampaignRun {
        let sys = ZynqPdrSystem::new(config);
        let plan = FaultPlan::generate(&campaign.plan, sys.floorplan());
        CampaignRun::with_plan(sys, campaign, plan)
    }

    /// Builds a run over an explicit plan instead of generating one — the
    /// hook for replaying an isolated fault ([`FaultPlan::isolate`]) or
    /// planting a known divergence for [`bisect_campaigns`].
    ///
    /// # Panics
    ///
    /// As [`run_fault_campaign`].
    pub fn with_plan(
        mut sys: ZynqPdrSystem,
        campaign: FaultCampaign,
        plan: FaultPlan,
    ) -> CampaignRun {
        let (mgr, st) = init_campaign(&mut sys, &campaign, &plan);
        CampaignRun {
            sys,
            mgr,
            campaign,
            plan,
            st,
        }
    }

    /// Handles the next scheduled event; `None` when the plan is exhausted.
    pub fn step(&mut self) -> Option<FaultRecord> {
        step_campaign(
            &mut self.sys,
            &mut self.mgr,
            &self.campaign,
            &self.plan,
            &mut self.st,
        )
    }

    /// Runs every remaining event, streaming records into `sink`, then
    /// produces the final report.
    pub fn run_to_end(&mut self, sink: &mut dyn FnMut(FaultRecord)) -> FaultCampaignResult {
        while let Some(rec) = self.step() {
            sink(rec);
        }
        self.finish()
    }

    /// True when every scheduled event has been handled.
    pub fn is_done(&self) -> bool {
        self.st.idx >= self.plan.events.len()
    }

    /// Scheduled events in the plan.
    pub fn events(&self) -> usize {
        self.plan.events.len()
    }

    /// Events handled so far.
    pub fn position(&self) -> usize {
        self.st.idx
    }

    /// The final golden sweep and availability report (normally called once
    /// the plan is exhausted; mid-run it reports the prefix handled so far
    /// against the full plan's injection counts).
    pub fn finish(&self) -> FaultCampaignResult {
        finish_campaign(&self.sys, &self.mgr, &self.campaign, &self.plan, &self.st)
    }

    /// The system under test.
    pub fn system(&self) -> &ZynqPdrSystem {
        &self.sys
    }

    /// Mutable access to the system under test — e.g. to raise the trace
    /// level before any events are handled. Mutations mid-run become part
    /// of the observable state and travel through checkpoints like any
    /// other state.
    pub fn system_mut(&mut self) -> &mut ZynqPdrSystem {
        &mut self.sys
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Serializes the whole run as a versioned checkpoint envelope
    /// (kind `"campaign"`). Write it with [`snapshot::save`] for the
    /// atomic temp-file-and-rename discipline.
    pub fn checkpoint(&self) -> Json {
        snapshot::envelope(
            "campaign",
            Json::Obj(vec![
                ("system".into(), self.sys.snapshot_json()),
                ("recovery".into(), self.mgr.snapshot_json()),
                ("plan".into(), self.plan.to_json()),
                ("state".into(), self.st.to_json()),
            ]),
        )
    }

    /// Rebuilds a run from a [`CampaignRun::checkpoint`]. `config` and
    /// `campaign` must be the ones the checkpointed run was built from
    /// (the plan itself travels inside the checkpoint); a structural
    /// mismatch is rejected before any state is mutated.
    pub fn resume(
        config: SystemConfig,
        campaign: FaultCampaign,
        checkpoint: &Json,
    ) -> Result<CampaignRun, JsonError> {
        let payload = snapshot::open(checkpoint, "campaign")?;
        let req = |key: &str| -> Result<&Json, JsonError> {
            payload.get(key).ok_or_else(|| JsonError {
                msg: format!("campaign checkpoint missing `{key}`"),
            })
        };
        let mut sys = ZynqPdrSystem::new(config);
        sys.restore_json(req("system")?)?;
        let mut mgr = RecoveryManager::for_system(&sys, campaign.recovery);
        mgr.restore_json(req("recovery")?)?;
        let plan = FaultPlan::from_json(req("plan")?)?;
        let st = CampaignState::from_json(req("state")?, sys.floorplan().partitions().len())?;
        if st.idx > plan.events.len() {
            return Err(JsonError {
                msg: format!(
                    "checkpoint cursor {} past the end of the {}-event plan",
                    st.idx,
                    plan.events.len()
                ),
            });
        }
        Ok(CampaignRun {
            sys,
            mgr,
            campaign,
            plan,
            st,
        })
    }

    /// Replaces the *remaining* schedule with a fresh plan generated from
    /// `seed`: the new plan picks up where the old schedule left off —
    /// events scheduled at or before the last handled event's slot are
    /// dropped, so each replica faces the remaining campaign horizon with
    /// its own fault draws. Events already running behind schedule are
    /// handled back-to-back, exactly as in an uninterrupted run;
    /// accumulated counters and downtime carry over. This is the
    /// per-replica divergence point of [`fork_replicas`].
    pub fn replan(&mut self, seed: u64) {
        let mut pc = self.campaign.plan.clone();
        pc.seed = seed;
        let plan = FaultPlan::generate(&pc, self.sys.floorplan());
        let cut = match self.st.idx {
            0 => 0,
            i => self.plan.events[i.min(self.plan.events.len()) - 1].at_ps,
        };
        self.st.idx = plan.events.partition_point(|e| e.at_ps <= cut);
        self.plan = plan;
    }

    /// FNV-1a fingerprint of the run's entire observable state — system
    /// snapshot (including the trace tape), recovery state, and counters,
    /// but *not* the plan, so two runs executing different schedules
    /// compare equal exactly until their behaviour first differs.
    pub fn digest(&self) -> u64 {
        snapshot::digest(&Json::Obj(vec![
            ("system".into(), self.sys.snapshot_json()),
            ("recovery".into(), self.mgr.snapshot_json()),
            ("state".into(), self.st.to_json()),
        ]))
    }
}

// ---------------------------------------------------------------------------
// Monte Carlo fleet
// ---------------------------------------------------------------------------

/// Distribution summary with order statistics and a normal-approximation
/// 95% confidence interval on the mean (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Lower edge of the 95% CI on the mean.
    pub ci95_lo: f64,
    /// Upper edge of the 95% CI on the mean.
    pub ci95_hi: f64,
}

impl_json_struct!(DistSummary {
    count,
    mean,
    std_dev,
    min,
    max,
    p50,
    p99,
    ci95_lo,
    ci95_hi,
});

impl DistSummary {
    /// Summarises a sample set. An empty set yields all-zero fields.
    ///
    /// The moments are accumulated by folding one single-sample fragment
    /// per value with [`OnlineStats::merge`] (parallel Welford), in sample
    /// order — exactly the fold [`ParallelExecutor`] applies to per-replica
    /// fragments, so the serial and merged-parallel summaries are
    /// bit-identical for any thread count.
    ///
    /// `std_dev` reports the *population* (÷n) deviation — the spread of
    /// the samples actually measured — while `ci95_lo`/`ci95_hi` are built
    /// from the *sample* (÷n−1) deviation, the unbiased estimator a
    /// confidence interval on the mean requires (a ÷n CI is systematically
    /// too narrow, worst at small replica counts).
    pub fn from_samples(samples: &[f64]) -> DistSummary {
        let mut stats = OnlineStats::new();
        for &s in samples {
            let mut fragment = OnlineStats::new();
            fragment.push(s);
            stats.merge(&fragment);
        }
        DistSummary::from_parts(&stats, samples)
    }

    /// Assembles a summary from moments already folded with
    /// [`OnlineStats::merge`] plus the samples themselves for the order
    /// statistics. `stats` must describe exactly `samples`.
    fn from_parts(stats: &OnlineStats, samples: &[f64]) -> DistSummary {
        let n = samples.len();
        if n == 0 {
            return DistSummary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p99: 0.0,
                ci95_lo: 0.0,
                ci95_hi: 0.0,
            };
        }
        debug_assert_eq!(stats.count(), n as u64);
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let nearest = |q: f64| {
            let rank = (q * n as f64).ceil() as usize;
            sorted[rank.max(1).min(n) - 1]
        };
        let half = if n > 1 {
            1.96 * stats.sample_std_dev() / (n as f64).sqrt()
        } else {
            0.0
        };
        DistSummary {
            count: n as u64,
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: nearest(0.50),
            p99: nearest(0.99),
            ci95_lo: stats.mean() - half,
            ci95_hi: stats.mean() + half,
        }
    }
}

/// One replica's row in a [`MonteCarloReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRow {
    /// The replica's plan seed.
    pub seed: u64,
    /// Events the replica actually handled: the shared warm-up prefix plus
    /// its own re-seeded remainder.
    pub events: u64,
    /// Faults detected.
    pub detected: u64,
    /// Faults repaired.
    pub recovered: u64,
    /// Faults the ladder could not repair.
    pub unrecovered: u64,
    /// The replica's availability.
    pub availability: f64,
}

impl_json_struct!(ReplicaRow {
    seed,
    events,
    detected,
    recovered,
    unrecovered,
    availability,
});

/// Fleet-style merge of N forked campaign replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Replica count.
    pub replicas: u64,
    /// Total scheduled events across replicas.
    pub events: u64,
    /// Total faults detected.
    pub detected: u64,
    /// Total SEUs missed (must be 0).
    pub undetected: u64,
    /// Total benign faults.
    pub benign: u64,
    /// Total skipped injections.
    pub skipped: u64,
    /// Total faults repaired.
    pub recovered: u64,
    /// Total unrepaired faults.
    pub unrecovered: u64,
    /// Total silent corruptions (must be 0).
    pub silent_corruptions: u64,
    /// Total partitions quarantined.
    pub quarantined_partitions: u64,
    /// Availability distribution across replicas (mean, p50/p99, 95% CI).
    pub availability: DistSummary,
    /// Per-replica rows, in seed order given to [`fork_replicas`].
    pub per_replica: Vec<ReplicaRow>,
}

impl_json_struct!(MonteCarloReport {
    replicas,
    events,
    detected,
    undetected,
    benign,
    skipped,
    recovered,
    unrecovered,
    silent_corruptions,
    quarantined_partitions,
    availability,
    per_replica,
});

/// Everything one replica contributes to the fleet merge: its row, its
/// full report, and its availability as a single-sample [`OnlineStats`]
/// fragment for the parallel-Welford fold.
struct ReplicaOutcome {
    row: ReplicaRow,
    result: FaultCampaignResult,
    fragment: OnlineStats,
}

/// Folds a finished replica's report into the merge inputs. The replica's
/// plan length counts only its own schedule; what it handled is the warm-up
/// prefix plus its re-seeded remainder — every handled event lands in
/// exactly one outcome bucket.
fn outcome_of(seed: u64, result: FaultCampaignResult) -> ReplicaOutcome {
    let handled = result.detected + result.undetected + result.benign + result.skipped;
    let mut fragment = OnlineStats::new();
    fragment.push(result.availability);
    ReplicaOutcome {
        row: ReplicaRow {
            seed,
            events: handled,
            detected: result.detected,
            recovered: result.recovered,
            unrecovered: result.unrecovered,
            availability: result.availability,
        },
        result,
        fragment,
    }
}

/// One replica of a Monte Carlo fork, start to finish: resume the shared
/// warmed checkpoint, re-seed the remaining schedule, run to completion.
/// A pure function of its inputs — the unit of work [`ParallelExecutor`]
/// hands to a worker thread.
fn run_replica(
    config: &SystemConfig,
    campaign: &FaultCampaign,
    checkpoint: &Json,
    seed: u64,
) -> Result<ReplicaOutcome, JsonError> {
    let mut run = CampaignRun::resume(config.clone(), campaign.clone(), checkpoint)?;
    run.replan(seed);
    let result = run.run_to_end(&mut |_| {});
    Ok(outcome_of(seed, result))
}

/// Merges replica outcomes — **already in replica-index order** — into the
/// fleet report. Both the serial and the parallel paths commit through this
/// one function, and the availability fold walks the fragments left to
/// right, so the merged report is a pure function of the ordered outcome
/// list: byte-identical no matter how many workers produced it.
fn merge_replicas(outcomes: Vec<ReplicaOutcome>) -> MonteCarloReport {
    let mut stats = OnlineStats::new();
    let mut avail = Vec::with_capacity(outcomes.len());
    let mut per_replica = Vec::with_capacity(outcomes.len());
    let mut report = MonteCarloReport {
        replicas: outcomes.len() as u64,
        events: 0,
        detected: 0,
        undetected: 0,
        benign: 0,
        skipped: 0,
        recovered: 0,
        unrecovered: 0,
        silent_corruptions: 0,
        quarantined_partitions: 0,
        availability: DistSummary::from_samples(&[]),
        per_replica: Vec::new(),
    };
    for o in outcomes {
        report.events += o.row.events;
        report.detected += o.result.detected;
        report.undetected += o.result.undetected;
        report.benign += o.result.benign;
        report.skipped += o.result.skipped;
        report.recovered += o.result.recovered;
        report.unrecovered += o.result.unrecovered;
        report.silent_corruptions += o.result.silent_corruptions;
        report.quarantined_partitions += o.result.quarantined_partitions;
        stats.merge(&o.fragment);
        avail.push(o.row.availability);
        per_replica.push(o.row);
    }
    report.availability = DistSummary::from_parts(&stats, &avail);
    report.per_replica = per_replica;
    report
}

/// Fans N Monte Carlo replicas out of one warmed-up checkpoint: each
/// replica resumes the checkpoint, re-seeds the remaining schedule with its
/// own seed ([`CampaignRun::replan`]), runs to completion, and the results
/// merge into a fleet report with confidence intervals. Deterministic: the
/// same checkpoint and seed set produce a byte-identical report.
///
/// This is the serial reference path; [`ParallelExecutor::fork_replicas`]
/// produces the same bytes from a worker pool.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn fork_replicas(
    config: &SystemConfig,
    campaign: &FaultCampaign,
    checkpoint: &Json,
    seeds: &[u64],
) -> Result<MonteCarloReport, JsonError> {
    ParallelExecutor::serial().fork_replicas(config, campaign, checkpoint, seeds)
}

// ---------------------------------------------------------------------------
// Deterministic multi-threaded execution
// ---------------------------------------------------------------------------

/// Environment variable selecting the default worker-thread count for
/// [`ParallelExecutor::from_env`]. Unset, the executor uses the host's
/// available parallelism. Any value — including `1` — produces the same
/// bytes; the variable only trades wall-clock for cores.
pub const THREADS_ENV: &str = "PDR_THREADS";

/// Fans independent campaign work — Monte Carlo replicas, sharded soaks —
/// across `std::thread` workers under a deterministic merge contract:
/// for any seed set and any thread count (including 1), the merged
/// [`MonteCarloReport`], its availability [`DistSummary`], and the
/// per-replica rows are **byte-identical** to the serial path.
///
/// The contract holds by construction, not by luck:
///
/// * each unit of work is a pure function of plain inputs (config,
///   campaign, checkpoint JSON, seed) — a worker builds its own
///   [`ZynqPdrSystem`] *inside* its thread, so none of the simulator's
///   single-threaded `Rc<RefCell<…>>` state ever crosses a thread
///   boundary (`ZynqPdrSystem` is deliberately `!Send`);
/// * workers pull indices from a shared queue, so completion order is
///   racy, but results are committed into an index-ordered table and
///   merged left to right by one shared merge fold — the same code the
///   serial path uses;
/// * the availability moments fold per-replica single-sample
///   [`OnlineStats`] fragments with the parallel-Welford
///   [`OnlineStats::merge`], in replica-index order, on the committing
///   thread.
///
/// Enforced by `tests/proptest_parallel.rs` (random plans × thread counts
/// {1, 2, 3, 8}), the `campaign` bench (equivalence before speedup), and
/// the CI thread-matrix smoke (`--threads {1,4}` × both engines, `cmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The single-worker executor — the serial reference path.
    pub fn serial() -> ParallelExecutor {
        ParallelExecutor::new(1)
    }

    /// Reads the worker count from [`THREADS_ENV`], falling back to the
    /// host's available parallelism.
    ///
    /// `PDR_THREADS=0` clamps to one worker — zero is a request for "as
    /// little parallelism as possible", not a configuration error, and the
    /// byte-identity contract makes any clamp observationally safe. An
    /// `available_parallelism()` error likewise falls back to one worker.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to anything non-numeric — a
    /// misconfigured campaign must fail loudly, not run serial silently.
    pub fn from_env() -> ParallelExecutor {
        Self::from_env_value(std::env::var(THREADS_ENV).ok().as_deref())
    }

    /// [`ParallelExecutor::from_env`] with the variable's value passed in —
    /// the testable core (directed tests must not mutate process-global
    /// environment under a multi-threaded test harness). `None` means the
    /// variable is unset.
    pub fn from_env_value(value: Option<&str>) -> ParallelExecutor {
        match value {
            Some(v) => match v.trim().parse::<usize>() {
                // `new` clamps 0 to the serial executor.
                Ok(n) => ParallelExecutor::new(n),
                Err(_) => panic!("{THREADS_ENV} must be a non-negative integer, got `{v}`"),
            },
            None => {
                ParallelExecutor::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
            }
        }
    }

    /// The worker count this executor fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// [`fork_replicas`] across the worker pool: every replica restores its
    /// own system from the shared warmed checkpoint, runs to completion
    /// with its own RNG and trace sink, and the outcomes are committed in
    /// replica-index order regardless of completion order. Byte-identical
    /// to the serial path for any thread count. A resume failure reports
    /// the error of the lowest-indexed failing replica, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn fork_replicas(
        &self,
        config: &SystemConfig,
        campaign: &FaultCampaign,
        checkpoint: &Json,
        seeds: &[u64],
    ) -> Result<MonteCarloReport, JsonError> {
        assert!(!seeds.is_empty(), "fork needs at least one replica seed");
        let outcomes = self.map(seeds.len(), |i| {
            run_replica(config, campaign, checkpoint, seeds[i])
        });
        let mut collected = Vec::with_capacity(seeds.len());
        for o in outcomes {
            collected.push(o?);
        }
        Ok(merge_replicas(collected))
    }

    /// Sharded soak: runs one full [`CampaignRun`] per seed — fresh system,
    /// fresh plan, no shared checkpoint — across the worker pool, returning
    /// the per-shard reports in seed order. Each report is byte-identical
    /// to what [`run_fault_campaign`] produces for that seed; use
    /// [`shard_report`] to merge them into a fleet view.
    pub fn run_shards(
        &self,
        config: &SystemConfig,
        campaign: &FaultCampaign,
        seeds: &[u64],
    ) -> Vec<FaultCampaignResult> {
        self.map(seeds.len(), |i| {
            let mut sharded = campaign.clone();
            sharded.plan.seed = seeds[i];
            let mut run = CampaignRun::new(config.clone(), sharded);
            run.run_to_end(&mut |_| {})
        })
    }

    /// Runs `task(i)` for `i in 0..n` on the worker pool and returns the
    /// results **in index order**, whatever order workers finish in. With
    /// one worker (or one item) the tasks run inline on the calling thread
    /// — the exact same code path, so thread count can never change bytes.
    ///
    /// Public so other deterministic fan-outs (the fleet's epoch-barriered
    /// shard step) can ride the same index-ordered commit contract.
    pub fn map<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(task).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let task = &task;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The receiver outlives every worker; a send can only
                    // fail if the committing thread already panicked, and
                    // then the scope re-raises that panic anyway.
                    let _ = tx.send((i, task(i)));
                });
            }
            drop(tx);
            for (i, v) in rx {
                slots[i] = Some(v);
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index produces exactly one result"))
            .collect()
    }
}

/// Merges per-shard soak reports (from [`ParallelExecutor::run_shards`],
/// in the same seed order) into a [`MonteCarloReport`] through the same
/// ordered fold the replica fork uses.
///
/// # Panics
///
/// Panics if `seeds` and `results` differ in length or are empty.
pub fn shard_report(seeds: &[u64], results: &[FaultCampaignResult]) -> MonteCarloReport {
    assert_eq!(seeds.len(), results.len(), "one result per shard seed");
    assert!(!seeds.is_empty(), "shard report needs at least one shard");
    merge_replicas(
        seeds
            .iter()
            .zip(results)
            .map(|(&seed, r)| outcome_of(seed, r.clone()))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// First-divergence bisection
// ---------------------------------------------------------------------------

/// Outcome of [`bisect_campaigns`] / [`bisect_plans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectOutcome {
    /// 0-based plan index of the first event whose handling diverged. When
    /// the runs agree through the whole common prefix but schedule
    /// different event counts, this is the index of the first surplus
    /// event. Meaningless (0) when `diverged_in_warmup`.
    pub first_divergent_event: u64,
    /// The runs already differed before any event was handled (different
    /// warm-up, e.g. different partitions or initial images).
    pub diverged_in_warmup: bool,
    /// Probes performed by the binary search, each a partial replay of
    /// both runs from their deepest proven-equal checkpoints — bounded by
    /// ⌈log₂ n⌉ + 1.
    pub replays: u64,
    /// State digests computed across both runs — O(log n), two per probe
    /// plus the warm-up pair, never one per event.
    pub digests: u64,
    /// Length of the common event prefix that was searched.
    pub compared_events: u64,
}

impl_json_struct!(BisectOutcome {
    first_divergent_event,
    diverged_in_warmup,
    replays,
    digests,
    compared_events,
});

/// [`bisect_plans`] over the plans the two campaign configs generate.
pub fn bisect_campaigns(
    config: &SystemConfig,
    a: &FaultCampaign,
    b: &FaultCampaign,
) -> Result<Option<BisectOutcome>, JsonError> {
    let plan_a = FaultPlan::generate(&a.plan, &config.floorplan);
    let plan_b = FaultPlan::generate(&b.plan, &config.floorplan);
    bisect_plans(config, a, b, plan_a, plan_b)
}

/// Pins the first event at which two campaigns diverge, in O(log n) partial
/// replays instead of an O(n) event-by-event comparison.
///
/// Both runs stream lazily: the warm-up digests are compared before either
/// run handles a single event (a divergence at event 0 costs two digests
/// and zero replays, where the old eager form replayed and digested all of
/// run A first), and afterwards each binary-search probe advances *both*
/// runs from their deepest checkpoints already proven equal to the probe
/// index and compares one digest pair there. The checkpoints move with the
/// search's lower bound, so later probes replay ever-shorter suffixes, and
/// digest work — a full render of the observable state, the expensive part
/// — is O(log n) total instead of one digest per event with O(n) of them
/// retained. Returns `None` when the runs never diverge.
pub fn bisect_plans(
    config: &SystemConfig,
    a: &FaultCampaign,
    b: &FaultCampaign,
    plan_a: FaultPlan,
    plan_b: FaultPlan,
) -> Result<Option<BisectOutcome>, JsonError> {
    let run_a = CampaignRun::with_plan(ZynqPdrSystem::new(config.clone()), a.clone(), plan_a);
    let run_b = CampaignRun::with_plan(ZynqPdrSystem::new(config.clone()), b.clone(), plan_b);
    let n_a = run_a.events();
    let n_b = run_b.events();
    let limit = n_a.min(n_b);
    let mut replays = 0u64;
    let mut digests = 2u64;
    if run_b.digest() != run_a.digest() {
        return Ok(Some(BisectOutcome {
            first_divergent_event: 0,
            diverged_in_warmup: true,
            replays,
            digests,
            compared_events: limit as u64,
        }));
    }
    // Advancing bases: checkpoints of A and B at `lo`, the deepest
    // post-event state proven equal. Resuming a checkpoint and stepping is
    // digest-transparent (the byte-identity contract), so a probe digest
    // taken after a resume equals the uninterrupted run's.
    let mut base_a = run_a.checkpoint();
    let mut base_b = run_b.checkpoint();
    drop(run_a);
    drop(run_b);

    // Probes B (and, symmetrically, A) forward from the bases to `idx` and
    // reports whether the digests still agree there. Every call costs one
    // replay and one digest pair — accounted at the call sites.
    let probe = |base_a: &Json,
                 base_b: &Json,
                 from: usize,
                 idx: usize|
     -> Result<(CampaignRun, CampaignRun, bool), JsonError> {
        let mut ra = CampaignRun::resume(config.clone(), a.clone(), base_a)?;
        let mut rb = CampaignRun::resume(config.clone(), b.clone(), base_b)?;
        for _ in from..idx {
            ra.step();
            rb.step();
        }
        let agree = ra.digest() == rb.digest();
        Ok((ra, rb, agree))
    };

    let mut base_idx = 0usize;
    // One probe at the end of the common prefix settles whether a
    // divergence exists at all.
    if limit > 0 {
        let (_, _, agree) = probe(&base_a, &base_b, base_idx, limit)?;
        replays += 1;
        digests += 2;
        if agree {
            return Ok(if n_a == n_b {
                None
            } else {
                Some(BisectOutcome {
                    first_divergent_event: limit as u64,
                    diverged_in_warmup: false,
                    replays,
                    digests,
                    compared_events: limit as u64,
                })
            });
        }
    } else {
        // An empty common prefix with equal warm-ups: the runs never
        // diverge, or the longer plan's first event is the first surplus.
        return Ok(if n_a == n_b {
            None
        } else {
            Some(BisectOutcome {
                first_divergent_event: 0,
                diverged_in_warmup: false,
                replays,
                digests,
                compared_events: 0,
            })
        });
    }

    let mut lo = 0usize; // deepest post-event digest proven equal
    let mut hi = limit; // shallowest post-event digest proven divergent
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (ra, rb, agree) = probe(&base_a, &base_b, base_idx, mid)?;
        replays += 1;
        digests += 2;
        if agree {
            lo = mid;
            base_a = ra.checkpoint();
            base_b = rb.checkpoint();
            base_idx = mid;
        } else {
            hi = mid;
        }
    }
    // The digest after `hi` events is the first to differ, so event hi-1
    // (0-based) is the one whose handling diverged.
    Ok(Some(BisectOutcome {
        first_divergent_event: hi as u64 - 1,
        diverged_in_warmup: false,
        replays,
        digests,
        compared_events: limit as u64,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::AspKind;
    use pdr_sim_core::json::ToJson;

    #[test]
    fn executor_clamps_zero_threads_to_serial() {
        // Regression: `PDR_THREADS=0` used to panic; it must clamp to one
        // worker (as must a failing `available_parallelism`, which the
        // `None` arm's `map_or(1, …)` covers).
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert_eq!(ParallelExecutor::from_env_value(Some("0")).threads(), 1);
        assert_eq!(ParallelExecutor::from_env_value(Some(" 3 ")).threads(), 3);
        assert!(ParallelExecutor::from_env_value(None).threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-negative integer")]
    fn executor_rejects_non_numeric_thread_count() {
        let _ = ParallelExecutor::from_env_value(Some("many"));
    }

    fn configured_system() -> ZynqPdrSystem {
        let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
        for rp in 0..2 {
            let bs = sys.make_asp_bitstream(rp, AspKind::AesMix, rp as u32 + 1);
            assert!(sys.reconfigure(rp, &bs, Frequency::from_mhz(200)).crc_ok());
        }
        sys
    }

    #[test]
    fn campaign_detects_everything_in_scope() {
        let mut sys = configured_system();
        let campaign = SeuCampaign {
            injections: 16,
            out_of_scope_injections: 4,
            rps: vec![0, 1],
            seed: 7,
        };
        let r = run_seu_campaign(&mut sys, &campaign);
        assert_eq!(r.detected, 16, "{r:?}");
        assert_eq!(r.missed, 0, "{r:?}");
        assert_eq!(r.false_alarms, 0, "{r:?}");
        assert_eq!(r.latency_us.count, 16);
        // Every detection within the two-sweep bound (plus margin).
        assert!(
            r.latency_us.max <= 2.2 * r.scan_period_us,
            "worst {} vs bound {}",
            r.latency_us.max,
            2.0 * r.scan_period_us
        );
        assert!(r.latency_us.mean > 0.0);
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let run = |seed| {
            let mut sys = configured_system();
            run_seu_campaign(
                &mut sys,
                &SeuCampaign {
                    injections: 6,
                    out_of_scope_injections: 2,
                    rps: vec![0],
                    seed,
                },
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).latency_us.mean, run(2).latency_us.mean);
    }

    fn small_fault_campaign() -> FaultCampaign {
        let mut c = FaultCampaign::default();
        c.plan.duration = SimDuration::from_millis(1);
        c.plan.mean_interarrival = SimDuration::from_micros(100);
        c
    }

    #[test]
    fn fault_campaign_detects_and_recovers_everything() {
        let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
        let c = small_fault_campaign();
        let r = run_fault_campaign(&mut sys, &c);
        assert!(r.events >= 5, "{r:?}");
        assert_eq!(r.detected, r.events, "{r:?}");
        assert_eq!(
            (r.undetected, r.benign, r.skipped, r.unrecovered),
            (0, 0, 0, 0),
            "{r:?}"
        );
        assert_eq!(r.recovered, r.detected, "{r:?}");
        assert_eq!(r.silent_corruptions, 0, "{r:?}");
        assert_eq!(r.quarantined_partitions, 0, "{r:?}");
        assert!(r.availability > 0.0 && r.availability < 1.0, "{r:?}");
        assert_eq!(r.recovery.faults_detected, r.detected, "{r:?}");
        assert_eq!(r.recovery.faults_recovered, r.recovered, "{r:?}");
    }

    #[test]
    fn fault_campaign_is_replay_identical() {
        let run = |seed| {
            let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
            let mut c = small_fault_campaign();
            c.plan.seed = seed;
            run_fault_campaign(&mut sys, &c)
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_ne!(run(5).to_json_string(), run(6).to_json_string());
    }

    #[test]
    fn streaming_records_reconcile_with_the_report() {
        let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
        let c = small_fault_campaign();
        let mut counts = [0u64; 5]; // events, detected, benign, skipped, recovered
        let r = run_fault_campaign_streaming(&mut sys, &c, &mut |rec| {
            counts[0] += 1;
            match rec.outcome {
                FaultOutcome::Detected => counts[1] += 1,
                FaultOutcome::Benign => counts[2] += 1,
                FaultOutcome::Skipped => counts[3] += 1,
                FaultOutcome::Undetected => {}
            }
            if rec.recovered {
                counts[4] += 1;
                assert!(rec.mttr_us > 0.0, "{rec:?}");
            }
            assert_eq!(rec.idx, counts[0] - 1, "records arrive in plan order");
        });
        assert_eq!(counts[0], r.events);
        assert_eq!(counts[1], r.detected);
        assert_eq!(counts[2], r.benign);
        assert_eq!(counts[3], r.skipped);
        assert_eq!(counts[4], r.recovered);
    }

    #[test]
    fn stepwise_runner_matches_the_one_shot_entry_point() {
        let c = small_fault_campaign();
        let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
        let direct = run_fault_campaign(&mut sys, &c);
        let mut run = CampaignRun::new(FaultCampaign::fast_system(), c);
        let stepped = run.run_to_end(&mut |_| {});
        assert_eq!(direct, stepped);
        assert_eq!(direct.to_json_string(), stepped.to_json_string());
    }

    #[test]
    fn checkpoint_resume_finishes_byte_identically() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();

        let mut uninterrupted = CampaignRun::new(cfg.clone(), c.clone());
        let r_full = uninterrupted.run_to_end(&mut |_| {});

        let mut killed = CampaignRun::new(cfg.clone(), c.clone());
        let mid = killed.events() / 2;
        for _ in 0..mid {
            killed.step();
        }
        // Round-trip the checkpoint through its text form, as a crash
        // would, and drop the original runner.
        let text = killed.checkpoint().render();
        drop(killed);
        let ckpt = Json::parse(&text).expect("checkpoint parses");
        let mut resumed = CampaignRun::resume(cfg, c, &ckpt).expect("resume");
        assert_eq!(resumed.position(), mid);
        let r_resumed = resumed.run_to_end(&mut |_| {});

        assert_eq!(r_full, r_resumed);
        assert_eq!(r_full.to_json_string(), r_resumed.to_json_string());
        assert_eq!(uninterrupted.digest(), resumed.digest());
        assert_eq!(
            uninterrupted.system().tracer().export_jsonl(),
            resumed.system().tracer().export_jsonl(),
            "the resumed tape must be byte-identical"
        );
    }

    #[test]
    fn ci95_uses_the_sample_std_dev() {
        // n = 2 pins the ÷n vs ÷(n−1) distinction at its worst: for
        // samples {a, b} the sample deviation is |a−b|/√2, so the CI
        // half-width must be 1.96·|a−b|/2 — the old population-deviation
        // form produced 1.96·|a−b|/(2√2), √2 too narrow.
        let d = DistSummary::from_samples(&[0.6, 0.8]);
        assert_eq!(d.count, 2);
        let half = 1.96 * (0.8_f64 - 0.6) / 2.0;
        assert!((d.ci95_hi - d.mean - half).abs() < 1e-12, "{d:?}");
        assert!((d.mean - d.ci95_lo - half).abs() < 1e-12, "{d:?}");
        // The std_dev field keeps its population (÷n) semantics.
        assert!((d.std_dev - 0.1).abs() < 1e-12, "{d:?}");
        // General n: the half-width is exactly 1.96·s/√n with s the
        // sample deviation.
        let samples = [0.61, 0.55, 0.70, 0.66, 0.59];
        let d = DistSummary::from_samples(&samples);
        let mut stats = OnlineStats::new();
        for &s in &samples {
            stats.push(s);
        }
        let half = 1.96 * stats.sample_std_dev() / (samples.len() as f64).sqrt();
        assert!((d.ci95_hi - d.ci95_lo - 2.0 * half).abs() < 1e-12, "{d:?}");
        // One sample: no interval, but still well-formed.
        let d = DistSummary::from_samples(&[0.5]);
        assert_eq!((d.ci95_lo, d.ci95_hi), (0.5, 0.5));
    }

    #[test]
    fn forked_replicas_merge_deterministically() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();
        let mut warm = CampaignRun::new(cfg.clone(), c.clone());
        for _ in 0..3 {
            warm.step();
        }
        let ckpt = warm.checkpoint();
        let seeds: Vec<u64> = (100..108).collect();
        let a = fork_replicas(&cfg, &c, &ckpt, &seeds).expect("fork");
        let b = fork_replicas(&cfg, &c, &ckpt, &seeds).expect("fork");
        assert_eq!(a, b, "same checkpoint + seeds must merge identically");
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_eq!(a.replicas, 8);
        assert_eq!(a.per_replica.len(), 8);
        // The replica seeds genuinely diverge the runs.
        let distinct: std::collections::HashSet<u64> =
            a.per_replica.iter().map(|r| r.events).collect();
        assert!(distinct.len() > 1, "replicas all scheduled {distinct:?}");
        let d = &a.availability;
        assert_eq!(d.count, 8);
        assert!(d.min <= d.p50 && d.p50 <= d.p99 && d.p99 <= d.max);
        assert!(d.ci95_lo <= d.mean && d.mean <= d.ci95_hi);
    }

    #[test]
    fn parallel_fork_is_byte_identical_to_serial() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();
        let mut warm = CampaignRun::new(cfg.clone(), c.clone());
        for _ in 0..3 {
            warm.step();
        }
        let ckpt = warm.checkpoint();
        let seeds: Vec<u64> = (300..306).collect();
        let serial = fork_replicas(&cfg, &c, &ckpt, &seeds).expect("serial fork");
        for threads in [2, 3, 8] {
            let parallel = ParallelExecutor::new(threads)
                .fork_replicas(&cfg, &c, &ckpt, &seeds)
                .expect("parallel fork");
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(
                serial.to_json_string(),
                parallel.to_json_string(),
                "threads={threads}: merged fleet JSON must be byte-identical"
            );
        }
    }

    #[test]
    fn sharded_soaks_match_the_one_shot_runner() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();
        let seeds = [11u64, 12, 13, 14];
        let shards = ParallelExecutor::new(4).run_shards(&cfg, &c, &seeds);
        assert_eq!(shards.len(), seeds.len());
        for (&seed, shard) in seeds.iter().zip(&shards) {
            let mut sys = ZynqPdrSystem::new(FaultCampaign::fast_system());
            let mut sharded = c.clone();
            sharded.plan.seed = seed;
            let direct = run_fault_campaign(&mut sys, &sharded);
            assert_eq!(&direct, shard, "seed {seed}");
            assert_eq!(direct.to_json_string(), shard.to_json_string());
        }
        let merged = shard_report(&seeds, &shards);
        assert_eq!(merged.replicas, 4);
        assert_eq!(
            merged.events,
            shards.iter().map(|r| r.events).sum::<u64>(),
            "full shards handle their whole plans"
        );
        assert_eq!(merged, shard_report(&seeds, &shards), "merge is stable");
    }

    #[test]
    fn executor_commits_in_index_order_under_racy_completion() {
        // Tasks finish in reverse order (later indices sleep less); the
        // committed table must still be index-ordered.
        let out = ParallelExecutor::new(4).map(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        });
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(ParallelExecutor::serial().map(3, |i| i), vec![0, 1, 2]);
        assert_eq!(ParallelExecutor::new(16).map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn bisect_pins_a_planted_divergence() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();
        let plan = FaultPlan::generate(&c.plan, &cfg.floorplan);
        let n = plan.events.len();
        assert!(n >= 8, "plan too small to bisect meaningfully");
        // Plant the divergence on the last SEU in the plan, moved to the
        // other partition: the monitor scans one partition per slot, so the
        // detection latency (and everything downstream — downtime, health
        // counters, recovery stats) moves. Many perturbations are invisible
        // by design — a different frame in the same partition is caught by
        // the same scan slot and scrubbed back to golden, and a longer DMA
        // stall still trips the same fixed watchdog — and the whole point of
        // digest-driven bisection is to find changes that actually alter
        // observable state.
        let target = plan
            .events
            .iter()
            .rposition(|e| e.kind == FaultKind::Seu)
            .expect("generated plan must contain an SEU");
        assert!(target >= 2, "planted SEU too early to exercise the search");
        let mut planted = plan.clone();
        let e = &mut planted.events[target];
        e.rp = (e.rp + 1) % cfg.floorplan.partitions().len();
        let frames = cfg
            .floorplan
            .partition(e.rp)
            .frame_count(cfg.floorplan.geometry());
        e.frame %= frames;
        let out = bisect_plans(&cfg, &c, &c, plan.clone(), planted)
            .expect("bisect")
            .expect("the planted divergence must be found");
        assert!(!out.diverged_in_warmup);
        assert_eq!(out.first_divergent_event, target as u64);
        let bound = (n as f64).log2().ceil() as u64 + 1;
        assert!(
            out.replays <= bound,
            "{} replays exceeds the log2({n})+1 = {bound} bound",
            out.replays
        );
        // Digest work is two per probe plus the warm-up pair — O(log n),
        // never the old one-per-event O(n).
        assert_eq!(out.digests, 2 * out.replays + 2);
        assert!(
            out.digests < n as u64,
            "{} digests for an {n}-event plan is not O(log n)",
            out.digests
        );
        // Identical plans never diverge.
        let same = bisect_plans(&cfg, &c, &c, plan.clone(), plan).expect("bisect");
        assert_eq!(same, None);
    }

    #[test]
    fn bisect_streams_digests_lazily_for_early_divergences() {
        let c = small_fault_campaign();
        let cfg = FaultCampaign::fast_system();
        let plan = FaultPlan::generate(&c.plan, &cfg.floorplan);
        let n = plan.events.len();
        assert!(n >= 8);

        // A warm-up divergence (different scrub clock ⇒ different initial
        // reconfigurations) must be pinned before either run handles a
        // single event: zero replays, one digest pair.
        let mut c2 = c.clone();
        c2.recovery.scrub_mhz = 150;
        let out = bisect_plans(&cfg, &c, &c2, plan.clone(), plan.clone())
            .expect("bisect")
            .expect("different warm-ups must diverge");
        assert!(out.diverged_in_warmup);
        assert_eq!((out.replays, out.digests), (0, 2), "{out:?}");

        // A divergence planted on the first SEU: digest work stays
        // O(log n) even though the divergence sits near the front.
        let target = plan
            .events
            .iter()
            .position(|e| e.kind == FaultKind::Seu)
            .expect("generated plan must contain an SEU");
        let mut planted = plan.clone();
        let e = &mut planted.events[target];
        e.rp = (e.rp + 1) % cfg.floorplan.partitions().len();
        e.frame %= cfg
            .floorplan
            .partition(e.rp)
            .frame_count(cfg.floorplan.geometry());
        let out = bisect_plans(&cfg, &c, &c, plan.clone(), planted)
            .expect("bisect")
            .expect("planted divergence must be found");
        assert!(!out.diverged_in_warmup);
        assert_eq!(out.first_divergent_event, target as u64);
        let bound = (n as f64).log2().ceil() as u64 + 1;
        assert!(out.replays <= bound, "{out:?}");
        assert!(
            out.digests <= 2 * bound + 2,
            "{} digests for an early divergence in an {n}-event plan — \
             digest streaming must be lazy, not one per event",
            out.digests
        );
    }

    #[test]
    #[should_panic(expected = "needs monitored partitions")]
    fn empty_campaign_panics() {
        let mut sys = configured_system();
        let _ = run_seu_campaign(
            &mut sys,
            &SeuCampaign {
                rps: vec![],
                ..SeuCampaign::default()
            },
        );
    }
}
