//! # pdr-core
//!
//! The paper's contribution: a dynamic-partial-reconfiguration framework
//! that boosts bitstream-transfer throughput by **over-clocking the standard
//! AXI DMA and ICAP blocks**, verifies every reconfiguration with a CRC
//! read-back block, and characterises the robustness (temperature) and
//! power-efficiency of the resulting operating points.
//!
//! The crate assembles the full Fig. 2 system on the cycle-level substrate
//! crates and exposes:
//!
//! * [`ZynqPdrSystem`] — the system model: PS software driver, DRAM, AXI
//!   interconnect, over-clocked DMA + width converter + ICAP, CRC read-back,
//!   clock wizard, interrupts, power/thermal instrumentation;
//! * [`experiments`] — one typed runner per table/figure of the paper
//!   (Table I, Fig. 5, the Sec. IV-A stress matrix, Fig. 6, Table II,
//!   Table III, and the abstract's headline numbers);
//! * [`baselines`] — models of the comparison systems (VF-2012, HP-2011,
//!   HKT-2011, and the Zynq's stock PCAP);
//! * [`proposed`] — the Sec. VI next-generation design: QDR-SRAM staging,
//!   PR controller, bitstream decompressor, PS scheduler;
//! * [`scheduler`] — the multi-tenant request scheduler: admission against
//!   recovery quarantine, EDF-within-priority queueing, and a bitstream
//!   cache with QDR-style prefetch;
//! * [`fleet`] — the fleet-scale PDR-as-a-service control plane:
//!   consistent-hash placement over 1000+ simulated boards, sharded
//!   admission with work stealing, quarantine propagation, a replicated
//!   catalog cache, and a deterministic million-request traffic model,
//!   calibrated on the cycle-level system (see `docs/FLEET.md`);
//! * [`trace`] — the deterministic structured event bus and metrics layer:
//!   stamped, replayable event tapes (JSONL) plus event-derived counters,
//!   locked down by the golden-trace harness in `tests/trace.rs`.
//!
//! # Quickstart
//!
//! ```
//! use pdr_core::{SystemConfig, ZynqPdrSystem};
//! use pdr_sim_core::Frequency;
//!
//! let mut sys = ZynqPdrSystem::new(SystemConfig::fast_test());
//! let bs = sys.make_partial_bitstream(0, 1);
//! let report = sys.reconfigure(0, &bs, Frequency::from_mhz(200));
//! assert!(report.crc_ok());
//! assert!(report.interrupt_seen);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod campaign;
pub mod clockwizard;
pub mod crc_readback;
pub mod experiments;
pub mod faults;
pub mod fleet;
pub mod frontpanel;
pub mod governor;
pub mod proposed;
pub mod recovery;
pub mod report;
pub mod scheduler;
pub mod sdcard;
pub mod snapshot;
pub mod system;
pub mod trace;

pub use campaign::{
    bisect_campaigns, bisect_plans, fork_replicas, run_fault_campaign,
    run_fault_campaign_streaming, run_seu_campaign, shard_report, BisectOutcome, CampaignResult,
    CampaignRun, DistSummary, FaultCampaign, FaultCampaignResult, FaultOutcome, FaultRecord,
    MonteCarloReport, ParallelExecutor, ReplicaRow, SeuCampaign, StatsSummary, THREADS_ENV,
};
pub use clockwizard::ClockWizard;
pub use crc_readback::CrcReadback;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use fleet::{
    Board, Calibration, FleetConfig, FleetReport, FleetRun, PlacementRing, TrafficConfig,
    TrafficModel,
};
pub use frontpanel::{switch_frequency, FrontPanel};
pub use governor::{
    ActiveFeedback, DvfsConfig, DvfsGovernor, DvfsOperatingPoint, Governor, GovernorConfig,
    Objective, OperatingPoint,
};
pub use recovery::{PartitionHealth, RecoveryConfig, RecoveryManager, RecoveryStats};
pub use report::{CrcStatus, ReconfigError, ReconfigReport, TimeoutCause};
pub use scheduler::{
    FetchModel, ReconfigRequest, RejectReason, RequestRecord, Scheduler, SchedulerConfig,
    SchedulerReport,
};
pub use sdcard::{BootReport, SdCard};
pub use system::{SystemConfig, ThermalLoopConfig, ZynqPdrSystem};
pub use trace::{TraceCounters, TraceEvent, TraceLevel, TraceRecord, TraceReport, TraceSink};
