//! Models of the related-work controllers compared in Table III, plus the
//! Zynq's stock PCAP path.
//!
//! Each baseline is reconstructed from its paper's published architecture
//! and numbers (the comparison in Table III is across *publications*, not
//! re-implementations on common hardware — we model each system's structure
//! and calibrate to its reported operating points):
//!
//! * **VF-2012** (Vipin & Fahmy, FPT'12 — the ZyCAP lineage): over-clocked
//!   DMA+ICAP on a Virtex-6, 400 MB/s at the 100 MHz nominal scaling
//!   linearly to 838.55 MB/s at 210 MHz; reconfiguration *fails* above that,
//!   and above 300 MHz starting a transfer freezes the whole FPGA. No CRC —
//!   failures go undetected.
//! * **HP-2011** (Hoffman & Pattichis, IJRC 2011): ICAP behind a multi-port
//!   memory controller on a Virtex-5 with over-clocking under *active
//!   feedback* (voltage/temperature kept nominal): ~419 MB/s at 133 MHz,
//!   intrinsically safe but slower.
//! * **HKT-2011** (Hansen, Koch & Torresen, IPDPSW 2011): an enhanced ICAP
//!   hard macro at 550 MHz fed from an on-chip FIFO: 2200 MB/s, but only for
//!   bitstreams that fit the FIFO (≤ 50 kB); larger images are bounded by
//!   the rate that refills the FIFO.
//! * **PCAP**: the Zynq processor configuration access port, ~145 MB/s —
//!   the no-PL-logic fallback.

use pdr_sim_core::{impl_json_struct, Frequency};
use pdr_timing::{CriticalPath, OverclockModel};

use crate::report::CrcStatus;
use crate::system::{SystemConfig, ZynqPdrSystem};

/// Outcome of running a baseline at an operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Delivered throughput, `None` if the transfer failed.
    pub throughput_mb_s: Option<f64>,
    /// The transfer corrupted the fabric *without any error indication*
    /// (the cost of omitting a CRC).
    pub undetected_failure: bool,
    /// The whole FPGA froze (VF-2012 above 300 MHz).
    pub froze: bool,
}

impl_json_struct!(BaselineOutcome {
    throughput_mb_s,
    undetected_failure,
    froze,
});

impl BaselineOutcome {
    fn ok(t: f64) -> Self {
        BaselineOutcome {
            throughput_mb_s: Some(t),
            undetected_failure: false,
            froze: false,
        }
    }
}

/// VF-2012: over-clocked ICAP controller, no CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vf2012;

impl Vf2012 {
    /// Nominal ICAP rate: 4 bytes per cycle.
    pub const NOMINAL_MB_S: f64 = 400.0;
    /// Highest working frequency reported.
    pub const MAX_OK_MHZ: f64 = 210.0;
    /// Above this, starting a reconfiguration freezes the FPGA.
    pub const FREEZE_MHZ: f64 = 300.0;

    /// Runs a transfer at `freq`.
    pub fn run(&self, freq: Frequency) -> BaselineOutcome {
        let mhz = freq.as_mhz_f64();
        if mhz > Self::FREEZE_MHZ {
            return BaselineOutcome {
                throughput_mb_s: None,
                undetected_failure: true,
                froze: true,
            };
        }
        if mhz > Self::MAX_OK_MHZ {
            // The transfer "completes" but the configuration is corrupt and
            // nothing reports it: no CRC.
            return BaselineOutcome {
                throughput_mb_s: None,
                undetected_failure: true,
                froze: false,
            };
        }
        // Linear 4 B/cycle scaling: 838.55 MB/s at 210 MHz reported — the
        // slight super-linearity in their numbers is measurement spread; we
        // use the 3.993 B/cycle implied by 838.55/210.
        BaselineOutcome::ok(mhz * 838.55 / 210.0)
    }

    /// The Table III row: best published operating point.
    pub fn table3_point(&self) -> (f64, f64) {
        (210.0, 838.55)
    }

    /// A **simulatable** VF-2012: the same substrate wired with VF-2012's
    /// published envelope — a slightly faster Virtex-6 memory path (plateau
    /// ≈ 839 MB/s at 210 MHz), a data path that gives out just above
    /// 210 MHz, and *no* CRC verification in the user's view.
    ///
    /// Running it and interpreting the result through
    /// [`Vf2012::interpret_simulated`] shows the architectural difference to
    /// this paper's system: the same physics, but failures ship silently.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            // 106.6 MHz × 8 B × ~98.4 % efficiency ≈ 839 MB/s plateau.
            interconnect_clock: Frequency::from_hz(106_600_000),
            overclock: OverclockModel::new(
                CriticalPath::new("vf-data", 212.0, 0.05, 0.002),
                CriticalPath::new("vf-freeze", 300.0, 0.05, 0.0),
            ),
            ideal_instruments: true,
            ..SystemConfig::default()
        }
    }

    /// Runs one simulated VF-2012 transfer at `freq` and interprets it the
    /// way a CRC-less design presents itself to its user.
    pub fn run_simulated(&self, freq: Frequency) -> BaselineOutcome {
        let mhz = freq.as_mhz_f64();
        if mhz > Self::FREEZE_MHZ {
            // Past the control-path envelope the whole device wedges; there
            // is nothing useful to simulate.
            return BaselineOutcome {
                throughput_mb_s: None,
                undetected_failure: true,
                froze: true,
            };
        }
        let mut sys = ZynqPdrSystem::new(self.system_config());
        let bs = sys.make_partial_bitstream(0, 1);
        let r = sys.reconfigure(0, &bs, freq);
        Self::interpret_simulated(&r)
    }

    /// Interprets a simulated report as VF-2012's user would see it: no CRC
    /// means a corrupt transfer is indistinguishable from a good one.
    pub fn interpret_simulated(report: &crate::report::ReconfigReport) -> BaselineOutcome {
        if report.crc != CrcStatus::Valid {
            BaselineOutcome {
                throughput_mb_s: None,
                undetected_failure: true,
                froze: false,
            }
        } else {
            BaselineOutcome {
                throughput_mb_s: report.throughput_mb_s(),
                undetected_failure: false,
                froze: false,
            }
        }
    }
}

/// HP-2011: multiport memory controller + active feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hp2011;

impl Hp2011 {
    /// Feedback-limited operating frequency.
    pub const FEEDBACK_MHZ: f64 = 133.0;
    /// Throughput at that point.
    pub const THROUGHPUT_MB_S: f64 = 419.0;

    /// Runs a transfer; the active feedback clamps any requested frequency
    /// to the safe operating point, so the outcome is frequency-independent
    /// (and never fails).
    pub fn run(&self, _freq: Frequency) -> BaselineOutcome {
        BaselineOutcome::ok(Self::THROUGHPUT_MB_S)
    }

    /// The Table III row.
    pub fn table3_point(&self) -> (f64, f64) {
        (Self::FEEDBACK_MHZ, Self::THROUGHPUT_MB_S)
    }
}

/// HKT-2011: enhanced ICAP hard macro fed from an on-chip FIFO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hkt2011 {
    /// FIFO capacity in bytes (50 kB in the paper).
    pub fifo_bytes: u64,
    /// Rate at which the FIFO can be refilled from external memory, MB/s
    /// (a Virtex-5 PLB/NPI-class path; the paper leaves this unstated,
    /// which is exactly the doubt Table III's discussion raises).
    pub refill_mb_s: f64,
}

impl Default for Hkt2011 {
    fn default() -> Self {
        Hkt2011 {
            fifo_bytes: 50 * 1024,
            refill_mb_s: 400.0,
        }
    }
}

impl Hkt2011 {
    /// ICAP hard-macro burst rate at 550 MHz.
    pub const BURST_MB_S: f64 = 2200.0;

    /// Effective throughput for a bitstream of `bytes`: full burst rate
    /// while the image fits the FIFO, refill-limited beyond it.
    ///
    /// For a pre-loaded FIFO the first `fifo_bytes` drain at 2200 MB/s; the
    /// remainder arrives at the refill rate (the ICAP idles between chunks),
    /// so the aggregate is the byte-weighted harmonic combination.
    pub fn run(&self, bytes: u64) -> BaselineOutcome {
        if bytes <= self.fifo_bytes {
            return BaselineOutcome::ok(Self::BURST_MB_S);
        }
        let burst = self.fifo_bytes as f64;
        let rest = (bytes - self.fifo_bytes) as f64;
        let time = burst / (Self::BURST_MB_S * 1e6) + rest / (self.refill_mb_s * 1e6);
        BaselineOutcome::ok(bytes as f64 / time / 1e6)
    }

    /// The Table III row (small-bitstream burst).
    pub fn table3_point(&self) -> (f64, f64) {
        (550.0, Self::BURST_MB_S)
    }
}

/// The Zynq PCAP: PS-driven configuration, no PL logic required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcap;

impl Pcap {
    /// Sustained PCAP throughput (the commonly measured ~145 MB/s against
    /// its 400 MB/s theoretical).
    pub const THROUGHPUT_MB_S: f64 = 145.0;

    /// Runs a transfer (frequency-independent: the PCAP is in the PS).
    pub fn run(&self) -> BaselineOutcome {
        BaselineOutcome::ok(Self::THROUGHPUT_MB_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    #[test]
    fn vf2012_matches_published_points() {
        let vf = Vf2012;
        let at100 = vf.run(mhz(100)).throughput_mb_s.unwrap();
        assert!((at100 - 399.3).abs() < 1.0, "{at100}");
        let at210 = vf.run(mhz(210)).throughput_mb_s.unwrap();
        assert!((at210 - 838.55).abs() < 0.01);
    }

    #[test]
    fn vf2012_fails_undetected_above_210() {
        let o = Vf2012.run(mhz(240));
        assert_eq!(o.throughput_mb_s, None);
        assert!(o.undetected_failure, "no CRC: failure is silent");
        assert!(!o.froze);
    }

    #[test]
    fn vf2012_freezes_above_300() {
        let o = Vf2012.run(mhz(310));
        assert!(o.froze);
    }

    #[test]
    fn vf2012_simulated_matches_published_envelope() {
        // The cycle-level VF-2012 reproduces its published points: ~400 MB/s
        // at 100 MHz, ~839 MB/s at 210 MHz (both CRC-clean under the hood).
        let at100 = Vf2012
            .run_simulated(mhz(100))
            .throughput_mb_s
            .expect("100 MHz works");
        assert!((395.0..=405.0).contains(&at100), "{at100}");
        let at210 = Vf2012
            .run_simulated(mhz(210))
            .throughput_mb_s
            .expect("210 MHz works");
        assert!((825.0..=845.0).contains(&at210), "{at210}");
    }

    #[test]
    fn vf2012_simulated_fails_silently_past_the_edge() {
        let o = Vf2012.run_simulated(mhz(240));
        assert_eq!(o.throughput_mb_s, None);
        assert!(o.undetected_failure, "no CRC: the user never learns");
        assert!(!o.froze);
        let frozen = Vf2012.run_simulated(mhz(320));
        assert!(frozen.froze);
    }

    #[test]
    fn hp2011_is_frequency_clamped_and_safe() {
        let a = Hp2011.run(mhz(133));
        let b = Hp2011.run(mhz(500)); // feedback clamps
        assert_eq!(a, b);
        assert_eq!(a.throughput_mb_s, Some(419.0));
        assert!(!a.undetected_failure);
    }

    #[test]
    fn hkt2011_bursts_small_but_slumps_on_large_bitstreams() {
        let hkt = Hkt2011::default();
        assert_eq!(hkt.run(50 * 1024).throughput_mb_s, Some(2200.0));
        // The paper's 1.4 MB case: dominated by the refill rate.
        let large = hkt.run(1_400_000).throughput_mb_s.unwrap();
        assert!(large < 450.0, "sustained rate {large} must collapse");
        assert!(large > 390.0);
    }

    #[test]
    fn hkt2011_monotone_decreasing_in_size() {
        let hkt = Hkt2011::default();
        let mut prev = f64::INFINITY;
        for bytes in [10_000u64, 60_000, 200_000, 1_400_000] {
            let t = hkt.run(bytes).throughput_mb_s.unwrap();
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn pcap_is_slow_but_steady() {
        assert_eq!(Pcap.run().throughput_mb_s, Some(145.0));
    }
}
