//! # pdr-dma
//!
//! The AXI DMA (MM2S) engine model: the standard IP block the paper
//! over-clocks. It fetches the bitstream from DRAM through the AXI
//! interconnect in long bursts and streams it out on a 64-bit AXI4-Stream
//! toward the ICAP's width converter.
//!
//! The model follows the Xilinx AXI DMA's *Direct Register Mode* programming
//! interface (PG021): software writes the source address to `MM2S_SA`,
//! sets `MM2S_DMACR.RS`, and arms the transfer by writing the byte count to
//! `MM2S_LENGTH`; completion sets `MM2S_DMASR.IOC` and pulses the interrupt.
//!
//! Why this block saturates — the paper's Fig. 5 plateau — is visible in the
//! model's structure: the memory-side path delivers at most one 64-bit beat
//! per *interconnect* clock (100 MHz ⇒ 800 MB/s), while the stream side
//! emits one 32-bit word per *over-clock* cycle (4 B × f). Below ~200 MHz
//! the stream side is the bottleneck (linear region); above it the memory
//! side is (flat region).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pdr_axi::interconnect::MasterEndpoints;
use pdr_axi::mm::ReadReq;
use pdr_axi::stream::StreamBeat;
use pdr_axi::RegisterFile;
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{impl_json_struct, Component, EdgeCtx, IrqLine, NextWake, Producer};

/// `MM2S_DMACR` control register offset.
pub const REG_DMACR: u32 = 0x00;
/// `MM2S_DMASR` status register offset.
pub const REG_DMASR: u32 = 0x04;
/// `MM2S_SA` source-address register offset.
pub const REG_SA: u32 = 0x18;
/// `MM2S_LENGTH` transfer-length register offset (writing a non-zero value
/// arms the transfer).
pub const REG_LENGTH: u32 = 0x28;

/// `DMACR.RS` (run/stop) bit.
pub const DMACR_RS: u32 = 1 << 0;
/// `DMASR.Halted` bit.
pub const DMASR_HALTED: u32 = 1 << 0;
/// `DMASR.Idle` bit.
pub const DMASR_IDLE: u32 = 1 << 1;
/// `DMASR.IOC_Irq` bit (interrupt on complete).
pub const DMASR_IOC: u32 = 1 << 12;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Beats (8 B each) per AXI read burst. Long bursts amortise
    /// re-arbitration: the paper's throughput plateau sits ~1.5 % under the
    /// interconnect ceiling partly because of burst boundaries.
    pub burst_beats: u16,
    /// Maximum outstanding read bursts (AXI pipelining depth).
    pub max_outstanding: u32,
    /// Engine start-up latency in DMA-clock cycles between the `LENGTH`
    /// write and the first burst request (register synchronisation, command
    /// decode, datamover start).
    pub startup_cycles: u32,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            burst_beats: 64,
            max_outstanding: 2,
            startup_cycles: 24,
        }
    }
}

/// Counters describing DMA activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmaStats {
    /// Transfers completed.
    pub transfers: u64,
    /// Burst requests issued.
    pub bursts: u64,
    /// Beats received from the interconnect.
    pub beats_in: u64,
    /// Beats emitted on the stream side.
    pub beats_out: u64,
    /// Cycles the stream output was back-pressured.
    pub stream_stalls: u64,
    /// Cycles the engine wanted data but the memory path had none.
    pub starved_cycles: u64,
}

impl_json_struct!(DmaStats {
    transfers,
    bursts,
    beats_in,
    beats_out,
    stream_stalls,
    starved_cycles
});

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Halted,
    /// Waiting `remaining` cycles before issuing the first burst.
    Starting {
        remaining: u32,
    },
    /// Transfer in flight.
    Running,
}

/// The AXI DMA MM2S engine. Bind it to the over-clock domain.
#[derive(Debug)]
pub struct AxiDma {
    name: String,
    config: DmaConfig,
    regs: RegisterFile,
    port_id: u8,
    mem: MasterEndpoints,
    stream_out: Producer<StreamBeat>,
    irq: IrqLine,
    /// When false, the completion interrupt is electrically dead (the
    /// over-clocked interrupt path has a timing violation).
    irq_functional: bool,
    /// Remaining injected-stall cycles: while non-zero the engine freezes
    /// completely (no requests, no streaming) — the fault model for a hung
    /// memory port or a wedged datamover.
    stall_cycles: u64,
    state: State,
    /// Next fetch address.
    fetch_addr: u64,
    /// Bytes not yet requested.
    bytes_to_request: u64,
    /// Bytes not yet streamed out.
    bytes_to_stream: u64,
    outstanding: u32,
    /// Domain cycle up to which stall/start countdowns are synchronised
    /// (event skipping).
    last_cycle: u64,
    stats: DmaStats,
}

impl AxiDma {
    /// Creates the engine.
    ///
    /// * `regs` — the AXI-Lite register file shared with the processor;
    /// * `port_id`/`mem` — interconnect attachment (see
    ///   [`pdr_axi::interconnect::ReadInterconnect::add_master`]);
    /// * `stream_out` — the 64-bit stream toward the width converter;
    /// * `irq` — the IOC interrupt line.
    pub fn new(
        name: &str,
        config: DmaConfig,
        regs: RegisterFile,
        port_id: u8,
        mem: MasterEndpoints,
        stream_out: Producer<StreamBeat>,
        irq: IrqLine,
    ) -> Self {
        regs.write(REG_DMASR, DMASR_HALTED);
        AxiDma {
            name: name.to_string(),
            config,
            regs,
            port_id,
            mem,
            stream_out,
            irq,
            irq_functional: true,
            stall_cycles: 0,
            state: State::Halted,
            fetch_addr: 0,
            bytes_to_request: 0,
            bytes_to_stream: 0,
            outstanding: 0,
            last_cycle: 0,
            stats: DmaStats::default(),
        }
    }

    /// Enables or disables the physical interrupt path (timing-violation
    /// injection; see `pdr-timing`).
    pub fn set_irq_functional(&mut self, functional: bool) {
        self.irq_functional = functional;
    }

    /// Freezes the engine for `cycles` clock edges (fault injection: a hung
    /// HP port or wedged datamover). The stall begins on the next edge and
    /// holds every engine activity — burst requests, stream output,
    /// completion — so a transfer in flight simply stops making progress
    /// until the stall drains or [`AxiDma::abort`] clears it.
    pub fn inject_stall(&mut self, cycles: u64) {
        self.stall_cycles = self.stall_cycles.saturating_add(cycles);
    }

    /// Remaining injected-stall cycles.
    pub fn stall_remaining(&self) -> u64 {
        self.stall_cycles
    }

    /// Activity counters.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// True while a transfer is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.state, State::Halted)
    }

    /// Hard-stops the engine (DMACR.RS clear + reset): any in-flight
    /// transfer is dropped. In-flight read bursts already issued to the
    /// interconnect will still deliver beats; the caller is responsible for
    /// draining the response FIFO before reuse.
    pub fn abort(&mut self) {
        self.state = State::Halted;
        self.stall_cycles = 0;
        self.bytes_to_request = 0;
        self.bytes_to_stream = 0;
        self.outstanding = 0;
        self.regs.write(REG_LENGTH, 0);
        self.regs.set_bits(REG_DMASR, DMASR_HALTED);
    }

    fn arm_if_requested(&mut self) {
        if !self.regs.bits_set(REG_DMACR, DMACR_RS) {
            return;
        }
        let len = self.regs.read(REG_LENGTH);
        if len == 0 {
            return;
        }
        // Consume the doorbell.
        self.regs.write(REG_LENGTH, 0);
        self.fetch_addr = self.regs.read(REG_SA) as u64;
        self.bytes_to_request = len as u64;
        self.bytes_to_stream = len as u64;
        self.outstanding = 0;
        self.regs.clear_bits(REG_DMASR, DMASR_HALTED | DMASR_IDLE);
        self.state = State::Starting {
            remaining: self.config.startup_cycles,
        };
    }

    fn issue_requests(&mut self) {
        while self.bytes_to_request > 0
            && self.outstanding < self.config.max_outstanding
            && self.mem.req.can_push()
        {
            let burst_bytes = (self.config.burst_beats as u64 * 8).min(self.bytes_to_request);
            let beats = burst_bytes.div_ceil(8) as u16;
            self.mem
                .req
                .try_push(ReadReq::new(self.port_id, self.fetch_addr, beats))
                .expect("checked can_push");
            self.stats.bursts += 1;
            self.fetch_addr += beats as u64 * 8;
            self.bytes_to_request = self.bytes_to_request.saturating_sub(beats as u64 * 8);
            self.outstanding += 1;
        }
    }

    fn pump_stream(&mut self, ctx: &mut EdgeCtx<'_>) {
        if self.bytes_to_stream == 0 {
            return;
        }
        if !self.stream_out.can_push() {
            self.stats.stream_stalls += 1;
            return;
        }
        match self.mem.beats.pop() {
            Some(beat) => {
                self.stats.beats_in += 1;
                if beat.last {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
                let last = self.bytes_to_stream <= 8;
                self.stream_out
                    .try_push(StreamBeat::full(beat.data, last))
                    .expect("checked can_push");
                self.stats.beats_out += 1;
                self.bytes_to_stream = self.bytes_to_stream.saturating_sub(8);
                if last {
                    self.complete(ctx);
                }
            }
            None => self.stats.starved_cycles += 1,
        }
    }

    fn complete(&mut self, ctx: &mut EdgeCtx<'_>) {
        self.state = State::Halted;
        self.stats.transfers += 1;
        self.regs.set_bits(REG_DMASR, DMASR_IDLE | DMASR_IOC);
        if self.irq_functional {
            self.irq.raise(ctx.now());
        }
        ctx.trace("dma-complete", self.stats.transfers, 0);
    }
}

impl Component for AxiDma {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_clock_edge(&mut self, ctx: &mut EdgeCtx<'_>) {
        let cycle = ctx.cycle();
        self.catch_up(cycle - 1);
        self.last_cycle = cycle;
        if self.stall_cycles > 0 {
            self.stall_cycles -= 1;
            return;
        }
        match self.state {
            State::Halted => self.arm_if_requested(),
            State::Starting { remaining } => {
                if remaining == 0 {
                    self.state = State::Running;
                    self.issue_requests();
                } else {
                    self.state = State::Starting {
                        remaining: remaining - 1,
                    };
                }
            }
            State::Running => {
                self.issue_requests();
                self.pump_stream(ctx);
            }
        }
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        if self.stall_cycles > 0 {
            // Wake at the last stall-decrement edge; its authoritative
            // re-poll then answers for the post-stall state.
            return NextWake::In(self.stall_cycles);
        }
        match self.state {
            State::Halted => {
                // A halted engine only polls the doorbell; sleep until the
                // registers actually hold one (writes by other components
                // re-poll this engine through the wake bookkeeping).
                if self.regs.bits_set(REG_DMACR, DMACR_RS) && self.regs.read(REG_LENGTH) != 0 {
                    NextWake::EveryCycle
                } else {
                    NextWake::Idle
                }
            }
            // `remaining` countdown edges, then the edge that goes Running.
            State::Starting { remaining } => NextWake::In(remaining as u64 + 1),
            State::Running => NextWake::EveryCycle,
        }
    }

    fn catch_up(&mut self, cycle: u64) {
        let mut k = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = cycle;
        while k > 0 {
            if self.stall_cycles > 0 {
                let d = self.stall_cycles.min(k);
                self.stall_cycles -= d;
                k -= d;
            } else if let State::Starting { remaining } = &mut self.state {
                // next_wake never sleeps past the remaining==0 work edge.
                debug_assert!(*remaining as u64 >= k, "folded past the DMA start edge");
                let d = (*remaining as u64).min(k);
                *remaining -= d as u32;
                k -= d;
            } else {
                // Halted without a doorbell: every folded edge was a no-op.
                debug_assert!(
                    matches!(self.state, State::Halted),
                    "folded a running DMA engine"
                );
                break;
            }
        }
    }

    fn snapshot_state(&self) -> Json {
        // The engine owns its register file, its IOC interrupt line, and the
        // consumer side of its interconnect beat FIFO.
        let state = match self.state {
            State::Halted => Json::Obj(vec![("kind".to_string(), Json::Str("halted".into()))]),
            State::Starting { remaining } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("starting".into())),
                ("remaining".to_string(), remaining.to_json()),
            ]),
            State::Running => Json::Obj(vec![("kind".to_string(), Json::Str("running".into()))]),
        };
        Json::Obj(vec![
            ("state".to_string(), state),
            ("irq_functional".to_string(), self.irq_functional.to_json()),
            ("stall_cycles".to_string(), self.stall_cycles.to_json()),
            ("fetch_addr".to_string(), self.fetch_addr.to_json()),
            (
                "bytes_to_request".to_string(),
                self.bytes_to_request.to_json(),
            ),
            (
                "bytes_to_stream".to_string(),
                self.bytes_to_stream.to_json(),
            ),
            ("outstanding".to_string(), self.outstanding.to_json()),
            ("last_cycle".to_string(), self.last_cycle.to_json()),
            ("stats".to_string(), self.stats.to_json()),
            ("regs".to_string(), self.regs.snapshot_json()),
            ("irq".to_string(), self.irq.snapshot_json()),
            (
                "beats_in".to_string(),
                self.mem.beats.fifo().snapshot_json(),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        let sv = state.get("state").unwrap_or(&Json::Null);
        let kind = sv
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                msg: "dma snapshot missing state".to_string(),
            })?;
        self.state = match kind {
            "halted" => State::Halted,
            "starting" => State::Starting {
                remaining: u32::from_json(sv.get("remaining").unwrap_or(&Json::Null))?,
            },
            "running" => State::Running,
            other => {
                return Err(JsonError {
                    msg: format!("unknown dma state '{other}'"),
                })
            }
        };
        self.irq_functional = bool::from_json(state.get("irq_functional").unwrap_or(&Json::Null))?;
        self.stall_cycles = u64::from_json(state.get("stall_cycles").unwrap_or(&Json::Null))?;
        self.fetch_addr = u64::from_json(state.get("fetch_addr").unwrap_or(&Json::Null))?;
        self.bytes_to_request =
            u64::from_json(state.get("bytes_to_request").unwrap_or(&Json::Null))?;
        self.bytes_to_stream = u64::from_json(state.get("bytes_to_stream").unwrap_or(&Json::Null))?;
        self.outstanding = u32::from_json(state.get("outstanding").unwrap_or(&Json::Null))?;
        self.last_cycle = u64::from_json(state.get("last_cycle").unwrap_or(&Json::Null))?;
        self.stats = DmaStats::from_json(state.get("stats").unwrap_or(&Json::Null))?;
        self.regs
            .restore_json(state.get("regs").unwrap_or(&Json::Null))?;
        self.irq
            .restore_json(state.get("irq").unwrap_or(&Json::Null))?;
        self.mem
            .beats
            .fifo()
            .restore_json(state.get("beats_in").unwrap_or(&Json::Null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_axi::interconnect::ReadInterconnect;
    use pdr_mem::{Backing, DramConfig, DramController};
    use pdr_sim_core::{fifo_channel, Consumer, Engine, Frequency, IrqBus, SimDuration};

    struct Rig {
        engine: Engine,
        regs: RegisterFile,
        stream: Consumer<StreamBeat>,
        irq: IrqLine,
        dma_id: pdr_sim_core::ComponentId,
        backing: Backing,
    }

    fn rig(dma_mhz: u64) -> Rig {
        let mut e = Engine::new();
        let axi_clk = e.add_clock_domain("axi", Frequency::from_mhz(100));
        let dram_clk = e.add_clock_domain("dram", Frequency::from_mhz(533));
        let oc_clk = e.add_clock_domain("oc", Frequency::from_mhz(dma_mhz));
        let (mut ic, slave) = ReadInterconnect::new("ic", 4, 16);
        let (port, mem) = ic.add_master(64);
        let backing = Backing::new(1 << 20);
        let regs = RegisterFile::new();
        let bus = IrqBus::new();
        let irq = bus.allocate("mm2s-ioc");
        let (stream_tx, stream_rx) = fifo_channel("dma-stream", 128);
        e.add_component(
            DramController::new("dram", DramConfig::ddr3_533(), backing.clone(), slave),
            Some(dram_clk),
        );
        e.add_component(ic, Some(axi_clk));
        let dma = AxiDma::new(
            "dma",
            DmaConfig::default(),
            regs.clone(),
            port,
            mem,
            stream_tx,
            irq.clone(),
        );
        let dma_id = e.add_component(dma, Some(oc_clk));
        Rig {
            engine: e,
            regs,
            stream: stream_rx,
            irq,
            dma_id,
            backing,
        }
    }

    fn start_transfer(r: &Rig, addr: u32, len: u32) {
        r.regs.write(REG_SA, addr);
        r.regs.set_bits(REG_DMACR, DMACR_RS);
        r.regs.write(REG_LENGTH, len);
    }

    #[test]
    fn transfers_correct_bytes_and_raises_ioc() {
        let mut r = rig(100);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        r.backing.write(0x1000, &payload);
        start_transfer(&r, 0x1000, 4096);
        let mut got = Vec::new();
        for _ in 0..200 {
            r.engine.run_for(SimDuration::from_micros(1));
            while let Some(b) = r.stream.pop() {
                got.extend_from_slice(&b.data.to_le_bytes());
            }
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised(), "IOC interrupt must fire");
        assert_eq!(got, payload);
        assert!(r.regs.bits_set(REG_DMASR, DMASR_IDLE | DMASR_IOC));
    }

    #[test]
    fn last_beat_is_marked() {
        let mut r = rig(100);
        start_transfer(&r, 0, 256);
        let mut beats = Vec::new();
        for _ in 0..50 {
            r.engine.run_for(SimDuration::from_micros(1));
            while let Some(b) = r.stream.pop() {
                beats.push(b);
            }
            if r.irq.is_raised() {
                break;
            }
        }
        assert_eq!(beats.len(), 32);
        assert!(beats[31].last);
        assert!(beats[..31].iter().all(|b| !b.last));
    }

    #[test]
    fn dead_interrupt_path_completes_silently() {
        let mut r = rig(100);
        r.engine
            .component_mut::<AxiDma>(r.dma_id)
            .set_irq_functional(false);
        start_transfer(&r, 0, 1024);
        for _ in 0..100 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {}
        }
        assert!(!r.irq.is_raised(), "dead path must not interrupt");
        // Status register still shows completion (software could poll).
        assert!(r.regs.bits_set(REG_DMASR, DMASR_IOC));
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stats().transfers, 1);
    }

    #[test]
    fn does_not_start_without_run_bit() {
        let mut r = rig(100);
        r.regs.write(REG_SA, 0);
        r.regs.write(REG_LENGTH, 512); // RS not set
        r.engine.run_for(SimDuration::from_micros(5));
        assert!(r.stream.pop().is_none());
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stats().bursts, 0);
    }

    #[test]
    fn back_to_back_transfers() {
        let mut r = rig(200);
        start_transfer(&r, 0, 2048);
        let mut drained = 0usize;
        for _ in 0..100 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {
                drained += 1;
            }
            if r.irq.is_raised() {
                break;
            }
        }
        r.irq.clear();
        start_transfer(&r, 0x800, 2048);
        for _ in 0..100 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {
                drained += 1;
            }
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised());
        assert_eq!(drained, 512); // 4096 B / 8
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stats().transfers, 2);
    }

    #[test]
    fn odd_length_transfer_pads_the_final_beat() {
        // 1028 bytes = 128 full beats + 4 bytes: the DMA streams 129 beats
        // (the memory path reads whole 64-bit words) and marks the last one.
        let mut r = rig(100);
        start_transfer(&r, 0, 1028);
        let mut beats = Vec::new();
        for _ in 0..50 {
            r.engine.run_for(SimDuration::from_micros(1));
            while let Some(b) = r.stream.pop() {
                beats.push(b);
            }
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised());
        assert_eq!(beats.len(), 129);
        assert!(beats.last().expect("non-empty").last);
    }

    #[test]
    fn abort_stops_and_allows_reuse() {
        let mut r = rig(100);
        start_transfer(&r, 0, 400_000);
        r.engine.run_for(SimDuration::from_micros(20)); // mid-transfer
        assert!(r.engine.component::<AxiDma>(r.dma_id).is_busy());
        r.engine.component_mut::<AxiDma>(r.dma_id).abort();
        assert!(!r.engine.component::<AxiDma>(r.dma_id).is_busy());
        assert!(r.regs.bits_set(REG_DMASR, DMASR_HALTED));
        // Drain leftovers, then a fresh transfer completes normally.
        r.engine.run_for(SimDuration::from_micros(10));
        while r.stream.pop().is_some() {}
        r.irq.clear();
        start_transfer(&r, 0x2000, 512);
        let mut drained = 0;
        for _ in 0..50 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {
                drained += 1;
            }
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised());
        assert!(drained >= 64, "fresh transfer must stream: {drained}");
    }

    #[test]
    fn injected_stall_freezes_then_resumes() {
        let mut r = rig(100);
        start_transfer(&r, 0, 4096);
        r.engine.run_for(SimDuration::from_micros(1)); // engine arms
                                                       // Freeze for 500 cycles (5 µs at 100 MHz) mid-transfer.
        r.engine.component_mut::<AxiDma>(r.dma_id).inject_stall(500);
        let beats_before = r.engine.component::<AxiDma>(r.dma_id).stats().beats_out;
        r.engine.run_for(SimDuration::from_micros(4));
        while r.stream.pop().is_some() {}
        let beats_mid = r.engine.component::<AxiDma>(r.dma_id).stats().beats_out;
        assert_eq!(beats_mid, beats_before, "stalled engine must not stream");
        assert!(r.engine.component::<AxiDma>(r.dma_id).stall_remaining() > 0);
        // After the stall drains the transfer completes normally.
        for _ in 0..100 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {}
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised(), "transfer must finish after the stall");
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stall_remaining(), 0);
    }

    #[test]
    fn abort_clears_an_injected_stall() {
        let mut r = rig(100);
        start_transfer(&r, 0, 4096);
        r.engine.run_for(SimDuration::from_micros(1));
        r.engine
            .component_mut::<AxiDma>(r.dma_id)
            .inject_stall(1_000_000);
        r.engine.component_mut::<AxiDma>(r.dma_id).abort();
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stall_remaining(), 0);
        // The engine is reusable immediately.
        r.engine.run_for(SimDuration::from_micros(10));
        while r.stream.pop().is_some() {}
        r.irq.clear();
        start_transfer(&r, 0x1000, 512);
        for _ in 0..50 {
            r.engine.run_for(SimDuration::from_micros(1));
            while r.stream.pop().is_some() {}
            if r.irq.is_raised() {
                break;
            }
        }
        assert!(r.irq.is_raised());
    }

    #[test]
    fn zero_length_doorbell_is_ignored() {
        let mut r = rig(100);
        r.regs.set_bits(REG_DMACR, DMACR_RS);
        r.regs.write(REG_LENGTH, 0);
        r.engine.run_for(SimDuration::from_micros(5));
        assert!(!r.engine.component::<AxiDma>(r.dma_id).is_busy());
        assert_eq!(r.engine.component::<AxiDma>(r.dma_id).stats().bursts, 0);
    }

    #[test]
    fn throughput_is_stream_limited_at_low_clock() {
        // At 100 MHz the stream side caps the rate at ~800 MB/s of 64-bit
        // beats — but the converter downstream halves it; here we check the
        // DMA alone can sustain ~1 beat/cycle.
        let mut r = rig(100);
        start_transfer(&r, 0, 400_000);
        let t0 = r.engine.now();
        let mut bytes = 0u64;
        while !r.irq.is_raised() {
            // Drain often enough that the 128-beat FIFO never back-pressures
            // the engine (128 beats / 500 ns ≈ 2 GB/s of drain capacity).
            r.engine.run_for(SimDuration::from_nanos(500));
            while let Some(b) = r.stream.pop() {
                bytes += b.valid_bytes() as u64;
            }
            assert!(
                r.engine.now().duration_since(t0) < SimDuration::from_millis(10),
                "transfer hung"
            );
        }
        let dt = r.engine.now().duration_since(t0).as_secs_f64();
        let mb_s = bytes as f64 / dt / 1e6;
        assert!(mb_s > 700.0, "DMA sustained only {mb_s:.0} MB/s");
    }
}
