//! # pdr-icap
//!
//! The Internal Configuration Access Port: the 32-bit hardware port through
//! which the programmable logic rewrites its own configuration memory.
//!
//! [`IcapController`] consumes **one 32-bit word per cycle** of the
//! over-clock domain from the width converter's stream, runs the
//! [`pdr_bitstream::Parser`] state machine on it, and applies frame writes
//! to the shared [`pdr_fabric::ConfigMemory`]. At 100 MHz this is the
//! canonical 400 MB/s ICAP rate; over-clocking scales it linearly until the
//! memory path saturates.
//!
//! Timing-violation injection: when the over-clocked data path fails
//! (see `pdr-timing`), each transferred word is corrupted with the assessed
//! word-error rate before parsing — which is what makes the paper's
//! "CRC not valid" rows fail *honestly*: the corrupted frames land in
//! configuration memory and both the in-stream CRC check and the read-back
//! CRC detect them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use pdr_axi::width::Word32;
use pdr_bitstream::{Action, CmdCode, ParseError, Parser, ParserSnapshot};
use pdr_fabric::ConfigMemory;
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{Component, Consumer, EdgeCtx, IrqLine, NextWake, SimTime, Xoshiro256StarStar};

/// Shared handle to the device's configuration memory.
pub type SharedConfigMemory = Rc<RefCell<ConfigMemory>>;

/// Creates a shared configuration memory handle.
pub fn shared_config_memory(mem: ConfigMemory) -> SharedConfigMemory {
    Rc::new(RefCell::new(mem))
}

/// Observable state of an ICAP transfer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IcapStatus {
    /// Words consumed from the stream.
    pub words_consumed: u64,
    /// Frames committed to configuration memory.
    pub frames_written: u64,
    /// Result of the in-stream CRC check word, once seen.
    pub stream_crc_ok: Option<bool>,
    /// The stream desynchronised cleanly (end of configuration reached).
    pub done: bool,
    /// Time of the DESYNC, when reached.
    pub done_time: Option<SimTime>,
    /// A malformed stream poisoned the configuration logic.
    pub parse_error: Option<ParseError>,
    /// The stream's IDCODE did not match the device (configuration was
    /// refused from that point on).
    pub idcode_mismatch: bool,
    /// Words corrupted by injected timing violations.
    pub corrupted_words: u64,
}

impl IcapStatus {
    /// True when configuration completed with a passing in-stream CRC.
    pub fn succeeded(&self) -> bool {
        self.done
            && self.stream_crc_ok == Some(true)
            && self.parse_error.is_none()
            && !self.idcode_mismatch
    }
}

/// The ICAP controller component. Bind it to the over-clock domain.
#[derive(Debug)]
pub struct IcapController {
    name: String,
    stream_in: Consumer<Word32>,
    mem: SharedConfigMemory,
    done_irq: IrqLine,
    irq_functional: bool,
    /// One-shot fault injection: swallow the next done interrupt (a lost
    /// IRQ edge, distinct from a dead path). Survives [`IcapController::reset`]
    /// so it can be armed before the driver's pre-transfer quiesce.
    drop_next_done: bool,
    parser: Parser,
    status: IcapStatus,
    word_error_rate: f64,
    /// Device IDCODE to enforce (`None` disables the check).
    expected_idcode: Option<u32>,
    rng: Xoshiro256StarStar,
    /// FAR of the current FDRI burst (tracked for burst-relative writes).
    burst_far: Option<pdr_bitstream::FrameAddress>,
}

impl IcapController {
    /// Creates the controller.
    ///
    /// * `stream_in` — 32-bit words from the width converter;
    /// * `mem` — the configuration memory to write;
    /// * `done_irq` — the end-of-configuration interrupt;
    /// * `rng_seed` — seed for the corruption sampler (determinism).
    pub fn new(
        name: &str,
        stream_in: Consumer<Word32>,
        mem: SharedConfigMemory,
        done_irq: IrqLine,
        rng_seed: u64,
    ) -> Self {
        IcapController {
            name: name.to_string(),
            stream_in,
            mem,
            done_irq,
            irq_functional: true,
            drop_next_done: false,
            parser: Parser::new(),
            status: IcapStatus::default(),
            word_error_rate: 0.0,
            expected_idcode: None,
            rng: Xoshiro256StarStar::seed_from_u64(rng_seed),
            burst_far: None,
        }
    }

    /// Enables IDCODE enforcement: streams carrying a different device id
    /// are refused from the IDCODE write onward, as on real silicon.
    pub fn set_expected_idcode(&mut self, idcode: u32) {
        self.expected_idcode = Some(idcode);
    }

    /// Sets the per-word corruption probability (timing-violation
    /// injection; 0.0 = healthy data path).
    pub fn set_word_error_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
        self.word_error_rate = rate;
    }

    /// Enables or disables the physical done-interrupt path.
    pub fn set_irq_functional(&mut self, functional: bool) {
        self.irq_functional = functional;
    }

    /// Arms a one-shot fault: the next completion interrupt is silently
    /// swallowed (the edge is lost between controller and interrupt
    /// controller) even though the transfer itself completes. The flag
    /// survives [`IcapController::reset`] and is consumed when the drop
    /// happens.
    pub fn drop_next_done_irq(&mut self) {
        self.drop_next_done = true;
    }

    /// True while a one-shot interrupt drop is armed.
    pub fn done_irq_drop_armed(&self) -> bool {
        self.drop_next_done
    }

    /// Current transfer status.
    pub fn status(&self) -> &IcapStatus {
        &self.status
    }

    /// Resets parser and status for the next transfer (the stream CRC and
    /// sync hunt restart, like issuing an ICAP abort sequence).
    pub fn reset(&mut self) {
        self.parser = Parser::new();
        self.status = IcapStatus::default();
        self.burst_far = None;
    }

    /// The shared configuration memory handle.
    pub fn memory(&self) -> &SharedConfigMemory {
        &self.mem
    }
}

fn parse_error_to_json(e: &Option<ParseError>) -> Json {
    let (kind, word) = match e {
        None => return Json::Null,
        Some(ParseError::InvalidHeader(w)) => ("invalid_header", *w),
        Some(ParseError::UnexpectedType2(w)) => ("unexpected_type2", *w),
        Some(ParseError::UnknownRegister(a)) => ("unknown_register", *a),
        Some(ParseError::InvalidCommand(w)) => ("invalid_command", *w),
        Some(ParseError::TruncatedFrame) => ("truncated_frame", 0),
        Some(ParseError::FdriWithoutFar) => ("fdri_without_far", 0),
    };
    Json::Obj(vec![
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("word".to_string(), word.to_json()),
    ])
}

fn parse_error_from_json(v: &Json) -> Result<Option<ParseError>, JsonError> {
    if matches!(v, Json::Null) {
        return Ok(None);
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError {
            msg: "parse error snapshot missing kind".to_string(),
        })?;
    let word = u32::from_json(v.get("word").unwrap_or(&Json::Null))?;
    Ok(Some(match kind {
        "invalid_header" => ParseError::InvalidHeader(word),
        "unexpected_type2" => ParseError::UnexpectedType2(word),
        "unknown_register" => ParseError::UnknownRegister(word),
        "invalid_command" => ParseError::InvalidCommand(word),
        "truncated_frame" => ParseError::TruncatedFrame,
        "fdri_without_far" => ParseError::FdriWithoutFar,
        other => {
            return Err(JsonError {
                msg: format!("unknown parse error kind '{other}'"),
            })
        }
    }))
}

fn parser_snapshot_to_json(s: &ParserSnapshot) -> Json {
    Json::Obj(vec![
        ("state".to_string(), s.state.to_json()),
        ("reg_addr".to_string(), s.reg_addr.to_json()),
        ("remaining".to_string(), s.remaining.to_json()),
        ("crc".to_string(), s.crc.to_json()),
        ("burst_far".to_string(), s.burst_far.to_json()),
        ("burst_seq".to_string(), s.burst_seq.to_json()),
        ("frame_buf".to_string(), s.frame_buf.to_json()),
        ("words_consumed".to_string(), s.words_consumed.to_json()),
        ("frames_emitted".to_string(), s.frames_emitted.to_json()),
    ])
}

fn parser_snapshot_from_json(v: &Json) -> Result<ParserSnapshot, JsonError> {
    let g = |key: &str| v.get(key).unwrap_or(&Json::Null);
    Ok(ParserSnapshot {
        state: u8::from_json(g("state"))?,
        reg_addr: u32::from_json(g("reg_addr"))?,
        remaining: u32::from_json(g("remaining"))?,
        crc: u32::from_json(g("crc"))?,
        burst_far: Option::<u32>::from_json(g("burst_far"))?,
        burst_seq: u32::from_json(g("burst_seq"))?,
        frame_buf: Vec::<u32>::from_json(g("frame_buf"))?,
        words_consumed: u64::from_json(g("words_consumed"))?,
        frames_emitted: u64::from_json(g("frames_emitted"))?,
    })
}

impl Component for IcapController {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_clock_edge(&mut self, ctx: &mut EdgeCtx<'_>) {
        let Some(word) = self.stream_in.pop() else {
            return;
        };
        self.status.words_consumed += 1;
        let mut data = word.data;
        if self.word_error_rate > 0.0 && self.rng.next_bool(self.word_error_rate) {
            data ^= 1 << self.rng.next_bounded(32);
            self.status.corrupted_words += 1;
        }
        if self.status.parse_error.is_some() || self.status.idcode_mismatch {
            return; // wedged until reset, like real config logic
        }
        let mem = &self.mem;
        let status = &mut self.status;
        let burst_far = &mut self.burst_far;
        let expected_idcode = self.expected_idcode;
        let now = ctx.now();
        let result = self.parser.push_word(data, &mut |action| match action {
            Action::Sync => {}
            Action::Idcode(id) => {
                if expected_idcode.is_some_and(|want| want != id) {
                    status.idcode_mismatch = true;
                }
            }
            Action::SetFar(far) => *burst_far = Some(far),
            Action::Command(cmd) => {
                debug_assert!(
                    CmdCode::from_word(cmd as u32).is_some(),
                    "parser emitted invalid command"
                );
            }
            Action::WriteFrame { far, seq, data } => {
                let ok = mem.borrow_mut().write_burst_frame(far, seq, data);
                if ok {
                    status.frames_written += 1;
                }
            }
            Action::CrcCheck { ok } => status.stream_crc_ok = Some(ok),
            Action::Desync => {
                status.done = true;
                status.done_time = Some(now);
            }
            Action::WriteReg(_, _) | Action::ReadRequest(_, _) => {}
        });
        if let Err(e) = result {
            self.status.parse_error = Some(e);
            ctx.trace("icap-parse-error", self.status.words_consumed, 0);
            return;
        }
        if self.status.done && self.status.done_time == Some(now) {
            // Completed this cycle: fire the interrupt if its path works and
            // no one-shot drop is armed.
            if self.drop_next_done {
                self.drop_next_done = false;
                ctx.trace("icap-done-irq-dropped", self.status.frames_written, 0);
            } else if self.irq_functional {
                self.done_irq.raise(now);
            }
            ctx.trace("icap-done", self.status.frames_written, 0);
        }
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        // An empty-stream edge pops nothing and returns immediately — a pure
        // no-op, so the ICAP sleeps until the converter pushes a word. Even a
        // wedged controller still consumes (and RNG-corrupts) words, so any
        // non-empty stream needs edge-by-edge service.
        if self.stream_in.is_empty() {
            NextWake::Idle
        } else {
            NextWake::EveryCycle
        }
    }

    fn snapshot_state(&self) -> Json {
        // The controller owns its done-IRQ line, the consumer side of the
        // 32-bit word stream, and the parser. Configuration memory is shared
        // device state, serialised once at system level.
        Json::Obj(vec![
            ("irq_functional".to_string(), self.irq_functional.to_json()),
            ("drop_next_done".to_string(), self.drop_next_done.to_json()),
            (
                "parser".to_string(),
                parser_snapshot_to_json(&self.parser.snapshot_parts()),
            ),
            (
                "status".to_string(),
                Json::Obj(vec![
                    (
                        "words_consumed".to_string(),
                        self.status.words_consumed.to_json(),
                    ),
                    (
                        "frames_written".to_string(),
                        self.status.frames_written.to_json(),
                    ),
                    (
                        "stream_crc_ok".to_string(),
                        self.status.stream_crc_ok.to_json(),
                    ),
                    ("done".to_string(), self.status.done.to_json()),
                    ("done_time".to_string(), self.status.done_time.to_json()),
                    (
                        "parse_error".to_string(),
                        parse_error_to_json(&self.status.parse_error),
                    ),
                    (
                        "idcode_mismatch".to_string(),
                        self.status.idcode_mismatch.to_json(),
                    ),
                    (
                        "corrupted_words".to_string(),
                        self.status.corrupted_words.to_json(),
                    ),
                ]),
            ),
            (
                "word_error_rate".to_string(),
                self.word_error_rate.to_json(),
            ),
            (
                "expected_idcode".to_string(),
                self.expected_idcode.to_json(),
            ),
            ("rng".to_string(), self.rng.state().to_vec().to_json()),
            (
                "burst_far".to_string(),
                self.burst_far.map(|f| f.as_word()).to_json(),
            ),
            ("done_irq".to_string(), self.done_irq.snapshot_json()),
            (
                "stream_in".to_string(),
                self.stream_in.fifo().snapshot_json(),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        let g = |key: &str| state.get(key).unwrap_or(&Json::Null);
        self.irq_functional = bool::from_json(g("irq_functional"))?;
        self.drop_next_done = bool::from_json(g("drop_next_done"))?;
        let parts = parser_snapshot_from_json(g("parser"))?;
        self.parser
            .restore_parts(&parts)
            .map_err(|msg| JsonError { msg })?;
        let sv = g("status");
        let sg = |key: &str| sv.get(key).unwrap_or(&Json::Null);
        self.status = IcapStatus {
            words_consumed: u64::from_json(sg("words_consumed"))?,
            frames_written: u64::from_json(sg("frames_written"))?,
            stream_crc_ok: Option::<bool>::from_json(sg("stream_crc_ok"))?,
            done: bool::from_json(sg("done"))?,
            done_time: Option::<SimTime>::from_json(sg("done_time"))?,
            parse_error: parse_error_from_json(sg("parse_error"))?,
            idcode_mismatch: bool::from_json(sg("idcode_mismatch"))?,
            corrupted_words: u64::from_json(sg("corrupted_words"))?,
        };
        self.word_error_rate = f64::from_json(g("word_error_rate"))?;
        self.expected_idcode = Option::<u32>::from_json(g("expected_idcode"))?;
        let rng_state = Vec::<u64>::from_json(g("rng"))?;
        let rng_state: [u64; 4] = rng_state.try_into().map_err(|_| JsonError {
            msg: "icap rng state must be four words".to_string(),
        })?;
        self.rng = Xoshiro256StarStar::from_state(rng_state);
        self.burst_far = match Option::<u32>::from_json(g("burst_far"))? {
            None => None,
            Some(w) => {
                Some(
                    pdr_bitstream::FrameAddress::from_word(w).ok_or_else(|| JsonError {
                        msg: format!("invalid FAR word {w:#010X}"),
                    })?,
                )
            }
        };
        self.done_irq.restore_json(g("done_irq"))?;
        self.stream_in.fifo().restore_json(g("stream_in"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_bitstream::{Builder, Frame, FrameAddress};
    use pdr_fabric::Geometry;
    use pdr_sim_core::{fifo_channel, Engine, Frequency, IrqBus, Producer, SimDuration};

    struct Rig {
        engine: Engine,
        words: Producer<Word32>,
        irq: IrqLine,
        icap_id: pdr_sim_core::ComponentId,
        mem: SharedConfigMemory,
    }

    fn rig(mhz: u64) -> Rig {
        let mut e = Engine::new();
        let clk = e.add_clock_domain("oc", Frequency::from_mhz(mhz));
        let (tx, rx) = fifo_channel("icap-in", 1 << 20);
        let mem = shared_config_memory(ConfigMemory::new(Geometry::zynq7020()));
        let bus = IrqBus::new();
        let irq = bus.allocate("icap-done");
        let icap = IcapController::new("icap", rx, mem.clone(), irq.clone(), 42);
        let id = e.add_component(icap, Some(clk));
        Rig {
            engine: e,
            words: tx,
            irq,
            icap_id: id,
            mem,
        }
    }

    fn sample_bitstream(frames: usize) -> pdr_bitstream::Bitstream {
        let mut b = Builder::new(0x0372_7093);
        b.add_frames(
            FrameAddress::new(0, 1, 0, 0),
            (0..frames)
                .map(|i| Frame::filled(0xF00D_0000 + i as u32))
                .collect(),
        );
        b.build()
    }

    fn feed(r: &Rig, bs: &pdr_bitstream::Bitstream) {
        for w in bs.words() {
            r.words
                .try_push(Word32 {
                    data: w,
                    last: false,
                })
                .unwrap();
        }
    }

    #[test]
    fn healthy_transfer_configures_and_interrupts() {
        let mut r = rig(100);
        let bs = sample_bitstream(8);
        feed(&r, &bs);
        r.engine.run_for(SimDuration::from_micros(100));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.succeeded(), "status: {st:?}");
        assert_eq!(st.frames_written, 8);
        assert_eq!(st.words_consumed, bs.word_count() as u64);
        assert!(r.irq.is_raised());
        // The frames actually landed in configuration memory.
        let frame = r
            .mem
            .borrow_mut()
            .read_frame(FrameAddress::new(0, 1, 0, 3))
            .cloned()
            .unwrap();
        assert_eq!(frame, Frame::filled(0xF00D_0003));
    }

    #[test]
    fn consumes_exactly_one_word_per_cycle() {
        let mut r = rig(100);
        let bs = sample_bitstream(4);
        feed(&r, &bs);
        // 40 cycles at 100 MHz = 400 ns → exactly 40 words consumed.
        r.engine.run_for(SimDuration::from_nanos(400));
        let st = r.engine.component::<IcapController>(r.icap_id).status();
        assert_eq!(st.words_consumed, 40);
    }

    #[test]
    fn corrupted_transfer_fails_stream_crc() {
        let mut r = rig(320);
        r.engine
            .component_mut::<IcapController>(r.icap_id)
            .set_word_error_rate(0.005);
        let bs = sample_bitstream(16);
        feed(&r, &bs);
        r.engine.run_for(SimDuration::from_micros(100));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.corrupted_words > 0, "corruption must trigger at 0.5 %");
        assert!(!st.succeeded(), "corrupted stream must not verify: {st:?}");
    }

    #[test]
    fn armed_drop_swallows_exactly_one_done_irq() {
        let mut r = rig(100);
        {
            let icap = r.engine.component_mut::<IcapController>(r.icap_id);
            icap.drop_next_done_irq();
            // The drop must survive the driver's pre-transfer reset.
            icap.reset();
            assert!(icap.done_irq_drop_armed());
        }
        let bs = sample_bitstream(4);
        feed(&r, &bs);
        r.engine.run_for(SimDuration::from_micros(50));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.succeeded(), "transfer itself completes: {st:?}");
        assert!(!r.irq.is_raised(), "armed drop must swallow the interrupt");
        assert!(!r
            .engine
            .component::<IcapController>(r.icap_id)
            .done_irq_drop_armed());
        // The next transfer interrupts normally (one-shot consumed).
        r.engine.component_mut::<IcapController>(r.icap_id).reset();
        feed(&r, &bs);
        r.engine.run_for(SimDuration::from_micros(50));
        assert!(r.irq.is_raised(), "drop is one-shot");
    }

    #[test]
    fn dead_interrupt_path_still_configures() {
        let mut r = rig(310);
        r.engine
            .component_mut::<IcapController>(r.icap_id)
            .set_irq_functional(false);
        let bs = sample_bitstream(8);
        feed(&r, &bs);
        r.engine.run_for(SimDuration::from_micros(100));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.succeeded(), "data path is healthy at 310 MHz/40 °C");
        assert!(!r.irq.is_raised(), "interrupt path is dead");
    }

    #[test]
    fn reset_allows_reuse() {
        let mut r = rig(100);
        feed(&r, &sample_bitstream(2));
        r.engine.run_for(SimDuration::from_micros(50));
        assert!(
            r.engine
                .component::<IcapController>(r.icap_id)
                .status()
                .done
        );
        r.irq.clear();
        r.engine.component_mut::<IcapController>(r.icap_id).reset();
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert_eq!(st, IcapStatus::default());
        feed(&r, &sample_bitstream(3));
        r.engine.run_for(SimDuration::from_micros(50));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.succeeded());
        assert_eq!(st.frames_written, 3);
    }

    #[test]
    fn idcode_enforcement_refuses_foreign_streams() {
        let mut r = rig(100);
        r.engine
            .component_mut::<IcapController>(r.icap_id)
            .set_expected_idcode(0x0372_7093);
        // sample_bitstream uses the matching id: accepted.
        feed(&r, &sample_bitstream(2));
        r.engine.run_for(SimDuration::from_micros(50));
        assert!(r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .succeeded());
        // A stream with a different id is refused and writes nothing new.
        r.irq.clear();
        r.engine.component_mut::<IcapController>(r.icap_id).reset();
        let mut b = Builder::new(0xDEAD_0001);
        b.add_frames(FrameAddress::new(0, 2, 0, 0), vec![Frame::filled(9); 3]);
        feed(&r, &b.build());
        r.engine.run_for(SimDuration::from_micros(50));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert!(st.idcode_mismatch);
        assert!(!st.succeeded());
        assert_eq!(st.frames_written, 0);
        assert!(!r.irq.is_raised());
        assert!(r
            .mem
            .borrow_mut()
            .read_frame(FrameAddress::new(0, 2, 0, 0))
            .unwrap()
            .is_zero());
    }

    #[test]
    fn frames_outside_the_device_are_dropped_not_fatal() {
        let mut r = rig(100);
        // Target the last frame of the device, then keep writing past it.
        let geometry = r.mem.borrow().geometry().clone();
        let last = geometry.far_at(geometry.total_frames() - 1);
        let mut b = Builder::new(0x0372_7093);
        b.add_frames(last, vec![Frame::filled(1); 3]); // 2 frames fall off
        feed(&r, &b.build());
        r.engine.run_for(SimDuration::from_micros(50));
        let st = r
            .engine
            .component::<IcapController>(r.icap_id)
            .status()
            .clone();
        assert_eq!(st.frames_written, 1, "only the in-device frame lands");
        assert!(st.done, "the stream still completes");
    }

    #[test]
    fn garbage_stream_never_completes() {
        let mut r = rig(100);
        for i in 0..1000u32 {
            r.words
                .try_push(Word32 {
                    data: 0x0BAD_0000 | i,
                    last: false,
                })
                .unwrap();
        }
        r.engine.run_for(SimDuration::from_micros(50));
        let st = r.engine.component::<IcapController>(r.icap_id).status();
        assert!(!st.done);
        assert!(!r.irq.is_raised());
    }
}
