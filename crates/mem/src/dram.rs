//! The DDR3-like DRAM controller.
//!
//! The controller serves AXI read bursts from a [`Backing`] store, one beat
//! per cycle of its own (controller) clock, with per-bank open-row state
//! (row hits pay CAS only; misses pay precharge + activate + CAS) and
//! periodic refresh stalls that close every row. Its raw rate (533 MHz × 8 B) far
//! exceeds the interconnect's 800 MB/s, so in the full system the controller
//! only shapes the stream (latency, refresh gaps) while the interconnect
//! sets the ceiling — matching where the paper locates the bottleneck
//! ("Memory Port → AXI Interconnect → AXI DMA", Sec. VI).

use pdr_axi::interconnect::SlaveEndpoints;
use pdr_axi::mm::{ReadBeat, ReadReq};
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{impl_json_struct, Component, EdgeCtx, NextWake};

use crate::backing::Backing;

/// DRAM controller timing parameters, in controller-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from accepting a burst to its first beat when the bank's row
    /// buffer already holds the right row (CAS latency).
    pub row_hit_cycles: u32,
    /// Cycles when the wrong row is open (precharge + activate + CAS).
    pub row_miss_cycles: u32,
    /// Number of banks (open-row state is tracked per bank).
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Cycles between refreshes (tREFI).
    pub refresh_interval_cycles: u32,
    /// Refresh duration (tRFC) during which no beats are served; refresh
    /// closes every row buffer.
    pub refresh_cycles: u32,
}

impl DramConfig {
    /// DDR3-533-like defaults: 8 banks × 8 kB rows, ~26 ns row hit /
    /// ~79 ns row miss, refresh every 7.8 µs for 160 ns (at a 533 MHz
    /// controller clock).
    pub fn ddr3_533() -> Self {
        DramConfig {
            row_hit_cycles: 14,
            row_miss_cycles: 42,
            banks: 8,
            row_bytes: 8 * 1024,
            refresh_interval_cycles: 4158,
            refresh_cycles: 85,
        }
    }

    /// Bank and row of a byte address (low-order bank interleaving at row
    /// granularity, the common controller mapping for streaming locality).
    pub fn decode(&self, addr: u64) -> (u32, u64) {
        let row_global = addr / self.row_bytes;
        (
            (row_global % self.banks as u64) as u32,
            row_global / self.banks as u64,
        )
    }
}

/// Counters describing controller activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Bursts accepted.
    pub bursts: u64,
    /// Beats served.
    pub beats: u64,
    /// Bursts that found their row open.
    pub row_hits: u64,
    /// Bursts that had to precharge/activate.
    pub row_misses: u64,
    /// Cycles spent refreshing.
    pub refresh_cycles: u64,
    /// Cycles the output FIFO back-pressured a ready beat.
    pub output_stalls: u64,
}

impl_json_struct!(DramStats {
    bursts,
    beats,
    row_hits,
    row_misses,
    refresh_cycles,
    output_stalls
});

#[derive(Debug)]
enum BurstState {
    Idle,
    /// Counting down first-access latency.
    Opening {
        req: pdr_axi::mm::ReadReq,
        remaining: u32,
    },
    /// Streaming beats.
    Serving {
        req: pdr_axi::mm::ReadReq,
        sent: u16,
    },
}

/// The DRAM controller component. Bind to the controller clock domain.
#[derive(Debug)]
pub struct DramController {
    name: String,
    config: DramConfig,
    backing: Backing,
    ports: SlaveEndpoints,
    state: BurstState,
    /// Open row per bank (`None` = precharged).
    open_rows: Vec<Option<u64>>,
    /// Cycles until the next refresh.
    refresh_in: u32,
    /// Remaining refresh busy cycles (0 = not refreshing).
    refreshing: u32,
    /// Domain cycle up to which refresh state is synchronised (event
    /// skipping).
    last_cycle: u64,
    stats: DramStats,
}

impl DramController {
    /// Creates a controller serving `ports` from `backing`.
    pub fn new(name: &str, config: DramConfig, backing: Backing, ports: SlaveEndpoints) -> Self {
        DramController {
            name: name.to_string(),
            refresh_in: config.refresh_interval_cycles,
            open_rows: vec![None; config.banks as usize],
            config,
            backing,
            ports,
            state: BurstState::Idle,
            refreshing: 0,
            last_cycle: 0,
            stats: DramStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The backing store handle.
    pub fn backing(&self) -> &Backing {
        &self.backing
    }
}

impl Component for DramController {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_clock_edge(&mut self, ctx: &mut EdgeCtx<'_>) {
        let cycle = ctx.cycle();
        self.catch_up(cycle - 1);
        self.last_cycle = cycle;
        // Refresh bookkeeping runs unconditionally.
        if self.refreshing > 0 {
            self.refreshing -= 1;
            self.stats.refresh_cycles += 1;
            return;
        }
        if self.refresh_in == 0 {
            self.refreshing = self.config.refresh_cycles;
            self.refresh_in = self.config.refresh_interval_cycles;
            // Refresh closes every row buffer.
            self.open_rows.iter_mut().for_each(|r| *r = None);
            return;
        }
        self.refresh_in -= 1;

        match &mut self.state {
            BurstState::Idle => {
                if let Some(req) = self.ports.req.pop() {
                    self.stats.bursts += 1;
                    let (bank, row) = self.config.decode(req.addr);
                    let hit = self.open_rows[bank as usize] == Some(row);
                    if hit {
                        self.stats.row_hits += 1;
                    } else {
                        self.stats.row_misses += 1;
                        self.open_rows[bank as usize] = Some(row);
                    }
                    let remaining = if hit {
                        self.config.row_hit_cycles
                    } else {
                        self.config.row_miss_cycles
                    };
                    self.state = BurstState::Opening { req, remaining };
                }
            }
            BurstState::Opening { req, remaining } => {
                if *remaining == 0 {
                    self.state = BurstState::Serving { req: *req, sent: 0 };
                    // Fall through next cycle; keeping one cycle here models
                    // the CAS-to-first-beat handoff.
                } else {
                    *remaining -= 1;
                }
            }
            BurstState::Serving { req, sent } => {
                if !self.ports.beats.can_push() {
                    self.stats.output_stalls += 1;
                    return;
                }
                let addr = req.addr + *sent as u64 * 8;
                let last = *sent + 1 == req.beats;
                self.ports
                    .beats
                    .try_push(ReadBeat {
                        id: req.id,
                        data: self.backing.read_u64(addr),
                        last,
                    })
                    .expect("checked can_push");
                self.stats.beats += 1;
                if last {
                    self.state = BurstState::Idle;
                } else {
                    *sent += 1;
                }
            }
        }
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        // Any in-flight burst or queued request needs edge-by-edge service;
        // an idle controller only cycles its refresh counters, which
        // catch_up folds in closed form.
        if !matches!(self.state, BurstState::Idle) || !self.ports.req.is_empty() {
            NextWake::EveryCycle
        } else {
            NextWake::Idle
        }
    }

    fn catch_up(&mut self, cycle: u64) {
        // Replay `cycle - last_cycle` idle edges of the refresh state
        // machine in closed form. Only legal because every folded edge had
        // `state == Idle` and an empty request queue (next_wake contract),
        // so the burst arm of on_clock_edge was unreachable.
        let mut k = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = cycle;
        while k > 0 {
            if self.refreshing > 0 {
                let d = (self.refreshing as u64).min(k);
                self.refreshing -= d as u32;
                self.stats.refresh_cycles += d;
                k -= d;
            } else if self.refresh_in == 0 {
                self.refreshing = self.config.refresh_cycles;
                self.refresh_in = self.config.refresh_interval_cycles;
                self.open_rows.iter_mut().for_each(|r| *r = None);
                k -= 1;
            } else {
                let d = (self.refresh_in as u64).min(k);
                self.refresh_in -= d as u32;
                k -= d;
            }
        }
    }

    fn snapshot_state(&self) -> Json {
        // The backing store is shared with software and serialised once at
        // system level, not per controller.
        let state = match &self.state {
            BurstState::Idle => Json::Obj(vec![("kind".to_string(), Json::Str("idle".into()))]),
            BurstState::Opening { req, remaining } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("opening".into())),
                ("req".to_string(), req.to_json()),
                ("remaining".to_string(), remaining.to_json()),
            ]),
            BurstState::Serving { req, sent } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("serving".into())),
                ("req".to_string(), req.to_json()),
                ("sent".to_string(), sent.to_json()),
            ]),
        };
        Json::Obj(vec![
            ("state".to_string(), state),
            ("open_rows".to_string(), self.open_rows.to_json()),
            ("refresh_in".to_string(), self.refresh_in.to_json()),
            ("refreshing".to_string(), self.refreshing.to_json()),
            ("last_cycle".to_string(), self.last_cycle.to_json()),
            ("stats".to_string(), self.stats.to_json()),
            ("req_in".to_string(), self.ports.req.fifo().snapshot_json()),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        let sv = state.get("state").unwrap_or(&Json::Null);
        let kind = sv
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError {
                msg: "dram snapshot missing burst state".to_string(),
            })?;
        self.state = match kind {
            "idle" => BurstState::Idle,
            "opening" => BurstState::Opening {
                req: ReadReq::from_json(sv.get("req").unwrap_or(&Json::Null))?,
                remaining: u32::from_json(sv.get("remaining").unwrap_or(&Json::Null))?,
            },
            "serving" => BurstState::Serving {
                req: ReadReq::from_json(sv.get("req").unwrap_or(&Json::Null))?,
                sent: u16::from_json(sv.get("sent").unwrap_or(&Json::Null))?,
            },
            other => {
                return Err(JsonError {
                    msg: format!("unknown dram burst state '{other}'"),
                })
            }
        };
        let open_rows =
            Vec::<Option<u64>>::from_json(state.get("open_rows").unwrap_or(&Json::Null))?;
        if open_rows.len() != self.open_rows.len() {
            return Err(JsonError {
                msg: format!(
                    "dram snapshot has {} banks, controller has {}",
                    open_rows.len(),
                    self.open_rows.len()
                ),
            });
        }
        self.open_rows = open_rows;
        self.refresh_in = u32::from_json(state.get("refresh_in").unwrap_or(&Json::Null))?;
        self.refreshing = u32::from_json(state.get("refreshing").unwrap_or(&Json::Null))?;
        self.last_cycle = u64::from_json(state.get("last_cycle").unwrap_or(&Json::Null))?;
        self.stats = DramStats::from_json(state.get("stats").unwrap_or(&Json::Null))?;
        self.ports
            .req
            .fifo()
            .restore_json(state.get("req_in").unwrap_or(&Json::Null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_axi::interconnect::ReadInterconnect;
    use pdr_axi::mm::ReadReq;
    use pdr_sim_core::{Engine, Frequency, SimDuration, SimTime};

    struct Rig {
        e: Engine,
        m: pdr_axi::interconnect::MasterEndpoints,
        id: u8,
        backing: Backing,
        dram_id: pdr_sim_core::ComponentId,
    }

    fn harness(config: DramConfig) -> Rig {
        let mut e = Engine::new();
        let axi_clk = e.add_clock_domain("axi", Frequency::from_mhz(100));
        let dram_clk = e.add_clock_domain("dram", Frequency::from_mhz(533));
        let (mut ic, slave) = ReadInterconnect::new("ic", 4, 16);
        let (id, m) = ic.add_master(64);
        let backing = Backing::new(1 << 20);
        let dram_id = e.add_component(
            DramController::new("dram", config, backing.clone(), slave),
            Some(dram_clk),
        );
        e.add_component(ic, Some(axi_clk));
        Rig {
            e,
            m,
            id,
            backing,
            dram_id,
        }
    }

    #[test]
    fn serves_correct_data_in_order() {
        let Rig {
            mut e,
            m,
            id,
            backing,
            ..
        } = harness(DramConfig::ddr3_533());
        for i in 0..64u64 {
            backing.write(0x100 + i * 8, &(i * 3).to_le_bytes());
        }
        m.req.try_push(ReadReq::new(id, 0x100, 64)).unwrap();
        e.run_for(SimDuration::from_micros(2));
        let beats: Vec<ReadBeat> = std::iter::from_fn(|| m.beats.pop()).collect();
        assert_eq!(beats.len(), 64);
        for (i, b) in beats.iter().enumerate() {
            assert_eq!(b.data, i as u64 * 3);
            assert_eq!(b.last, i == 63);
        }
    }

    #[test]
    fn sustained_bandwidth_is_interconnect_bound_near_800mbs() {
        // Saturate with back-to-back 64-beat bursts for 100 us and measure
        // the delivered byte rate: it must sit between 770 and 800 MB/s
        // (800 MB/s ceiling minus refresh and re-arbitration losses).
        let Rig { mut e, m, id, .. } = harness(DramConfig::ddr3_533());
        let mut delivered: u64 = 0;
        let mut next_addr = 0u64;
        let deadline = SimTime::ZERO + SimDuration::from_micros(100);
        while e.now() < deadline {
            while m.req.can_push() {
                m.req.try_push(ReadReq::new(id, next_addr, 64)).unwrap();
                next_addr = (next_addr + 512) % (1 << 19);
            }
            e.run_for(SimDuration::from_nanos(500));
            while m.beats.pop().is_some() {
                delivered += 8;
            }
        }
        let mb_s = delivered as f64 / 100e-6 / 1e6;
        assert!(
            (730.0..=800.0).contains(&mb_s),
            "sustained rate {mb_s:.1} MB/s out of expected window"
        );
    }

    #[test]
    fn refresh_steals_cycles() {
        let Rig { mut e, m, id, .. } = harness(DramConfig {
            row_hit_cycles: 2,
            row_miss_cycles: 4,
            refresh_interval_cycles: 50,
            refresh_cycles: 25, // exaggerated refresh for visibility
            ..DramConfig::ddr3_533()
        });
        m.req.try_push(ReadReq::new(id, 0, 64)).unwrap();
        e.run_for(SimDuration::from_micros(2));
        // With 1/3 of cycles refreshing, the burst still completes.
        let beats: Vec<ReadBeat> = std::iter::from_fn(|| m.beats.pop()).collect();
        assert_eq!(beats.len(), 64);
    }

    #[test]
    fn sequential_streams_mostly_hit_the_row_buffer() {
        let Rig {
            mut e,
            m,
            id,
            dram_id,
            ..
        } = harness(DramConfig::ddr3_533());
        // Stream 64 kB sequentially in 512 B bursts: 128 bursts over 8 rows
        // (8 kB each) → 8 misses, 120 hits.
        let mut addr = 0u64;
        let mut received = 0u64;
        while received < 128 * 64 {
            while m.req.can_push() && addr < 64 * 1024 {
                m.req.try_push(ReadReq::new(id, addr, 64)).unwrap();
                addr += 512;
            }
            e.run_for(SimDuration::from_micros(1));
            while m.beats.pop().is_some() {
                received += 1;
            }
        }
        // Find the controller (registered first in the harness).
        let stats = e.component::<DramController>(dram_id).stats();
        assert_eq!(stats.row_hits + stats.row_misses, 128, "{stats:?}");
        // 8 compulsory misses (one per 8 kB row) plus one re-open per
        // refresh that interrupted the stream (refresh closes all rows).
        let refreshes = stats.refresh_cycles / 85;
        assert!(
            stats.row_misses >= 8 && stats.row_misses <= 8 + refreshes,
            "{stats:?}"
        );
        assert!(stats.row_hits >= 100, "{stats:?}");
    }

    #[test]
    fn random_access_pays_row_misses() {
        let Rig {
            mut e,
            m,
            id,
            dram_id,
            ..
        } = harness(DramConfig::ddr3_533());
        // Jump across rows of the same bank: every burst misses.
        let stride = 8 * 1024 * 8; // row_bytes × banks → same bank, new row
        for i in 0..4u64 {
            m.req.try_push(ReadReq::new(id, i * stride, 4)).unwrap();
        }
        e.run_for(SimDuration::from_micros(2));
        let stats = e.component::<DramController>(dram_id).stats();
        assert_eq!(stats.row_misses, 4, "{stats:?}");
        assert_eq!(stats.row_hits, 0);
    }

    #[test]
    fn out_of_range_reads_deliver_zeros_not_hangs() {
        let Rig {
            mut e,
            m,
            id,
            backing,
            ..
        } = harness(DramConfig::ddr3_533());
        m.req
            .try_push(ReadReq::new(id, backing.len() as u64 + 64, 4))
            .unwrap();
        e.run_for(SimDuration::from_micros(1));
        let beats: Vec<ReadBeat> = std::iter::from_fn(|| m.beats.pop()).collect();
        assert_eq!(beats.len(), 4);
        assert!(beats.iter().all(|b| b.data == 0));
        assert!(backing.oob_accesses() >= 4);
    }
}
