//! # pdr-mem
//!
//! Memory-subsystem models:
//!
//! * [`backing`] — shared byte storage (the software-visible address space);
//! * [`dram`] — a DDR3-like controller serving AXI read bursts with
//!   first-access latency and periodic refresh stalls; together with the
//!   100 MHz / 64-bit interconnect this produces the ~790 MB/s sustained
//!   ceiling behind the paper's throughput plateau;
//! * [`sram`] — the Cypress CY7C2263KV18-like QDR-II+ staging SRAM of the
//!   paper's proposed Sec. VI architecture, whose read port sustains
//!   `550 MHz · 36 bit / 2 = 1237.5 MB/s`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod dram;
pub mod sram;

pub use backing::Backing;
pub use dram::{DramConfig, DramController};
pub use sram::{QdrSram, SramConfig, SramPorts, SramReadCmd};
