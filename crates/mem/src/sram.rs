//! The QDR-II+ staging SRAM of the proposed Sec. VI architecture.
//!
//! The paper selects a Cypress CY7C2263KV18: independent read and write
//! ports, both DDR at 550 MHz, 36-bit words, 0.45 ns read access. Its
//! bitstream-delivery rate is the paper's headline bound for the redesigned
//! PR system:
//!
//! ```text
//! throughput = 550 MHz · 36 bit / 2 = 1237.5 MB/s
//! ```
//!
//! The read port is modelled as a clocked streamer emitting one 32-bit data
//! word per cycle of a 309.375 MHz domain (= 1237.5 MB/s of payload; the 4
//! parity bits of each 36-bit word carry no payload). Because the QDR ports
//! are independent, pre-loading the *next* bitstream through the write port
//! proceeds concurrently with reads — which is exactly the property the
//! PS Scheduler exploits.

use pdr_axi::width::Word32;
use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};
use pdr_sim_core::{
    fifo_channel, impl_json_struct, Component, Consumer, EdgeCtx, Frequency, NextWake, Producer,
    SimDuration,
};

use crate::backing::Backing;

/// SRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Capacity in bytes.
    pub capacity: usize,
    /// Read-port payload word rate (one 32-bit word per cycle at this
    /// frequency).
    pub read_word_rate: Frequency,
    /// Write-port payload bandwidth in bytes/second.
    pub write_bw_bytes_per_s: u64,
}

impl SramConfig {
    /// The CY7C2263KV18 data-sheet point: 72 Mbit (9 MB), 1237.5 MB/s on
    /// each port.
    pub fn cy7c2263kv18() -> Self {
        SramConfig {
            capacity: 9 * 1024 * 1024,
            read_word_rate: Frequency::from_hz(309_375_000),
            write_bw_bytes_per_s: 1_237_500_000,
        }
    }
}

/// A range-read command for the SRAM read port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramReadCmd {
    /// Byte address of the first word.
    pub addr: u64,
    /// Number of 32-bit words to stream.
    pub words: u32,
}

impl_json_struct!(SramReadCmd { addr, words });

/// Counters describing SRAM activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SramStats {
    /// Read commands executed.
    pub commands: u64,
    /// Words streamed out.
    pub words: u64,
    /// Cycles the output FIFO back-pressured the port.
    pub output_stalls: u64,
    /// Bytes pre-loaded through the write port.
    pub preloaded_bytes: u64,
}

impl_json_struct!(SramStats {
    commands,
    words,
    output_stalls,
    preloaded_bytes
});

/// The QDR SRAM: backing storage plus a streaming read port.
///
/// Bind the component to a clock domain running at
/// [`SramConfig::read_word_rate`].
#[derive(Debug)]
pub struct QdrSram {
    name: String,
    config: SramConfig,
    backing: Backing,
    cmd_in: Consumer<SramReadCmd>,
    data_out: Producer<Word32>,
    /// Remaining words of the in-flight command and its cursor.
    current: Option<(u64, u32)>,
    stats: SramStats,
}

/// Endpoints for the SRAM's user (the PR controller).
#[derive(Debug)]
pub struct SramPorts {
    /// Where read commands are pushed.
    pub cmd: Producer<SramReadCmd>,
    /// Where streamed words are popped.
    pub data: Consumer<Word32>,
}

impl QdrSram {
    /// Creates the SRAM and its user-side ports. `data_depth` sizes the
    /// output FIFO.
    pub fn new(name: &str, config: SramConfig) -> (Self, SramPorts) {
        let (cmd_tx, cmd_rx) = fifo_channel(&format!("{name}.cmd"), 4);
        let (data_tx, data_rx) = fifo_channel(&format!("{name}.data"), 64);
        (
            QdrSram {
                name: name.to_string(),
                backing: Backing::new(config.capacity),
                config,
                cmd_in: cmd_rx,
                data_out: data_tx,
                current: None,
                stats: SramStats::default(),
            },
            SramPorts {
                cmd: cmd_tx,
                data: data_rx,
            },
        )
    }

    /// The SRAM configuration.
    pub fn config(&self) -> SramConfig {
        self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// True when no command is in flight and none is queued.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.cmd_in.is_empty()
    }

    /// Pre-loads `data` at `addr` through the write port, returning the time
    /// the transfer occupies on that port. Because the QDR write port is
    /// independent of the read port, the caller overlaps this duration with
    /// whatever else is running — the PS Scheduler's whole trick.
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds the SRAM capacity.
    pub fn preload(&mut self, addr: u64, data: &[u8]) -> SimDuration {
        self.backing.write(addr, data);
        self.stats.preloaded_bytes += data.len() as u64;
        SimDuration::from_secs_f64(data.len() as f64 / self.config.write_bw_bytes_per_s as f64)
    }
}

impl Component for QdrSram {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_clock_edge(&mut self, _ctx: &mut EdgeCtx<'_>) {
        if self.current.is_none() {
            if let Some(cmd) = self.cmd_in.pop() {
                self.stats.commands += 1;
                if cmd.words > 0 {
                    self.current = Some((cmd.addr, cmd.words));
                }
                // Command decode consumes this cycle (the 0.45 ns access
                // falls inside the first data cycle).
                return;
            }
            return;
        }
        if !self.data_out.can_push() {
            self.stats.output_stalls += 1;
            return;
        }
        let (addr, remaining) = self.current.expect("checked above");
        let word = self.backing.read_u32(addr);
        let last = remaining == 1;
        self.data_out
            .try_push(Word32 { data: word, last })
            .expect("checked can_push");
        self.stats.words += 1;
        self.current = if last {
            None
        } else {
            Some((addr + 4, remaining - 1))
        };
    }

    fn next_wake(&self, _now_cycle: u64) -> NextWake {
        // No command in flight and none queued: the edge pops nothing and
        // returns — a pure no-op until a master pushes a command.
        if self.is_idle() {
            NextWake::Idle
        } else {
            NextWake::EveryCycle
        }
    }

    fn snapshot_state(&self) -> Json {
        // The SRAM owns its backing (created in `new`), so it serialises the
        // contents itself, unlike DRAM whose backing is shared system state.
        let current = match self.current {
            None => Json::Null,
            Some((addr, remaining)) => Json::Obj(vec![
                ("addr".to_string(), addr.to_json()),
                ("remaining".to_string(), remaining.to_json()),
            ]),
        };
        Json::Obj(vec![
            ("current".to_string(), current),
            ("stats".to_string(), self.stats.to_json()),
            ("backing".to_string(), self.backing.snapshot_json()),
            ("cmd_in".to_string(), self.cmd_in.fifo().snapshot_json()),
        ])
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        self.current = match state.get("current") {
            None | Some(Json::Null) => None,
            Some(v) => Some((
                u64::from_json(v.get("addr").unwrap_or(&Json::Null))?,
                u32::from_json(v.get("remaining").unwrap_or(&Json::Null))?,
            )),
        };
        self.stats = SramStats::from_json(state.get("stats").unwrap_or(&Json::Null))?;
        self.backing
            .restore_json(state.get("backing").unwrap_or(&Json::Null))?;
        self.cmd_in
            .fifo()
            .restore_json(state.get("cmd_in").unwrap_or(&Json::Null))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_sim_core::{Engine, SimTime};

    fn harness() -> (Engine, SramPorts, pdr_sim_core::ComponentId) {
        let mut e = Engine::new();
        let cfg = SramConfig::cy7c2263kv18();
        let clk = e.add_clock_domain("sram", cfg.read_word_rate);
        let (sram, ports) = QdrSram::new("sram", cfg);
        let id = e.add_component(sram, Some(clk));
        (e, ports, id)
    }

    #[test]
    fn streams_preloaded_words_in_order() {
        let (mut e, ports, id) = harness();
        {
            let sram = e.component_mut::<QdrSram>(id);
            let bytes: Vec<u8> = (0..64u32).flat_map(|w| w.to_le_bytes()).collect();
            let d = sram.preload(0x40, &bytes);
            assert!(d.as_nanos_f64() > 0.0);
        }
        ports
            .cmd
            .try_push(SramReadCmd {
                addr: 0x40,
                words: 64,
            })
            .unwrap();
        e.run_for(SimDuration::from_micros(1));
        let words: Vec<Word32> = std::iter::from_fn(|| ports.data.pop()).collect();
        assert_eq!(words.len(), 64);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.data, i as u32);
            assert_eq!(w.last, i == 63);
        }
    }

    #[test]
    fn read_port_rate_is_1237_mb_s() {
        let (mut e, ports, id) = harness();
        {
            let sram = e.component_mut::<QdrSram>(id);
            sram.preload(0, &vec![0xAA; 1 << 20]);
        }
        ports
            .cmd
            .try_push(SramReadCmd {
                addr: 0,
                words: 1 << 18,
            })
            .unwrap();
        // Drain continuously for 100 us and count payload bytes.
        let mut bytes = 0u64;
        let deadline = SimTime::ZERO + SimDuration::from_micros(100);
        while e.now() < deadline {
            e.run_for(SimDuration::from_nanos(200));
            while ports.data.pop().is_some() {
                bytes += 4;
            }
        }
        let mb_s = bytes as f64 / 100e-6 / 1e6;
        assert!(
            (1200.0..=1238.0).contains(&mb_s),
            "read port rate {mb_s:.1} MB/s"
        );
    }

    #[test]
    fn preload_duration_matches_write_bandwidth() {
        let (mut e, _ports, id) = harness();
        let sram = e.component_mut::<QdrSram>(id);
        let d = sram.preload(0, &vec![0; 1_237_500]); // 1 ms at 1237.5 MB/s
        assert!((d.as_secs_f64() - 1e-3).abs() < 1e-9, "{d}");
        assert_eq!(sram.stats().preloaded_bytes, 1_237_500);
    }

    #[test]
    fn queued_commands_execute_in_order() {
        let (mut e, ports, id) = harness();
        {
            let sram = e.component_mut::<QdrSram>(id);
            sram.preload(0, &[1, 0, 0, 0]);
            sram.preload(4, &[2, 0, 0, 0]);
        }
        ports
            .cmd
            .try_push(SramReadCmd { addr: 0, words: 1 })
            .unwrap();
        ports
            .cmd
            .try_push(SramReadCmd { addr: 4, words: 1 })
            .unwrap();
        e.run_for(SimDuration::from_micros(1));
        assert_eq!(ports.data.pop().map(|w| w.data), Some(1));
        assert_eq!(ports.data.pop().map(|w| w.data), Some(2));
        assert!(e.component::<QdrSram>(id).is_idle());
        assert_eq!(e.component::<QdrSram>(id).stats().commands, 2);
    }

    #[test]
    fn out_of_range_reads_stream_zeros() {
        let (mut e, ports, id) = harness();
        let cap = e.component::<QdrSram>(id).config().capacity as u64;
        ports
            .cmd
            .try_push(SramReadCmd {
                addr: cap - 4,
                words: 3,
            })
            .unwrap();
        e.run_for(SimDuration::from_micros(1));
        let words: Vec<Word32> = std::iter::from_fn(|| ports.data.pop()).collect();
        assert_eq!(words.len(), 3);
        assert!(words.iter().all(|w| w.data == 0));
    }

    #[test]
    fn zero_word_command_is_a_noop() {
        let (mut e, ports, _id) = harness();
        ports
            .cmd
            .try_push(SramReadCmd { addr: 0, words: 0 })
            .unwrap();
        e.run_for(SimDuration::from_micros(1));
        assert!(ports.data.pop().is_none());
    }
}
