//! Shared byte storage behind memory controllers.

use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use pdr_sim_core::json::{FromJson, Json, JsonError, ToJson};

/// Page granule for sparse checkpoint serialisation. Backings are large
/// (16 MB DRAM) but mostly zero; only pages with set bits are recorded.
const SNAP_PAGE: usize = 4096;

#[derive(Debug)]
struct Inner {
    bytes: Vec<u8>,
    oob_accesses: u64,
}

/// A shared, bounds-checked byte store. The processor model writes
/// bitstreams into it; controllers serve reads from it. Cloning yields
/// another handle to the same storage.
#[derive(Clone)]
pub struct Backing {
    inner: Rc<RefCell<Inner>>,
}

impl Backing {
    /// Allocates `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        Backing {
            inner: Rc::new(RefCell::new(Inner {
                bytes: vec![0; size],
                oob_accesses: 0,
            })),
        }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.inner.borrow().bytes.len()
    }

    /// True for a zero-capacity store.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `data` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the write runs past the end of the store — software writing
    /// out of bounds is a scenario bug, unlike hardware reads which must
    /// degrade gracefully.
    pub fn write(&self, addr: u64, data: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        let start = addr as usize;
        let end = start
            .checked_add(data.len())
            .expect("address arithmetic overflow");
        assert!(
            end <= inner.bytes.len(),
            "write [{start}, {end}) outside backing of {} bytes",
            inner.bytes.len()
        );
        inner.bytes[start..end].copy_from_slice(data);
    }

    /// Reads the 64-bit little-endian word at `addr`. Out-of-range reads
    /// return zero and are counted (hardware reading a bad address returns
    /// bus garbage rather than halting the system).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let start = addr as usize;
        if start + 8 > inner.bytes.len() {
            inner.oob_accesses += 1;
            return 0;
        }
        u64::from_le_bytes(inner.bytes[start..start + 8].try_into().expect("8 bytes"))
    }

    /// Reads the 32-bit little-endian word at `addr` (zero out of range).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut inner = self.inner.borrow_mut();
        let start = addr as usize;
        if start + 4 > inner.bytes.len() {
            inner.oob_accesses += 1;
            return 0;
        }
        u32::from_le_bytes(inner.bytes[start..start + 4].try_into().expect("4 bytes"))
    }

    /// Copies out `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_slice(&self, addr: u64, len: usize) -> Vec<u8> {
        let inner = self.inner.borrow();
        let start = addr as usize;
        assert!(start + len <= inner.bytes.len(), "read outside backing");
        inner.bytes[start..start + len].to_vec()
    }

    /// Count of out-of-range hardware reads observed.
    pub fn oob_accesses(&self) -> u64 {
        self.inner.borrow().oob_accesses
    }

    /// Serialises the store for a checkpoint: capacity, counters, and only
    /// the 4 KB pages holding non-zero bytes (hex-encoded), so a mostly
    /// empty 16 MB DRAM costs a few KB instead of 32 MB of JSON.
    pub fn snapshot_json(&self) -> Json {
        let inner = self.inner.borrow();
        let mut pages = Vec::new();
        for (idx, chunk) in inner.bytes.chunks(SNAP_PAGE).enumerate() {
            if chunk.iter().any(|&b| b != 0) {
                let mut hex = String::with_capacity(chunk.len() * 2);
                for b in chunk {
                    write!(hex, "{b:02x}").expect("writing to String cannot fail");
                }
                pages.push(Json::Obj(vec![
                    ("page".to_string(), (idx as u64).to_json()),
                    ("hex".to_string(), Json::Str(hex)),
                ]));
            }
        }
        Json::Obj(vec![
            ("len".to_string(), inner.bytes.len().to_json()),
            ("oob_accesses".to_string(), inner.oob_accesses.to_json()),
            ("pages".to_string(), Json::Arr(pages)),
        ])
    }

    /// Restores contents captured by [`Backing::snapshot_json`] into a store
    /// of the same capacity, zeroing everything first.
    pub fn restore_json(&self, v: &Json) -> Result<(), JsonError> {
        let err = |msg: String| JsonError { msg };
        let len = usize::from_json(v.get("len").unwrap_or(&Json::Null))?;
        let oob = u64::from_json(v.get("oob_accesses").unwrap_or(&Json::Null))?;
        let pages = v
            .get("pages")
            .and_then(Json::as_array)
            .ok_or_else(|| err("backing snapshot missing pages".to_string()))?;
        let mut inner = self.inner.borrow_mut();
        if len != inner.bytes.len() {
            return Err(err(format!(
                "backing snapshot is {len} bytes, store is {}",
                inner.bytes.len()
            )));
        }
        inner.bytes.fill(0);
        for page in pages {
            let idx = usize::from_json(page.get("page").unwrap_or(&Json::Null))?;
            let hex = page
                .get("hex")
                .and_then(Json::as_str)
                .ok_or_else(|| err("backing page missing hex".to_string()))?;
            let start = idx * SNAP_PAGE;
            if hex.len() % 2 != 0 || start + hex.len() / 2 > inner.bytes.len() {
                return Err(err(format!("backing page {idx} out of range")));
            }
            for (i, pair) in hex.as_bytes().chunks(2).enumerate() {
                let s = core::str::from_utf8(pair).map_err(|_| err("bad hex".to_string()))?;
                inner.bytes[start + i] =
                    u8::from_str_radix(s, 16).map_err(|_| err(format!("bad hex byte '{s}'")))?;
            }
        }
        inner.oob_accesses = oob;
        Ok(())
    }
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backing")
            .field("len", &self.len())
            .field("oob_accesses", &self.oob_accesses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let b = Backing::new(64);
        b.write(8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.read_u64(8), 0x0807_0605_0403_0201);
        assert_eq!(b.read_u32(8), 0x0403_0201);
        assert_eq!(b.read_slice(8, 2), vec![1, 2]);
    }

    #[test]
    fn oob_read_returns_zero_and_counts() {
        let b = Backing::new(16);
        assert_eq!(b.read_u64(12), 0);
        assert_eq!(b.read_u32(14), 0);
        assert_eq!(b.oob_accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "outside backing")]
    fn oob_write_panics() {
        let b = Backing::new(4);
        b.write(2, &[0; 4]);
    }

    #[test]
    fn handles_share_storage() {
        let a = Backing::new(8);
        let b = a.clone();
        a.write(0, &[9; 8]);
        assert_eq!(b.read_u64(0), u64::from_le_bytes([9; 8]));
    }
}
