//! Die thermal state and the XADC-like temperature sensor.
//!
//! The paper heats the Zynq with a heat gun aimed at its heat sink and reads
//! the die temperature from the built-in sensor on the OLED panel. We model
//! the die as a first-order thermal RC node:
//!
//! ```text
//! dT/dt = (T_env + R_th · P − T) / τ
//! ```
//!
//! where `T_env` is the effective environment temperature at the heat sink
//! (room air, or the heat-gun plume), `R_th` the junction-to-ambient thermal
//! resistance and `P` the dissipated power. Experiments that sweep
//! temperature set points use [`DieThermal::force_die_temp`], exactly as the
//! paper waits for the sensor to settle at each 10 °C step.

use pdr_sim_core::{SimDuration, Xoshiro256StarStar};

/// First-order thermal model of the die.
#[derive(Debug, Clone, PartialEq)]
pub struct DieThermal {
    env_c: f64,
    die_c: f64,
    r_th_c_per_w: f64,
    tau: SimDuration,
}

impl DieThermal {
    /// ZedBoard-like defaults: 25 °C room, ~8 °C/W junction-to-ambient with
    /// the stock heat sink, ~20 s thermal time constant.
    pub fn zedboard(initial_die_c: f64) -> Self {
        DieThermal {
            env_c: 25.0,
            die_c: initial_die_c,
            r_th_c_per_w: 8.0,
            tau: SimDuration::from_secs(20),
        }
    }

    /// Current die temperature in °C.
    pub fn die_temp_c(&self) -> f64 {
        self.die_c
    }

    /// Current environment (heat-sink air) temperature in °C.
    pub fn env_temp_c(&self) -> f64 {
        self.env_c
    }

    /// Points a heat gun at the heat sink: sets the effective environment
    /// temperature (use ~25 °C to remove it).
    pub fn set_env_temp(&mut self, env_c: f64) {
        self.env_c = env_c;
    }

    /// Forces the die to a temperature (the "wait until the sensor reads X"
    /// step of the paper's protocol).
    pub fn force_die_temp(&mut self, die_c: f64) {
        self.die_c = die_c;
    }

    /// Advances the thermal state by `dt` while dissipating `power_w`.
    pub fn step(&mut self, dt: SimDuration, power_w: f64) {
        let target = self.env_c + self.r_th_c_per_w * power_w;
        let alpha = 1.0 - (-dt.as_secs_f64() / self.tau.as_secs_f64()).exp();
        self.die_c += (target - self.die_c) * alpha;
    }

    /// The temperature the die would settle at while dissipating `power_w`.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.env_c + self.r_th_c_per_w * power_w
    }
}

/// An XADC-like on-die temperature sensor: quantised read-out with a small
/// Gaussian noise term (deterministic via the caller's seeded RNG).
#[derive(Debug, Clone, PartialEq)]
pub struct XadcSensor {
    quantisation_c: f64,
    noise_sigma_c: f64,
}

impl Default for XadcSensor {
    fn default() -> Self {
        Self::new()
    }
}

impl XadcSensor {
    /// XADC-like defaults: 0.25 °C quantisation, 0.2 °C rms noise.
    pub fn new() -> Self {
        XadcSensor {
            quantisation_c: 0.25,
            noise_sigma_c: 0.2,
        }
    }

    /// A noiseless, quantisation-only sensor (for deterministic tests).
    pub fn ideal() -> Self {
        XadcSensor {
            quantisation_c: 0.25,
            noise_sigma_c: 0.0,
        }
    }

    /// One sensor conversion of the true temperature `die_c`.
    pub fn read(&self, die_c: f64, rng: &mut Xoshiro256StarStar) -> f64 {
        let noisy = die_c + self.noise_sigma_c * rng.next_gaussian();
        (noisy / self.quantisation_c).round() * self.quantisation_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_towards_steady_state() {
        let mut t = DieThermal::zedboard(25.0);
        // 2.2 W board idle → steady state 25 + 8·2.2 = 42.6 °C.
        assert!((t.steady_state_c(2.2) - 42.6).abs() < 1e-9);
        for _ in 0..20 {
            t.step(SimDuration::from_secs(20), 2.2);
        }
        assert!(
            (t.die_temp_c() - 42.6).abs() < 0.1,
            "die={}",
            t.die_temp_c()
        );
    }

    #[test]
    fn heat_gun_raises_die_temperature() {
        let mut t = DieThermal::zedboard(40.0);
        t.set_env_temp(90.0);
        for _ in 0..30 {
            t.step(SimDuration::from_secs(10), 2.2);
        }
        assert!(t.die_temp_c() > 95.0, "die={}", t.die_temp_c());
    }

    #[test]
    fn force_die_temp_is_immediate() {
        let mut t = DieThermal::zedboard(40.0);
        t.force_die_temp(100.0);
        assert_eq!(t.die_temp_c(), 100.0);
    }

    #[test]
    fn zero_dt_step_is_identity() {
        let mut t = DieThermal::zedboard(55.0);
        t.step(SimDuration::ZERO, 3.0);
        assert_eq!(t.die_temp_c(), 55.0);
    }

    #[test]
    fn ideal_sensor_quantises_only() {
        let s = XadcSensor::ideal();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert_eq!(s.read(40.10, &mut rng), 40.0);
        assert_eq!(s.read(40.13, &mut rng), 40.25);
    }

    #[test]
    fn noisy_sensor_stays_close_to_truth() {
        let s = XadcSensor::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mean: f64 = (0..1000).map(|_| s.read(60.0, &mut rng)).sum::<f64>() / 1000.0;
        assert!((mean - 60.0).abs() < 0.1, "mean={mean}");
    }
}
