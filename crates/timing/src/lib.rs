//! # pdr-timing
//!
//! The over-clocking timing model: why the paper's system works at 280 MHz,
//! loses its completion interrupt at 310 MHz, corrupts data at 320 MHz, and
//! fails at 310 MHz when the die is heated to 100 °C.
//!
//! Over-clocking a synchronous block beyond its specification eats into the
//! timing slack of its critical paths. Slack shrinks further as temperature
//! rises (carrier mobility degrades, so logic slows down). This crate models
//! each relevant path as a maximum safe frequency that decreases with die
//! temperature ([`CriticalPath`]), groups the paths of the paper's
//! DMA+ICAP+interrupt pipeline into an [`OverclockModel`] that assesses a
//! `(frequency, temperature)` operating point, and provides the die
//! [`thermal`] state machine plus an XADC-like sensor.
//!
//! ## Calibration (reproduces the paper's observations)
//!
//! | Observation (paper) | Model consequence |
//! |---|---|
//! | Works to 280 MHz at 40–100 °C | both paths safe at ≤ 280 MHz up to 100 °C |
//! | 310 MHz: "no interrupt", CRC valid (40–90 °C) | interrupt path f_max ≈ 305 MHz; data path f_max(40 °C) ≈ 318 MHz |
//! | 310 MHz fails at 100 °C | data path f_max(100 °C) < 310 MHz (quadratic derating) |
//! | ≥ 320 MHz: CRC not valid | data path violated at 40 °C |
//!
//! ```
//! use pdr_timing::{OverclockModel, Assessment};
//! use pdr_sim_core::Frequency;
//!
//! let model = OverclockModel::paper_calibration();
//! let a = model.assess(Frequency::from_mhz(310), 40.0);
//! assert!(a.data_ok && !a.interrupt_ok); // "no interrupt", CRC valid
//! let hot = model.assess(Frequency::from_mhz(310), 100.0);
//! assert!(!hot.data_ok); // the one failing cell of the stress matrix
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod path;
pub mod thermal;

pub use path::{voltage_derate_mhz, Assessment, CriticalPath, OverclockModel};
pub use thermal::{DieThermal, XadcSensor};
