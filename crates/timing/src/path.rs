//! Critical paths and the over-clock assessment model.

use pdr_sim_core::Frequency;

/// The signed timing-margin shift of running the fabric at `vdd_mv`
/// instead of the nominal 1000 mV supply, in MHz of derate (positive =
/// margin lost, negative = margin gained).
///
/// Undervolting slows every path sharply (≈3 MHz of f_max lost per mV —
/// the steep side of the shmoo); overvolting buys margin back at a
/// diminished ≈1 MHz/mV, the asymmetry that makes overdrive a poor
/// efficiency trade. At nominal voltage the shift is exactly `0.0`.
pub fn voltage_derate_mhz(vdd_mv: u32) -> f64 {
    let dv = vdd_mv as f64 - 1000.0;
    if dv < 0.0 {
        -dv * 3.0
    } else {
        -dv * 1.0
    }
}

/// A critical timing path characterised by its maximum safe clock frequency
/// as a function of die temperature:
///
/// ```text
/// f_max(T) = f_max(40 °C) − lin·(T − 40) − quad·(T − 40)²   [MHz]
/// ```
///
/// The quadratic term captures the super-linear slow-down of deeply
/// over-driven paths at high temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    name: &'static str,
    fmax_40c_mhz: f64,
    lin_mhz_per_c: f64,
    quad_mhz_per_c2: f64,
}

impl CriticalPath {
    /// Defines a path.
    ///
    /// # Panics
    ///
    /// Panics if `fmax_40c_mhz` is not strictly positive.
    pub fn new(
        name: &'static str,
        fmax_40c_mhz: f64,
        lin_mhz_per_c: f64,
        quad_mhz_per_c2: f64,
    ) -> Self {
        assert!(fmax_40c_mhz > 0.0, "f_max must be positive");
        CriticalPath {
            name,
            fmax_40c_mhz,
            lin_mhz_per_c,
            quad_mhz_per_c2,
        }
    }

    /// The path's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Maximum safe frequency at die temperature `temp_c`, in MHz.
    pub fn fmax_mhz(&self, temp_c: f64) -> f64 {
        let dt = temp_c - 40.0;
        (self.fmax_40c_mhz - self.lin_mhz_per_c * dt - self.quad_mhz_per_c2 * dt * dt).max(0.0)
    }

    /// True when running the path at `freq` and `temp_c` violates timing.
    pub fn violated(&self, freq: Frequency, temp_c: f64) -> bool {
        freq.as_mhz_f64() > self.fmax_mhz(temp_c)
    }

    /// Positive slack in MHz (how much faster the clock could go), negative
    /// when already violated.
    pub fn slack_mhz(&self, freq: Frequency, temp_c: f64) -> f64 {
        self.fmax_mhz(temp_c) - freq.as_mhz_f64()
    }
}

/// The outcome of assessing an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// The data path (DMA → width converter → ICAP write) meets timing; when
    /// false, transferred words are corrupted with probability
    /// [`Assessment::word_error_rate`].
    pub data_ok: bool,
    /// The completion-interrupt path meets timing; when false the done
    /// interrupt is never delivered (the paper's "no interrupt" rows).
    pub interrupt_ok: bool,
    /// Per-word corruption probability when `data_ok` is false (0 otherwise).
    pub word_error_rate: f64,
}

impl Assessment {
    /// True when the operating point is fully safe.
    pub fn all_ok(&self) -> bool {
        self.data_ok && self.interrupt_ok
    }
}

/// The set of critical paths in the paper's over-clocked reconfiguration
/// pipeline, with a calibration reproducing Table I and the Sec. IV-A
/// temperature-stress matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct OverclockModel {
    data_path: CriticalPath,
    interrupt_path: CriticalPath,
    /// Word-error-rate growth per MHz of overdrive beyond f_max.
    ber_per_mhz: f64,
    /// Floor word-error rate at the onset of violation.
    ber_floor: f64,
}

impl OverclockModel {
    /// Builds a model from explicit paths.
    pub fn new(data_path: CriticalPath, interrupt_path: CriticalPath) -> Self {
        OverclockModel {
            data_path,
            interrupt_path,
            ber_per_mhz: 2e-3,
            ber_floor: 1e-3,
        }
    }

    /// The calibration used throughout the reproduction (see crate docs):
    ///
    /// * data path: `f_max(T) = 318 − 0.0023·(T−40)²` MHz
    ///   → 318 at 40 °C, 312.25 at 90 °C, 309.7 at 100 °C;
    /// * interrupt path: `f_max(T) = 305 − 0.10·(T−40)` MHz
    ///   → 305 at 40 °C, 299 at 100 °C.
    pub fn paper_calibration() -> Self {
        OverclockModel::new(
            CriticalPath::new("dma-icap-data", 318.0, 0.0, 0.0023),
            CriticalPath::new("done-interrupt", 305.0, 0.10, 0.0),
        )
    }

    /// The data path.
    pub fn data_path(&self) -> &CriticalPath {
        &self.data_path
    }

    /// The interrupt path.
    pub fn interrupt_path(&self) -> &CriticalPath {
        &self.interrupt_path
    }

    /// Assesses an operating point.
    pub fn assess(&self, freq: Frequency, temp_c: f64) -> Assessment {
        self.assess_derated(freq, temp_c, 0.0)
    }

    /// Assesses an operating point with the failure envelope transiently
    /// degraded by `derate_mhz` on every path — the model for short-lived
    /// excursions (local die-temperature spikes, voltage droop) that shrink
    /// timing margins without moving the steady-state die temperature.
    ///
    /// # Panics
    ///
    /// Panics if `derate_mhz` is negative or non-finite.
    pub fn assess_derated(&self, freq: Frequency, temp_c: f64, derate_mhz: f64) -> Assessment {
        assert!(
            derate_mhz >= 0.0 && derate_mhz.is_finite(),
            "derate must be a finite non-negative MHz value: {derate_mhz}"
        );
        self.assess_biased(freq, temp_c, derate_mhz)
    }

    /// Assesses an operating point with a *signed* timing-margin bias:
    /// positive MHz shrink the envelope exactly like
    /// [`OverclockModel::assess_derated`]; negative MHz grow it — the
    /// supply-voltage axis ([`voltage_derate_mhz`]), where overvolting buys
    /// margin back. Transient excursions and the voltage shift sum into one
    /// bias before assessment.
    ///
    /// # Panics
    ///
    /// Panics if `bias_mhz` is non-finite.
    pub fn assess_biased(&self, freq: Frequency, temp_c: f64, bias_mhz: f64) -> Assessment {
        assert!(
            bias_mhz.is_finite(),
            "timing bias must be a finite MHz value: {bias_mhz}"
        );
        let data_ok = self.data_path.slack_mhz(freq, temp_c) >= bias_mhz;
        let interrupt_ok = self.interrupt_path.slack_mhz(freq, temp_c) >= bias_mhz;
        let word_error_rate = if data_ok {
            0.0
        } else {
            let overdrive = bias_mhz - self.data_path.slack_mhz(freq, temp_c);
            (self.ber_floor + self.ber_per_mhz * overdrive).min(0.5)
        };
        Assessment {
            data_ok,
            interrupt_ok,
            word_error_rate,
        }
    }

    /// The highest whole-MHz frequency at which everything meets timing at
    /// `temp_c` (the usable over-clocking headroom).
    pub fn max_safe_mhz(&self, temp_c: f64) -> u64 {
        self.data_path
            .fmax_mhz(temp_c)
            .min(self.interrupt_path.fmax_mhz(temp_c))
            .floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    #[test]
    fn table1_regimes_at_40c() {
        let m = OverclockModel::paper_calibration();
        // 100–280 MHz: fully operational.
        for f in [100, 140, 180, 200, 240, 280] {
            let a = m.assess(mhz(f), 40.0);
            assert!(a.all_ok(), "{f} MHz should be safe");
            assert_eq!(a.word_error_rate, 0.0);
        }
        // 310 MHz: interrupt lost, data still good (CRC valid).
        let a310 = m.assess(mhz(310), 40.0);
        assert!(a310.data_ok && !a310.interrupt_ok);
        // 320/360 MHz: data corrupted (CRC not valid) and no interrupt.
        for f in [320, 360] {
            let a = m.assess(mhz(f), 40.0);
            assert!(!a.data_ok && !a.interrupt_ok, "{f} MHz");
            assert!(a.word_error_rate > 0.0);
        }
    }

    #[test]
    fn stress_matrix_single_failure_cell() {
        let m = OverclockModel::paper_calibration();
        // Sec. IV-A: every Table I point ≤ 310 MHz passes CRC at 40–90 °C;
        // only (310 MHz, 100 °C) fails.
        for t in [40.0, 50.0, 60.0, 70.0, 80.0, 90.0] {
            assert!(
                m.assess(mhz(310), t).data_ok,
                "310 MHz at {t} °C must be CRC-valid"
            );
            for f in [100, 140, 180, 200, 240, 280] {
                assert!(m.assess(mhz(f), t).all_ok(), "{f} MHz at {t} °C");
            }
        }
        assert!(
            !m.assess(mhz(310), 100.0).data_ok,
            "310 MHz at 100 °C must fail"
        );
        // And the sub-310 rows still pass at 100 °C.
        for f in [100, 140, 180, 200, 240, 280] {
            assert!(m.assess(mhz(f), 100.0).all_ok(), "{f} MHz at 100 °C");
        }
    }

    #[test]
    fn fmax_decreases_with_temperature() {
        let m = OverclockModel::paper_calibration();
        let mut prev = f64::INFINITY;
        for t in [40.0, 60.0, 80.0, 100.0, 120.0] {
            let f = m.data_path().fmax_mhz(t);
            assert!(f <= prev, "f_max must be non-increasing in T");
            prev = f;
        }
    }

    #[test]
    fn word_error_rate_grows_with_overdrive() {
        let m = OverclockModel::paper_calibration();
        let a320 = m.assess(mhz(320), 40.0);
        let a360 = m.assess(mhz(360), 40.0);
        assert!(a360.word_error_rate > a320.word_error_rate);
        assert!(a360.word_error_rate <= 0.5);
    }

    #[test]
    fn max_safe_mhz_matches_weakest_path() {
        let m = OverclockModel::paper_calibration();
        assert_eq!(m.max_safe_mhz(40.0), 305);
        assert!(m.max_safe_mhz(100.0) <= 299);
    }

    #[test]
    fn slack_sign_convention() {
        let p = CriticalPath::new("p", 200.0, 0.0, 0.0);
        assert!(p.slack_mhz(mhz(150), 40.0) > 0.0);
        assert!(p.slack_mhz(mhz(250), 40.0) < 0.0);
        assert!(p.violated(mhz(250), 40.0));
        assert!(!p.violated(mhz(200), 40.0)); // boundary is safe
    }

    #[test]
    fn derating_shrinks_the_envelope() {
        let m = OverclockModel::paper_calibration();
        // 280 MHz at 40 °C is fully safe with 25 MHz of interrupt slack...
        assert!(m.assess(mhz(280), 40.0).all_ok());
        assert!(m.assess_derated(mhz(280), 40.0, 20.0).all_ok());
        // ...but a 50 MHz excursion pushes it past both paths.
        let hit = m.assess_derated(mhz(280), 40.0, 50.0);
        assert!(!hit.data_ok && !hit.interrupt_ok);
        assert!(hit.word_error_rate > 0.0);
        // A moderate excursion kills the interrupt path (305 − 280 = 25 MHz
        // slack) while the data path (318) still holds: the paper's lost
        // interrupt failure mode, transiently.
        let partial = m.assess_derated(mhz(280), 40.0, 30.0);
        assert!(partial.data_ok && !partial.interrupt_ok);
        assert_eq!(partial.word_error_rate, 0.0);
        // A zero derate is exactly the plain assessment.
        assert_eq!(
            m.assess_derated(mhz(310), 40.0, 0.0),
            m.assess(mhz(310), 40.0)
        );
    }

    #[test]
    fn derated_error_rate_grows_with_excursion_depth() {
        let m = OverclockModel::paper_calibration();
        let a = m.assess_derated(mhz(280), 40.0, 50.0);
        let b = m.assess_derated(mhz(280), 40.0, 90.0);
        assert!(b.word_error_rate > a.word_error_rate);
        assert!(b.word_error_rate <= 0.5);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_derate_is_rejected() {
        let m = OverclockModel::paper_calibration();
        let _ = m.assess_derated(mhz(200), 40.0, -1.0);
    }

    #[test]
    fn fmax_never_negative() {
        let p = CriticalPath::new("p", 10.0, 1.0, 0.0);
        assert_eq!(p.fmax_mhz(1000.0), 0.0);
    }

    #[test]
    fn voltage_derate_sign_convention() {
        assert_eq!(voltage_derate_mhz(1000), 0.0);
        // Undervolt: 50 mV costs 150 MHz of margin.
        assert_eq!(voltage_derate_mhz(950), 150.0);
        // Overvolt: 50 mV buys 50 MHz back (negative derate).
        assert_eq!(voltage_derate_mhz(1050), -50.0);
    }

    #[test]
    fn undervolting_shrinks_the_envelope_and_overvolting_grows_it() {
        let m = OverclockModel::paper_calibration();
        // At 950 mV, 200 MHz still fits (305 − 200 = 105 < 150? no: the
        // interrupt path has 105 MHz of slack, so the 150 MHz undervolt
        // penalty kills it) — 140 MHz is the highest paper point that holds.
        let uv = voltage_derate_mhz(950);
        assert!(m.assess_biased(mhz(140), 40.0, uv).all_ok());
        assert!(!m.assess_biased(mhz(200), 40.0, uv).all_ok());
        // At 1050 mV the negative bias rescues 310 MHz's lost interrupt.
        let ov = voltage_derate_mhz(1050);
        assert!(!m.assess(mhz(310), 40.0).interrupt_ok);
        assert!(m.assess_biased(mhz(310), 40.0, ov).all_ok());
        // Nominal bias is exactly the plain assessment.
        assert_eq!(
            m.assess_biased(mhz(310), 40.0, voltage_derate_mhz(1000)),
            m.assess(mhz(310), 40.0)
        );
    }

    #[test]
    #[should_panic(expected = "finite MHz")]
    fn non_finite_bias_is_rejected() {
        let m = OverclockModel::paper_calibration();
        let _ = m.assess_biased(mhz(200), 40.0, f64::NAN);
    }
}
