//! Device geometry: rows, columns and the FAR ↔ linear-frame mapping.

use pdr_bitstream::{BlockType, FrameAddress};

/// The resource type of a fabric column, which determines how many
/// configuration frames (minor addresses) the column holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// CLB / interconnect column: 36 frames.
    Clb,
    /// DSP column: 28 frames.
    Dsp,
    /// Block-RAM interconnect/configuration column: 30 frames.
    Bram,
    /// Clocking column: 8 frames.
    Clk,
    /// IO column: 42 frames.
    Io,
}

impl ColumnKind {
    /// Number of frames (minor addresses) in a column of this kind.
    pub const fn minors(self) -> u32 {
        match self {
            ColumnKind::Clb => 36,
            ColumnKind::Dsp => 28,
            ColumnKind::Bram => 30,
            ColumnKind::Clk => 8,
            ColumnKind::Io => 42,
        }
    }
}

/// A device's configuration geometry: `rows` identical clock rows, each with
/// the same left-to-right column layout.
///
/// Frames are linearised row-major: all frames of row 0 (column 0 minor 0,
/// minor 1, …, column 1 minor 0, …) then row 1, and so on. Only the `top = 0`
/// half and [`BlockType::Main`] are populated in this model; partial
/// bitstreams for CLB/DSP regions never touch BRAM-content block types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    rows: u32,
    columns: Vec<ColumnKind>,
    /// Cumulative frame offset of each column within a row (len = columns+1).
    col_offsets: Vec<u32>,
}

impl Geometry {
    /// Builds a geometry from an explicit column layout.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero, the layout is empty, or it exceeds the FAR
    /// field widths (32 rows / 1024 columns).
    pub fn new(rows: u32, columns: Vec<ColumnKind>) -> Self {
        assert!(rows > 0 && rows < 32, "row count out of range: {rows}");
        assert!(
            !columns.is_empty() && columns.len() < 1024,
            "column count out of range: {}",
            columns.len()
        );
        let mut col_offsets = Vec::with_capacity(columns.len() + 1);
        let mut acc = 0u32;
        for c in &columns {
            col_offsets.push(acc);
            acc += c.minors();
        }
        col_offsets.push(acc);
        Geometry {
            rows,
            columns,
            col_offsets,
        }
    }

    /// The ZedBoard Zynq-7020-like geometry: 4 rows × 73 columns
    /// (64 CLB + 8 DSP + 1 central clock column), 2536 frames per row,
    /// 10,144 frames ≈ 4.1 MB of configuration data — the right order of
    /// magnitude for a 7z020 full bitstream (~4 MB).
    pub fn zynq7020() -> Self {
        let mut columns = Vec::with_capacity(73);
        for i in 0..72 {
            columns.push(if i % 9 == 8 {
                ColumnKind::Dsp
            } else {
                ColumnKind::Clb
            });
        }
        columns.insert(36, ColumnKind::Clk);
        Geometry::new(4, columns)
    }

    /// Number of clock rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The column layout of one row.
    pub fn columns(&self) -> &[ColumnKind] {
        &self.columns
    }

    /// Frames in one row.
    pub fn frames_per_row(&self) -> u32 {
        *self.col_offsets.last().expect("non-empty layout")
    }

    /// Frames in the whole device.
    pub fn total_frames(&self) -> u32 {
        self.frames_per_row() * self.rows
    }

    /// Configuration bytes in the whole device (frames × 101 × 4).
    pub fn total_config_bytes(&self) -> u64 {
        self.total_frames() as u64 * pdr_bitstream::FRAME_WORDS as u64 * 4
    }

    /// Frames in a contiguous column range of one row.
    pub fn frames_in_columns(&self, cols: core::ops::Range<u32>) -> u32 {
        assert!(
            cols.end as usize <= self.columns.len(),
            "column range out of device"
        );
        self.col_offsets[cols.end as usize] - self.col_offsets[cols.start as usize]
    }

    /// Maps a FAR to its linear frame index, or `None` if the address does
    /// not exist on this device.
    pub fn frame_index(&self, far: FrameAddress) -> Option<u32> {
        if far.block() != BlockType::Main || far.top() != 0 {
            return None;
        }
        if far.row() >= self.rows {
            return None;
        }
        let col = far.column() as usize;
        if col >= self.columns.len() {
            return None;
        }
        if far.minor() >= self.columns[col].minors() {
            return None;
        }
        Some(far.row() * self.frames_per_row() + self.col_offsets[col] + far.minor())
    }

    /// Maps a linear frame index back to its FAR.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the device.
    pub fn far_at(&self, index: u32) -> FrameAddress {
        assert!(
            index < self.total_frames(),
            "frame index {index} out of device"
        );
        let row = index / self.frames_per_row();
        let within = index % self.frames_per_row();
        // Binary search the column containing `within`.
        let col = match self.col_offsets.binary_search(&within) {
            Ok(c) if c == self.columns.len() => c - 1,
            Ok(c) => c,
            Err(c) => c - 1,
        };
        let minor = within - self.col_offsets[col];
        FrameAddress::new(0, row, col as u32, minor)
    }

    /// Advances a FAR by `n` frames in linear order (the geometry-aware FAR
    /// auto-increment the configuration logic performs during FDRI bursts).
    ///
    /// Returns `None` when the address runs off the end of the device.
    pub fn advance(&self, far: FrameAddress, n: u32) -> Option<FrameAddress> {
        let idx = self.frame_index(far)?;
        let target = idx.checked_add(n)?;
        if target >= self.total_frames() {
            return None;
        }
        Some(self.far_at(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zynq7020_shape() {
        let g = Geometry::zynq7020();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.columns().len(), 73);
        assert_eq!(g.frames_per_row(), 64 * 36 + 8 * 28 + 8);
        assert_eq!(g.total_frames(), 4 * 2536);
        // Same order of magnitude as a real 7z020 full bitstream (~4 MB).
        assert!(g.total_config_bytes() > 4_000_000);
        assert!(g.total_config_bytes() < 4_300_000);
    }

    #[test]
    fn rp_column_range_is_1308_frames() {
        let g = Geometry::zynq7020();
        assert_eq!(g.frames_in_columns(0..38), 1308);
    }

    #[test]
    fn far_index_bijection_over_whole_device() {
        let g = Geometry::zynq7020();
        for idx in 0..g.total_frames() {
            let far = g.far_at(idx);
            assert_eq!(g.frame_index(far), Some(idx), "at index {idx} / {far}");
        }
    }

    #[test]
    fn frame_index_rejects_out_of_device() {
        let g = Geometry::zynq7020();
        assert_eq!(g.frame_index(FrameAddress::new(0, 4, 0, 0)), None); // row
        assert_eq!(g.frame_index(FrameAddress::new(0, 0, 73, 0)), None); // col
        assert_eq!(g.frame_index(FrameAddress::new(0, 0, 36, 8)), None); // minor in CLK col
        assert_eq!(g.frame_index(FrameAddress::new(1, 0, 0, 0)), None); // bottom half
    }

    #[test]
    fn advance_crosses_columns_and_rows() {
        let g = Geometry::zynq7020();
        let start = FrameAddress::new(0, 0, 0, 35); // last minor of column 0
        let next = g.advance(start, 1).unwrap();
        assert_eq!((next.column(), next.minor()), (1, 0));
        // Crossing into row 1.
        let row_end = g.far_at(g.frames_per_row() - 1);
        let wrapped = g.advance(row_end, 1).unwrap();
        assert_eq!(
            (wrapped.row(), wrapped.column(), wrapped.minor()),
            (1, 0, 0)
        );
        // Off the end of the device.
        let last = g.far_at(g.total_frames() - 1);
        assert_eq!(g.advance(last, 1), None);
    }

    #[test]
    fn advance_zero_is_identity() {
        let g = Geometry::zynq7020();
        let far = FrameAddress::new(0, 2, 10, 5);
        assert_eq!(g.advance(far, 0), Some(far));
    }

    #[test]
    #[should_panic(expected = "out of device")]
    fn far_at_out_of_range_panics() {
        let g = Geometry::zynq7020();
        let _ = g.far_at(g.total_frames());
    }

    #[test]
    fn custom_geometry_offsets() {
        let g = Geometry::new(1, vec![ColumnKind::Clk, ColumnKind::Dsp, ColumnKind::Io]);
        assert_eq!(g.frames_per_row(), 8 + 28 + 42);
        assert_eq!(g.frame_index(FrameAddress::new(0, 0, 1, 0)), Some(8));
        assert_eq!(
            g.frame_index(FrameAddress::new(0, 0, 2, 41)),
            Some(8 + 28 + 41)
        );
    }
}
