//! # pdr-fabric
//!
//! The FPGA fabric model: device geometry, the configuration memory the ICAP
//! reads and writes, reconfigurable partitions (the paper's RP 1–4), and
//! behavioural accelerators (ASPs) so examples can *run* what they configure.
//!
//! The modelled device mirrors the ZedBoard's Zynq-7020 programmable logic at
//! the granularity that matters for reconfiguration-latency experiments:
//! frames of 101 words grouped into columns of type-specific depth, four
//! clock rows, and a floorplan with four single-row reconfigurable
//! partitions of 1308 frames each — which makes a partial bitstream of
//! 528,568 bytes, matching the ~529 kB bitstreams implied by Table I of the
//! paper.
//!
//! # Example
//!
//! ```
//! use pdr_fabric::{Floorplan, ConfigMemory};
//!
//! let plan = Floorplan::zedboard_quad();
//! let mem = ConfigMemory::new(plan.geometry().clone());
//! assert_eq!(plan.partitions().len(), 4);
//! assert_eq!(plan.partitions()[0].frame_count(&plan.geometry()), 1308);
//! assert!(mem.frame_count() > 10_000); // whole-device config space
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asp;
pub mod geometry;
pub mod memory;
pub mod partition;

pub use asp::{AspImage, AspKind};
pub use geometry::{ColumnKind, Geometry};
pub use memory::ConfigMemory;
pub use partition::{Floorplan, Partition};
