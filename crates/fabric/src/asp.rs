//! Behavioural application-specific processors (ASPs).
//!
//! The paper's motivation is swapping ASPs — "a web server, a crypto engine,
//! a decimal processor" — in and out of reconfigurable partitions on demand.
//! To let examples demonstrate that end-to-end, an [`AspImage`] generates a
//! deterministic partial-bitstream payload whose first frame carries a
//! signature (magic, kind, seed), and after configuration the fabric can
//! [`identify`](AspImage::identify) which ASP a partition currently hosts and
//! *execute* its behavioural model on real data.
//!
//! The generated frame content mixes pseudo-random "routed logic" frames with
//! zero frames and repeated frames in realistic proportions, so bitstream
//! compression (Sec. VI's decompressor) has authentic structure to exploit.

use pdr_bitstream::Frame;

use crate::memory::ConfigMemory;
use crate::partition::Partition;

/// Magic word identifying an ASP image (first word of the first frame).
pub const MAGIC: u32 = 0xA5BC_0DE5;

/// The behavioural accelerator kinds shipped with the model — the paper's
/// "web server, crypto engine, decimal processor" cast, kept computational:
/// filtering, crypto-style mixing, linear algebra, hashing and analytics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AspKind {
    /// A 16-tap fixed-point FIR filter.
    Fir16,
    /// A toy block mixer with AES-like xor/rotate rounds.
    AesMix,
    /// An 8×8 integer matrix multiplier.
    MatMul8,
    /// A Keccak-flavoured sponge mixer producing a rolling digest stream.
    Sha3Mix,
    /// A 256-bin histogram engine (streaming analytics).
    Histogram256,
}

impl AspKind {
    /// All kinds, in id order.
    pub const ALL: [AspKind; 5] = [
        AspKind::Fir16,
        AspKind::AesMix,
        AspKind::MatMul8,
        AspKind::Sha3Mix,
        AspKind::Histogram256,
    ];

    /// Stable numeric id embedded in the bitstream signature.
    pub const fn id(self) -> u32 {
        match self {
            AspKind::Fir16 => 1,
            AspKind::AesMix => 2,
            AspKind::MatMul8 => 3,
            AspKind::Sha3Mix => 4,
            AspKind::Histogram256 => 5,
        }
    }

    /// Decodes a signature id.
    pub fn from_id(id: u32) -> Option<AspKind> {
        match id {
            1 => Some(AspKind::Fir16),
            2 => Some(AspKind::AesMix),
            3 => Some(AspKind::MatMul8),
            4 => Some(AspKind::Sha3Mix),
            5 => Some(AspKind::Histogram256),
            _ => None,
        }
    }

    /// Runs the accelerator's behavioural model on `input` with parameters
    /// derived from `seed`. Output length equals input length (FIR, AesMix)
    /// or 64 (MatMul8, which consumes the first 64 elements).
    pub fn execute(self, seed: u32, input: &[i64]) -> Vec<i64> {
        match self {
            AspKind::Fir16 => {
                let taps: Vec<i64> = (0..16)
                    .map(|k| (mix(seed, k) & 0xFF) as i64 - 128)
                    .collect();
                (0..input.len())
                    .map(|n| {
                        let mut acc = 0i64;
                        for (k, &t) in taps.iter().enumerate() {
                            if n >= k {
                                acc = acc.wrapping_add(t.wrapping_mul(input[n - k]));
                            }
                        }
                        acc >> 8
                    })
                    .collect()
            }
            AspKind::AesMix => input
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let mut v = x as u64;
                    for r in 0..4 {
                        let key = mix(seed, (i as u32).wrapping_add(r * 97)) as u64;
                        v ^= key;
                        v = v.rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    }
                    v as i64
                })
                .collect(),
            AspKind::Sha3Mix => {
                // A sponge-like rolling state: absorb one input per step,
                // permute with rotate/xor/multiply rounds, squeeze a digest
                // word per input.
                let mut state = [
                    mix(seed, 0) as u64 | ((mix(seed, 1) as u64) << 32),
                    mix(seed, 2) as u64 | ((mix(seed, 3) as u64) << 32),
                    mix(seed, 4) as u64 | ((mix(seed, 5) as u64) << 32),
                ];
                input
                    .iter()
                    .map(|&x| {
                        state[0] ^= x as u64;
                        for _ in 0..3 {
                            state[0] = state[0].rotate_left(19).wrapping_add(state[2]);
                            state[1] = (state[1] ^ state[0]).rotate_left(28);
                            state[2] = state[2].wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ state[1];
                        }
                        (state[0] ^ state[1] ^ state[2]) as i64
                    })
                    .collect()
            }
            AspKind::Histogram256 => {
                // Bin inputs modulo 256 with seed-derived bin weights and
                // return the 256 weighted counts.
                let weights: Vec<i64> = (0..256).map(|b| 1 + (mix(seed, b) & 0x7) as i64).collect();
                let mut bins = vec![0i64; 256];
                for &x in input {
                    let b = (x.rem_euclid(256)) as usize;
                    bins[b] += weights[b];
                }
                bins
            }
            AspKind::MatMul8 => {
                let a: Vec<i64> = (0..64).map(|k| (mix(seed, k) & 0xF) as i64 - 8).collect();
                let mut x = [0i64; 64];
                for (i, slot) in x.iter_mut().enumerate() {
                    *slot = input.get(i).copied().unwrap_or(0);
                }
                let mut out = vec![0i64; 64];
                for i in 0..8 {
                    for j in 0..8 {
                        let mut acc = 0i64;
                        for k in 0..8 {
                            acc = acc.wrapping_add(a[i * 8 + k].wrapping_mul(x[k * 8 + j]));
                        }
                        out[i * 8 + j] = acc;
                    }
                }
                out
            }
        }
    }
}

/// Deterministic word mixer used for content generation and behavioural
/// parameters.
fn mix(seed: u32, i: u32) -> u32 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(i.wrapping_mul(0x85EB_CA6B));
    z ^= z >> 16;
    z = z.wrapping_mul(0x7FEB_352D);
    z ^= z >> 15;
    z = z.wrapping_mul(0x846C_A68B);
    z ^ (z >> 16)
}

/// A generated ASP partial-bitstream payload: the frames that implement one
/// accelerator in one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AspImage {
    kind: AspKind,
    seed: u32,
    frames: Vec<Frame>,
}

impl AspImage {
    /// Generates the image for `kind`/`seed` filling `frame_count` frames.
    ///
    /// Content statistics (deterministic in `seed`): roughly 25 % zero
    /// frames, 15 % exact repeats of the previous frame, the rest dense
    /// pseudo-random "routed logic" — realistic raw material for the Sec. VI
    /// bitstream compressor.
    ///
    /// # Panics
    ///
    /// Panics if `frame_count` is zero.
    pub fn generate(kind: AspKind, seed: u32, frame_count: u32) -> Self {
        assert!(frame_count > 0, "ASP image must contain at least one frame");
        let mut frames = Vec::with_capacity(frame_count as usize);
        // Signature frame.
        let mut sig = Frame::zeroed();
        sig.words_mut()[0] = MAGIC;
        sig.words_mut()[1] = kind.id();
        sig.words_mut()[2] = seed;
        for (i, w) in sig.words_mut().iter_mut().enumerate().skip(3) {
            *w = mix(seed ^ 0xDEAD, i as u32);
        }
        frames.push(sig);
        for fi in 1..frame_count {
            let class = mix(seed, fi) % 100;
            if class < 25 {
                frames.push(Frame::zeroed());
            } else if class < 40 {
                let prev = frames[fi as usize - 1].clone();
                frames.push(prev);
            } else {
                let mut f = Frame::zeroed();
                for (wi, w) in f.words_mut().iter_mut().enumerate() {
                    *w = mix(seed ^ fi, wi as u32);
                }
                frames.push(f);
            }
        }
        AspImage { kind, seed, frames }
    }

    /// The accelerator kind.
    pub fn kind(&self) -> AspKind {
        self.kind
    }

    /// The generation seed (also the behavioural parameter seed).
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// The frame payload.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consumes the image, returning its frames.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }

    /// Identifies the ASP currently configured in `partition` by reading its
    /// signature frame from configuration memory. Returns `(kind, seed)`,
    /// or `None` if the partition holds no valid ASP signature.
    pub fn identify(mem: &mut ConfigMemory, partition: &Partition) -> Option<(AspKind, u32)> {
        let frame = mem.read_frame(partition.start_far())?;
        let words = frame.words();
        if words[0] != MAGIC {
            return None;
        }
        let kind = AspKind::from_id(words[1])?;
        Some((kind, words[2]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Floorplan;

    #[test]
    fn generation_is_deterministic() {
        let a = AspImage::generate(AspKind::Fir16, 7, 100);
        let b = AspImage::generate(AspKind::Fir16, 7, 100);
        assert_eq!(a, b);
        let c = AspImage::generate(AspKind::Fir16, 8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn signature_frame_is_first() {
        let img = AspImage::generate(AspKind::MatMul8, 42, 10);
        let w = img.frames()[0].words();
        assert_eq!(w[0], MAGIC);
        assert_eq!(w[1], AspKind::MatMul8.id());
        assert_eq!(w[2], 42);
    }

    #[test]
    fn content_mix_has_zero_and_repeat_frames() {
        let img = AspImage::generate(AspKind::AesMix, 3, 1308);
        let zeros = img.frames().iter().filter(|f| f.is_zero()).count();
        let repeats = img
            .frames()
            .windows(2)
            .filter(|w| w[0] == w[1] && !w[0].is_zero())
            .count();
        // Loose statistical bounds; the distribution is deterministic.
        assert!(zeros > 200 && zeros < 450, "zeros={zeros}");
        assert!(repeats > 50, "repeats={repeats}");
    }

    #[test]
    fn identify_roundtrip_through_config_memory() {
        let plan = Floorplan::zedboard_quad();
        let mut mem = ConfigMemory::new(plan.geometry().clone());
        let p = plan.partition(1);
        let img = AspImage::generate(AspKind::AesMix, 9, p.frame_count(plan.geometry()));
        for (i, f) in img.frames().iter().enumerate() {
            assert!(mem.write_burst_frame(p.start_far(), i as u32, f.clone()));
        }
        assert_eq!(AspImage::identify(&mut mem, p), Some((AspKind::AesMix, 9)));
        // An untouched partition identifies as none.
        assert_eq!(AspImage::identify(&mut mem, plan.partition(2)), None);
    }

    #[test]
    fn kind_ids_roundtrip() {
        for k in AspKind::ALL {
            assert_eq!(AspKind::from_id(k.id()), Some(k));
        }
        assert_eq!(AspKind::from_id(0), None);
        assert_eq!(AspKind::from_id(99), None);
    }

    #[test]
    fn fir_is_linear_in_input() {
        let y1 = AspKind::Fir16.execute(5, &[1, 0, 0, 0, 0]);
        let y2 = AspKind::Fir16.execute(5, &[2, 0, 0, 0, 0]);
        // Doubling the impulse roughly doubles the response (integer >> 8
        // truncation allows off-by-one).
        for (a, b) in y1.iter().zip(&y2) {
            assert!((2 * a - b).abs() <= 1, "a={a} b={b}");
        }
    }

    #[test]
    fn aesmix_is_seed_and_position_sensitive() {
        let x = vec![1i64, 1, 1];
        let y = AspKind::AesMix.execute(1, &x);
        let z = AspKind::AesMix.execute(2, &x);
        assert_ne!(y, z);
        assert_ne!(y[0], y[1]);
    }

    #[test]
    fn matmul_output_is_64_wide() {
        let y = AspKind::MatMul8.execute(1, &[1; 64]);
        assert_eq!(y.len(), 64);
        let z = AspKind::MatMul8.execute(1, &[1; 10]); // short input zero-padded
        assert_eq!(z.len(), 64);
    }

    #[test]
    fn sha3mix_is_stateful_and_seeded() {
        let y = AspKind::Sha3Mix.execute(1, &[7, 7, 7]);
        assert_eq!(y.len(), 3);
        // Same input, different positions → different digests (rolling state).
        assert_ne!(y[0], y[1]);
        assert_ne!(y[1], y[2]);
        assert_ne!(y, AspKind::Sha3Mix.execute(2, &[7, 7, 7]));
    }

    #[test]
    fn histogram_counts_weighted_bins() {
        let y = AspKind::Histogram256.execute(3, &[0, 0, 256, -256, 5]);
        assert_eq!(y.len(), 256);
        // Bin 0 received four hits (0, 0, 256 ≡ 0, −256 ≡ 0) of equal weight.
        assert_eq!(y[0] % 4, 0);
        assert!(y[0] > 0);
        assert!(y[5] > 0);
        assert_eq!(y.iter().filter(|&&v| v != 0).count(), 2);
    }

    #[test]
    fn execute_is_deterministic() {
        let x: Vec<i64> = (0..32).collect();
        for k in AspKind::ALL {
            assert_eq!(k.execute(11, &x), k.execute(11, &x));
        }
    }

    #[test]
    fn different_frame_counts_share_prefix_signature() {
        let small = AspImage::generate(AspKind::Fir16, 2, 5);
        let big = AspImage::generate(AspKind::Fir16, 2, 50);
        assert_eq!(small.frames()[0], big.frames()[0]);
    }
}
