//! Reconfigurable partitions and the board floorplan.

use pdr_bitstream::FrameAddress;

use crate::geometry::Geometry;

/// A reconfigurable partition: a contiguous column range of one clock row
/// (the shape Vivado's PR flow produces for single-row Pblocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Human-readable name (e.g. `"RP1"`).
    name: String,
    row: u32,
    cols: core::ops::Range<u32>,
}

impl Partition {
    /// Defines a partition over `cols` of `row`.
    ///
    /// # Panics
    ///
    /// Panics if the column range is empty.
    pub fn new(name: &str, row: u32, cols: core::ops::Range<u32>) -> Self {
        assert!(!cols.is_empty(), "partition must span at least one column");
        Partition {
            name: name.to_string(),
            row,
            cols,
        }
    }

    /// The partition's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock row the partition occupies.
    pub fn row(&self) -> u32 {
        self.row
    }

    /// The column range the partition occupies.
    pub fn columns(&self) -> core::ops::Range<u32> {
        self.cols.clone()
    }

    /// The FAR of the partition's first frame.
    pub fn start_far(&self) -> FrameAddress {
        FrameAddress::new(0, self.row, self.cols.start, 0)
    }

    /// Number of frames the partition occupies on `geometry`.
    pub fn frame_count(&self, geometry: &Geometry) -> u32 {
        geometry.frames_in_columns(self.cols.clone())
    }

    /// Linear index of the partition's first frame on `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not fit the geometry.
    pub fn start_index(&self, geometry: &Geometry) -> u32 {
        geometry
            .frame_index(self.start_far())
            .expect("partition start outside device")
    }

    /// Partial-bitstream payload size in bytes for this partition
    /// (frames × 101 words × 4; excludes packet overhead).
    pub fn payload_bytes(&self, geometry: &Geometry) -> u64 {
        self.frame_count(geometry) as u64 * pdr_bitstream::FRAME_WORDS as u64 * 4
    }
}

/// A device floorplan: the geometry plus the reconfigurable partitions
/// placed on it (the static region is everything else).
#[derive(Debug, Clone)]
pub struct Floorplan {
    geometry: Geometry,
    partitions: Vec<Partition>,
}

impl Floorplan {
    /// Builds a floorplan, validating that partitions fit the device and do
    /// not overlap.
    ///
    /// # Panics
    ///
    /// Panics on out-of-device or overlapping partitions.
    pub fn new(geometry: Geometry, partitions: Vec<Partition>) -> Self {
        for p in &partitions {
            assert!(
                p.row < geometry.rows(),
                "partition {} row outside device",
                p.name
            );
            assert!(
                p.cols.end as usize <= geometry.columns().len(),
                "partition {} columns outside device",
                p.name
            );
        }
        for (i, a) in partitions.iter().enumerate() {
            for b in &partitions[i + 1..] {
                let overlap =
                    a.row == b.row && a.cols.start < b.cols.end && b.cols.start < a.cols.end;
                assert!(!overlap, "partitions {} and {} overlap", a.name, b.name);
            }
        }
        Floorplan {
            geometry,
            partitions,
        }
    }

    /// The paper's Fig. 1 floorplan: the Zynq-7020-like device with four
    /// reconfigurable partitions (RP 1–4), one per clock row, each spanning
    /// columns 0..38 = 1308 frames → 528,568-byte partial bitstreams.
    pub fn zedboard_quad() -> Self {
        let geometry = Geometry::zynq7020();
        let partitions = (0..4)
            .map(|r| Partition::new(&format!("RP{}", r + 1), r, 0..38))
            .collect();
        Floorplan::new(geometry, partitions)
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The reconfigurable partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Looks up a partition by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (use [`Floorplan::partitions`] for
    /// fallible access).
    pub fn partition(&self, idx: usize) -> &Partition {
        &self.partitions[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zedboard_quad_matches_paper_bitstream_size() {
        let plan = Floorplan::zedboard_quad();
        assert_eq!(plan.partitions().len(), 4);
        for (i, p) in plan.partitions().iter().enumerate() {
            assert_eq!(p.row(), i as u32);
            assert_eq!(p.frame_count(plan.geometry()), 1308);
            // 1308 frames × 101 words × 4 B = 528,432 B payload; with the 34
            // packet-overhead words the built bitstream is 528,568 B ≈ the
            // ~529 kB implied by Table I.
            assert_eq!(p.payload_bytes(plan.geometry()), 528_432);
        }
    }

    #[test]
    fn partition_start_far_and_index() {
        let plan = Floorplan::zedboard_quad();
        let p = plan.partition(2);
        assert_eq!(p.start_far(), FrameAddress::new(0, 2, 0, 0));
        assert_eq!(
            p.start_index(plan.geometry()),
            2 * plan.geometry().frames_per_row()
        );
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_partitions_panic() {
        let g = Geometry::zynq7020();
        let _ = Floorplan::new(
            g,
            vec![Partition::new("A", 0, 0..10), Partition::new("B", 0, 5..15)],
        );
    }

    #[test]
    fn same_columns_different_rows_do_not_overlap() {
        let g = Geometry::zynq7020();
        let plan = Floorplan::new(
            g,
            vec![Partition::new("A", 0, 0..10), Partition::new("B", 1, 0..10)],
        );
        assert_eq!(plan.partitions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "columns outside device")]
    fn out_of_device_partition_panics() {
        let g = Geometry::zynq7020();
        let _ = Floorplan::new(g, vec![Partition::new("A", 0, 70..80)]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_partition_panics() {
        let _ = Partition::new("E", 0, 5..5);
    }
}
