//! The configuration memory: the frame array behind the ICAP.

use pdr_bitstream::{Crc32, Frame, FrameAddress};

use crate::geometry::Geometry;

/// The device's configuration memory: one [`Frame`] per geometry frame slot,
/// written by the ICAP during configuration and read back by the CRC
/// read-back block.
#[derive(Debug, Clone)]
pub struct ConfigMemory {
    geometry: Geometry,
    frames: Vec<Frame>,
    writes: u64,
    reads: u64,
}

impl ConfigMemory {
    /// Creates an all-zero configuration memory for `geometry`.
    pub fn new(geometry: Geometry) -> Self {
        let n = geometry.total_frames() as usize;
        ConfigMemory {
            geometry,
            frames: vec![Frame::zeroed(); n],
            writes: 0,
            reads: 0,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Total frame slots.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Lifetime frame writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Lifetime frame reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Reads the frame at `far`.
    ///
    /// Returns `None` if the address does not exist on this device.
    pub fn read_frame(&mut self, far: FrameAddress) -> Option<&Frame> {
        let idx = self.geometry.frame_index(far)?;
        self.reads += 1;
        Some(&self.frames[idx as usize])
    }

    /// Reads the frame at linear index `idx` (read-back scanning order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_frame_at(&mut self, idx: u32) -> &Frame {
        self.reads += 1;
        &self.frames[idx as usize]
    }

    /// Writes `data` to the frame at `far`. Returns `false` (and discards
    /// the data, like real config logic writing a bad address) if the
    /// address does not exist.
    pub fn write_frame(&mut self, far: FrameAddress, data: Frame) -> bool {
        match self.geometry.frame_index(far) {
            Some(idx) => {
                self.frames[idx as usize] = data;
                self.writes += 1;
                true
            }
            None => false,
        }
    }

    /// Writes the `seq`-th frame of an FDRI burst that started at
    /// `burst_far`, applying the geometry-aware FAR auto-increment.
    pub fn write_burst_frame(&mut self, burst_far: FrameAddress, seq: u32, data: Frame) -> bool {
        match self.geometry.advance(burst_far, seq) {
            Some(far) => self.write_frame(far, data),
            None => false,
        }
    }

    /// CRC-32 (IEEE) over a linear frame range, in address order — the
    /// golden value the CRC read-back block compares against.
    pub fn range_crc(&self, start_idx: u32, count: u32) -> u32 {
        let mut crc = Crc32::ieee();
        let end = (start_idx + count).min(self.frames.len() as u32);
        for idx in start_idx..end {
            for &w in self.frames[idx as usize].words() {
                crc.update_word(w);
            }
        }
        crc.value()
    }

    /// Sparse snapshot of the frame array: `(linear index, frame)` for every
    /// non-zero frame, in scanning order. Zero frames are implicit, so a
    /// freshly configured device checkpoints in space proportional to the
    /// frames actually written, not the device size.
    pub fn nonzero_frames(&self) -> Vec<(u32, &Frame)> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_zero())
            .map(|(i, f)| (i as u32, f))
            .collect()
    }

    /// Restores the frame array and lifetime counters from a snapshot taken
    /// with [`ConfigMemory::nonzero_frames`], [`ConfigMemory::write_count`]
    /// and [`ConfigMemory::read_count`]. All frames not listed become zero.
    ///
    /// Returns `Err` (leaving the memory untouched) if any index is out of
    /// range for this geometry.
    pub fn restore_parts(
        &mut self,
        frames: &[(u32, Frame)],
        writes: u64,
        reads: u64,
    ) -> Result<(), String> {
        for &(idx, _) in frames {
            if idx as usize >= self.frames.len() {
                return Err(format!(
                    "config-memory snapshot frame index {} out of range ({} frames)",
                    idx,
                    self.frames.len()
                ));
            }
        }
        for f in &mut self.frames {
            *f = Frame::zeroed();
        }
        for (idx, f) in frames {
            self.frames[*idx as usize] = f.clone();
        }
        self.writes = writes;
        self.reads = reads;
        Ok(())
    }

    /// Injects a bit flip into the stored frame at `far` (SEU / fault
    /// injection). Returns `false` for a nonexistent address.
    pub fn inject_bit_flip(&mut self, far: FrameAddress, word_idx: usize, bit: u32) -> bool {
        match self.geometry.frame_index(far) {
            Some(idx) => {
                self.frames[idx as usize].flip_bit(word_idx, bit);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ConfigMemory {
        ConfigMemory::new(Geometry::zynq7020())
    }

    #[test]
    fn starts_zeroed() {
        let mut m = mem();
        let far = FrameAddress::new(0, 1, 5, 3);
        assert!(m.read_frame(far).unwrap().is_zero());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mem();
        let far = FrameAddress::new(0, 2, 40, 7);
        let f = Frame::filled(0xCAFE_BABE);
        assert!(m.write_frame(far, f.clone()));
        assert_eq!(m.read_frame(far), Some(&f));
        assert_eq!(m.write_count(), 1);
    }

    #[test]
    fn bad_address_write_is_rejected() {
        let mut m = mem();
        assert!(!m.write_frame(FrameAddress::new(0, 0, 36, 20), Frame::zeroed()));
        assert_eq!(m.write_count(), 0);
    }

    #[test]
    fn burst_write_follows_geometry_order() {
        let mut m = mem();
        let start = FrameAddress::new(0, 0, 0, 34); // 2 frames left in column 0
        assert!(m.write_burst_frame(start, 0, Frame::filled(1)));
        assert!(m.write_burst_frame(start, 1, Frame::filled(2)));
        assert!(m.write_burst_frame(start, 2, Frame::filled(3))); // rolls into column 1
        assert_eq!(
            m.read_frame(FrameAddress::new(0, 0, 1, 0)).unwrap(),
            &Frame::filled(3)
        );
    }

    #[test]
    fn range_crc_changes_with_content() {
        let mut m = mem();
        let base = m.range_crc(0, 100);
        m.write_frame(FrameAddress::new(0, 0, 0, 0), Frame::filled(9));
        assert_ne!(m.range_crc(0, 100), base);
        // A disjoint range is unaffected.
        let far_range = m.range_crc(5000, 100);
        m.write_frame(FrameAddress::new(0, 0, 0, 1), Frame::filled(7));
        assert_eq!(m.range_crc(5000, 100), far_range);
    }

    #[test]
    fn inject_bit_flip_breaks_crc() {
        let mut m = mem();
        let before = m.range_crc(0, 10);
        assert!(m.inject_bit_flip(FrameAddress::new(0, 0, 0, 2), 50, 17));
        assert_ne!(m.range_crc(0, 10), before);
    }
}
