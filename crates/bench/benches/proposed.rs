//! E7 — the **Sec. VI proposed environment**: QDR-SRAM staging + PR
//! controller + bitstream decompressor, vs the measured system.

use pdr_bench::{publish, Table};
use pdr_core::experiments::{proposed, ExperimentConfig};
use pdr_core::proposed::{ProposedConfig, ProposedSystem};
use pdr_core::system::{SystemConfig, ZynqPdrSystem};
use pdr_fabric::AspKind;
use pdr_sim_core::Frequency;

fn main() {
    let t0 = std::time::Instant::now();

    // Reference: the measured system at its knee.
    let mut measured = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let bs = measured.make_asp_bitstream(0, AspKind::Fir16, 1);
    let base = measured.reconfigure(0, &bs, Frequency::from_mhz(200));
    let base_t = base.throughput_mb_s().expect("interrupts at 200 MHz");
    let base_lat = base.latency.expect("interrupts at 200 MHz").as_micros_f64();

    let rows = proposed(&ExperimentConfig::default());
    let mut t = Table::new(&[
        "System",
        "raw bytes",
        "latency [us]",
        "raw thpt [MB/s]",
        "stored ratio",
        "CRC",
    ]);
    t.row(&[
        "measured @ 200 MHz (Sec. IV)".into(),
        base.bitstream_bytes.to_string(),
        format!("{base_lat:.1}"),
        format!("{base_t:.1}"),
        "1.00".into(),
        if base.crc_ok() { "ok" } else { "FAIL" }.into(),
    ]);
    for r in &rows {
        t.row(&[
            r.scenario.clone(),
            r.raw_bytes.to_string(),
            format!("{:.1}", r.latency_us),
            format!("{:.1}", r.throughput_mb_s),
            format!("{:.2}", r.compression_ratio),
            if r.crc_ok { "ok" } else { "FAIL" }.into(),
        ]);
        assert!(r.crc_ok);
    }

    let raw = rows
        .iter()
        .find(|r| r.scenario.contains("raw"))
        .expect("raw row");
    let comp = rows
        .iter()
        .find(|r| r.scenario.contains("compressed"))
        .expect("compressed row");
    let bound = ProposedSystem::new(ProposedConfig::default()).theoretical_bound_mb_s();
    // The paper's claim: the redesign nearly doubles the measured plateau.
    assert!((bound - 1237.5).abs() < 0.1);
    assert!(raw.throughput_mb_s > 0.95 * bound && raw.throughput_mb_s <= bound + 1.0);
    assert!(raw.throughput_mb_s / base_t > 1.4);
    assert!(comp.throughput_mb_s > raw.throughput_mb_s);

    let content = format!(
        "## Sec. VI — proposed partial-reconfiguration environment\n\n{}\n\
         The paper derives a theoretical bound of 550 MHz x 36 bit / 2 = \
         **{bound:.1} MB/s** for the SRAM read port and calls it \"almost \
         double\" the measured system's throughput; the simulated raw-staging \
         pipeline delivers {:.1} MB/s ({:.2}x the measured plateau). Frame \
         compression moves template frames off the SRAM port entirely and \
         reaches {:.1} MB/s of effective configuration rate (bounded by the \
         550 MHz ICAP macro's 2200 MB/s). The pre-load runs on the \
         independent QDR write port, overlapped with accelerator runtime by \
         the PS Scheduler.\n\n_regenerated in {:.2?}_\n",
        t.render(),
        raw.throughput_mb_s,
        raw.throughput_mb_s / base_t,
        comp.throughput_mb_s,
        t0.elapsed()
    );
    publish("proposed", &content);
}
