//! Codec end-to-end — effective reconfiguration throughput of the Sec. VI
//! pipeline with the frame-aware compressor and streaming ICAP-side
//! decompressor, against the same pipeline moving raw images.
//!
//! Three workload classes over the same partition-0 region:
//!
//! * **padded** — a sparse design: one routed frame in sixteen, the rest
//!   zeroed (the mostly-empty partial bitstreams real RP flows produce);
//! * **repetitive** — two dense frames alternating (replicated columns,
//!   the codec's `COPY` back-reference case);
//! * **asp** — the workspace's realistic ASP generator (~25 % zero frames,
//!   ~15 % repeats, the rest dense routed logic).
//!
//! Asserted claims (a regression fails the build):
//!
//! * padded and repetitive workloads reconfigure ≥ 1.5× faster end-to-end
//!   with compression on (the decompressor expands runs/back-references at
//!   the 550 MHz ICAP clock without consuming SRAM read bandwidth);
//! * the realistic ASP workload still speeds up (> 1×);
//! * every run verifies by read-back CRC, compressed or not;
//! * same seed → byte-identical telemetry JSON (deterministic).
//!
//! Besides the usual `target/experiments/codec.md` table, this bench
//! writes `BENCH_codec.json` at the workspace root: a deterministic,
//! simulated-time-only snapshot committed as the perf trajectory.

use pdr_bench::{publish, Table};
use pdr_bitstream::{Bitstream, Builder, Frame};
use pdr_core::proposed::{ProposedConfig, ProposedReport, ProposedSystem};
use pdr_core::system::IDCODE;
use pdr_fabric::AspKind;
use pdr_sim_core::json::{Json, ToJson};

fn mix(a: u32, b: u32) -> u32 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(b.wrapping_mul(0x85EB_CA6B));
    z ^= z >> 15;
    z.wrapping_mul(0x846C_A68B)
}

fn dense_frame(tag: u32) -> Frame {
    let mut f = Frame::zeroed();
    for (wi, w) in f.words_mut().iter_mut().enumerate() {
        *w = mix(tag, wi as u32) | 1;
    }
    f
}

/// Builds a partition-filling bitstream for `rp` from `frame_of`.
fn region_bitstream(sys: &ProposedSystem, rp: usize, frame_of: impl Fn(u32) -> Frame) -> Bitstream {
    let fp = &sys.config().floorplan;
    let p = fp.partition(rp);
    let n = p.frame_count(fp.geometry());
    let frames = (0..n).map(frame_of).collect();
    let mut b = Builder::new(IDCODE);
    b.add_frames(p.start_far(), frames);
    b.build()
}

/// One reconfiguration of `bitstream` with compression on or off.
fn run(bitstream: &Bitstream, compress: bool) -> ProposedReport {
    let mut sys = ProposedSystem::new(ProposedConfig {
        compress,
        ..ProposedConfig::default()
    });
    sys.reconfigure(bitstream)
}

struct Outcome {
    name: &'static str,
    raw: ProposedReport,
    packed: ProposedReport,
    speedup: f64,
}

fn bench_workload(name: &'static str, bitstream: &Bitstream) -> Outcome {
    let raw = run(bitstream, false);
    let packed = run(bitstream, true);
    assert!(raw.crc_ok, "{name}: raw run must verify");
    assert!(packed.crc_ok, "{name}: compressed run must verify");
    let speedup = packed.throughput_mb_s / raw.throughput_mb_s;
    Outcome {
        name,
        raw,
        packed,
        speedup,
    }
}

fn main() {
    let t0 = std::time::Instant::now();
    let replays: u32 = std::env::var("PDR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);

    let probe = ProposedSystem::new(ProposedConfig::default());
    let padded = region_bitstream(&probe, 0, |fi| {
        if fi % 16 == 0 {
            dense_frame(fi)
        } else {
            Frame::zeroed()
        }
    });
    let repetitive = {
        let a = dense_frame(0xAAAA);
        let b = dense_frame(0x5555);
        region_bitstream(
            &probe,
            0,
            move |fi| {
                if fi % 2 == 0 {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        )
    };
    let asp = probe.make_asp_bitstream(0, AspKind::Fir16, 7);

    let outcomes = vec![
        bench_workload("padded", &padded),
        bench_workload("repetitive", &repetitive),
        bench_workload("asp (realistic)", &asp),
    ];

    // -- asserted claims ---------------------------------------------------
    for o in &outcomes[..2] {
        assert!(
            o.speedup >= 1.5,
            "{}: compressed end-to-end reconfiguration must be ≥1.5× the raw \
             pipeline, got {:.2}× ({:.1} vs {:.1} MB/s)",
            o.name,
            o.speedup,
            o.packed.throughput_mb_s,
            o.raw.throughput_mb_s
        );
    }
    assert!(
        outcomes[2].speedup > 1.0,
        "realistic ASP workload must still gain, got {:.2}×",
        outcomes[2].speedup
    );
    // Determinism: replaying any workload yields byte-identical telemetry.
    for _ in 0..replays {
        let again = run(&padded, true);
        assert_eq!(
            again.to_json_string(),
            outcomes[0].packed.to_json_string(),
            "same seed must yield identical telemetry JSON"
        );
    }

    // -- BENCH_codec.json — the committed perf-trajectory point ------------
    // Simulated-time metrics only: re-running at the same scale reproduces
    // this file bit-for-bit.
    let snapshot = Json::Obj(vec![
        ("bench".into(), Json::Str("codec".into())),
        (
            "workloads".into(),
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(o.name.into())),
                            ("raw".into(), o.raw.to_json()),
                            ("compressed".into(), o.packed.to_json()),
                            (
                                "speedup".into(),
                                Json::F64((o.speedup * 100.0).round() / 100.0),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let path = root.join("BENCH_codec.json");
    match std::fs::write(&path, snapshot.render() + "\n") {
        Ok(()) => eprintln!("[perf trajectory written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    // -- markdown table ----------------------------------------------------
    let mut t = Table::new(&[
        "workload",
        "raw [MB/s]",
        "compressed [MB/s]",
        "ratio",
        "speedup",
    ]);
    for o in &outcomes {
        let ratio = o
            .packed
            .codec
            .as_ref()
            .and_then(|c| c.ratio)
            .map_or("-".into(), |r| format!("{r:.3}"));
        t.row(&[
            o.name.into(),
            format!("{:.1}", o.raw.throughput_mb_s),
            format!("{:.1}", o.packed.throughput_mb_s),
            ratio,
            format!("{:.2}x", o.speedup),
        ]);
    }

    let content = format!(
        "## Codec — compressed staging + streaming ICAP-side decompression\n\n{}\n\
         One end-to-end reconfiguration of partition 0 per cell, Sec. VI \
         pipeline (QDR SRAM read port 1237.5 MB/s, decompressor and ICAP at \
         550 MHz). The raw pipeline is pinned at the SRAM read bound; with \
         compression the SRAM moves the `PDRC` container and the \
         decompressor expands runs and frame back-references at the ICAP \
         clock, so padded/repetitive images reconfigure up to the 2200 MB/s \
         ICAP bound. Asserted: ≥ 1.5× on padded and repetitive workloads, \
         > 1× on the realistic ASP mix, read-back CRC verified everywhere, \
         byte-identical telemetry on replay.\n\n\
         _regenerated in {:.2?}_\n",
        t.render(),
        t0.elapsed()
    );
    publish("codec", &content);
}
