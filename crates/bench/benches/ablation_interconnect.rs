//! A5 — ablation: the interconnect clock sets the plateau.
//!
//! The paper locates its bottleneck in "Memory Port → AXI Interconnect →
//! AXI DMA". In the model that is literal: the plateau is one 64-bit beat
//! per interconnect cycle. Sweeping the interconnect clock moves the
//! plateau proportionally — which is why the Sec. VI redesign, which removes
//! this link entirely, is the right fix rather than more over-clocking.

use pdr_bench::{publish, Table};
use pdr_core::system::{SystemConfig, ZynqPdrSystem};
use pdr_fabric::AspKind;
use pdr_sim_core::Frequency;

fn plateau(interconnect_mhz: u64) -> (f64, f64) {
    let mut cfg = SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    };
    cfg.interconnect_clock = Frequency::from_mhz(interconnect_mhz);
    let mut sys = ZynqPdrSystem::new(cfg);
    let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
    let r = sys.reconfigure(0, &bs, Frequency::from_mhz(280));
    assert!(r.crc_ok());
    let measured = r.throughput_mb_s().expect("280 MHz interrupts");
    let ceiling = interconnect_mhz as f64 * 8.0; // 64-bit × f
    (measured, ceiling)
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut t = Table::new(&[
        "interconnect clock [MHz]",
        "ceiling 8B×f [MB/s]",
        "plateau @280 MHz [MB/s]",
        "efficiency [%]",
    ]);
    let mut effs = Vec::new();
    for mhz in [75u64, 100, 125, 140] {
        let (measured, ceiling) = plateau(mhz);
        let eff = measured / ceiling * 100.0;
        t.row(&[
            mhz.to_string(),
            format!("{ceiling:.0}"),
            format!("{measured:.1}"),
            format!("{eff:.1}"),
        ]);
        effs.push(eff);
        assert!(measured < ceiling, "cannot beat the beat-rate ceiling");
    }
    // The plateau tracks the interconnect clock at near-constant efficiency.
    let spread =
        effs.iter().fold(0.0f64, |a, &b| a.max(b)) - effs.iter().fold(100.0f64, |a, &b| a.min(b));
    assert!(
        spread < 3.0,
        "efficiency should be clock-invariant: {effs:?}"
    );

    let content = format!(
        "## Ablation A5 — the interconnect clock sets the plateau\n\n{}\n\
         Efficiency stays ~constant (spread {spread:.1} pp): the plateau is a \
         property of the memory-side link, not of the over-clocked blocks — \
         exactly the paper's diagnosis, and the reason Sec. VI replaces the \
         link with a dedicated SRAM instead of over-clocking harder.\n\n\
         _regenerated in {:.2?}_\n",
        t.render(),
        t0.elapsed()
    );
    publish("ablation_interconnect", &content);
}
