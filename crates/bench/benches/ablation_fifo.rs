//! A1 — ablation: DMA pipelining (outstanding bursts) and stream-FIFO depth.
//!
//! Two buffering decisions in the datamover:
//!
//! * **outstanding bursts** — with only one burst in flight, the memory
//!   path drains between bursts while the next request makes the round trip
//!   (interconnect forward + DRAM row activate), punching holes in the data
//!   channel exactly where the plateau is set;
//! * **stream-FIFO depth** — downstream buffering between the DMA and the
//!   width converter. Throughput losses happen at the *source* (the memory
//!   link), so downstream depth barely moves the plateau; it exists for
//!   clock-domain crossing, not bandwidth. The sweep demonstrates both
//!   facts.

use pdr_bench::{publish, Table};
use pdr_core::system::{SystemConfig, ZynqPdrSystem};
use pdr_dma::DmaConfig;
use pdr_fabric::AspKind;
use pdr_sim_core::Frequency;

fn plateau(max_outstanding: u32, stream_fifo_depth: usize) -> f64 {
    let mut cfg = SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    };
    cfg.dma = DmaConfig {
        max_outstanding,
        ..DmaConfig::default()
    };
    cfg.stream_fifo_depth = stream_fifo_depth;
    let mut sys = ZynqPdrSystem::new(cfg);
    let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
    let r = sys.reconfigure(0, &bs, Frequency::from_mhz(280));
    assert!(r.crc_ok());
    r.throughput_mb_s().expect("280 MHz interrupts")
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut t = Table::new(&[
        "outstanding bursts",
        "stream FIFO [beats]",
        "plateau @280 MHz [MB/s]",
    ]);
    let mut by_outstanding = Vec::new();
    for outstanding in [1u32, 2, 4] {
        let thpt = plateau(outstanding, 64);
        t.row(&[outstanding.to_string(), "64".into(), format!("{thpt:.1}")]);
        by_outstanding.push((outstanding, thpt));
    }
    let mut by_depth = Vec::new();
    for depth in [2usize, 8, 64, 256] {
        let thpt = plateau(2, depth);
        t.row(&["2".into(), depth.to_string(), format!("{thpt:.1}")]);
        by_depth.push((depth, thpt));
    }

    // Pipelining matters: 1 outstanding burst loses visibly to 2.
    let single = by_outstanding[0].1;
    let double = by_outstanding[1].1;
    assert!(
        double / single > 1.05,
        "un-pipelined bursts must cost throughput: {single} vs {double}"
    );
    // More than 2 outstanding buys almost nothing (the link is saturated).
    let quad = by_outstanding[2].1;
    assert!((quad - double) / double < 0.02);
    // Downstream depth is throughput-neutral (source-side losses dominate).
    let min = by_depth.iter().map(|(_, t)| *t).fold(f64::MAX, f64::min);
    let max = by_depth.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    assert!(
        (max - min) / max < 0.02,
        "stream depth should not matter: {by_depth:?}"
    );

    let content = format!(
        "## Ablation A1 — DMA pipelining and stream-FIFO depth\n\n{}\n\
         One outstanding burst leaves the data channel idle during every \
         request round-trip ({:.1} → {:.1} MB/s when pipelined); beyond two \
         in flight the link is saturated. Downstream stream-FIFO depth is \
         throughput-neutral because plateau losses occur at the memory \
         source — the FIFO exists for clock-domain crossing, not \
         bandwidth.\n\n_regenerated in {:.2?}_\n",
        t.render(),
        single,
        double,
        t0.elapsed()
    );
    publish("ablation_fifo", &content);
}
