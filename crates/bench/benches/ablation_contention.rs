//! A8 — ablation: reconfiguration under accelerator traffic.
//!
//! Fig. 1 gives every reconfigurable partition its own HP-port DMA, all
//! sharing the memory interconnect with the configuration DMA. A running
//! accelerator therefore steals memory bandwidth from a concurrent
//! reconfiguration (and vice versa) — a deployment reality the paper's
//! quiet-system measurements do not cover. This sweep quantifies it: the
//! plateau under 0–3 concurrently streaming accelerators.

use pdr_bench::{publish, Table};
use pdr_core::system::{SystemConfig, ZynqPdrSystem};
use pdr_fabric::AspKind;
use pdr_sim_core::Frequency;

fn plateau_with_streams(active_streams: usize) -> f64 {
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let bs = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
    // Saturating transfers on the other partitions' data DMAs (large enough
    // to outlast the reconfiguration).
    for rp in 1..=active_streams {
        sys.start_asp_dma(rp, 0x40_0000, u32::MAX / 4);
    }
    let r = sys.reconfigure(0, &bs, Frequency::from_mhz(280));
    assert!(r.crc_ok(), "contention must never corrupt: {r:?}");
    r.throughput_mb_s().expect("280 MHz interrupts")
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut t = Table::new(&[
        "active accelerator streams",
        "reconfig thpt @280 MHz [MB/s]",
        "share of quiet plateau [%]",
    ]);
    let quiet = plateau_with_streams(0);
    let mut results = vec![(0usize, quiet)];
    t.row(&["0".into(), format!("{quiet:.1}"), "100.0".into()]);
    for n in 1..=3 {
        let thpt = plateau_with_streams(n);
        t.row(&[
            n.to_string(),
            format!("{thpt:.1}"),
            format!("{:.1}", 100.0 * thpt / quiet),
        ]);
        results.push((n, thpt));
    }
    // Round-robin fairness: with n contenders the config stream gets about
    // 1/(n+1) of the interconnect.
    for &(n, thpt) in &results[1..] {
        let fair = quiet / (n as f64 + 1.0);
        assert!(
            (thpt - fair).abs() / fair < 0.15,
            "{n} streams: {thpt:.1} vs fair share {fair:.1}"
        );
        assert!(thpt < results[n - 1].1, "more streams must cost more");
    }

    let content = format!(
        "## Ablation A8 — reconfiguration under accelerator traffic\n\n{}\n\
         The round-robin interconnect shares the 800 MB/s memory path \
         fairly, so each active accelerator stream costs the configuration \
         path one fair share — with three busy partitions the reconfiguration \
         runs at ~a quarter of the quiet plateau. Deployments that need the \
         paper's headline latency during operation should idle the HP ports \
         for the ~700 µs of the swap, or adopt the Sec. VI design whose SRAM \
         path bypasses the shared interconnect entirely.\n\n_regenerated in \
         {:.2?}_\n",
        t.render(),
        t0.elapsed()
    );
    publish("ablation_contention", &content);
}
