//! Event-skipping kernel speedup on idle-dominated soak workloads.
//!
//! The headline claim of the DES kernel: on workloads where the fabric is
//! mostly quiescent — a background CRC monitor soaking between sparse SEUs,
//! and scheduler waves separated by multi-millisecond gaps — the
//! event-skipping engine delivers **≥ 10× simulated-bytes-per-wall-second**
//! over the edge-by-edge tick oracle, while staying byte-identical on every
//! deterministic observable (trace report JSON, counters, simulated time
//! and the dispatched-action count).
//!
//! Both claims are asserted here (a regression fails the build). Besides
//! `target/experiments/kernel.md`, the bench writes `BENCH_kernel.json` at
//! the workspace root: a deterministic, simulated-time-only snapshot (no
//! wall-clock fields), committed so CI can diff it bit-for-bit.

use pdr_bench::harness::{BatchSize, Criterion, Throughput};
use pdr_bench::{publish, Table};
use pdr_core::{
    ReconfigRequest, RecoveryConfig, RecoveryManager, Scheduler, SchedulerConfig, SystemConfig,
    TraceLevel, ZynqPdrSystem,
};
use pdr_fabric::AspKind;
use pdr_sim_core::json::{Json, ToJson};
use pdr_sim_core::{EngineStrategy, Frequency, SimDuration};

/// SEUs injected into the fault soak, each after a quiet scrubbing span.
const SOAK_FAULTS: u64 = 5;
/// Quiet monitor span before each SEU. Still orders of magnitude denser
/// than real orbital upset rates — i.e. conservative for the speedup claim.
const SOAK_SPAN_US: u64 = 4000;
/// Scheduler waves, each followed by a 2 ms idle gap.
const WAVES: u64 = 3;

/// Deterministic observables of one finished workload — identical between
/// engines by the kernel contract, and committed in `BENCH_kernel.json`.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    sim_ps: u64,
    bytes: u64,
    actions: u64,
    report_json: String,
}

impl Outcome {
    fn capture(mut sys: ZynqPdrSystem, bytes: u64) -> Outcome {
        Outcome {
            sim_ps: sys.now().as_ps(),
            bytes,
            actions: sys.engine_mut().actions_dispatched(),
            report_json: sys.tracer_mut().report().to_json_string(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sim_ps".into(), Json::U64(self.sim_ps)),
            ("bytes".into(), Json::U64(self.bytes)),
            ("actions".into(), Json::U64(self.actions)),
        ])
    }
}

/// Background-monitor soak: sparse SEUs over long quiet scan spans, each
/// detected by the CRC read-back block and scrubbed.
fn fault_soak(strategy: EngineStrategy) -> (ZynqPdrSystem, u64) {
    let mut config = SystemConfig::fast_test();
    config.strategy = strategy;
    let mut sys = ZynqPdrSystem::new(config);
    sys.set_trace_level(TraceLevel::Counters);
    let bs0 = sys.make_asp_bitstream(0, AspKind::Fir16, 1);
    let bs1 = sys.make_asp_bitstream(1, AspKind::AesMix, 2);
    let mut bytes = (bs0.len() + bs1.len()) as u64;
    assert!(sys.reconfigure(0, &bs0, Frequency::from_mhz(200)).crc_ok());
    assert!(sys.reconfigure(1, &bs1, Frequency::from_mhz(200)).crc_ok());
    let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
    mgr.register_golden(0, bs0.clone());
    for i in 0..SOAK_FAULTS {
        // The scrub reconfiguration pauses the monitor — re-arm every round.
        sys.start_background_monitor(&[0, 1]);
        let scan = sys.monitor_scan_period();
        sys.run_monitor_for(SimDuration::from_micros(SOAK_SPAN_US));
        sys.inject_seu(
            0,
            1 + (i % 40) as u32,
            (i % 25) as usize,
            1 + (i % 31) as u32,
        );
        let latency = sys
            .run_monitor_until_alarm(scan * 3)
            .expect("the monitor must catch every injected SEU");
        mgr.record_detection(latency);
        assert!(mgr.on_crc_alarm(&mut sys, 0).succeeded());
        bytes += bs0.len() as u64; // the scrub rewrites the golden image
    }
    (sys, bytes)
}

/// Scheduler waves with 2 ms inter-wave gaps — bursts of real transfer
/// work inside long fully-idle spans.
fn scheduler_soak(strategy: EngineStrategy) -> (ZynqPdrSystem, u64) {
    let mut config = SystemConfig::fast_quad();
    config.strategy = strategy;
    let mut sys = ZynqPdrSystem::new(config);
    sys.set_trace_level(TraceLevel::Counters);
    let mut mgr = RecoveryManager::for_system(&sys, RecoveryConfig::default());
    let mut sched = Scheduler::new(SchedulerConfig::default().compressed());
    let mut bytes = 0u64;
    let images: Vec<_> = (0..4usize)
        .map(|rp| {
            let kind = AspKind::ALL[rp % AspKind::ALL.len()];
            sys.make_asp_bitstream(rp, kind, rp as u32 + 1)
        })
        .collect();
    for (id, bs) in images.iter().enumerate() {
        sched.register_bitstream(id as u32, bs.clone());
    }
    for wave in 0..WAVES {
        for (rp, image) in images.iter().enumerate() {
            let req = ReconfigRequest {
                rp,
                bitstream_id: rp as u32,
                priority: 0,
                deadline: SimDuration::from_millis(50 + wave),
                tenant: 0,
            };
            sched.submit(&sys, &mgr, req).expect("workload must admit");
            bytes += image.len() as u64;
        }
        sched.run_until_idle(&mut sys, &mut mgr);
        // The inter-wave gap: nothing is armed, every component quiescent.
        sys.engine_mut().run_for(SimDuration::from_millis(2));
    }
    (sys, bytes)
}

type Workload = fn(EngineStrategy) -> (ZynqPdrSystem, u64);

fn measure(c: &mut Criterion, workload_name: &str, workload: Workload, bytes: u64) {
    let mut g = c.benchmark_group(workload_name);
    g.throughput(Throughput::Bytes(bytes));
    for (name, strategy) in [
        ("tick", EngineStrategy::Tick),
        ("event-skip", EngineStrategy::EventSkip),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || strategy,
                |s| std::hint::black_box(workload(s)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn median_ns(c: &Criterion, group: &str, name: &str) -> f64 {
    let id = format!("{group}/{name}");
    c.results()
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("no result for {id}"))
        .median
        .as_nanos() as f64
}

fn main() {
    let t0 = std::time::Instant::now();
    let workloads: [(&str, Workload); 2] = [
        ("fault_soak", fault_soak),
        ("scheduler_soak", scheduler_soak),
    ];

    // -- equivalence: every deterministic observable byte-identical --------
    let mut outcomes: Vec<(&str, Outcome)> = Vec::new();
    for (name, workload) in workloads {
        let (tick_sys, tick_bytes) = workload(EngineStrategy::Tick);
        let (skip_sys, skip_bytes) = workload(EngineStrategy::EventSkip);
        let tick = Outcome::capture(tick_sys, tick_bytes);
        let skip = Outcome::capture(skip_sys, skip_bytes);
        assert_eq!(
            tick, skip,
            "{name}: tick and event-skip must agree on every deterministic \
             observable (see docs/KERNEL.md)"
        );
        outcomes.push((name, skip));
    }

    // -- wall-clock: the ≥10× claim ----------------------------------------
    let mut c = Criterion::default();
    for ((name, workload), (_, outcome)) in workloads.iter().zip(&outcomes) {
        measure(&mut c, name, *workload, outcome.bytes);
    }
    c.final_report("kernel");

    let mut rows = Vec::new();
    for (name, outcome) in &outcomes {
        let tick_ns = median_ns(&c, name, "tick");
        let skip_ns = median_ns(&c, name, "event-skip");
        // Same simulated bytes both ways, so the bytes-per-wall-second
        // ratio reduces to the wall-time ratio.
        let speedup = tick_ns / skip_ns;
        let rate = |ns: f64| outcome.bytes as f64 / (ns / 1e9) / 1e6;
        rows.push((name.to_string(), outcome.clone(), tick_ns, skip_ns, speedup));
        eprintln!(
            "{name}: {:.1} -> {:.1} simulated MB/s of wall time ({speedup:.1}x)",
            rate(tick_ns),
            rate(skip_ns),
        );
        assert!(
            speedup >= 10.0,
            "{name}: event skipping must deliver >=10x simulated-bytes-per-\
             wall-second over the tick oracle, got {speedup:.1}x \
             ({tick_ns:.0} ns -> {skip_ns:.0} ns)"
        );
    }

    // -- BENCH_kernel.json — deterministic snapshot only -------------------
    // No wall-clock fields: re-running at any sample count on any machine
    // reproduces this file bit-for-bit.
    let snapshot = Json::Obj(vec![
        ("bench".into(), Json::Str("kernel".into())),
        ("soak_faults".into(), Json::U64(SOAK_FAULTS)),
        ("scheduler_waves".into(), Json::U64(WAVES)),
        (
            "workloads".into(),
            Json::Obj(
                outcomes
                    .iter()
                    .map(|(name, o)| (name.to_string(), o.to_json()))
                    .collect(),
            ),
        ),
    ]);
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let path = root.join("BENCH_kernel.json");
    match std::fs::write(&path, snapshot.render() + "\n") {
        Ok(()) => eprintln!("[kernel snapshot written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    // -- markdown table ----------------------------------------------------
    let mut t = Table::new(&[
        "workload",
        "sim time [ms]",
        "bytes",
        "tick [ms]",
        "event-skip [ms]",
        "speedup",
    ]);
    for (name, o, tick_ns, skip_ns, speedup) in &rows {
        t.row(&[
            name.clone(),
            format!("{:.2}", o.sim_ps as f64 / 1e9),
            o.bytes.to_string(),
            format!("{:.2}", tick_ns / 1e6),
            format!("{:.2}", skip_ns / 1e6),
            format!("{speedup:.1}x"),
        ]);
    }
    let content = format!(
        "## Event-skipping kernel — speedup on idle-dominated soaks\n\n{}\n\
         Fault soak: {SOAK_FAULTS} sparse SEUs over {SOAK_SPAN_US} µs quiet \
         monitor spans, each detected and scrubbed. Scheduler soak: {WAVES} waves of \
         four transfers with 2 ms idle gaps. Speedup is asserted ≥ 10× on \
         both; every deterministic observable (trace report JSON, simulated \
         time, dispatched-action count) is asserted byte-identical between \
         the kernels first.\n\n\
         _regenerated in {:.2?}_\n",
        t.render(),
        t0.elapsed()
    );
    publish("kernel", &content);
}
