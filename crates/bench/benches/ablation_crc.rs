//! A3 — ablation: what the CRC read-back block buys.
//!
//! The paper's key differentiator over VF-2012 is automatic error detection.
//! This ablation quantifies both sides: the verification time the CRC block
//! adds after each transfer, and the silent corruption a CRC-less design
//! (VF-2012-style) would ship at failing operating points.

use pdr_bench::{publish, Table};
use pdr_core::baselines::Vf2012;
use pdr_core::system::{SystemConfig, ZynqPdrSystem};
use pdr_fabric::AspKind;
use pdr_sim_core::{Frequency, SimTime};

fn main() {
    let t0 = std::time::Instant::now();
    let mut sys = ZynqPdrSystem::new(SystemConfig {
        ideal_instruments: true,
        ..SystemConfig::default()
    });
    let bs = sys.make_asp_bitstream(0, AspKind::AesMix, 9);

    let mut t = Table::new(&[
        "operating point",
        "transfer [us]",
        "verify [us]",
        "verdict (ours)",
        "verdict (no CRC, VF-2012-style)",
    ]);

    let mut wall_before: SimTime;
    for mhz in [200u64, 320] {
        wall_before = sys.now();
        let r = sys.reconfigure(0, &bs, Frequency::from_mhz(mhz));
        let total = sys.now().duration_since(wall_before);
        let transfer = r
            .latency
            .map(|l| l.as_micros_f64())
            .unwrap_or_else(|| bs.len() as f64 / (4.0 * mhz as f64));
        // Everything after the transfer in this call is pre-flight + the
        // read-back scan; the scan dominates.
        let verify = total.as_micros_f64() - transfer;
        let vf = Vf2012.run(Frequency::from_mhz(mhz));
        t.row(&[
            format!("{mhz} MHz"),
            format!("{transfer:.1}"),
            format!("{verify:.1}"),
            if r.crc_ok() {
                "verified valid".into()
            } else {
                format!("corruption DETECTED ({} bad words)", r.corrupted_words)
            },
            if vf.froze {
                "FPGA frozen".into()
            } else if vf.undetected_failure {
                "corrupt fabric, **no indication**".into()
            } else {
                "assumed good (unverified)".into()
            },
        ]);
        if mhz == 320 {
            assert!(!r.crc_ok(), "320 MHz must corrupt");
            assert!(
                vf.undetected_failure,
                "VF-2012 ships the corruption silently"
            );
        }
    }

    let scan = sys.monitor_scan_period();
    let content = format!(
        "## Ablation A3 — the value of the CRC read-back block\n\n{}\n\
         Verification costs one read-back scan of the partition \
         (≈{:.0} us per partition at the 100 MHz fabric clock, fully \
         overlappable with the next accelerator's runtime since it runs in \
         the background). Without it, every operating point beyond the safe \
         envelope ships corrupt configurations with no indication — the \
         failure mode the paper explicitly calls out in VF-2012.\n\n\
         _regenerated in {:.2?}_\n",
        t.render(),
        {
            // one-partition scan estimate
            sys.start_background_monitor(&[0]);
            sys.monitor_scan_period().as_micros_f64()
        },
        t0.elapsed()
    );
    let _ = scan;
    publish("ablation_crc", &content);
}
